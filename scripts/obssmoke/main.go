// Command obssmoke is the HTTP driver behind scripts/obs_smoke.sh: it
// aims traffic at a running emserve and asserts the serving-
// observability contract — request IDs echoed on every response, one
// parseable JSON wide event per request in the access log, the injected
// latency outlier captured (with its span tree) in /debug/tail, and the
// SLO report on /v1/status flipping to breached when the error phase
// drives 5xxs. The shell script owns process lifecycle and the
// emmonitor slo exit-code assertions; this driver owns everything that
// needs an HTTP client and JSON parsing.
//
// Usage:
//
//	obssmoke -addr 127.0.0.1:PORT -right USDAProjected.csv \
//	         -events events.jsonl -phase healthy [-n 8] [-slow-call 4]
//	obssmoke -addr 127.0.0.1:PORT -right USDAProjected.csv \
//	         -events events.jsonl -phase burn [-n 8]
//
// The healthy phase expects the server armed with
// -inject "serve.match:mode=sleep,sleep=300ms,oncall=<slow-call>"; the
// burn phase expects -inject serve.match (every pipeline pass errors).
//
// Exit status: 0 when every assertion holds, 1 otherwise (each failure
// is printed), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"emgo/internal/table"
)

var failures int

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obssmoke: FAIL: "+format+"\n", args...)
	failures++
}

func say(format string, args ...any) {
	fmt.Printf("obssmoke: "+format+"\n", args...)
}

// tailEntry / tailSnapshot are the slices of /debug/tail the assertions
// read.
type tailEntry struct {
	Event struct {
		RequestID  string  `json:"request_id"`
		Outcome    string  `json:"outcome"`
		DurationMS float64 `json:"duration_ms"`
	} `json:"event"`
	Trace *struct {
		Name     string            `json:"name"`
		Children []json.RawMessage `json:"children"`
	} `json:"trace"`
}

type tailSnapshot struct {
	Slowest []tailEntry `json:"slowest"`
	Errored []tailEntry `json:"errored"`
}

// statusDoc is the slice of /v1/status the assertions read.
type statusDoc struct {
	SLO *struct {
		Breached   bool `json:"breached"`
		Objectives []struct {
			Name      string  `json:"name"`
			FastBurn  float64 `json:"fast_burn"`
			SlowBurn  float64 `json:"slow_burn"`
			SlowTotal int64   `json:"slow_total"`
			Breached  bool    `json:"breached"`
		} `json:"objectives"`
	} `json:"slo"`
}

func main() {
	addr := flag.String("addr", "", "emserve address (host:port)")
	rightPath := flag.String("right", "", "right-table CSV the server deployed (titles are mined for requests)")
	events := flag.String("events", "", "path of the server's -access-log file")
	phase := flag.String("phase", "healthy", "healthy | burn")
	n := flag.Int("n", 8, "requests to drive")
	slowCall := flag.Int("slow-call", 4, "1-based pipeline call the sleep fault fires on (healthy phase)")
	flag.Parse()
	if *addr == "" || *rightPath == "" || *events == "" {
		fmt.Fprintln(os.Stderr, "usage: obssmoke -addr host:port -right right.csv -events events.jsonl -phase healthy|burn")
		os.Exit(2)
	}
	base := "http://" + *addr

	body, err := requestBody(*rightPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	switch *phase {
	case "healthy":
		healthyPhase(client, base, body, *events, *n, *slowCall)
	case "burn":
		burnPhase(client, base, body, *events, *n)
	default:
		fmt.Fprintln(os.Stderr, "obssmoke: unknown -phase", *phase)
		os.Exit(2)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "obssmoke: %d failure(s)\n", failures)
		os.Exit(1)
	}
	say("PASS (%s phase)", *phase)
}

// healthyPhase drives ok traffic with one injected latency outlier and
// asserts IDs, wide events, tail capture, and a holding SLO budget.
func healthyPhase(client *http.Client, base, body, events string, n, slowCall int) {
	ids := driveMatches(client, base, body, n, "obs", http.StatusOK)
	slowID := fmt.Sprintf("obs-%d", slowCall)

	// The tail buffer must retain the outlier — with its span tree —
	// queryable after the response was already served.
	var snap tailSnapshot
	if !getJSON(client, base+"/debug/tail", &snap) {
		return
	}
	if len(snap.Slowest) == 0 {
		fail("/debug/tail slowest set is empty after %d requests", n)
		return
	}
	var outlier *tailEntry
	for i := range snap.Slowest {
		if snap.Slowest[i].Event.RequestID == slowID {
			outlier = &snap.Slowest[i]
		}
	}
	if outlier == nil {
		fail("injected-latency request %s missing from /debug/tail slowest set", slowID)
	} else {
		if outlier.Event.DurationMS < 250 {
			fail("outlier %s duration %.1fms, want >= 250ms of injected sleep", slowID, outlier.Event.DurationMS)
		}
		if outlier.Trace == nil || len(outlier.Trace.Children) == 0 {
			fail("outlier %s tail entry carries no span tree", slowID)
		} else {
			say("tail captured outlier %s (%.0fms, %d top-level spans)",
				slowID, outlier.Event.DurationMS, len(outlier.Trace.Children))
		}
	}

	// Every request produced exactly one parseable wide event.
	docs := readEvents(events)
	seen := map[string]int{}
	for _, doc := range docs {
		if id, _ := doc["request_id"].(string); id != "" {
			seen[id]++
		}
	}
	for _, id := range ids {
		if seen[id] != 1 {
			fail("request %s has %d wide events, want exactly 1", id, seen[id])
		}
	}
	if len(docs) > 0 {
		say("access log: %d parseable wide events, one per request", len(docs))
	}
	for _, doc := range docs {
		if doc["request_id"] == slowID {
			if stages, ok := doc["stages"].(map[string]any); !ok || stages["serve.match"] == nil {
				fail("outlier wide event has no serve.match stage timing: %v", doc)
			}
		}
	}

	// Healthy traffic must not read as an SLO breach.
	var st statusDoc
	if getJSON(client, base+"/v1/status", &st) {
		switch {
		case st.SLO == nil || len(st.SLO.Objectives) == 0:
			fail("/v1/status carries no SLO report")
		case st.SLO.Breached:
			fail("healthy traffic reads as an SLO breach: %+v", st.SLO)
		default:
			say("SLO budget holds across %d objectives", len(st.SLO.Objectives))
		}
	}
}

// burnPhase drives guaranteed 5xxs and asserts the SLO report flips to
// breached and that error events always reach the log.
func burnPhase(client *http.Client, base, body, events string, n int) {
	driveMatches(client, base, body, n, "burn", http.StatusInternalServerError)

	var st statusDoc
	if !getJSON(client, base+"/v1/status", &st) {
		return
	}
	if st.SLO == nil {
		fail("/v1/status carries no SLO report")
		return
	}
	if !st.SLO.Breached {
		fail("100%% failures did not breach the SLO: %+v", st.SLO)
	} else {
		for _, o := range st.SLO.Objectives {
			if o.Breached {
				say("objective %s breached (fast burn %.0f, slow burn %.0f)", o.Name, o.FastBurn, o.SlowBurn)
			}
		}
	}

	// Errors bypass sampling: every failed request must be in the log
	// with its error message.
	docs := readEvents(events)
	var errored int
	for _, doc := range docs {
		if doc["outcome"] == "error" {
			errored++
			if doc["error"] == nil {
				fail("error wide event carries no error field: %v", doc)
			}
		}
	}
	if errored < n {
		fail("access log has %d error events, want >= %d (errors must never be sampled away)", errored, n)
	} else {
		say("all %d failures logged with error detail", errored)
	}

	// The errored set of the tail buffer retains them too.
	var snap tailSnapshot
	if getJSON(client, base+"/debug/tail", &snap) {
		if len(snap.Errored) == 0 {
			fail("/debug/tail errored set is empty after %d failures", n)
		}
	}
}

// driveMatches sends n match requests with IDs prefix-i and asserts
// status and ID echo. Returns the IDs sent.
func driveMatches(client *http.Client, base, body string, n int, prefix string, wantStatus int) []string {
	ids := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		ids = append(ids, id)
		req, err := http.NewRequest(http.MethodPost, base+"/v1/match", strings.NewReader(body))
		if err != nil {
			fail("build request: %v", err)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", id)
		resp, err := client.Do(req)
		if err != nil {
			fail("POST /v1/match: %v", err)
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			fail("request %s returned %d, want %d", id, resp.StatusCode, wantStatus)
		}
		if got := resp.Header.Get("X-Request-Id"); got != id {
			fail("request %s echoed X-Request-Id %q", id, got)
		}
	}
	say("drove %d requests (want status %d), IDs echoed", n, wantStatus)
	return ids
}

// readEvents parses the access log into JSON documents; unparseable
// lines are failures (the whole point is jq-ability).
func readEvents(path string) []map[string]any {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("read access log: %v", err)
		return nil
	}
	var docs []map[string]any
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			fail("access-log line is not JSON: %v\n%s", err, line)
			continue
		}
		docs = append(docs, doc)
	}
	return docs
}

// requestBody mines the deployed right table for a title long enough to
// survive blocking, so the request exercises the full pipeline.
func requestBody(rightPath string) (string, error) {
	right, err := table.ReadCSVFile(rightPath, nil)
	if err != nil {
		return "", err
	}
	col, err := right.Col("AwardTitle")
	if err != nil {
		return "", err
	}
	for i := 0; i < right.Len(); i++ {
		title := right.Row(i)[col].Str()
		if len(strings.Fields(title)) >= 4 {
			req := map[string]any{"record": map[string]any{
				"RecordId": "obs-0", "AwardTitle": title,
			}}
			data, err := json.Marshal(req)
			return string(data), err
		}
	}
	return "", fmt.Errorf("no right-table title with >= 4 words in %s", rightPath)
}

func getJSON(client *http.Client, url string, v any) bool {
	resp, err := client.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
		return false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail("GET %s returned %d: %s", url, resp.StatusCode, data)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		fail("GET %s: response is not JSON: %v", url, err)
		return false
	}
	return true
}
