#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test for the serving-observability
# stack (see docs/OBSERVABILITY.md, "Serving observability").
#
# Two phases against race-built emserve instances:
#
#   1. healthy: start emserve with the access log, tail capture, and SLO
#      tracking armed, plus one injected 300ms latency outlier
#      (-inject serve.match:mode=sleep,oncall=4). Drive healthy traffic
#      (scripts/obssmoke): request IDs must echo, every request must
#      produce exactly one parseable JSON wide event, /debug/tail must
#      retain the outlier with its span tree after the response was
#      served, and `emmonitor slo` must exit 0. SIGTERM then drains the
#      server and must write the -tail-dump snapshot.
#
#   2. burn: start emserve with every pipeline pass failing
#      (-inject serve.match). Drive traffic that 500s: every failure
#      must reach the access log (errors bypass sampling), the SLO
#      report must flip to breached in both windows, and
#      `emmonitor slo` must exit 1 — the CI-gate contract.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required.
set -u

SCALE="${OBS_SCALE:-0.1}"
SEED="${OBS_SEED:-5}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

say() { printf 'obs-smoke: %s\n' "$*"; }
fail() { printf 'obs-smoke: FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }

say "building emgen, emcasestudy, emserve (-race), emmonitor, obssmoke"
for bin in emgen emcasestudy emmonitor; do
    (cd "$ROOT" && go build -o "$TMP/$bin" "./cmd/$bin") || {
        echo "obs-smoke: build of $bin failed" >&2
        exit 1
    }
done
(cd "$ROOT" && go build -race -o "$TMP/emserve" ./cmd/emserve) || {
    echo "obs-smoke: race build of emserve failed" >&2
    exit 1
}
(cd "$ROOT" && go build -o "$TMP/obssmoke" ./scripts/obssmoke) || {
    echo "obs-smoke: build of obssmoke failed" >&2
    exit 1
}

say "generating projected slice (scale=$SCALE seed=$SEED) and spec"
"$TMP/emgen" -scale "$SCALE" -seed "$SEED" -projected -out "$TMP/data" >/dev/null || {
    echo "obs-smoke: emgen failed" >&2
    exit 1
}
"$TMP/emcasestudy" -scale "$SCALE" -seed "$SEED" -spec "$TMP/spec.json" \
    >"$TMP/study.txt" 2>"$TMP/study.err" || {
    echo "obs-smoke: emcasestudy failed:" >&2
    cat "$TMP/study.err" >&2
    exit 1
}
LEFT="$TMP/data/UMETRICSProjected.csv"
RIGHT="$TMP/data/USDAProjected.csv"

# start_emserve LOGFILE EXTRA_ARGS... — boots a server, waits for the
# address file, and sets ADDR/SERVE_PID.
start_emserve() {
    logfile="$1"
    shift
    rm -f "$TMP/addr.txt"
    "$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
        -addr 127.0.0.1:0 -addr-file "$TMP/addr.txt" "$@" 2>"$logfile" &
    SERVE_PID=$!
    for _ in $(seq 1 300); do
        [ -s "$TMP/addr.txt" ] && break
        kill -0 "$SERVE_PID" 2>/dev/null || {
            echo "obs-smoke: emserve died during startup:" >&2
            cat "$logfile" >&2
            exit 1
        }
        sleep 0.1
    done
    [ -s "$TMP/addr.txt" ] || {
        echo "obs-smoke: emserve never wrote its address file" >&2
        cat "$logfile" >&2
        exit 1
    }
    ADDR="$(head -1 "$TMP/addr.txt" | tr -d '[:space:]')"
}

# ---- Phase 1: healthy traffic, latency outlier, tail capture --------

say "phase 1: starting emserve with access log, tail capture, and a 300ms outlier on call 4"
start_emserve "$TMP/serve1.err" \
    -access-log "$TMP/events.jsonl" -access-sample 1 \
    -tail-n 8 -tail-dump "$TMP/tail_dump.json" \
    -slo "availability=99.9,latency=2s@95" \
    -inject "serve.match:mode=sleep,sleep=300ms,oncall=4"
say "emserve is listening on $ADDR"

"$TMP/obssmoke" -addr "$ADDR" -right "$RIGHT" -events "$TMP/events.jsonl" \
    -phase healthy -n 8 -slow-call 4 ||
    fail "healthy-phase HTTP assertions failed"

say "emmonitor slo against the healthy server (want exit 0)"
"$TMP/emmonitor" slo -url "http://$ADDR" >"$TMP/slo_ok.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
    fail "emmonitor slo exited $status on a healthy server:"
    cat "$TMP/slo_ok.txt" >&2
fi
grep -q "error budget holds" "$TMP/slo_ok.txt" ||
    fail "emmonitor slo did not report a holding budget"

say "SIGTERM: draining phase-1 server (must write the tail dump)"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
status=$?
SERVE_PID=""
[ "$status" -ne 130 ] && {
    fail "emserve exited $status after SIGTERM, want 130:"
    cat "$TMP/serve1.err" >&2
}
grep -q "tail snapshot written" "$TMP/serve1.err" ||
    fail "drain did not write the tail dump"
if [ -s "$TMP/tail_dump.json" ]; then
    grep -q '"slowest"' "$TMP/tail_dump.json" ||
        fail "tail dump has no slowest set"
else
    fail "tail dump file is missing or empty"
fi
if grep -q "WARNING: DATA RACE" "$TMP/serve1.err"; then
    fail "the race detector fired in phase 1:"
    cat "$TMP/serve1.err" >&2
fi

# ---- Phase 2: every request fails -> SLO breach gates ----------------

say "phase 2: starting emserve with every pipeline pass failing"
start_emserve "$TMP/serve2.err" \
    -access-log "$TMP/events2.jsonl" -access-sample 5 \
    -slo "availability=99.9" \
    -inject "serve.match"
say "emserve is listening on $ADDR"

"$TMP/obssmoke" -addr "$ADDR" -right "$RIGHT" -events "$TMP/events2.jsonl" \
    -phase burn -n 8 ||
    fail "burn-phase HTTP assertions failed"

say "emmonitor slo against the burning server (want exit 1)"
"$TMP/emmonitor" slo -url "http://$ADDR" >"$TMP/slo_burn.txt" 2>&1
status=$?
if [ "$status" -ne 1 ]; then
    fail "emmonitor slo exited $status on a burning server, want 1:"
    cat "$TMP/slo_burn.txt" >&2
fi
grep -q "availability" "$TMP/slo_burn.txt" ||
    fail "breach verdict does not name the availability objective"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""
if grep -q "WARNING: DATA RACE" "$TMP/serve2.err"; then
    fail "the race detector fired in phase 2:"
    cat "$TMP/serve2.err" >&2
fi

if [ "$FAILURES" -gt 0 ]; then
    echo "obs-smoke: $FAILURES failure(s)" >&2
    exit 1
fi
say "PASS (wide events -> tail capture -> SLO gate, race-clean)"
