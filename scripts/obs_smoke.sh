#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test for the serving-observability
# stack (see docs/OBSERVABILITY.md, "Serving observability").
#
# Two phases against race-built emserve instances:
#
#   1. healthy: start emserve with the access log, tail capture, and SLO
#      tracking armed, plus one injected 300ms latency outlier
#      (-inject serve.match:mode=sleep,oncall=4). Drive healthy traffic
#      (scripts/obssmoke): request IDs must echo, every request must
#      produce exactly one parseable JSON wide event, /debug/tail must
#      retain the outlier with its span tree after the response was
#      served, and `emmonitor slo` must exit 0. SIGTERM then drains the
#      server and must write the -tail-dump snapshot.
#
#   2. burn: start emserve with every pipeline pass failing
#      (-inject serve.match). Drive traffic that 500s: every failure
#      must reach the access log (errors bypass sampling), the SLO
#      report must flip to breached in both windows, and
#      `emmonitor slo` must exit 1 — the CI-gate contract.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${OBS_SCALE:-0.1}"
SEED="${OBS_SEED:-5}"
. "$(dirname "$0")/smoke_lib.sh"
smoke_init obs-smoke

say "building emgen, emcasestudy, emserve (-race), emmonitor, obssmoke"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emmonitor ./cmd/emmonitor
smoke_build emserve ./cmd/emserve -race
smoke_build obssmoke ./scripts/obssmoke

smoke_gen_data "$SCALE" "$SEED"

# ---- Phase 1: healthy traffic, latency outlier, tail capture --------

say "phase 1: starting emserve with access log, tail capture, and a 300ms outlier on call 4"
smoke_start_emserve "$TMP/serve1.err" \
    -access-log "$TMP/events.jsonl" -access-sample 1 \
    -tail-n 8 -tail-dump "$TMP/tail_dump.json" \
    -slo "availability=99.9,latency=2s@95" \
    -inject "serve.match:mode=sleep,sleep=300ms,oncall=4"
say "emserve is listening on $ADDR"

"$TMP/obssmoke" -addr "$ADDR" -right "$RIGHT" -events "$TMP/events.jsonl" \
    -phase healthy -n 8 -slow-call 4 ||
    fail "healthy-phase HTTP assertions failed"

say "emmonitor slo against the healthy server (want exit 0)"
"$TMP/emmonitor" slo -url "http://$ADDR" >"$TMP/slo_ok.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
    fail "emmonitor slo exited $status on a healthy server:"
    cat "$TMP/slo_ok.txt" >&2
fi
grep -q "error budget holds" "$TMP/slo_ok.txt" ||
    fail "emmonitor slo did not report a holding budget"

say "SIGTERM: draining phase-1 server (must write the tail dump)"
smoke_drain_server "$TMP/serve1.err"
grep -q "tail snapshot written" "$TMP/serve1.err" ||
    fail "drain did not write the tail dump"
if [ -s "$TMP/tail_dump.json" ]; then
    grep -q '"slowest"' "$TMP/tail_dump.json" ||
        fail "tail dump has no slowest set"
else
    fail "tail dump file is missing or empty"
fi

# ---- Phase 2: every request fails -> SLO breach gates ----------------

say "phase 2: starting emserve with every pipeline pass failing"
smoke_start_emserve "$TMP/serve2.err" \
    -access-log "$TMP/events2.jsonl" -access-sample 5 \
    -slo "availability=99.9" \
    -inject "serve.match"
say "emserve is listening on $ADDR"

"$TMP/obssmoke" -addr "$ADDR" -right "$RIGHT" -events "$TMP/events2.jsonl" \
    -phase burn -n 8 ||
    fail "burn-phase HTTP assertions failed"

say "emmonitor slo against the burning server (want exit 1)"
"$TMP/emmonitor" slo -url "http://$ADDR" >"$TMP/slo_burn.txt" 2>&1
status=$?
if [ "$status" -ne 1 ]; then
    fail "emmonitor slo exited $status on a burning server, want 1:"
    cat "$TMP/slo_burn.txt" >&2
fi
grep -q "availability" "$TMP/slo_burn.txt" ||
    fail "breach verdict does not name the availability objective"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""
smoke_check_race "$TMP/serve2.err"

smoke_finish "(wide events -> tail capture -> SLO gate, race-clean)"
