#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke test for the open-loop load generator
# and soak harness (see docs/SERVING.md, "Capacity & soak testing").
#
# Four phases, every server race-built:
#
#   1. clean soak: emload -mode soak against a healthy emserve with SLO
#      tracking armed. The gate (client objectives, zero unexpected
#      answers, Retry-After on every shed, server burn rates) must pass:
#      exit 0 and "pass": true in the summary JSON,
#   2. capacity sanity: a short stepped-QPS search against the same
#      server must find a non-zero max sustainable rate and exit 0; the
#      server then drains leak- and race-clean,
#   3. gate trip: a second emserve with 300ms injected latency on every
#      match, soaked under a 100ms p99 objective — the gate MUST breach
#      (exit exactly 1, "pass": false). A gate that cannot fail is not
#      a gate,
#   4. chaos-soak: emload -mode chaos supervises its own emserve, trips
#      and re-closes the breaker under injected matcher faults, SIGKILLs
#      the server at a shard boundary mid-load (EMCKPT_KILL), restarts
#      it, and requires byte-identical job resume, Retry-After on every
#      shed, and a leak-clean drain: exit 0, "byte_identical": true.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${LOAD_SCALE:-0.1}"
SEED="${LOAD_SEED:-7}"
. "$(dirname "$0")/smoke_lib.sh"
smoke_init load-smoke

say "building emgen, emcasestudy, emserve (-race), emload"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emserve ./cmd/emserve -race
smoke_build emload ./cmd/emload

smoke_gen_data "$SCALE" "$SEED"
smoke_export_matcher

# json_has FILE FRAGMENT: assert the summary JSON contains FRAGMENT.
json_has() {
    grep -q "$2" "$1" || fail "$1 does not contain $2"
}

# ---- Phase 1: clean soak must pass --------------------------------------

say "phase 1: clean soak against a healthy server (want exit 0)"
smoke_start_emserve "$TMP/serve_soak.err" \
    -matcher "$TMP/matcher.json" \
    -slo "availability=99"
say "emserve is listening on $ADDR"

"$TMP/emload" -mode soak -addr "$ADDR" -right "$RIGHT" \
    -profile poisson -rate 40 -duration 6s -seed "$SEED" \
    -report-every 2s -shed-retries 1 -max-retry-after 500ms \
    -slo "availability=99,latency=2s@99" \
    -summary "$TMP/soak.json" 2>"$TMP/soak.log"
status=$?
if [ "$status" -ne 0 ]; then
    fail "clean soak exited $status, want 0:"
    cat "$TMP/soak.log" >&2
fi
json_has "$TMP/soak.json" '"pass": true'
json_has "$TMP/soak.json" '"gate"'
grep -q "eps=" "$TMP/soak.log" || fail "soak produced no live report lines"

# ---- Phase 2: capacity search finds a non-zero sustainable rate ---------

say "phase 2: short capacity search (want a non-zero sustainable rate)"
"$TMP/emload" -mode capacity -addr "$ADDR" -right "$RIGHT" \
    -seed "$SEED" -start-qps 4 -max-qps 16 -factor 2 \
    -step-duration 2s -p99-target 5000 -report-every 0 \
    -summary "$TMP/capacity.json" 2>"$TMP/capacity.log"
status=$?
if [ "$status" -ne 0 ]; then
    fail "capacity search exited $status, want 0:"
    cat "$TMP/capacity.log" >&2
fi
json_has "$TMP/capacity.json" '"max_sustainable_qps"'
grep -q '"max_sustainable_qps": 0,' "$TMP/capacity.json" &&
    fail "capacity search found no sustainable rate at all"
grep -q "max sustainable rate" "$TMP/capacity.log" ||
    fail "capacity search printed no verdict line"

say "SIGTERM: draining the phase-1/2 server"
smoke_drain_server "$TMP/serve_soak.err"

# ---- Phase 3: an undersized server must trip the gate -------------------

say "phase 3: 300ms injected latency vs a 100ms p99 objective (want exit 1)"
smoke_start_emserve "$TMP/serve_slow.err" \
    -matcher "$TMP/matcher.json" \
    -inject "serve.match:mode=sleep,sleep=300ms"
say "emserve is listening on $ADDR"

"$TMP/emload" -mode soak -addr "$ADDR" -right "$RIGHT" \
    -profile uniform -rate 5 -duration 5s -seed "$SEED" -report-every 0 \
    -slo "availability=99,latency=100ms@99" \
    -summary "$TMP/trip.json" 2>"$TMP/trip.log"
status=$?
if [ "$status" -ne 1 ]; then
    fail "overloaded soak exited $status, want exactly 1:"
    cat "$TMP/trip.log" >&2
fi
json_has "$TMP/trip.json" '"pass": false'
grep -q "gate latency.*BREACH" "$TMP/trip.log" ||
    fail "the tripped gate did not name the latency objective"

say "SIGTERM: draining the phase-3 server"
smoke_drain_server "$TMP/serve_slow.err"

# ---- Phase 4: chaos-soak ------------------------------------------------

say "phase 4: chaos-soak (breaker trip/re-close, SIGKILL mid-load, byte-identical resume)"
mkdir -p "$TMP/chaos"
"$TMP/emload" -mode chaos -right "$RIGHT" \
    -server-bin "$TMP/emserve" -workdir "$TMP/chaos" \
    -rate 20 -duration 6s -seed "$SEED" -report-every 2s \
    -summary "$TMP/chaos.json" 2>"$TMP/chaos.log" -- \
    -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
    -matcher "$TMP/matcher.json" -job-workers 1
status=$?
if [ "$status" -ne 0 ]; then
    fail "chaos-soak exited $status, want 0:"
    cat "$TMP/chaos.log" >&2
fi
# A crisp diagnostic beats six grep errors when the summary never landed.
wait_stream_bytes "$TMP/chaos.json" 1 1
json_has "$TMP/chaos.json" '"pass": true'
json_has "$TMP/chaos.json" '"byte_identical": true'
json_has "$TMP/chaos.json" '"breaker_reclosed": true'
json_has "$TMP/chaos.json" '"killed": true'
json_has "$TMP/chaos.json" '"drain_clean": true'
json_has "$TMP/chaos.json" '"shed_missing_retry_after": 0'
for log in "$TMP"/chaos/*.err; do
    smoke_check_race "$log"
done

smoke_finish "(clean soak -> capacity -> gate trip exit 1 -> chaos-soak, race-clean, zero leaks)"
