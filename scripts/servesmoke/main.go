// Command servesmoke is the HTTP driver behind scripts/serve_smoke.sh:
// it aims real concurrent traffic at a running emserve (started by the
// shell script with fault injection armed and a tight admission gate)
// and asserts the overload behaviors the service promises — load
// shedding with 429 + Retry-After, graceful degradation to the rule-only
// path, and hot reload that neither drops in-flight requests nor swaps
// in a corrupt artifact. The shell script owns process lifecycle (start,
// SIGTERM drain, exit-code and leak-log assertions); this driver owns
// everything that needs an HTTP client and JSON assertions.
//
// Usage:
//
//	servesmoke -addr 127.0.0.1:PORT -right USDAProjected.csv \
//	           -matcher matcher.json [-burst 12]
//
// Exit status: 0 when every assertion holds, 1 otherwise (each failure
// is printed), 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"emgo/internal/table"
)

var failures int

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: FAIL: "+format+"\n", args...)
	failures++
}

func say(format string, args ...any) {
	fmt.Printf("servesmoke: "+format+"\n", args...)
}

// matchResponse is the subset of the /v1/match envelope the assertions
// read.
type matchResponse struct {
	Matches        []json.RawMessage `json:"matches"`
	Degraded       bool              `json:"degraded"`
	DegradedReason string            `json:"degraded_reason"`
	Candidates     int               `json:"candidates"`
	Breaker        string            `json:"breaker"`
}

func main() {
	addr := flag.String("addr", "", "emserve address (host:port)")
	rightPath := flag.String("right", "", "right-table CSV the server deployed (titles are mined for requests)")
	matcherPath := flag.String("matcher", "", "matcher artifact path for the reload round-trip")
	burst := flag.Int("burst", 12, "concurrent requests in the shedding burst")
	flag.Parse()
	if *addr == "" || *rightPath == "" || *matcherPath == "" {
		fmt.Fprintln(os.Stderr, "usage: servesmoke -addr host:port -right right.csv -matcher matcher.json")
		os.Exit(2)
	}
	base := "http://" + *addr

	body, err := requestBody(*rightPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(2)
	}
	say("request record: %s", body)

	client := &http.Client{Timeout: 30 * time.Second}

	// 1. Liveness.
	if code, _ := get(client, base+"/healthz"); code != 200 {
		fail("healthz returned %d, want 200", code)
	}

	// 2. Graceful degradation: ml.predict is armed to fail every call,
	// so a request with candidates must still answer 200 — rule-only,
	// marked degraded.
	code, data := post(client, base+"/v1/match", body)
	if code != 200 {
		fail("degraded match returned %d, want 200: %s", code, data)
	} else {
		var mr matchResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			fail("degraded match response is not JSON: %v", err)
		} else {
			if mr.Candidates == 0 {
				fail("request found no candidates — the smoke record is not exercising the matcher path: %s", data)
			}
			if !mr.Degraded {
				fail("matcher faults armed but response is not degraded: %s", data)
			}
			if mr.DegradedReason == "" {
				fail("degraded response carries no reason: %s", data)
			}
			say("degraded OK (reason=%s, candidates=%d)", mr.DegradedReason, mr.Candidates)
		}
	}

	// 3. Load shedding: the server runs with max-inflight 1 and no wait
	// queue, and every pipeline pass sleeps under injected latency, so a
	// concurrent burst must split into a few 200s and fast 429s that
	// carry Retry-After.
	var (
		mu                      sync.Mutex
		ok200, shed429, other   int
		sawRetryAfter, burstErr bool
	)
	var wg sync.WaitGroup
	for i := 0; i < *burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/match", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				burstErr = true
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case 200:
				ok200++
			case 429:
				shed429++
				if resp.Header.Get("Retry-After") != "" {
					sawRetryAfter = true
				}
			default:
				other++
			}
		}()
	}
	wg.Wait()
	say("burst of %d: %d served, %d shed, %d other", *burst, ok200, shed429, other)
	if burstErr {
		fail("burst requests errored at the transport level")
	}
	if ok200 == 0 {
		fail("overloaded server served nothing — shedding everything is an outage, not protection")
	}
	if shed429 == 0 {
		fail("burst of %d against max-inflight 1 shed nothing", *burst)
	}
	if shed429 > 0 && !sawRetryAfter {
		fail("429 responses carried no Retry-After header")
	}

	// 4. Hot reload under traffic: fire a slow request, reload the
	// artifact mid-flight, and require both the reload and the in-flight
	// request to succeed.
	inFlight := make(chan int, 1)
	go func() {
		code, _ := post(client, base+"/v1/match", body)
		inFlight <- code
	}()
	time.Sleep(100 * time.Millisecond) // let the request enter the pipeline
	code, data = post(client, base+"/-/reload", fmt.Sprintf(`{"path":%q}`, *matcherPath))
	if code != 200 {
		fail("reload returned %d: %s", code, data)
	} else {
		say("reload OK: %s", bytes.TrimSpace(data))
	}
	select {
	case code := <-inFlight:
		if code != 200 && code != 429 {
			fail("request in flight across the reload finished %d", code)
		} else {
			say("in-flight request survived the reload (%d)", code)
		}
	case <-time.After(30 * time.Second):
		fail("request in flight across the reload never finished")
	}

	// 5. Corrupt reload must be refused with the previous artifact kept
	// serving: write a truncated copy and require 422 + an unchanged
	// active checksum.
	var before struct {
		Matcher struct {
			Checksum string `json:"checksum"`
		} `json:"matcher"`
	}
	_, data = get(client, base+"/-/status")
	if err := json.Unmarshal(data, &before); err != nil || before.Matcher.Checksum == "" {
		fail("status has no active matcher checksum: %s", data)
	}
	corrupt := filepath.Join(filepath.Dir(*matcherPath), "corrupt.json")
	raw, err := os.ReadFile(*matcherPath)
	if err == nil {
		err = os.WriteFile(corrupt, raw[:len(raw)/2], 0o644)
	}
	if err != nil {
		fail("building corrupt artifact: %v", err)
	} else {
		code, data = post(client, base+"/-/reload", fmt.Sprintf(`{"path":%q}`, corrupt))
		if code != 422 {
			fail("corrupt reload returned %d, want 422: %s", code, data)
		} else if !strings.Contains(string(data), before.Matcher.Checksum) {
			fail("corrupt-reload rejection does not confirm the active checksum: %s", data)
		} else {
			say("corrupt reload refused, previous matcher kept (422)")
		}
		var after struct {
			Matcher struct {
				Checksum string `json:"checksum"`
			} `json:"matcher"`
		}
		_, data = get(client, base+"/-/status")
		if json.Unmarshal(data, &after) != nil || after.Matcher.Checksum != before.Matcher.Checksum {
			fail("active checksum changed across a failed reload: %s", data)
		}
	}

	// 6. The service must still answer after everything above.
	if code, _ := get(client, base+"/readyz"); code != 200 {
		fail("readyz returned %d after the smoke run", code)
	}

	client.CloseIdleConnections()
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "servesmoke: %d failure(s)\n", failures)
		os.Exit(1)
	}
	say("all HTTP assertions passed")
}

// requestBody mines the right table for a long title and crafts a
// left-schema match request from it: no award number (so no sure rule
// fires) and an overlapping title (so blocking yields candidates and
// the learned-matcher path actually runs).
func requestBody(rightPath string) (string, error) {
	right, err := table.ReadCSVFile(rightPath, nil)
	if err != nil {
		return "", err
	}
	col, err := right.Col("AwardTitle")
	if err != nil {
		return "", err
	}
	for i := 0; i < right.Len(); i++ {
		title := right.Row(i)[col].Str()
		if len(strings.Fields(title)) >= 4 {
			req := map[string]any{"record": map[string]any{
				"RecordId": "smoke-0", "AwardTitle": title,
			}}
			data, err := json.Marshal(req)
			return string(data), err
		}
	}
	return "", fmt.Errorf("no right-table title with >= 4 words in %s", rightPath)
}

func get(client *http.Client, url string) (int, []byte) {
	resp, err := client.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func post(client *http.Client, url, body string) (int, []byte) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fail("POST %s: %v", url, err)
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}
