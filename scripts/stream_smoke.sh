#!/usr/bin/env bash
# stream_smoke.sh — end-to-end chaos smoke for the resumable streaming
# result transport (see docs/SERVING.md, "Streaming results & resume").
#
# The claim under test: a results stream killed at ANY point — the
# server SIGKILL'd mid-chunk, or draining out from under a reader —
# resumes from the client's persisted cursor and reassembles bytes
# identical to an uninterrupted fetch. The choreography:
#
#   1. generate the shared data/spec/matcher recipe, boot a race-built
#      emserve with the job tier on, -stream-flush 1 (a cursor at every
#      line, the worst case for the commit protocol), 150ms of injected
#      latency on every chunk flush (serve.stream.write in sleep mode,
#      so chunks are produced in real time instead of landing whole in
#      kernel socket buffers), and a deliberately hostile -write-timeout
#      2s that every ~3.8s stream must survive via per-chunk deadlines,
#   2. submit a 24-record job, stream it clean -> ref.ndjson,
#   3. SIGKILL: a second fetch persists its cursor; once bytes have
#      committed the server is kill -9'd mid-stream. The client must
#      fail (not fabricate a tail), keeping its committed prefix and
#      cursor file,
#   4. restart over the same -job-dir (same stream.key, same matcher
#      checksum -> the old cursor is still honored) and resume. Then
#      part1 + part2 must equal ref.ndjson byte for byte,
#   5. drain: another in-flight fetch is cut by SIGTERM at a flush
#      boundary (server exits 130, leak- and race-clean, logging a
#      streamed outcome=draining wide event); a third server resumes it
#      to completion and the access logs alone must chain: the resume
#      event's stream_from equals the cut event's stream_end,
#   6. the in-process criteria that need a harness rather than a shell
#      (stalled-reader cut within budget while other streams progress,
#      O(chunk) server memory on a fat job) run as tagged go tests.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${STREAM_SCALE:-0.1}"
SEED="${STREAM_SEED:-9}"
RECORDS="${STREAM_RECORDS:-24}"
SHARD_SIZE=4
. "$(dirname "$0")/smoke_lib.sh"
smoke_init stream-smoke

say "building emgen, emcasestudy, emserve (-race), streamsmoke"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emserve ./cmd/emserve -race
smoke_build streamsmoke ./scripts/streamsmoke

smoke_gen_data "$SCALE" "$SEED"
smoke_export_matcher

# start_server LOGFILE ACCESSLOG: emserve with the job tier, per-line
# flushing, 150ms injected latency per chunk flush (the 25-chunk stream
# takes ~3.8s to produce — killable mid-flight, and longer than the
# global write timeout it must survive).
start_server() {
    smoke_start_emserve "$1" \
        -matcher "$TMP/matcher.json" \
        -job-dir "$TMP/jobs" -job-shard-size "$SHARD_SIZE" -job-workers 1 \
        -stream-flush 1 -write-timeout 2s \
        -inject "serve.stream.write:mode=sleep,sleep=150ms" \
        -access-log "$2" -access-sample 1
}

say "server 1: submit job + clean reference stream"
start_server "$TMP/s1.err" "$TMP/access1.jsonl"
say "emserve (1) on $ADDR"
"$TMP/streamsmoke" -addr "$ADDR" -right "$RIGHT" -records "$RECORDS" \
    -shard-size "$SHARD_SIZE" -submit >"$TMP/id.txt" 2>"$TMP/submit.log" || {
    cat "$TMP/submit.log" >&2
    die "job submission failed"
}
JOB_ID="$(tail -1 "$TMP/id.txt" | tr -d '[:space:]')"
say "job $JOB_ID completed; streaming clean reference"
"$TMP/streamsmoke" -addr "$ADDR" -id "$JOB_ID" -out "$TMP/ref.ndjson" \
    2>"$TMP/ref.log" || {
    cat "$TMP/ref.log" >&2
    die "clean reference stream failed"
}
wait_stream_bytes "$TMP/ref.ndjson" 1 1

say "SIGKILL mid-stream: cursor-persisted fetch, kill -9 once bytes commit"
"$TMP/streamsmoke" -addr "$ADDR" -id "$JOB_ID" -out "$TMP/part1.ndjson" \
    -cursor-file "$TMP/cur1.txt" -max-resumes 1 \
    2>"$TMP/part1.log" &
CLIENT_PID=$!
wait_stream_bytes "$TMP/part1.ndjson" 1
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""
if wait "$CLIENT_PID"; then
    fail "client exited 0 against a SIGKILL'd server — it fabricated a complete stream"
    cat "$TMP/part1.log" >&2
fi
[ -s "$TMP/cur1.txt" ] || fail "no cursor was persisted before the kill"
[ -s "$TMP/part1.ndjson" ] || fail "no committed bytes survived the kill"
# The committed prefix must be a literal prefix of the reference.
head -c "$(wc -c <"$TMP/part1.ndjson")" "$TMP/ref.ndjson" |
    cmp -s - "$TMP/part1.ndjson" ||
    fail "part1.ndjson is not a byte prefix of the clean reference"

say "server 2: restart over the same job dir, resume from cur1.txt"
start_server "$TMP/s2.err" "$TMP/access2.jsonl"
say "emserve (2) on $ADDR"
# The injected 150ms/chunk pacing pushes the remaining ~20+ chunks past
# the server's 2s -write-timeout: completing anyway proves stream routes
# run on per-chunk deadlines, not the global write timeout.
"$TMP/streamsmoke" -addr "$ADDR" -id "$JOB_ID" -out "$TMP/part2.ndjson" \
    -cursor-file "$TMP/cur1.txt" 2>"$TMP/part2.log" || {
    fail "resume after SIGKILL did not complete"
    cat "$TMP/part2.log" >&2
}
if cat "$TMP/part1.ndjson" "$TMP/part2.ndjson" | cmp -s - "$TMP/ref.ndjson"; then
    say "SIGKILL resume reassembled byte-identical results"
else
    fail "part1 + part2 differ from the clean reference"
fi

say "drain cut: in-flight fetch, SIGTERM at a flush boundary"
"$TMP/streamsmoke" -addr "$ADDR" -id "$JOB_ID" -out "$TMP/partA.ndjson" \
    -cursor-file "$TMP/cur2.txt" -max-resumes 1 \
    2>"$TMP/partA.log" &
CLIENT_PID=$!
wait_stream_bytes "$TMP/partA.ndjson" 1
smoke_drain_server "$TMP/s2.err"
if wait "$CLIENT_PID"; then
    fail "client exited 0 against a drained server — the cut was not surfaced"
    cat "$TMP/partA.log" >&2
fi
[ -s "$TMP/cur2.txt" ] || fail "no cursor survived the drain cut"
grep '"streamed":true' "$TMP/access2.jsonl" | grep -q '"outcome":"draining"' ||
    fail "the drained server logged no drain-cut stream wide event"

say "server 3: resume the drained stream"
start_server "$TMP/s3.err" "$TMP/access3.jsonl"
say "emserve (3) on $ADDR"
"$TMP/streamsmoke" -addr "$ADDR" -id "$JOB_ID" -out "$TMP/partB.ndjson" \
    -cursor-file "$TMP/cur2.txt" 2>"$TMP/partB.log" || {
    fail "resume after drain did not complete"
    cat "$TMP/partB.log" >&2
}
if cat "$TMP/partA.ndjson" "$TMP/partB.ndjson" | cmp -s - "$TMP/ref.ndjson"; then
    say "drain resume reassembled byte-identical results"
else
    fail "partA + partB differ from the clean reference"
fi

# Access-log continuity: the story must be reconstructable from wide
# events alone — the resume's stream_from is the cut's stream_end.
CUT_END="$(grep '"streamed":true' "$TMP/access2.jsonl" |
    grep '"outcome":"draining"' | tail -1 |
    sed 's/.*"stream_end":"\([^"]*\)".*/\1/')"
if [ -n "$CUT_END" ]; then
    grep -q "\"stream_from\":\"$CUT_END\"" "$TMP/access3.jsonl" ||
        fail "no resume event with stream_from $CUT_END — the access logs do not chain"
else
    fail "the stream_cut event carried no stream_end cursor position"
fi
grep -q '"stream_complete":true' "$TMP/access3.jsonl" ||
    fail "the resumed stream never logged stream_complete"

say "SIGTERM: draining the final server"
smoke_drain_server "$TMP/s3.err"

# Criteria that need in-process control (kernel-shrunk socket buffers,
# heap accounting): the slow-reader cut and memory-bound harnesses.
say "go test: stalled-reader cut + memory-bounded streaming"
(cd "$ROOT" && go test -count=1 -run 'TestStreamSlowReaderCut|TestStreamMemoryBounded' \
    ./internal/serve/) >"$TMP/gotest.log" 2>&1 || {
    fail "slow-reader / memory-bound stream tests failed:"
    cat "$TMP/gotest.log" >&2
}

smoke_finish "(SIGKILL resume + drain resume byte-identical, write-timeout survived, access logs chain, race-clean, zero leaks)"
