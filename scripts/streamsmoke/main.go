// Command streamsmoke is the HTTP driver behind scripts/stream_smoke.sh:
// it exercises the resumable streaming results transport against a
// running emserve, writing only cursor-committed bytes to disk so the
// shell script can kill either end mid-stream and still compare the
// reassembled output byte for byte. The chaos choreography (SIGKILLs,
// restarts, file comparisons) lives in the shell script; this driver
// owns everything that needs an HTTP client.
//
// Modes:
//
//	streamsmoke -addr H:P -right right.csv -records 24 -submit
//	    submit a deterministic job, wait for completion, print its id
//	streamsmoke -addr H:P -id jXXXX -out ref.ndjson
//	    clean streaming fetch: commit-on-cursor, write committed data
//	    lines to -out, exit 0 only if the summary line committed
//	streamsmoke -addr H:P -id jXXXX -out part.ndjson \
//	    -cursor-file cur.txt [-read-delay 30ms] [-max-resumes 1]
//	    paced fetch persisting its cursor after every committed chunk;
//	    exits 1 when the server dies mid-stream — the committed prefix
//	    and cursor file survive for the next invocation to resume from
//
// Exit status: 0 on a complete stream, 1 on an incomplete or failed
// one, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"emgo/internal/load"
)

func main() {
	addr := flag.String("addr", "", "emserve address (host:port)")
	rightPath := flag.String("right", "", "right-table CSV records are mined from (-submit)")
	records := flag.Int("records", 24, "records in the submitted job")
	shardSize := flag.Int("shard-size", 4, "shards of the submitted job")
	submit := flag.Bool("submit", false, "submit the job, await completion, print its id")
	id := flag.String("id", "", "job id to stream (fetch modes)")
	out := flag.String("out", "", "write committed data lines here (fetch modes)")
	appendOut := flag.Bool("append", false, "append to -out instead of truncating")
	cursorFile := flag.String("cursor-file", "", "persist the committed cursor here after every chunk")
	readDelay := flag.Duration("read-delay", 0, "sleep this long between stream lines (slow-reader pacing)")
	maxResumes := flag.Int("max-resumes", 0, "reconnections before giving up (0 = client default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	if *addr == "" || (!*submit && *id == "") || (*submit && *rightPath == "") {
		fmt.Fprintln(os.Stderr, "usage: streamsmoke -addr host:port (-submit -right right.csv | -id jobid -out file)")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *submit {
		pool, err := load.NewRecordPool(*rightPath)
		if err != nil {
			die("record pool: %v", err)
		}
		c := load.NewClient(load.ClientConfig{BaseURL: "http://" + *addr}, pool)
		defer c.CloseIdle()
		st, err := c.SubmitJob(ctx, pool.JobRecords(*records), *shardSize)
		if err != nil {
			die("submit: %v", err)
		}
		if _, err := c.AwaitJob(ctx, st.ID, *timeout); err != nil {
			die("await: %v", err)
		}
		say("job %s completed (%d records)", st.ID, *records)
		fmt.Println(st.ID)
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "streamsmoke: fetch modes need -out")
		os.Exit(2)
	}
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if *appendOut {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(*out, mode, 0o644)
	if err != nil {
		die("%v", err)
	}
	defer f.Close()

	c := load.NewClient(load.ClientConfig{BaseURL: "http://" + *addr}, nil)
	defer c.CloseIdle()
	stats, err := c.StreamJobResults(ctx, *id, f, load.StreamOptions{
		CursorPath: *cursorFile,
		MaxResumes: *maxResumes,
		ReadDelay:  *readDelay,
	})
	if stats != nil {
		say("streamed %d bytes, %d lines, %d chunks, %d resumes, complete=%v",
			stats.Bytes, stats.Lines, stats.Chunks, stats.Resumes, stats.Complete)
	}
	if err != nil {
		die("stream: %v", err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "streamsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func say(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "streamsmoke: "+format+"\n", args...)
}
