// Command profsmoke is the HTTP driver behind scripts/prof_smoke.sh: it
// aims traffic at a running emserve with continuous profiling armed and
// asserts the capture contract — interval captures landing in the ring,
// manual triggers scheduling (and deduplicating) through
// /debug/contprof/trigger, fetched profiles being valid gzip, the ring
// pruning to its capacity while the capture sequence keeps advancing,
// and (breach phase) an SLO burn producing a trigger=slo_breach capture
// while the fire is still burning. The shell script owns process
// lifecycle, drain assertions, and the emmonitor perf exit-code checks;
// this driver owns everything that needs an HTTP client and JSON
// parsing.
//
// Usage:
//
//	profsmoke -addr 127.0.0.1:PORT -right USDAProjected.csv \
//	          -prof-dir prof/ -phase capture [-max 3]
//	profsmoke -addr 127.0.0.1:PORT -right USDAProjected.csv \
//	          -phase breach
//
// The capture phase expects the server armed with a sub-second
// -prof-interval and -prof-max <max>; the breach phase expects
// -prof-on-breach, a tight latency SLO, and an injected sleep on every
// match so the budget burns immediately.
//
// Exit status: 0 when every assertion holds, 1 otherwise (each failure
// is printed), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"emgo/internal/table"
)

var failures int

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profsmoke: FAIL: "+format+"\n", args...)
	failures++
}

func say(format string, args ...any) {
	fmt.Printf("profsmoke: "+format+"\n", args...)
}

// capMeta is the slice of a capture's metadata sidecar the assertions
// read.
type capMeta struct {
	ID        string            `json:"id"`
	Trigger   string            `json:"trigger"`
	Detail    string            `json:"detail"`
	RequestID string            `json:"request_id"`
	GoVersion string            `json:"go_version"`
	Profiles  map[string]string `json:"profiles"`
}

type capListing struct {
	Dir      string    `json:"dir"`
	Captures []capMeta `json:"captures"`
}

func main() {
	addr := flag.String("addr", "", "emserve address (host:port)")
	rightPath := flag.String("right", "", "right-table CSV the server deployed (titles are mined for requests)")
	profDir := flag.String("prof-dir", "", "the server's -prof-dir (capture phase: disk-side pruning is asserted too)")
	phase := flag.String("phase", "capture", "capture | breach")
	maxCaptures := flag.Int("max", 3, "the server's -prof-max (capture phase)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-assertion polling deadline")
	flag.Parse()
	if *addr == "" || *rightPath == "" {
		fmt.Fprintln(os.Stderr, "usage: profsmoke -addr host:port -right right.csv -phase capture|breach [-prof-dir dir -max 3]")
		os.Exit(2)
	}
	base := "http://" + *addr

	body, err := requestBody(*rightPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profsmoke:", err)
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	switch *phase {
	case "capture":
		if *profDir == "" {
			fmt.Fprintln(os.Stderr, "profsmoke: -phase capture needs -prof-dir")
			os.Exit(2)
		}
		capturePhase(client, base, body, *profDir, *maxCaptures, *timeout)
	case "breach":
		breachPhase(client, base, body, *timeout)
	default:
		fmt.Fprintln(os.Stderr, "profsmoke: unknown -phase", *phase)
		os.Exit(2)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "profsmoke: %d failure(s)\n", failures)
		os.Exit(1)
	}
	say("PASS (%s phase)", *phase)
}

// capturePhase asserts interval captures, manual trigger + dedup, gzip
// fetches, and ring pruning on a healthy fast-interval server.
func capturePhase(client *http.Client, base, body, profDir string, maxCaptures int, timeout time.Duration) {
	driveMatches(client, base, body, 4)

	// Interval captures land on their own.
	listing, ok := pollListing(client, base, timeout, func(l *capListing) bool {
		return firstByTrigger(l, "interval") != nil
	})
	if !ok {
		fail("no interval capture landed within %v", timeout)
		return
	}
	iv := firstByTrigger(listing, "interval")
	say("interval capture %s in the ring (%d profiles)", iv.ID, len(iv.Profiles))
	if iv.GoVersion == "" {
		fail("capture %s sidecar carries no go_version", iv.ID)
	}
	for _, kind := range []string{"cpu", "heap", "goroutine", "mutex", "block"} {
		if iv.Profiles[kind] == "" {
			fail("capture %s is missing the %s profile", iv.ID, kind)
		}
	}

	// A manual trigger schedules; an immediate repeat deduplicates into
	// the cooldown window.
	if scheduled, ok := postTrigger(client, base, "smoke"); ok && !scheduled {
		fail("first manual trigger was deduplicated — ring should have been cold for reason=smoke")
	}
	if scheduled, ok := postTrigger(client, base, "smoke"); ok && scheduled {
		fail("second manual trigger within the cooldown was not deduplicated")
	}
	listing, ok = pollListing(client, base, timeout, func(l *capListing) bool {
		return firstByTrigger(l, "smoke") != nil
	})
	if !ok {
		fail("triggered capture (reason=smoke) never landed")
		return
	}
	manual := firstByTrigger(listing, "smoke")
	say("manual trigger landed as capture %s", manual.ID)

	// Fetched profiles are valid gzip (the pprof wire format).
	for _, kind := range []string{"cpu", "heap"} {
		data := fetchProfile(client, base, manual.ID, kind)
		if data == nil {
			continue
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			fail("fetched %s profile of %s is not gzip (leading bytes % x)", kind, manual.ID, data[:min(4, len(data))])
		} else {
			say("fetched %s profile of %s: %d bytes of gzip", kind, manual.ID, len(data))
		}
	}

	// Unknown ids (including traversal-shaped ones) 404.
	for _, id := range []string{"cap-999999", "../../etc/passwd"} {
		resp, err := client.Get(base + "/debug/contprof/fetch?id=" + strings.ReplaceAll(id, "/", "%2F") + "&kind=cpu")
		if err != nil {
			fail("fetch %q: %v", id, err)
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			fail("fetch of unknown id %q returned %d, want 404", id, resp.StatusCode)
		}
	}

	// Pruning: wait until the capture sequence has minted well past the
	// ring capacity, then assert both the listing and the on-disk
	// sidecar count stay bounded.
	listing, ok = pollListing(client, base, timeout, func(l *capListing) bool {
		return maxSeq(l) >= maxCaptures+2
	})
	if !ok {
		fail("capture sequence never advanced past max+2 (ring stuck?)")
		return
	}
	if len(listing.Captures) > maxCaptures {
		fail("ring holds %d captures, want <= %d", len(listing.Captures), maxCaptures)
	}
	sidecars, err := filepath.Glob(filepath.Join(profDir, "*.meta.json"))
	if err != nil {
		fail("glob %s: %v", profDir, err)
	} else if len(sidecars) > maxCaptures {
		fail("%d sidecars on disk, want <= %d (pruning must delete files, not just forget them)", len(sidecars), maxCaptures)
	} else {
		say("ring pruned: seq at %d, %d in the ring, %d sidecars on disk (cap %d)",
			maxSeq(listing), len(listing.Captures), len(sidecars), maxCaptures)
	}
}

// breachPhase drives slow traffic against a tight latency SLO until the
// armed breach probe produces a trigger=slo_breach capture.
func breachPhase(client *http.Client, base, body string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		driveMatches(client, base, body, 2)
		listing, ok := getListing(client, base)
		if !ok {
			return
		}
		if m := firstByTrigger(listing, "slo_breach"); m != nil {
			if m.Detail == "" {
				fail("slo_breach capture %s carries no objective detail", m.ID)
			} else {
				say("SLO breach produced capture %s (%s)", m.ID, m.Detail)
			}
			return
		}
	}
	fail("no slo_breach capture landed within %v of burning traffic", timeout)
}

// pollListing re-fetches /debug/contprof until want(listing) or the
// deadline.
func pollListing(client *http.Client, base string, timeout time.Duration, want func(*capListing) bool) (*capListing, bool) {
	deadline := time.Now().Add(timeout)
	for {
		listing, ok := getListing(client, base)
		if !ok {
			return nil, false
		}
		if want(listing) {
			return listing, true
		}
		if !time.Now().Before(deadline) {
			return listing, false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getListing(client *http.Client, base string) (*capListing, bool) {
	resp, err := client.Get(base + "/debug/contprof")
	if err != nil {
		fail("GET /debug/contprof: %v", err)
		return nil, false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail("GET /debug/contprof returned %d: %s", resp.StatusCode, data)
		return nil, false
	}
	var listing capListing
	if err := json.Unmarshal(data, &listing); err != nil {
		fail("/debug/contprof listing is not JSON: %v", err)
		return nil, false
	}
	if listing.Dir == "" {
		fail("/debug/contprof listing carries no ring dir")
	}
	return &listing, true
}

func postTrigger(client *http.Client, base, reason string) (scheduled, ok bool) {
	resp, err := client.Post(base+"/debug/contprof/trigger?reason="+reason, "", nil)
	if err != nil {
		fail("POST trigger: %v", err)
		return false, false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		fail("POST trigger returned %d: %s", resp.StatusCode, data)
		return false, false
	}
	var ans struct {
		Scheduled bool `json:"scheduled"`
	}
	if err := json.Unmarshal(data, &ans); err != nil {
		fail("trigger answer is not JSON: %v", err)
		return false, false
	}
	return ans.Scheduled, true
}

func fetchProfile(client *http.Client, base, id, kind string) []byte {
	resp, err := client.Get(base + "/debug/contprof/fetch?id=" + id + "&kind=" + kind)
	if err != nil {
		fail("fetch %s/%s: %v", id, kind, err)
		return nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail("fetch %s/%s returned %d: %s", id, kind, resp.StatusCode, data)
		return nil
	}
	return data
}

// firstByTrigger returns the oldest capture with the given trigger, nil
// if none.
func firstByTrigger(l *capListing, trigger string) *capMeta {
	for i := range l.Captures {
		if l.Captures[i].Trigger == trigger {
			return &l.Captures[i]
		}
	}
	return nil
}

// maxSeq extracts the highest numeric capture sequence in the listing
// (ids are cap-%06d), so pruning can be asserted as "the sequence kept
// advancing while the ring stayed bounded".
func maxSeq(l *capListing) int {
	top := -1
	for _, m := range l.Captures {
		s, ok := strings.CutPrefix(m.ID, "cap-")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(s); err == nil && n > top {
			top = n
		}
	}
	return top
}

// driveMatches sends n match requests so the server has labeled work in
// flight while captures run.
func driveMatches(client *http.Client, base, body string, n int) {
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/match", strings.NewReader(body))
		if err != nil {
			fail("build request: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			fail("POST /v1/match: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("match returned %d", resp.StatusCode)
			return
		}
	}
}

// requestBody mines the deployed right table for a title long enough to
// survive blocking, so requests exercise the full pipeline.
func requestBody(rightPath string) (string, error) {
	right, err := table.ReadCSVFile(rightPath, nil)
	if err != nil {
		return "", err
	}
	col, err := right.Col("AwardTitle")
	if err != nil {
		return "", err
	}
	for i := 0; i < right.Len(); i++ {
		title := right.Row(i)[col].Str()
		if len(strings.Fields(title)) >= 4 {
			req := map[string]any{"record": map[string]any{
				"RecordId": "prof-0", "AwardTitle": title,
			}}
			data, err := json.Marshal(req)
			return string(data), err
		}
	}
	return "", fmt.Errorf("no right-table title with >= 4 words in %s", rightPath)
}
