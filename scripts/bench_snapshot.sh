#!/bin/sh
# bench_snapshot.sh — run every Go benchmark and snapshot the numbers as
# JSON, so perf work has a committed baseline to diff against.
#
# Usage:
#   scripts/bench_snapshot.sh [output.json]       (default: BENCH_baseline.json)
#   BENCHTIME=10x scripts/bench_snapshot.sh       (quick smoke snapshot)
#   BENCHCOUNT=5 scripts/bench_snapshot.sh        (min-of-5 per benchmark)
#   EMLOAD_SUMMARY=cap.json scripts/bench_snapshot.sh
#                          (fold an emload capacity/soak summary into the
#                           snapshot under "serving_capacity", so serving
#                           throughput lands next to the micro-benchmarks)
#   EMLOAD_STREAM_SUMMARY=stream.json scripts/bench_snapshot.sh
#                          (fold an emload -mode stream summary under
#                           "serving_stream": resumable-transport MB/s and
#                           resume count join the committed trajectory)
#
# BENCHCOUNT > 1 runs the whole suite that many times and snapshots the
# per-benchmark minimum. On noisy machines (shared VMs, laptops under
# load) scheduler interference only ever inflates a measurement, so the
# minimum is the stable estimator of the code's actual cost — a single
# pass can easily carry ±20% jitter that swamps small regressions. The
# repetitions are whole-suite passes rather than `go test -count`, so
# one benchmark's samples land minutes apart and a sustained slow phase
# (VM CPU steal, a thermal dip) cannot poison all of them at once.
#
# Only POSIX sh + awk + the go toolchain are required. The raw `go test
# -bench` output is parsed line by line: `pkg:` lines carry the package,
# `Benchmark...` lines carry iterations, ns/op, and (with -benchmem)
# B/op and allocs/op.
set -eu

out="${1:-BENCH_baseline.json}"
benchtime="${BENCHTIME:-1s}"
benchcount="${BENCHCOUNT:-1}"
go_bin="${GO:-go}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

pass=1
while [ "$pass" -le "$benchcount" ]; do
    echo "bench_snapshot: running benchmarks (benchtime=$benchtime pass=$pass/$benchcount)..." >&2
    "$go_bin" test -run '^$' -bench . -benchmem -benchtime "$benchtime" ./... >>"$raw" 2>&1 || {
        echo "bench_snapshot: go test -bench failed:" >&2
        cat "$raw" >&2
        exit 1
    }
    pass=$((pass + 1))
done

goversion="$("$go_bin" version | sed 's/^go version //')"

# Environment block: benchmark numbers only mean something relative to
# the box that produced them, so the snapshot records enough of the
# machine for `emmonitor perf` to refuse (or warn on) cross-environment
# comparisons instead of mistaking a hardware change for a regression.
goos="$("$go_bin" env GOOS)"
goarch="$("$go_bin" env GOARCH)"
gotool="$("$go_bin" env GOVERSION 2>/dev/null || echo unknown)"
gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"
cpu_model="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu_model" ] || cpu_model=unknown
kernel="$(uname -sr 2>/dev/null || echo unknown)"
# Strip characters that would break the hand-rolled JSON emitter.
cpu_model="$(printf '%s' "$cpu_model" | tr -d '"\\')"
kernel="$(printf '%s' "$kernel" | tr -d '"\\')"

awk -v benchtime="$benchtime" -v benchcount="$benchcount" -v goversion="$goversion" \
    -v goos="$goos" -v goarch="$goarch" -v gotool="$gotool" -v gomaxprocs="$gomaxprocs" \
    -v cpu_model="$cpu_model" -v kernel="$kernel" '
/^pkg: / { pkg = $2; next }
/^Benchmark/ {
    # Benchmark<Name>-P  <iters>  <ns> ns/op  [<B> B/op  <allocs> allocs/op]
    name = $1; iters = $2
    ns = ""; bop = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    key = pkg SUBSEP name
    if (!(key in min_ns)) {
        order[++n] = key
        min_ns[key] = ns + 0
        rec[key] = sprintf("{\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns)
        if (bop != "") rec[key] = rec[key] sprintf(", \"bytes_per_op\": %s", bop)
        if (allocs != "") rec[key] = rec[key] sprintf(", \"allocs_per_op\": %s", allocs)
        rec[key] = rec[key] "}"
    } else if (ns + 0 < min_ns[key]) {
        min_ns[key] = ns + 0
        rec[key] = sprintf("{\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns)
        if (bop != "") rec[key] = rec[key] sprintf(", \"bytes_per_op\": %s", bop)
        if (allocs != "") rec[key] = rec[key] sprintf(", \"allocs_per_op\": %s", allocs)
        rec[key] = rec[key] "}"
    }
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench_snapshot.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchcount\": %d,\n", benchcount + 0
    printf "  \"environment\": {\n"
    printf "    \"go\": \"%s\",\n", gotool
    printf "    \"goos\": \"%s\",\n", goos
    printf "    \"goarch\": \"%s\",\n", goarch
    printf "    \"gomaxprocs\": %d,\n", gomaxprocs + 0
    printf "    \"cpu_model\": \"%s\",\n", cpu_model
    printf "    \"kernel\": \"%s\"\n", kernel
    printf "  },\n"
    printf "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) {
        if (i > 1) printf ","
        printf "\n    %s", rec[order[i]]
    }
    if (n > 0) printf "\n  "
    printf "],\n"
    printf "  \"count\": %d\n", n
    printf "}\n"
}
' "$raw" >"$out"

# Fold an emload summary (see cmd/emload, -mode capacity/soak) into the
# snapshot: drop the closing brace, append the summary verbatim under
# "serving_capacity", and close again. The summary is already JSON, so
# the result stays parseable without needing jq.
fold_summary() {
    _file="$1"
    _key="$2"
    [ -s "$_file" ] || {
        echo "bench_snapshot: $_key summary $_file is missing or empty" >&2
        exit 1
    }
    merged="$(mktemp)"
    {
        sed '$d' "$out" | sed '$s/$/,/'
        printf '  "%s":\n' "$_key"
        sed 's/^/  /' "$_file"
        printf '}\n'
    } >"$merged"
    mv "$merged" "$out"
    echo "bench_snapshot: folded emload summary $_file into $out under $_key" >&2
}

if [ -n "${EMLOAD_SUMMARY:-}" ]; then
    fold_summary "$EMLOAD_SUMMARY" serving_capacity
fi
# The -mode stream summary rides under its own key: the perf gate judges
# serving_capacity, while serving_stream records the resumable
# transport's throughput and resume count along the same trajectory.
if [ -n "${EMLOAD_STREAM_SUMMARY:-}" ]; then
    fold_summary "$EMLOAD_STREAM_SUMMARY" serving_stream
fi

count="$(awk '/"count":/ {gsub(/,/, "", $2); print $2; exit}' "$out")"
echo "bench_snapshot: wrote $count benchmarks to $out" >&2
