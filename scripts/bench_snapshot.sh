#!/bin/sh
# bench_snapshot.sh — run every Go benchmark and snapshot the numbers as
# JSON, so perf work has a committed baseline to diff against.
#
# Usage:
#   scripts/bench_snapshot.sh [output.json]       (default: BENCH_baseline.json)
#   BENCHTIME=10x scripts/bench_snapshot.sh       (quick smoke snapshot)
#
# Only POSIX sh + awk + the go toolchain are required. The raw `go test
# -bench` output is parsed line by line: `pkg:` lines carry the package,
# `Benchmark...` lines carry iterations, ns/op, and (with -benchmem)
# B/op and allocs/op.
set -eu

out="${1:-BENCH_baseline.json}"
benchtime="${BENCHTIME:-1s}"
go_bin="${GO:-go}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench_snapshot: running benchmarks (benchtime=$benchtime)..." >&2
"$go_bin" test -run '^$' -bench . -benchmem -benchtime "$benchtime" ./... >"$raw" 2>&1 || {
    echo "bench_snapshot: go test -bench failed:" >&2
    cat "$raw" >&2
    exit 1
}

goversion="$("$go_bin" version | sed 's/^go version //')"

awk -v benchtime="$benchtime" -v goversion="$goversion" '
BEGIN {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench_snapshot.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": ["
    n = 0
}
/^pkg: / { pkg = $2; next }
/^Benchmark/ {
    # Benchmark<Name>-P  <iters>  <ns> ns/op  [<B> B/op  <allocs> allocs/op]
    name = $1; iters = $2
    ns = ""; bop = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++ > 0) printf ","
    printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END {
    if (n > 0) printf "\n  "
    printf "],\n"
    printf "  \"count\": %d\n", n
    printf "}\n"
}
' "$raw" >"$out"

count="$(awk '/"count":/ {print $2}' "$out")"
echo "bench_snapshot: wrote $count benchmarks to $out" >&2
