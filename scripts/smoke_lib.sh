# smoke_lib.sh — shared plumbing for the end-to-end smoke scripts
# (serve_smoke, job_smoke, obs_smoke, monitor_smoke, load_smoke).
#
# Source it, then call smoke_init NAME; everything else is helpers:
#
#   smoke_init NAME            temp dir, cleanup trap, say/fail/die,
#                              FAILURES counter, ROOT, SERVE_PID
#   smoke_build NAME PKG [...] go build PKG -> $TMP/NAME (extra args are
#                              build flags, e.g. -race)
#   smoke_gen_data SCALE SEED  emgen -projected + emcasestudy -spec;
#                              sets LEFT/RIGHT and writes $TMP/spec.json
#   smoke_export_matcher       emserve -export-matcher -> $TMP/matcher.json
#   smoke_start_emserve LOG A... boot $TMP/emserve on port 0 with the
#                              generated spec/tables plus args A..., wait
#                              for the address file; sets ADDR/SERVE_PID.
#                              SMOKE_ENV (word-split) prefixes the
#                              environment, e.g. SMOKE_ENV="EMCKPT_KILL=..."
#   smoke_drain_server LOG     SIGTERM + the graceful-drain contract:
#                              exit 130, zero-leak self-check, race-clean
#   smoke_check_race LOG       fail if the race detector fired in LOG
#   wait_stream_bytes F MIN [TRIES]  poll until file F holds >= MIN bytes
#                              (0.05s ticks, default 200 tries); die on
#                              timeout. For racing an in-flight stream.
#   smoke_finish MSG           exit 1 with a count if anything failed,
#                              else print PASS MSG
#
# Scripts stay `set -u`-clean: every helper references only variables it
# set itself.

smoke_init() {
    SMOKE_NAME="$1"
    ROOT="$(cd "$(dirname "$0")/.." && pwd)"
    TMP="$(mktemp -d)"
    SERVE_PID=""
    FAILURES=0
    trap smoke_cleanup EXIT
}

smoke_cleanup() {
    [ -n "${SERVE_PID:-}" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$TMP"
    # Profile rings a smoke pointed outside $TMP (SMOKE_PROF_DIRS,
    # space-separated) go too: a failed run must not leave pprof dumps
    # accreting in the work tree.
    for _prof_dir in ${SMOKE_PROF_DIRS:-}; do
        rm -rf "$_prof_dir"
    done
}

say() { printf '%s: %s\n' "$SMOKE_NAME" "$*"; }
fail() {
    printf '%s: FAIL: %s\n' "$SMOKE_NAME" "$*" >&2
    FAILURES=$((FAILURES + 1))
}
die() {
    printf '%s: %s\n' "$SMOKE_NAME" "$*" >&2
    exit 1
}

# smoke_build NAME PKG [build flags...]: go build PKG into $TMP/NAME.
smoke_build() {
    _name="$1"
    _pkg="$2"
    shift 2
    (cd "$ROOT" && go build "$@" -o "$TMP/$_name" "$_pkg") ||
        die "build of $_name failed"
}

# smoke_gen_data SCALE SEED: the shared data recipe — a projected
# UMETRICS/USDA slice plus a packaged deployment spec.
smoke_gen_data() {
    _scale="$1"
    _seed="$2"
    say "generating projected slice (scale=$_scale seed=$_seed) and spec"
    "$TMP/emgen" -scale "$_scale" -seed "$_seed" -projected -out "$TMP/data" >/dev/null ||
        die "emgen failed"
    "$TMP/emcasestudy" -scale "$_scale" -seed "$_seed" -spec "$TMP/spec.json" \
        >"$TMP/study.txt" 2>"$TMP/study.err" || {
        cat "$TMP/study.err" >&2
        die "emcasestudy failed"
    }
    LEFT="$TMP/data/UMETRICSProjected.csv"
    RIGHT="$TMP/data/USDAProjected.csv"
}

# smoke_export_matcher: extract the spec-embedded matcher to a
# standalone (hot-reloadable) artifact.
smoke_export_matcher() {
    "$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
        -export-matcher "$TMP/matcher.json" >/dev/null 2>"$TMP/export.err" || {
        cat "$TMP/export.err" >&2
        die "-export-matcher failed"
    }
}

# smoke_start_emserve LOGFILE [extra args...]: boot the race-built
# emserve on port 0 and wait for its address file. SMOKE_ENV (if set,
# deliberately word-split) lands in the server's environment.
smoke_start_emserve() {
    _logfile="$1"
    shift
    rm -f "$TMP/addr.txt"
    # shellcheck disable=SC2086
    env ${SMOKE_ENV:-} "$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
        -addr 127.0.0.1:0 -addr-file "$TMP/addr.txt" "$@" 2>"$_logfile" &
    SERVE_PID=$!
    for _ in $(seq 1 300); do
        [ -s "$TMP/addr.txt" ] && break
        kill -0 "$SERVE_PID" 2>/dev/null || {
            cat "$_logfile" >&2
            die "emserve died during startup"
        }
        sleep 0.1
    done
    [ -s "$TMP/addr.txt" ] || {
        cat "$_logfile" >&2
        die "emserve never wrote its address file"
    }
    ADDR="$(head -1 "$TMP/addr.txt" | tr -d '[:space:]')"
}

# smoke_drain_server LOGFILE: SIGTERM SERVE_PID and assert the graceful
# drain contract every serving smoke relies on.
smoke_drain_server() {
    _logfile="$1"
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    _status=$?
    SERVE_PID=""
    [ "$_status" -eq 130 ] || {
        fail "emserve exited $_status after SIGTERM, want 130:"
        cat "$_logfile" >&2
    }
    grep -q "no leaked goroutines" "$_logfile" || {
        fail "the zero-leak self-check did not pass ($_logfile):"
        cat "$_logfile" >&2
    }
    smoke_check_race "$_logfile"
}

# wait_stream_bytes FILE MIN [TRIES]: poll until FILE exists and holds
# at least MIN bytes. The smokes use it to catch a background fetch
# mid-flight — e.g. "the partial stream has committed something, now
# kill the server" — without guessing at sleeps.
wait_stream_bytes() {
    _wsb_file="$1"
    _wsb_min="$2"
    _wsb_tries="${3:-200}"
    while [ "$_wsb_tries" -gt 0 ]; do
        _wsb_size=$(wc -c 2>/dev/null <"$_wsb_file" || echo 0)
        [ "$_wsb_size" -ge "$_wsb_min" ] && return 0
        _wsb_tries=$((_wsb_tries - 1))
        sleep 0.05
    done
    die "timed out waiting for $_wsb_file to reach $_wsb_min bytes (has ${_wsb_size:-0})"
}

smoke_check_race() {
    if grep -q "WARNING: DATA RACE" "$1"; then
        fail "the race detector fired ($1):"
        cat "$1" >&2
    fi
}

smoke_finish() {
    if [ "$FAILURES" -gt 0 ]; then
        printf '%s: %d failure(s)\n' "$SMOKE_NAME" "$FAILURES" >&2
        exit 1
    fi
    say "PASS $*"
}
