#!/usr/bin/env bash
# job_smoke.sh — end-to-end crash/resume smoke test for the async job
# tier (see docs/SERVING.md, "Batch & async jobs").
#
# The claim under test: a job killed at ANY shard boundary or mid-write
# resumes after restart with byte-identical results and no reprocessing
# of completed shards. The choreography:
#
#   1. generate a projected UMETRICS/USDA slice, a deployment spec, and
#      a standalone matcher artifact (same recipe as serve_smoke.sh),
#   2. reference run: a race-built emserve with the job tier on, submit
#      a 24-record job, wait, fetch -> ref.json; SIGTERM drains clean,
#   3. chaos runs: restart emserve with EMCKPT_KILL armed at a shard
#      commit boundary (after:shard_00001.json) and then mid-write
#      (mid:shard_00002.json). The server SIGKILLs itself exactly there;
#      a restart over the same -job-dir must auto-recover the job,
#      resume from the durable shards (asserted via resumed_shards),
#      complete, and fetch bytes identical to ref.json,
#   4. every surviving server is SIGTERM'd: exit 130, "no leaked
#      goroutines", and no data-race reports.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${JOB_SCALE:-0.1}"
SEED="${JOB_SEED:-5}"
RECORDS="${JOB_RECORDS:-24}"
SHARD_SIZE=4
. "$(dirname "$0")/smoke_lib.sh"
smoke_init job-smoke

say "building emgen, emcasestudy, emserve (-race), jobsmoke"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emserve ./cmd/emserve -race
smoke_build jobsmoke ./scripts/jobsmoke

smoke_gen_data "$SCALE" "$SEED"
smoke_export_matcher

# start_server LOGFILE JOBDIR: boots emserve with the job tier on over
# the given job dir. SMOKE_ENV (e.g. EMCKPT_KILL=...) passes through to
# smoke_start_emserve.
start_server() {
    _log="$1"
    _jobdir="$2"
    smoke_start_emserve "$_log" \
        -matcher "$TMP/matcher.json" \
        -job-dir "$_jobdir" -job-shard-size "$SHARD_SIZE" -job-workers 1
}

say "reference run: clean job, no kills"
start_server "$TMP/ref.err" "$TMP/jobs_ref"
say "emserve (reference) on $ADDR"
"$TMP/jobsmoke" -addr "$ADDR" -right "$RIGHT" -records "$RECORDS" \
    -out "$TMP/ref.json" >"$TMP/ref_id.txt" || {
    fail "reference job run failed"
    cat "$TMP/ref.err" >&2
}
JOB_ID="$(tail -1 "$TMP/ref_id.txt" | tr -d '[:space:]')"
# Guard the reference itself: an empty ref.json would make every later
# byte-identical cmp pass vacuously.
wait_stream_bytes "$TMP/ref.json" 1 1
say "reference results in ref.json (job $JOB_ID)"
smoke_drain_server "$TMP/ref.err"

# chaos_case NAME KILLSPEC MIN_RESUMED: arm EMCKPT_KILL, submit, wait
# for the self-SIGKILL, restart over the same job dir, and require a
# resumed byte-identical completion.
chaos_case() {
    name="$1"
    killspec="$2"
    min_resumed="$3"
    jobdir="$TMP/jobs_$name"
    say "chaos[$name]: kill armed at $killspec"
    SMOKE_ENV="EMCKPT_KILL=$killspec" start_server "$TMP/$name.kill.err" "$jobdir"
    say "chaos[$name]: emserve on $ADDR"
    id="$("$TMP/jobsmoke" -addr "$ADDR" -right "$RIGHT" -records "$RECORDS" -submit-only)" || {
        fail "chaos[$name]: submission failed"
        return
    }
    [ "$id" = "$JOB_ID" ] || fail "chaos[$name]: job id $id differs from reference $JOB_ID — submission is not content-addressed"
    wait "$SERVE_PID"
    status=$?
    SERVE_PID=""
    if [ "$status" -eq 0 ] || [ "$status" -eq 130 ]; then
        fail "chaos[$name]: server exited $status, expected a SIGKILL at $killspec"
        cat "$TMP/$name.kill.err" >&2
        return
    fi
    grep -q "chaos kill at" "$TMP/$name.kill.err" ||
        fail "chaos[$name]: kill-point never fired (job too fast or artifact name wrong)"

    say "chaos[$name]: restarting over $jobdir"
    start_server "$TMP/$name.resume.err" "$jobdir"
    grep -q "1 unfinished job(s) resumed" "$TMP/$name.resume.err" ||
        fail "chaos[$name]: restart did not report a recovered job"
    "$TMP/jobsmoke" -addr "$ADDR" -await "$id" -min-resumed "$min_resumed" \
        -out "$TMP/$name.json" >/dev/null || {
        fail "chaos[$name]: resumed job did not complete"
        cat "$TMP/$name.resume.err" >&2
        smoke_drain_server "$TMP/$name.resume.err"
        return
    }
    if cmp -s "$TMP/ref.json" "$TMP/$name.json"; then
        say "chaos[$name]: resumed results byte-identical to the clean run"
    else
        fail "chaos[$name]: resumed results differ from the clean run"
        diff "$TMP/ref.json" "$TMP/$name.json" >&2 || true
    fi
    smoke_drain_server "$TMP/$name.resume.err"
}

# Kill exactly at a shard-commit boundary: shards 0 and 1 are durable,
# the rest must be recomputed.
chaos_case boundary "after:shard_00001.json" 2
# Kill mid-write: shards 0 and 1 durable, shard 2 left as a torn temp
# file the restart must discard and recompute.
chaos_case midwrite "mid:shard_00002.json" 2

smoke_finish "(clean run -> boundary kill -> mid-write kill, all resumes byte-identical, race-clean, zero leaks)"
