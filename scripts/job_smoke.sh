#!/usr/bin/env bash
# job_smoke.sh — end-to-end crash/resume smoke test for the async job
# tier (see docs/SERVING.md, "Batch & async jobs").
#
# The claim under test: a job killed at ANY shard boundary or mid-write
# resumes after restart with byte-identical results and no reprocessing
# of completed shards. The choreography:
#
#   1. generate a projected UMETRICS/USDA slice, a deployment spec, and
#      a standalone matcher artifact (same recipe as serve_smoke.sh),
#   2. reference run: a race-built emserve with the job tier on, submit
#      a 24-record job, wait, fetch -> ref.json; SIGTERM drains clean,
#   3. chaos runs: restart emserve with EMCKPT_KILL armed at a shard
#      commit boundary (after:shard_00001.json) and then mid-write
#      (mid:shard_00002.json). The server SIGKILLs itself exactly there;
#      a restart over the same -job-dir must auto-recover the job,
#      resume from the durable shards (asserted via resumed_shards),
#      complete, and fetch bytes identical to ref.json,
#   4. every surviving server is SIGTERM'd: exit 130, "no leaked
#      goroutines", and no data-race reports.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required.
set -u

SCALE="${JOB_SCALE:-0.1}"
SEED="${JOB_SEED:-5}"
RECORDS="${JOB_RECORDS:-24}"
SHARD_SIZE=4
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

say() { printf 'job-smoke: %s\n' "$*"; }
fail() { printf 'job-smoke: FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }

say "building emgen, emcasestudy, emserve (-race), jobsmoke"
for bin in emgen emcasestudy; do
    (cd "$ROOT" && go build -o "$TMP/$bin" "./cmd/$bin") || {
        echo "job-smoke: build of $bin failed" >&2
        exit 1
    }
done
(cd "$ROOT" && go build -race -o "$TMP/emserve" ./cmd/emserve) || {
    echo "job-smoke: race build of emserve failed" >&2
    exit 1
}
(cd "$ROOT" && go build -o "$TMP/jobsmoke" ./scripts/jobsmoke) || {
    echo "job-smoke: build of jobsmoke failed" >&2
    exit 1
}

say "generating projected slice (scale=$SCALE seed=$SEED), spec, and matcher artifact"
"$TMP/emgen" -scale "$SCALE" -seed "$SEED" -projected -out "$TMP/data" >/dev/null || {
    echo "job-smoke: emgen failed" >&2
    exit 1
}
"$TMP/emcasestudy" -scale "$SCALE" -seed "$SEED" -spec "$TMP/spec.json" \
    >"$TMP/study.txt" 2>"$TMP/study.err" || {
    echo "job-smoke: emcasestudy failed:" >&2
    cat "$TMP/study.err" >&2
    exit 1
}
LEFT="$TMP/data/UMETRICSProjected.csv"
RIGHT="$TMP/data/USDAProjected.csv"
"$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
    -export-matcher "$TMP/matcher.json" >/dev/null 2>"$TMP/export.err" || {
    echo "job-smoke: -export-matcher failed:" >&2
    cat "$TMP/export.err" >&2
    exit 1
}

# start_server LOGFILE JOBDIR [extra env...]: boots emserve with the job
# tier on and waits for the address file. Sets SERVE_PID and ADDR.
start_server() {
    log="$1"
    jobdir="$2"
    shift 2
    rm -f "$TMP/addr.txt"
    env "$@" "$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
        -matcher "$TMP/matcher.json" \
        -addr 127.0.0.1:0 -addr-file "$TMP/addr.txt" \
        -job-dir "$jobdir" -job-shard-size "$SHARD_SIZE" -job-workers 1 \
        2>"$log" &
    SERVE_PID=$!
    for _ in $(seq 1 300); do
        [ -s "$TMP/addr.txt" ] && break
        kill -0 "$SERVE_PID" 2>/dev/null || {
            echo "job-smoke: emserve died during startup:" >&2
            cat "$log" >&2
            exit 1
        }
        sleep 0.1
    done
    [ -s "$TMP/addr.txt" ] || {
        echo "job-smoke: emserve never wrote its address file" >&2
        cat "$log" >&2
        exit 1
    }
    ADDR="$(head -1 "$TMP/addr.txt" | tr -d '[:space:]')"
}

# drain_server LOGFILE: SIGTERMs SERVE_PID and asserts the graceful-exit
# contract (130, zero leaks, race-clean).
drain_server() {
    log="$1"
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    status=$?
    SERVE_PID=""
    [ "$status" -eq 130 ] || {
        fail "emserve exited $status after SIGTERM, want 130:"
        cat "$log" >&2
    }
    grep -q "no leaked goroutines" "$log" || {
        fail "the zero-leak self-check did not pass ($log):"
        cat "$log" >&2
    }
    if grep -q "WARNING: DATA RACE" "$log"; then
        fail "the race detector fired ($log):"
        cat "$log" >&2
    fi
}

say "reference run: clean job, no kills"
start_server "$TMP/ref.err" "$TMP/jobs_ref"
say "emserve (reference) on $ADDR"
"$TMP/jobsmoke" -addr "$ADDR" -right "$RIGHT" -records "$RECORDS" \
    -out "$TMP/ref.json" >"$TMP/ref_id.txt" || {
    fail "reference job run failed"
    cat "$TMP/ref.err" >&2
}
JOB_ID="$(tail -1 "$TMP/ref_id.txt" | tr -d '[:space:]')"
say "reference results in ref.json (job $JOB_ID)"
drain_server "$TMP/ref.err"

# chaos_case NAME KILLSPEC MIN_RESUMED: arm EMCKPT_KILL, submit, wait
# for the self-SIGKILL, restart over the same job dir, and require a
# resumed byte-identical completion.
chaos_case() {
    name="$1"
    killspec="$2"
    min_resumed="$3"
    jobdir="$TMP/jobs_$name"
    say "chaos[$name]: kill armed at $killspec"
    start_server "$TMP/$name.kill.err" "$jobdir" "EMCKPT_KILL=$killspec"
    say "chaos[$name]: emserve on $ADDR"
    id="$("$TMP/jobsmoke" -addr "$ADDR" -right "$RIGHT" -records "$RECORDS" -submit-only)" || {
        fail "chaos[$name]: submission failed"
        return
    }
    [ "$id" = "$JOB_ID" ] || fail "chaos[$name]: job id $id differs from reference $JOB_ID — submission is not content-addressed"
    wait "$SERVE_PID"
    status=$?
    SERVE_PID=""
    if [ "$status" -eq 0 ] || [ "$status" -eq 130 ]; then
        fail "chaos[$name]: server exited $status, expected a SIGKILL at $killspec"
        cat "$TMP/$name.kill.err" >&2
        return
    fi
    grep -q "chaos kill at" "$TMP/$name.kill.err" ||
        fail "chaos[$name]: kill-point never fired (job too fast or artifact name wrong)"

    say "chaos[$name]: restarting over $jobdir"
    start_server "$TMP/$name.resume.err" "$jobdir"
    grep -q "1 unfinished job(s) resumed" "$TMP/$name.resume.err" ||
        fail "chaos[$name]: restart did not report a recovered job"
    "$TMP/jobsmoke" -addr "$ADDR" -await "$id" -min-resumed "$min_resumed" \
        -out "$TMP/$name.json" >/dev/null || {
        fail "chaos[$name]: resumed job did not complete"
        cat "$TMP/$name.resume.err" >&2
        drain_server "$TMP/$name.resume.err"
        return
    }
    if cmp -s "$TMP/ref.json" "$TMP/$name.json"; then
        say "chaos[$name]: resumed results byte-identical to the clean run"
    else
        fail "chaos[$name]: resumed results differ from the clean run"
        diff "$TMP/ref.json" "$TMP/$name.json" >&2 || true
    fi
    drain_server "$TMP/$name.resume.err"
}

# Kill exactly at a shard-commit boundary: shards 0 and 1 are durable,
# the rest must be recomputed.
chaos_case boundary "after:shard_00001.json" 2
# Kill mid-write: shards 0 and 1 durable, shard 2 left as a torn temp
# file the restart must discard and recompute.
chaos_case midwrite "mid:shard_00002.json" 2

if [ "$FAILURES" -gt 0 ]; then
    echo "job-smoke: $FAILURES failure(s)" >&2
    exit 1
fi
say "PASS (clean run -> boundary kill -> mid-write kill, all resumes byte-identical, race-clean, zero leaks)"
