#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the online matching service.
#
# Exercises emserve the way an overloaded deployment would (see
# docs/SERVING.md), with the race detector compiled in and fault
# injection armed so the hostile paths actually run:
#
#   1. generate a projected UMETRICS/USDA slice (emgen -projected), a
#      packaged deployment spec (emcasestudy -spec), and a standalone
#      matcher artifact (emserve -export-matcher),
#   2. start a race-built emserve with max-inflight 1, no wait queue,
#      every matcher call failing (-inject ml.predict) and every request
#      carrying injected latency (-inject serve.match:mode=sleep,...),
#   3. drive it over HTTP (scripts/servesmoke): matcher faults must
#      degrade to rule-only 200s marked degraded, a concurrent burst
#      must shed with 429 + Retry-After while still serving someone,
#      a hot reload must succeed without dropping the in-flight
#      request, and a corrupt artifact must be refused (422) with the
#      previous matcher kept serving,
#   4. SIGTERM the server and assert the graceful drain: exit code 130,
#      "drain complete", and the zero-leak self-check line.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${SERVE_SCALE:-0.1}"
SEED="${SERVE_SEED:-5}"
. "$(dirname "$0")/smoke_lib.sh"
smoke_init serve-smoke

say "building emgen, emcasestudy, emserve (-race), servesmoke"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emserve ./cmd/emserve -race
smoke_build servesmoke ./scripts/servesmoke

smoke_gen_data "$SCALE" "$SEED"
smoke_export_matcher

say "starting emserve under injected matcher faults and latency"
smoke_start_emserve "$TMP/serve.err" \
    -matcher "$TMP/matcher.json" \
    -max-inflight 1 -max-queue -1 \
    -inject ml.predict -inject "serve.match:mode=sleep,sleep=250ms"
say "emserve is listening on $ADDR"

say "driving HTTP assertions (degrade, shed, reload, rollback)"
"$TMP/servesmoke" -addr "$ADDR" -right "$RIGHT" -matcher "$TMP/matcher.json" ||
    fail "HTTP assertions failed"

say "SIGTERM: draining the server"
smoke_drain_server "$TMP/serve.err"
grep -q "drain complete" "$TMP/serve.err" ||
    fail "drain did not complete cleanly"

smoke_finish "(degrade -> shed -> reload -> rollback -> drain, race-clean, zero leaks)"
