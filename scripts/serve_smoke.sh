#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the online matching service.
#
# Exercises emserve the way an overloaded deployment would (see
# docs/SERVING.md), with the race detector compiled in and fault
# injection armed so the hostile paths actually run:
#
#   1. generate a projected UMETRICS/USDA slice (emgen -projected), a
#      packaged deployment spec (emcasestudy -spec), and a standalone
#      matcher artifact (emserve -export-matcher),
#   2. start a race-built emserve with max-inflight 1, no wait queue,
#      every matcher call failing (-inject ml.predict) and every request
#      carrying injected latency (-inject serve.match:mode=sleep,...),
#   3. drive it over HTTP (scripts/servesmoke): matcher faults must
#      degrade to rule-only 200s marked degraded, a concurrent burst
#      must shed with 429 + Retry-After while still serving someone,
#      a hot reload must succeed without dropping the in-flight
#      request, and a corrupt artifact must be refused (422) with the
#      previous matcher kept serving,
#   4. SIGTERM the server and assert the graceful drain: exit code 130,
#      "drain complete", and the zero-leak self-check line.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required.
set -u

SCALE="${SERVE_SCALE:-0.1}"
SEED="${SERVE_SEED:-5}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

say() { printf 'serve-smoke: %s\n' "$*"; }
fail() { printf 'serve-smoke: FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }

say "building emgen, emcasestudy, emserve (-race), servesmoke"
for bin in emgen emcasestudy; do
    (cd "$ROOT" && go build -o "$TMP/$bin" "./cmd/$bin") || {
        echo "serve-smoke: build of $bin failed" >&2
        exit 1
    }
done
(cd "$ROOT" && go build -race -o "$TMP/emserve" ./cmd/emserve) || {
    echo "serve-smoke: race build of emserve failed" >&2
    exit 1
}
(cd "$ROOT" && go build -o "$TMP/servesmoke" ./scripts/servesmoke) || {
    echo "serve-smoke: build of servesmoke failed" >&2
    exit 1
}

say "generating projected slice (scale=$SCALE seed=$SEED), spec, and matcher artifact"
"$TMP/emgen" -scale "$SCALE" -seed "$SEED" -projected -out "$TMP/data" >/dev/null || {
    echo "serve-smoke: emgen failed" >&2
    exit 1
}
"$TMP/emcasestudy" -scale "$SCALE" -seed "$SEED" -spec "$TMP/spec.json" \
    >"$TMP/study.txt" 2>"$TMP/study.err" || {
    echo "serve-smoke: emcasestudy failed:" >&2
    cat "$TMP/study.err" >&2
    exit 1
}
LEFT="$TMP/data/UMETRICSProjected.csv"
RIGHT="$TMP/data/USDAProjected.csv"
"$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
    -export-matcher "$TMP/matcher.json" >/dev/null 2>"$TMP/export.err" || {
    echo "serve-smoke: -export-matcher failed:" >&2
    cat "$TMP/export.err" >&2
    exit 1
}

say "starting emserve under injected matcher faults and latency"
"$TMP/emserve" -spec "$TMP/spec.json" -left "$LEFT" -right "$RIGHT" \
    -matcher "$TMP/matcher.json" \
    -addr 127.0.0.1:0 -addr-file "$TMP/addr.txt" \
    -max-inflight 1 -max-queue -1 \
    -inject ml.predict -inject "serve.match:mode=sleep,sleep=250ms" \
    2>"$TMP/serve.err" &
SERVE_PID=$!

for _ in $(seq 1 300); do
    [ -s "$TMP/addr.txt" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "serve-smoke: emserve died during startup:" >&2
        cat "$TMP/serve.err" >&2
        exit 1
    }
    sleep 0.1
done
[ -s "$TMP/addr.txt" ] || {
    echo "serve-smoke: emserve never wrote its address file" >&2
    cat "$TMP/serve.err" >&2
    exit 1
}
ADDR="$(head -1 "$TMP/addr.txt" | tr -d '[:space:]')"
say "emserve is listening on $ADDR"

say "driving HTTP assertions (degrade, shed, reload, rollback)"
"$TMP/servesmoke" -addr "$ADDR" -right "$RIGHT" -matcher "$TMP/matcher.json" ||
    fail "HTTP assertions failed"

say "SIGTERM: draining the server"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
status=$?
SERVE_PID=""
if [ "$status" -ne 130 ]; then
    fail "emserve exited $status after SIGTERM, want 130:"
    cat "$TMP/serve.err" >&2
fi
grep -q "drain complete" "$TMP/serve.err" ||
    fail "drain did not complete cleanly"
grep -q "no leaked goroutines" "$TMP/serve.err" || {
    fail "the zero-leak self-check did not pass:"
    cat "$TMP/serve.err" >&2
}
if grep -q "WARNING: DATA RACE" "$TMP/serve.err"; then
    fail "the race detector fired:"
    cat "$TMP/serve.err" >&2
fi

if [ "$FAILURES" -gt 0 ]; then
    echo "serve-smoke: $FAILURES failure(s)" >&2
    exit 1
fi
say "PASS (degrade -> shed -> reload -> rollback -> drain, race-clean, zero leaks)"
