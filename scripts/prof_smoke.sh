#!/usr/bin/env bash
# prof_smoke.sh — end-to-end smoke test for continuous profiling and the
# perf-regression gate (see docs/OBSERVABILITY.md, "Continuous profiling
# & perf gating").
#
# Three phases, every server race-built:
#
#   1. capture ring: emserve with a sub-second -prof-interval and a tiny
#      -prof-max. Interval captures must land in /debug/contprof, a
#      manual trigger must schedule (and an immediate repeat
#      deduplicate), fetched profiles must be valid gzip, unknown and
#      traversal-shaped ids must 404, and the ring must prune to its
#      capacity on disk while the capture sequence keeps advancing.
#      SIGTERM then drains the server: exit 130, a final trigger=drain
#      capture in the ring, zero leaked goroutines, race-clean.
#
#   2. breach trigger: emserve with -prof-on-breach, a 50ms p99 latency
#      objective, and 300ms of injected latency on every match. Burning
#      traffic must produce a trigger=slo_breach capture naming the
#      objective — the profile of the fire, captured during the fire.
#
#   3. perf gate: `emmonitor perf` over fixture snapshots must exit 0 on
#      identical numbers and exit exactly 1 when one benchmark's ns/op
#      is inflated 20% — the committed-BENCH-trajectory contract. A gate
#      that cannot fail is not a gate.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${PROF_SCALE:-0.1}"
SEED="${PROF_SEED:-11}"
. "$(dirname "$0")/smoke_lib.sh"
smoke_init prof-smoke

say "building emgen, emcasestudy, emserve (-race), emmonitor, profsmoke"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emmonitor ./cmd/emmonitor
smoke_build emserve ./cmd/emserve -race
smoke_build profsmoke ./scripts/profsmoke

smoke_gen_data "$SCALE" "$SEED"
smoke_export_matcher

SMOKE_PROF_DIRS="$TMP/prof1 $TMP/prof2"

# ---- Phase 1: interval captures, trigger dedup, fetch, ring pruning -----

say "phase 1: capture ring (interval 400ms, max 3)"
smoke_start_emserve "$TMP/serve_prof.err" \
    -matcher "$TMP/matcher.json" \
    -prof-dir "$TMP/prof1" -prof-interval 400ms -prof-cpu 100ms -prof-max 3
say "emserve is listening on $ADDR"

"$TMP/profsmoke" -addr "$ADDR" -right "$RIGHT" \
    -phase capture -prof-dir "$TMP/prof1" -max 3 2>&1 | tee "$TMP/profsmoke1.log"
status=${PIPESTATUS[0]}
[ "$status" -eq 0 ] || fail "profsmoke capture phase exited $status, want 0"

say "SIGTERM: draining the phase-1 server (want a final drain capture)"
smoke_drain_server "$TMP/serve_prof.err"
grep -q "drain capture" "$TMP/serve_prof.err" ||
    fail "emserve logged no drain capture on SIGTERM"
grep -l '"trigger": "drain"' "$TMP/prof1"/*.meta.json >/dev/null 2>&1 ||
    fail "no trigger=drain capture survived in the ring after drain"

# ---- Phase 2: SLO burn must capture the fire ----------------------------

say "phase 2: breach-triggered capture (50ms p99 objective, 300ms injected latency)"
smoke_start_emserve "$TMP/serve_burn.err" \
    -matcher "$TMP/matcher.json" \
    -slo "latency=50ms@99" \
    -inject "serve.match:mode=sleep,sleep=300ms" \
    -prof-dir "$TMP/prof2" -prof-interval 1s -prof-cpu 100ms -prof-on-breach
say "emserve is listening on $ADDR"

"$TMP/profsmoke" -addr "$ADDR" -right "$RIGHT" \
    -phase breach 2>&1 | tee "$TMP/profsmoke2.log"
status=${PIPESTATUS[0]}
[ "$status" -eq 0 ] || fail "profsmoke breach phase exited $status, want 0"

say "SIGTERM: draining the phase-2 server"
smoke_drain_server "$TMP/serve_burn.err"

# ---- Phase 3: the perf gate must hold, then trip on a 20% inflation -----

say "phase 3: emmonitor perf over fixture snapshots"
cat >"$TMP/bench_old.json" <<'EOF'
{
  "generated_by": "scripts/bench_snapshot.sh",
  "go": "go test",
  "benchtime": "0.2s",
  "benchcount": 3,
  "benchmarks": [
    {"package": "internal/match", "name": "BenchmarkMatchPair-8",
     "iterations": 1000, "ns_per_op": 50000, "bytes_per_op": 2048, "allocs_per_op": 30},
    {"package": "internal/serve", "name": "BenchmarkMatchSingle-8",
     "iterations": 500, "ns_per_op": 200000, "bytes_per_op": 8192, "allocs_per_op": 120}
  ],
  "count": 2
}
EOF
# Same numbers -> the gate holds.
cp "$TMP/bench_old.json" "$TMP/bench_same.json"
"$TMP/emmonitor" perf "$TMP/bench_old.json" "$TMP/bench_same.json" >"$TMP/gate_ok.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
    fail "perf gate on identical snapshots exited $status, want 0:"
    cat "$TMP/gate_ok.txt" >&2
fi
grep -q "gate holds" "$TMP/gate_ok.txt" || fail "perf gate printed no verdict"

# One benchmark inflated 20% -> exit exactly 1.
sed 's/"ns_per_op": 50000/"ns_per_op": 60000/' "$TMP/bench_old.json" >"$TMP/bench_slow.json"
"$TMP/emmonitor" perf "$TMP/bench_old.json" "$TMP/bench_slow.json" >"$TMP/gate_trip.txt" 2>&1
status=$?
if [ "$status" -ne 1 ]; then
    fail "perf gate on a 20% inflation exited $status, want exactly 1:"
    cat "$TMP/gate_trip.txt" >&2
fi
grep -q "FAIL.*BenchmarkMatchPair" "$TMP/gate_trip.txt" ||
    fail "tripped gate did not name the regressed benchmark"

# Unreadable input -> exit 2, not a breach verdict.
"$TMP/emmonitor" perf "$TMP/bench_old.json" "$TMP/absent.json" >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "perf gate on missing input exited $status, want 2"

smoke_finish "(capture ring + drain capture -> breach capture -> gate trips exit 1, race-clean, zero leaks)"
