#!/usr/bin/env bash
# chaos_run.sh — kill/resume chaos harness for the checkpointing layer.
#
# Builds emcasestudy with the race detector, runs a golden (uncrashed)
# case study at a fixed seed, then for every section checkpoint kills
# the pipeline at exact boundaries — before the artifact is written,
# right after it commits, and once mid-write (a torn temp file on disk)
# — resumes each killed run, and asserts the resumed run's stdout
# report and match CSV are byte-identical to golden. Finally it
# corrupts one committed artifact on disk and asserts the resume
# quarantines it, recomputes, and still converges to golden.
#
# Kill-points are driven by EMCKPT_KILL=<mode>:<artifact> (see
# internal/ckpt/chaos.go); the process dies by SIGKILL so no cleanup
# code can cheat.
set -u

SCALE="${CHAOS_SCALE:-0.15}"
SEED="${CHAOS_SEED:-7}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
BIN="$TMP/emcasestudy"
ARGS=(-scale "$SCALE" -seed "$SEED")
FAILURES=0

say() { printf 'chaos: %s\n' "$*"; }
fail() { printf 'chaos: FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }

say "building emcasestudy with -race"
(cd "$ROOT" && go build -race -o "$BIN" ./cmd/emcasestudy) || {
    echo "chaos: build failed" >&2
    exit 1
}

say "golden run (scale=$SCALE seed=$SEED)"
"$BIN" "${ARGS[@]}" -out "$TMP/golden.csv" >"$TMP/golden.txt" 2>"$TMP/golden.err" || {
    echo "chaos: golden run failed:" >&2
    cat "$TMP/golden.err" >&2
    exit 1
}

ARTIFACTS=(
    study.blocking.json
    study.labeling.json
    study.matching.json
    study.updating.json
    study.estimating.json
)

# one_round <tag> <killspec>: kill a checkpointed run at the kill-point,
# resume it, and compare the resumed outputs against golden.
one_round() {
    local tag="$1" killspec="$2"
    local dir="$TMP/ckpt-$tag"
    local out="$TMP/out-$tag"

    EMCKPT_KILL="$killspec" "$BIN" "${ARGS[@]}" \
        -checkpoint-dir "$dir" -resume >"$out.first.txt" 2>"$out.first.err"
    local status=$?
    if [ "$status" -ne 137 ]; then
        fail "$tag: expected SIGKILL (exit 137) at $killspec, got exit $status"
        return
    fi

    "$BIN" "${ARGS[@]}" -checkpoint-dir "$dir" -resume \
        -out "$out.csv" >"$out.txt" 2>"$out.err"
    if [ $? -ne 0 ]; then
        fail "$tag: resume after $killspec failed:"
        cat "$out.err" >&2
        return
    fi
    if ! cmp -s "$TMP/golden.txt" "$out.txt"; then
        fail "$tag: resumed report differs from golden after $killspec"
        diff "$TMP/golden.txt" "$out.txt" | head -20 >&2
        return
    fi
    if ! cmp -s "$TMP/golden.csv" "$out.csv"; then
        fail "$tag: resumed matches differ from golden after $killspec"
        return
    fi
    say "ok: kill at $killspec, resume byte-identical"
}

# Kill at every section boundary: before each artifact commits (the
# section's work is lost and redone) and after (the section resumes).
i=0
for art in "${ARTIFACTS[@]}"; do
    one_round "before-$i" "before:$art"
    one_round "after-$i" "after:$art"
    i=$((i + 1))
done

# Kill mid-write once: a torn half-written temp file must be swept on
# reopen and never trusted.
one_round "mid" "mid:study.matching.json"

# Corruption: complete a checkpointed run, flip a byte in a committed
# artifact, and resume — the store must quarantine it, recompute the
# section, and still converge to golden.
dir="$TMP/ckpt-corrupt"
"$BIN" "${ARGS[@]}" -checkpoint-dir "$dir" >"$TMP/corrupt.first.txt" 2>&1 || {
    fail "corrupt: initial checkpointed run failed"
}
if [ -f "$dir/study.matching.json" ]; then
    # Flip one byte in the middle of the artifact.
    size=$(wc -c <"$dir/study.matching.json")
    mid=$((size / 2))
    printf '\xff' | dd of="$dir/study.matching.json" bs=1 seek="$mid" conv=notrunc 2>/dev/null
    "$BIN" "${ARGS[@]}" -checkpoint-dir "$dir" -resume \
        -out "$TMP/corrupt.csv" >"$TMP/corrupt.txt" 2>"$TMP/corrupt.err"
    if [ $? -ne 0 ]; then
        fail "corrupt: resume with corrupt artifact failed:"
        cat "$TMP/corrupt.err" >&2
    elif ! cmp -s "$TMP/golden.txt" "$TMP/corrupt.txt" || ! cmp -s "$TMP/golden.csv" "$TMP/corrupt.csv"; then
        fail "corrupt: recomputed run differs from golden"
    elif [ -z "$(ls -A "$dir/quarantine" 2>/dev/null)" ]; then
        fail "corrupt: corrupted artifact was not quarantined"
    else
        say "ok: corrupt artifact quarantined, recomputed, byte-identical"
    fi
else
    fail "corrupt: expected artifact $dir/study.matching.json missing"
fi

if [ "$FAILURES" -ne 0 ]; then
    echo "chaos: $FAILURES failure(s)" >&2
    exit 1
fi
say "all kill/resume rounds byte-identical to golden"
