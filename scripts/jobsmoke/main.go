// Command jobsmoke is the HTTP driver behind scripts/job_smoke.sh: it
// submits a deterministic bulk job to a running emserve, waits for it,
// and writes the fetched results bytes to a file so the shell script
// can compare runs byte-for-byte. The chaos choreography (EMCKPT_KILL,
// restarts, exit-code assertions) lives in the shell script; this
// driver owns everything that needs an HTTP client.
//
// Modes:
//
//	jobsmoke -addr H:P -right right.csv -records 24 -out ref.json
//	    submit, wait for completion, fetch, write the result bytes
//	jobsmoke -addr H:P -right right.csv -records 24 -submit-only
//	    submit and print the job id (the server is about to be killed)
//	jobsmoke -addr H:P -await jXXXX -min-resumed 2 -out out.json
//	    wait for a recovered job to complete, assert at least
//	    min-resumed shards were inherited rather than recomputed,
//	    fetch, write the result bytes
//
// Exit status: 0 on success, 1 on assertion failure, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"emgo/internal/table"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jobsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func say(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jobsmoke: "+format+"\n", args...)
}

// jobStatus is the subset of the poll document the assertions read.
type jobStatus struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	Shards        int    `json:"shards"`
	DoneShards    int    `json:"done_shards"`
	ResumedShards int    `json:"resumed_shards"`
	Error         string `json:"error"`
}

func main() {
	addr := flag.String("addr", "", "emserve address (host:port)")
	rightPath := flag.String("right", "", "right-table CSV records are mined from (submit modes)")
	records := flag.Int("records", 24, "records in the submitted job")
	submitOnly := flag.Bool("submit-only", false, "submit and print the job id, do not wait")
	await := flag.String("await", "", "job id to wait for instead of submitting")
	minResumed := flag.Int("min-resumed", 0, "fail unless at least this many shards were resumed, not recomputed")
	out := flag.String("out", "", "write the fetched results bytes here")
	timeout := flag.Duration("timeout", 2*time.Minute, "how long to wait for job completion")
	flag.Parse()
	if *addr == "" || (*await == "" && *rightPath == "") {
		fmt.Fprintln(os.Stderr, "usage: jobsmoke -addr host:port (-right right.csv [-submit-only] | -await jobid) [-out file]")
		os.Exit(2)
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	id := *await
	if id == "" {
		body, err := submissionBody(*rightPath, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobsmoke:", err)
			os.Exit(2)
		}
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			die("submit: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			die("submit returned %d: %s", resp.StatusCode, data)
		}
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
			die("submit response carries no job id: %s", data)
		}
		id = st.ID
		say("submitted job %s (%d records, %d shards)", id, *records, st.Shards)
		if *submitOnly {
			fmt.Println(id)
			return
		}
	}

	st := waitCompleted(client, base, id, *timeout)
	say("job %s completed: %d/%d shards, %d resumed", id, st.DoneShards, st.Shards, st.ResumedShards)
	if st.ResumedShards < *minResumed {
		die("resumed %d shards, want at least %d — the restart recomputed durable work", st.ResumedShards, *minResumed)
	}

	resp, err := client.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		die("fetch: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die("fetch returned %d: %s", resp.StatusCode, data)
	}
	var res struct {
		Results     []json.RawMessage `json:"results"`
		Quarantined []json.RawMessage `json:"quarantined"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		die("results are not JSON: %v", err)
	}
	if len(res.Results) != *records && *await == "" {
		die("results carry %d records, want %d", len(res.Results), *records)
	}
	if len(res.Quarantined) != 0 {
		die("healthy run quarantined %d shard(s): %s", len(res.Quarantined), data)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			die("write %s: %v", *out, err)
		}
	}
	say("results OK (%d bytes)", len(data))
	fmt.Println(id)
}

// waitCompleted polls the job until it completes (failing fast on a
// failed job) or the timeout lapses.
func waitCompleted(client *http.Client, base, id string, timeout time.Duration) *jobStatus {
	deadline := time.Now().Add(timeout)
	var last []byte
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			die("poll: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			die("poll returned %d: %s", resp.StatusCode, data)
		}
		last = data
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			die("poll response not JSON: %v: %s", err, data)
		}
		switch st.State {
		case "completed":
			return &st
		case "failed":
			die("job failed: %s", st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	die("job %s never completed; last status: %s", id, last)
	return nil
}

// submissionBody builds a deterministic job from the right table's
// first n titles: title-only records take the learned blocking+matcher
// path, which is the expensive work worth checkpointing.
func submissionBody(rightPath string, n int) (string, error) {
	right, err := table.ReadCSVFile(rightPath, nil)
	if err != nil {
		return "", err
	}
	col, err := right.Col("AwardTitle")
	if err != nil {
		return "", err
	}
	if right.Len() == 0 {
		return "", fmt.Errorf("right table %s is empty", rightPath)
	}
	recs := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		title := right.Row(i % right.Len())[col].Str()
		recs[i] = map[string]any{
			"RecordId":   fmt.Sprintf("job-%d", i),
			"AwardTitle": title,
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"records": recs}); err != nil {
		return "", err
	}
	return buf.String(), nil
}
