#!/usr/bin/env bash
# monitor_smoke.sh — end-to-end smoke test for quality monitoring.
#
# Exercises the whole drift-detection loop the way a deployment would:
#
#   1. generate a projected UMETRICS/USDA slice (emgen -projected) and a
#      packaged deployment spec (emcasestudy -spec),
#   2. run emmatch with -drift-capture to profile the slice and persist
#      the training-time baseline,
#   3. re-run emmatch on the *identical* slice with -drift-baseline and
#      assert `emmonitor check` passes (exit 0) with verdict ok — the
#      deterministic pipeline must score exactly zero drift against its
#      own baseline,
#   4. perturb the right table (null out AwardNumber on half the rows),
#      re-run, and assert `emmonitor check` fails (exit 1) with verdict
#      fail — nulling a blocking attribute must trip the PSI/null-rate
#      gates,
#   5. sanity-check `emmonitor history` and `emmonitor diff` over the
#      run-history directory every run appended to.
#
# Everything runs in a temp dir; only POSIX tools + the go toolchain are
# required. Shared plumbing lives in scripts/smoke_lib.sh.
set -u

SCALE="${MONITOR_SCALE:-0.1}"
SEED="${MONITOR_SEED:-5}"
. "$(dirname "$0")/smoke_lib.sh"
smoke_init monitor-smoke

say "building emgen, emcasestudy, emmatch, emmonitor"
smoke_build emgen ./cmd/emgen
smoke_build emcasestudy ./cmd/emcasestudy
smoke_build emmatch ./cmd/emmatch
smoke_build emmonitor ./cmd/emmonitor

smoke_gen_data "$SCALE" "$SEED"
MATCH=("$TMP/emmatch" -spec "$TMP/spec.json" -left "$LEFT" -history "$TMP/hist")

say "capture run: profiling the slice into baseline.json"
"${MATCH[@]}" -right "$RIGHT" -out "$TMP/run1.csv" \
    -drift-capture "$TMP/baseline.json" 2>"$TMP/run1.err" || {
    fail "capture run failed:"
    cat "$TMP/run1.err" >&2
}
[ -s "$TMP/baseline.json" ] || fail "no baseline was persisted"

say "identical slice: emmonitor check must pass"
"${MATCH[@]}" -right "$RIGHT" -out "$TMP/run2.csv" \
    -drift-baseline "$TMP/baseline.json" 2>"$TMP/run2.err" || {
    fail "clean check run failed:"
    cat "$TMP/run2.err" >&2
}
if ! cmp -s "$TMP/run1.csv" "$TMP/run2.csv"; then
    fail "identical inputs produced different matches"
fi
"$TMP/emmonitor" check -baseline "$TMP/baseline.json" -dir "$TMP/hist" \
    >"$TMP/check2.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
    fail "check on the identical slice exited $status, want 0:"
    cat "$TMP/check2.txt" >&2
elif ! grep -q "verdict ok" "$TMP/check2.txt"; then
    fail "clean check did not report verdict ok:"
    cat "$TMP/check2.txt" >&2
fi

say "perturbed slice (AwardNumber nulled on half the rows): check must fail"
awk -F, 'BEGIN{OFS=","} NR==1{print;next} NR%2==0{$2="";print;next} {print}' \
    "$RIGHT" >"$TMP/data/USDAPerturbed.csv"
"${MATCH[@]}" -right "$TMP/data/USDAPerturbed.csv" -out "$TMP/run3.csv" \
    -drift-baseline "$TMP/baseline.json" 2>"$TMP/run3.err" || {
    fail "perturbed run failed (a quality breach must not fail the run):"
    cat "$TMP/run3.err" >&2
}
grep -q "quality verdict fail" "$TMP/run3.err" ||
    fail "perturbed run did not report a fail verdict on stderr"
"$TMP/emmonitor" check -baseline "$TMP/baseline.json" -dir "$TMP/hist" \
    >"$TMP/check3.txt" 2>&1
status=$?
if [ "$status" -ne 1 ]; then
    fail "check on the perturbed slice exited $status, want 1:"
    cat "$TMP/check3.txt" >&2
elif ! grep -q "verdict fail" "$TMP/check3.txt"; then
    fail "perturbed check did not report verdict fail:"
    cat "$TMP/check3.txt" >&2
fi

say "history and diff over the appended runs"
"$TMP/emmonitor" history -dir "$TMP/hist" >"$TMP/hist.txt" 2>&1 ||
    fail "emmonitor history failed"
runs=$(tail -n +2 "$TMP/hist.txt" | wc -l)
[ "$runs" -eq 3 ] || fail "history lists $runs runs, want 3"
tail -1 "$TMP/hist.txt" | grep -q "fail" ||
    fail "latest history row does not carry the fail verdict"
"$TMP/emmonitor" diff <(sed -n 2p "$TMP/hist/runs.jsonl") \
    <(sed -n 3p "$TMP/hist/runs.jsonl") >"$TMP/diff.txt" 2>&1 ||
    fail "emmonitor diff failed"
grep -q "quality signals" "$TMP/diff.txt" ||
    fail "diff did not surface the quality-signal changes"

smoke_finish "(capture -> clean check exit 0 -> perturbed check exit 1)"
