package emgo

import (
	"testing"

	"emgo/internal/block"
	"emgo/internal/cluster"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

// BenchmarkE11_DeployBuild times packaging the trained workflow as JSON
// and rebuilding it against a table pair (the production cold-start
// path).
func BenchmarkE11_DeployBuild(b *testing.B) {
	w := benchWorld(b)
	spec, err := umetrics.BuildDeploymentSpec(w.fs, w.im, w.matcher)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := spec.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := workflow.ParseSpec(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := parsed.Build(w.proj.UMETRICS, w.proj.USDA, umetrics.DeployTransforms()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4_ClusterAnalysis times the Section 10 multiplicity analysis
// and cluster construction over a final match set.
func BenchmarkA4_ClusterAnalysis(b *testing.B) {
	w := benchWorld(b)
	sure := w.sure.SureMatches(w.proj.UMETRICS, w.proj.USDA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Degrees(sure)
		cluster.ConnectedComponents(sure)
		cluster.OneToOne(sure, nil)
	}
}

// BenchmarkBlock_JaccardJoin times the prefix-filtered similarity join on
// the projected titles.
func BenchmarkBlock_JaccardJoin(b *testing.B) {
	w := benchWorld(b)
	join := block.JaccardJoin{
		LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 0.6, Normalize: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.Block(w.proj.UMETRICS, w.proj.USDA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlock_SortedNeighborhood times the sorted-neighborhood blocker
// on award numbers.
func BenchmarkBlock_SortedNeighborhood(b *testing.B) {
	w := benchWorld(b)
	sn := block.SortedNeighborhood{LeftCol: "AwardNumber", RightCol: "AwardNumber", Window: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sn.Block(w.proj.UMETRICS, w.proj.USDA); err != nil {
			b.Fatal(err)
		}
	}
}
