// Dedup example: the single-table EM scenario ("matching tuples within a
// single table", paper §2). A researcher roster accumulated duplicate
// rows with name and department variations; block the table against
// itself, score the candidate pairs with similarity rules, and group the
// duplicates into entity clusters. Run with:
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"emgo/internal/block"
	"emgo/internal/cluster"
	"emgo/internal/rules"
	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func main() {
	roster := table.New("roster", table.MustSchema(
		table.Field{Name: "Name", Kind: table.String},
		table.Field{Name: "Department", Kind: table.String},
	))
	for _, r := range [][2]string{
		{"KERMICLE, J.L", "Genetics"},
		{"Kermicle, J. L.", "Genetics"},  // dup of 0
		{"Jerry L Kermicle", "Genetics"}, // dup of 0
		{"HAMMER, R", "Forest Ecology"},
		{"Hammer, Roger", "Forest Ecology"}, // dup of 3
		{"ESKER, PAUL", "Plant Pathology"},
		{"COLQUHOUN, J", "Horticulture"},
		{"Colquhoun, Jed", "Horticulture"}, // dup of 6
		{"SMITH, DAVID", "Agronomy"},
		{"SMITH, DANIEL", "Soil Science"}, // NOT a dup of 8
	} {
		roster.MustAppend(table.Row{table.S(r[0]), table.S(r[1])})
	}

	// Self-block: candidate pairs share a name token (case-insensitive).
	cand, err := block.Dedup(roster, block.Overlap{
		LeftCol: "Name", RightCol: "Name",
		Tokenizer: tokenize.Word{}, Threshold: 1, Normalize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-blocking: %d candidate pairs from %d rows\n", cand.Len(), roster.Len())

	// Match rule: same department AND similar names (Monge-Elkan over
	// lowercased word tokens handles initials and reordering).
	nameCol, _ := roster.Col("Name")
	deptCol, _ := roster.Col("Department")
	word := tokenize.Word{}
	same := rules.Func{Label: "same-person", Verdict: rules.Match, Fire: func(a, b table.Row) bool {
		if !a[deptCol].Equal(b[deptCol]) {
			return false
		}
		ta := word.Tokens(tokenize.Lower(a[nameCol].Str()))
		tb := word.Tokens(tokenize.Lower(b[nameCol].Str()))
		me := (simfunc.MongeElkan(ta, tb) + simfunc.MongeElkan(tb, ta)) / 2
		return me > 0.75
	}}
	engine := rules.NewEngine(same)
	matches, _, _ := engine.MarkPairs(cand)
	fmt.Printf("matched %d duplicate pairs\n", matches.Len())

	// Group into entities.
	clusters := cluster.ConnectedComponents(matches)
	fmt.Printf("%d duplicate clusters:\n", len(clusters))
	for _, c := range clusters {
		seen := map[int]bool{}
		fmt.Print("  {")
		first := true
		for _, lists := range [][]int{c.Left, c.Right} {
			for _, i := range lists {
				if seen[i] {
					continue
				}
				seen[i] = true
				if !first {
					fmt.Print(" | ")
				}
				first = false
				fmt.Printf("%s", roster.Get(i, "Name").Str())
			}
		}
		fmt.Println("}")
	}
}
