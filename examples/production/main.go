// Production example: the Section 12 "Next Steps" lifecycle. Development
// trains the Figure 10 workflow and packages it as a JSON spec; production
// loads the spec, rebuilds the workflow against each incoming data slice,
// and monitors accuracy by sampling and labeling predicted matches
// (footnote 11). A dirty slice trips the precision alarm — the signal to
// go back to development. Run with:
//
//	go run ./examples/production
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	// ---- Development: train and package the workflow. ----
	spec := develop()
	data, err := spec.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "umetrics-workflow.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("development: packaged workflow spec (%d bytes) -> %s\n", len(data), path)

	// ---- Production: load the spec and process data slices. ----
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := workflow.ParseSpec(raw)
	if err != nil {
		log.Fatal(err)
	}
	monitor := &workflow.Monitor{
		SampleSize:   80,
		MinPrecision: 0.75,
		Rng:          rand.New(rand.NewSource(100)),
	}

	// Two quarterly slices: a clean one, then one whose labels expose a
	// precision collapse (simulated by a hostile labeler standing in for
	// genuinely dirty data).
	for _, batch := range []struct {
		name  string
		seed  int64
		dirty bool
	}{
		{"2016-Q1", 41, false},
		{"2016-Q2", 42, true},
	} {
		res, labeler := runSlice(loaded, batch.seed, batch.dirty)
		check, err := monitor.Check(batch.name, res.Final, labeler)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if check.Alarm {
			status = "ALARM — send the workflow back to development"
		}
		fmt.Printf("production %s: %d matches, precision %s over %d labeled -> %s\n",
			batch.name, res.Final.Len(), check.Precision, check.Labeled, status)
	}
	fmt.Printf("monitoring history: %d checks, %d alarms\n",
		len(monitor.History()), len(monitor.Alarms()))
}

// develop trains the matcher on the development world and returns the
// packaged Figure 10 spec.
func develop() *workflow.Spec {
	ds, err := umetrics.Generate(umetrics.TestParams(0.25))
	if err != nil {
		log.Fatal(err)
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		log.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		log.Fatal(err)
	}
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := block.UnionBlock(proj.UMETRICS, proj.USDA,
		block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true})
	if err != nil {
		log.Fatal(err)
	}
	var pairs []block.Pair
	var y []int
	for _, p := range cand.Pairs() {
		if oracle.IsHard(p) {
			continue
		}
		pairs = append(pairs, p)
		if oracle.IsMatch(p) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	corr := map[string]string{"AwardNumber": "AwardNumber", "AwardTitle": "AwardTitle", "EmployeeName": "EmployeeName"}
	fs, err := feature.Generate(proj.UMETRICS, proj.USDA, corr, []string{"AwardNumber", "AwardTitle", "EmployeeName"})
	if err != nil {
		log.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(fs, proj.UMETRICS, corr, []string{"AwardTitle", "EmployeeName"}); err != nil {
		log.Fatal(err)
	}
	x, err := fs.Vectorize(proj.UMETRICS, proj.USDA, pairs)
	if err != nil {
		log.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		log.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		log.Fatal(err)
	}
	dset, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		log.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(dset); err != nil {
		log.Fatal(err)
	}
	spec, err := umetrics.BuildDeploymentSpec(fs, im, tree)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

// runSlice builds the deployed workflow for a fresh data slice and
// returns its result plus the labeler the monitor uses.
func runSlice(spec *workflow.Spec, seed int64, dirty bool) (*workflow.Result, func(block.Pair) label.Label) {
	params := umetrics.TestParams(0.25)
	params.Seed = seed
	ds, err := umetrics.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		log.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		log.Fatal(err)
	}
	w, err := spec.Build(proj.UMETRICS, proj.USDA, umetrics.DeployTransforms())
	if err != nil {
		log.Fatal(err)
	}
	res, err := w.Run(proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	noise := rand.New(rand.NewSource(seed * 7))
	labeler := func(p block.Pair) label.Label {
		if dirty && noise.Float64() < 0.5 {
			// The dirty slice's matches fail human review half the time.
			return label.No
		}
		switch {
		case oracle.IsHard(p):
			return label.Unsure
		case oracle.IsMatch(p):
			return label.Yes
		default:
			return label.No
		}
	}
	return res, labeler
}
