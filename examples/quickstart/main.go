// Quickstart: match the two small person tables of the paper's Figure 1
// — (Dave Smith, Madison, WI) against (David D. Smith, Madison, WI) —
// using the public core API with a similarity-rule matcher. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"emgo/internal/block"
	"emgo/internal/core"
	"emgo/internal/rules"
	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func main() {
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "Name", Kind: table.String},
			table.Field{Name: "City", Kind: table.String},
			table.Field{Name: "State", Kind: table.String},
		)
	}

	// Table A and Table B, exactly as in Figure 1 of the paper.
	a := table.New("A", schema())
	a.MustAppend(table.Row{table.S("Dave Smith"), table.S("Madison"), table.S("WI")})
	a.MustAppend(table.Row{table.S("Joe Wilson"), table.S("San Jose"), table.S("CA")})
	a.MustAppend(table.Row{table.S("Dan Smith"), table.S("Middleton"), table.S("WI")})

	b := table.New("B", schema())
	b.MustAppend(table.Row{table.S("David D. Smith"), table.S("Madison"), table.S("WI")})
	b.MustAppend(table.Row{table.S("Daniel W. Smith"), table.S("Middleton"), table.S("WI")})

	project, err := core.NewProject("figure1", a, b, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 of the how-to guide: understand the data.
	left, right := project.Profile()
	fmt.Println(left)
	fmt.Println(right)

	// Step 2: block. People in different states cannot match.
	project.AddBlocker(block.AttrEquiv{LeftCol: "State", RightCol: "State"})
	cand, err := project.Block()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking kept %d of %d pairs\n\n", cand.Len(), a.Len()*b.Len())

	// Step 3: match. With five rows there is nothing to learn from, so
	// use a hand-crafted rule — same city and similar name.
	nameCol, _ := a.Col("Name")
	cityCol, _ := a.Col("City")
	project.AddSureRule(rules.Func{
		Label:   "same-city-similar-name",
		Verdict: rules.Match,
		Fire: func(l, r table.Row) bool {
			if !l[cityCol].Equal(r[cityCol]) {
				return false
			}
			tok := tokenize.Word{}
			sim := simfunc.MongeElkan(tok.Tokens(l[nameCol].Str()), tok.Tokens(r[nameCol].Str()))
			return sim > 0.8
		},
	})
	res, err := project.Match()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("matches:")
	for _, p := range res.Final.Sorted() {
		fmt.Printf("  (a%d, b%d): %q <-> %q\n",
			p.A+1, p.B+1, a.Get(p.A, "Name").Str(), b.Get(p.B, "Name").Str())
	}
	// Expected, as in Figure 1: (a1, b1) and (a3, b2).
}
