// Products example: match two e-commerce catalogs — the classic EM
// benchmark setting (Walmart-Amazon style) the paper's related work cites
// — with the same pipeline the case study uses: q-gram blocking on
// product titles, auto-generated features over title/brand/price, a
// learned matcher selected by cross-validation, and a hand-crafted
// negative rule (different model numbers cannot match). Run with:
//
//	go run ./examples/products
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"emgo/internal/block"
	"emgo/internal/core"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// catalogs builds two synthetic product catalogs with known matches. The
// same product appears with retailer-specific title formatting; model
// numbers identify products exactly but are missing from one side for a
// third of the rows.
func catalogs(seed int64) (left, right *table.Table, truth map[block.Pair]bool) {
	rng := rand.New(rand.NewSource(seed))
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "Title", Kind: table.String},
			table.Field{Name: "Brand", Kind: table.String},
			table.Field{Name: "Model", Kind: table.String},
			table.Field{Name: "Price", Kind: table.Float},
		)
	}
	brands := []string{"Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne"}
	nouns := []string{"wireless mouse", "mechanical keyboard", "usb hub", "webcam",
		"gaming headset", "laptop stand", "monitor arm", "desk lamp",
		"portable ssd", "power bank", "bluetooth speaker", "hdmi cable",
		"phone charger", "trackball", "ergonomic chair", "microphone"}
	adjectives := []string{"pro", "max", "ultra", "mini", "plus", "lite", "air", "go"}
	titleCase := func(s string) string {
		if s == "" {
			return s
		}
		parts := strings.Fields(s)
		for i, w := range parts {
			parts[i] = strings.ToUpper(w[:1]) + w[1:]
		}
		return strings.Join(parts, " ")
	}

	left = table.New("storeA", schema())
	right = table.New("storeB", schema())
	truth = map[block.Pair]bool{}

	n := 120
	rightRows := 0
	for i := 0; i < n; i++ {
		brand := brands[rng.Intn(len(brands))]
		noun := nouns[rng.Intn(len(nouns))]
		adj := adjectives[rng.Intn(len(adjectives))]
		model := fmt.Sprintf("%s-%04d", strings.ToUpper(brand[:2]), 1000+i)
		price := 10 + rng.Float64()*190

		// Store A: "Acme Pro Wireless Mouse AC-1003".
		titleA := fmt.Sprintf("%s %s %s %s", brand, titleCase(adj), titleCase(noun), model)
		left.MustAppend(table.Row{table.S(titleA), table.S(brand), table.S(model), table.F(price)})

		// 70% of products also appear in store B with different
		// formatting and a slightly different price.
		if rng.Float64() < 0.7 {
			titleB := fmt.Sprintf("%s %s - %s edition", strings.ToUpper(brand), noun, adj)
			modelB := table.S(model)
			if rng.Float64() < 0.33 {
				modelB = table.Null(table.String) // store B often omits models
			}
			right.MustAppend(table.Row{
				table.S(titleB), table.S(brand), modelB,
				table.F(price * (0.9 + rng.Float64()*0.2)),
			})
			truth[block.Pair{A: i, B: rightRows}] = true
			rightRows++
		}
	}
	// Store-B-only products (including lookalikes of store-A products —
	// same noun and brand, different model).
	for i := 0; i < 40; i++ {
		brand := brands[rng.Intn(len(brands))]
		noun := nouns[rng.Intn(len(nouns))]
		model := fmt.Sprintf("%s-%04d", strings.ToUpper(brand[:2]), 9000+i)
		right.MustAppend(table.Row{
			table.S(fmt.Sprintf("%s %s v2", brand, noun)),
			table.S(brand), table.S(model), table.F(10 + rng.Float64()*190),
		})
		rightRows++
	}
	return left, right, truth
}

func main() {
	left, right, truth := catalogs(11)
	project, err := core.NewProject("products", left, right, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Block on brand equality AND title token overlap, unioned with an
	// exact model-number join (the sure-match path).
	project.AddBlocker(block.AttrEquiv{LeftCol: "Model", RightCol: "Model"})
	project.AddBlocker(block.Overlap{
		LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 2, Normalize: true,
	})
	cand, err := project.Block()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking: %d candidates from %d pairs\n", cand.Len(), left.Len()*right.Len())

	// Sure rule: equal model numbers.
	sure, err := rules.NewEqual("same-model", left, "Model", nil, right, "Model", nil, rules.Match)
	if err != nil {
		log.Fatal(err)
	}
	project.AddSureRule(sure)
	// Negative rule: both models present but different.
	neg, err := rules.NewComparableMismatch("model-mismatch",
		left, "Model", nil, right, "Model", nil,
		rules.Set{"XX-####"})
	if err != nil {
		log.Fatal(err)
	}
	project.AddNegativeRule(neg)

	// Label every candidate with the oracle (a real project would sample;
	// the catalogs are small enough to label outright).
	pairs, err := project.SamplePairs(cand.Len())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		l := label.No
		if truth[p] {
			l = label.Yes
		}
		if err := project.SetLabel(p, l); err != nil {
			log.Fatal(err)
		}
	}

	corr := map[string]string{"Title": "Title", "Brand": "Brand", "Price": "Price"}
	order := []string{"Title", "Brand", "Price"}
	if err := project.GenerateFeatures(corr, order); err != nil {
		log.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(project.Features(), left, corr, []string{"Title"}); err != nil {
		log.Fatal(err)
	}

	cv, err := project.SelectMatcher(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matcher selection:")
	for _, r := range cv {
		fmt.Printf("  %-20s F1=%.3f\n", r.Name, r.F1)
	}
	if err := project.Train(cv[0].Name); err != nil {
		log.Fatal(err)
	}

	res, err := project.Match()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", res.Log)

	tp, fp, fn := 0, 0, 0
	for _, p := range res.Final.Pairs() {
		if truth[p] {
			tp++
		} else {
			fp++
		}
	}
	for p := range truth {
		if !res.Final.Contains(p) {
			fn++
		}
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	fmt.Printf("gold: precision=%.3f recall=%.3f (%d TP, %d FP, %d FN)\n", p, r, tp, fp, fn)
}
