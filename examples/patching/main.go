// Patching example: reproduce the Section 10 situation — after an EM
// workflow is built and deployed, the match definition is revised (a new
// positive rule is discovered) AND extra records arrive that were missing
// from the input table. Instead of redoing the whole process (re-block,
// re-sample, re-label), the existing workflow is kept "as is" and patched:
// the new rule is applied directly to the input tables, the same trained
// matcher is run over the extra slice, and the match lists are unioned at
// the record-ID level. Run with:
//
//	go run ./examples/patching
package main

import (
	"fmt"
	"log"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/rules"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	// A scaled-down UMETRICS world: the original slice, plus the extra
	// records that surface later.
	ds, err := umetrics.Generate(umetrics.TestParams(0.2))
	if err != nil {
		log.Fatal(err)
	}
	orig, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		log.Fatal(err)
	}
	extra, _, err := umetrics.Preprocess(ds.ExtraAwardAgg, ds.Employees, ds.USDA, "x", "s")
	if err != nil {
		log.Fatal(err)
	}
	extra.USDA = orig.USDA // one USDA table, two UMETRICS slices

	// ---- Phase 1: the workflow as originally built (M1 only). ----
	m1, err := umetrics.M1Rule(orig.UMETRICS, orig.USDA)
	if err != nil {
		log.Fatal(err)
	}
	fs, im, matcher, err := trainMatcher(ds, orig)
	if err != nil {
		log.Fatal(err)
	}
	blockers := []block.Blocker{
		block.AttrEquiv{
			LeftCol: "AwardNumber", RightCol: "AwardNumber",
			LeftTransform:  umetrics.SuffixNormalize,
			RightTransform: umetrics.NormalizeNumber,
		},
		block.Overlap{
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
		},
	}
	v1 := &workflow.Workflow{
		Name:      "v1",
		SureRules: rules.NewEngine(m1),
		Blockers:  blockers,
		Features:  fs, Imputer: im, Matcher: matcher,
	}
	res1, err := v1.Run(orig.UMETRICS, orig.USDA)
	if err != nil {
		log.Fatal(err)
	}
	ids1, err := res1.MatchIDs("AwardNumber", "AccessionNumber")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (deployed workflow): %d matches\n", len(ids1))

	// ---- Phase 2: the match definition changes. ----
	// A second positive rule is discovered: the UMETRICS number can also
	// equal the USDA *project* number. First check how much it matters
	// before deciding to patch (the paper's analysis).
	if err := umetrics.AddProjectNumber(orig, ds.USDA); err != nil {
		log.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(extra, ds.USDA); err != nil {
		log.Fatal(err)
	}
	rule2, err := umetrics.ProjectNumberRule(orig.UMETRICS, orig.USDA)
	if err != nil {
		log.Fatal(err)
	}
	rule2Pairs := rules.NewEngine(rule2).SureMatches(orig.UMETRICS, orig.USDA)
	caught := 0
	for _, p := range rule2Pairs.Pairs() {
		if res1.Final.Contains(p) {
			caught++
		}
	}
	fmt.Printf("phase 2 (revised definition): new rule decides %d pairs; the deployed workflow already predicted %d of them\n",
		rule2Pairs.Len(), caught)

	// Patch, don't redo: apply the new rule directly to the input tables
	// and union the results — no new labels needed.
	ids2 := idPairs(rule2Pairs)

	// ---- Phase 3: extra records arrive. ----
	// Run the SAME rules and trained matcher over the new slice only.
	m1x, err := umetrics.M1Rule(extra.UMETRICS, extra.USDA)
	if err != nil {
		log.Fatal(err)
	}
	rule2x, err := umetrics.ProjectNumberRule(extra.UMETRICS, extra.USDA)
	if err != nil {
		log.Fatal(err)
	}
	v2 := &workflow.Workflow{
		Name:      "v2-extra",
		SureRules: rules.NewEngine(m1x, rule2x),
		Blockers:  blockers,
		Features:  fs, Imputer: im, Matcher: matcher,
	}
	res3, err := v2.Run(extra.UMETRICS, extra.USDA)
	if err != nil {
		log.Fatal(err)
	}
	ids3, err := res3.MatchIDs("AwardNumber", "AccessionNumber")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3 (extra records): %d matches from the new slice\n", len(ids3))

	// Final deliverable: the union of all three phases, deduplicated.
	final := workflow.MergeIDs(ids1, ids2, ids3)
	fmt.Printf("patched total: %d matches (no re-labeling, no re-blocking of the original slice)\n", len(final))
}

// trainMatcher labels a sample with the simulated expert and fits the
// best cross-validated matcher.
func trainMatcher(ds *umetrics.Dataset, proj *umetrics.Projected) (*feature.Set, *feature.Imputer, ml.Matcher, error) {
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		return nil, nil, nil, err
	}
	blocker := block.Overlap{
		LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
	}
	cand, err := blocker.Block(proj.UMETRICS, proj.USDA)
	if err != nil {
		return nil, nil, nil, err
	}
	expert := &label.Expert{Truth: oracle.IsMatch, Hard: oracle.IsHard}
	var pairs []block.Pair
	var y []int
	for _, p := range cand.Pairs() {
		switch expert.Label(p) {
		case label.Yes:
			pairs = append(pairs, p)
			y = append(y, 1)
		case label.No:
			pairs = append(pairs, p)
			y = append(y, 0)
		}
	}
	corr := map[string]string{"AwardTitle": "AwardTitle", "EmployeeName": "EmployeeName"}
	fs, err := feature.Generate(proj.UMETRICS, proj.USDA, corr, []string{"AwardTitle", "EmployeeName"})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := feature.AddCaseInsensitive(fs, proj.UMETRICS, corr, []string{"AwardTitle"}); err != nil {
		return nil, nil, nil, err
	}
	x, err := fs.Vectorize(proj.UMETRICS, proj.USDA, pairs)
	if err != nil {
		return nil, nil, nil, err
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		return nil, nil, nil, err
	}
	if x, err = im.Transform(x); err != nil {
		return nil, nil, nil, err
	}
	dset, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		return nil, nil, nil, err
	}
	m := &ml.DecisionTree{}
	if err := m.Fit(dset); err != nil {
		return nil, nil, nil, err
	}
	return fs, im, m, nil
}

// idPairs renders a candidate set as ID pairs.
func idPairs(set *block.CandidateSet) []workflow.IDPair {
	res := &workflow.Result{Final: set}
	ids, err := res.MatchIDs("AwardNumber", "AccessionNumber")
	if err != nil {
		log.Fatal(err)
	}
	return ids
}
