// UMETRICS example: drive the paper's grant-matching problem through the
// public core API — generate the raw tables, pre-process them into
// UMETRICSProjected/USDAProjected, block with the Section 7 pipeline,
// label a sample with the simulated domain expert, select and train a
// matcher, layer the positive and negative rules around it, and estimate
// accuracy. This is the "how-to guide" walked by hand; the emcasestudy
// command runs the same study with the paper's full chronology. Run with:
//
//	go run ./examples/umetrics [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"

	"emgo/internal/block"
	"emgo/internal/core"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/rules"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
)

func main() {
	scale := flag.Float64("scale", 0.3, "data scale relative to the paper")
	flag.Parse()

	// Generate the raw tables and pre-process them (Sections 3-6).
	ds, err := umetrics.Generate(umetrics.TestParams(*scale))
	if err != nil {
		log.Fatal(err)
	}
	proj, report, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		log.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processed %d UMETRICS x %d USDA records (FK violations: %d)\n",
		proj.UMETRICS.Len(), proj.USDA.Len(), report.EmployeeFKViolations)

	project, err := core.NewProject("umetrics", proj.UMETRICS, proj.USDA, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Blocking (Section 7): award-number equivalence plus two title
	// blockers.
	project.AddBlocker(block.AttrEquiv{
		LeftCol: "AwardNumber", RightCol: "AwardNumber",
		LeftTransform:  umetrics.SuffixNormalize,
		RightTransform: umetrics.NormalizeNumber,
	})
	project.AddBlocker(block.Overlap{
		LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
	})
	project.AddBlocker(block.OverlapCoefficient{
		LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true,
	})
	cand, err := project.Block()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking: %d candidates from %d pairs\n",
		cand.Len(), proj.UMETRICS.Len()*proj.USDA.Len())

	// Positive rules (M1 and the project-number rule) and the negative
	// pattern rule (Sections 5, 10, 12).
	m1, err := umetrics.M1Rule(proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	rule2, err := umetrics.ProjectNumberRule(proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	project.AddSureRule(m1)
	project.AddSureRule(rule2)
	patterns := umetrics.KnownPatterns()
	negAward, err := rules.NewComparableMismatch("neg_award",
		proj.UMETRICS, "AwardNumber", umetrics.SuffixNormalize,
		proj.USDA, "AwardNumber", umetrics.NormalizeNumber, patterns)
	if err != nil {
		log.Fatal(err)
	}
	negProject, err := rules.NewComparableMismatch("neg_project",
		proj.UMETRICS, "AwardNumber", umetrics.SuffixNormalize,
		proj.USDA, "ProjectNumber", umetrics.NormalizeNumber, patterns)
	if err != nil {
		log.Fatal(err)
	}
	project.AddNegativeRule(negAward)
	project.AddNegativeRule(negProject)

	// Labeling (Section 8): the simulated domain expert labels a sample
	// through the single-writer labeling tool.
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		log.Fatal(err)
	}
	expert := &label.Expert{Truth: oracle.IsMatch, Hard: oracle.IsHard}
	tool := label.NewTool(project.Labels())
	sample, err := project.SamplePairs(min(300, cand.Len()))
	if err != nil {
		log.Fatal(err)
	}
	tool.Upload(sample)
	if err := tool.OpenSession("expert"); err != nil {
		log.Fatal(err)
	}
	if err := tool.LabelAll("expert", expert.Label); err != nil {
		log.Fatal(err)
	}
	if err := tool.CloseSession("expert"); err != nil {
		log.Fatal(err)
	}
	counts := project.Labels().Counts()
	fmt.Printf("labeled %d pairs: %d Yes / %d No / %d Unsure\n",
		counts.Total(), counts.Yes, counts.No, counts.Unsure)

	// Features (Section 9): auto-generated plus the case-insensitive fix.
	corr := map[string]string{
		"AwardNumber": "AwardNumber", "AwardTitle": "AwardTitle",
		"FirstTransDate": "FirstTransDate", "LastTransDate": "LastTransDate",
		"EmployeeName": "EmployeeName",
	}
	order := []string{"AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "EmployeeName"}
	if err := project.GenerateFeatures(corr, order); err != nil {
		log.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(project.Features(), proj.UMETRICS, corr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		log.Fatal(err)
	}

	cv, err := project.SelectMatcher(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matcher selection (5-fold CV):")
	for _, r := range cv {
		fmt.Printf("  %-20s P=%.3f R=%.3f F1=%.3f\n", r.Name, r.Precision, r.Recall, r.F1)
	}
	if err := project.Train(cv[0].Name); err != nil {
		log.Fatal(err)
	}

	res, err := project.Match()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkflow result:\n%s", res.Log)

	// Estimate accuracy from the labeled sample (Section 11) and check
	// against the generator's ground truth.
	est, err := project.EstimateAccuracy(res.Final, project.Labels())
	if err != nil {
		log.Fatal(err)
	}
	tp, fp := 0, 0
	for _, p := range res.Final.Pairs() {
		if oracle.IsHard(p) {
			continue
		}
		if oracle.IsMatch(p) {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("estimated: P=%s R=%s\n", est.Precision, est.Recall)
	fmt.Printf("gold:      %d true / %d false positives among %d matches\n",
		tp, fp, res.Final.Len())
}
