package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emgo/internal/obs"
	"emgo/internal/workflow"
)

// TestRunReportFlag is the acceptance test for -report: a run must
// produce a machine-readable report whose JSON parses back into per-stage
// spans (with durations and outcomes), hot-path counters, and the
// provenance log.
func TestRunReportFlag(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	reportPath := filepath.Join(dir, "run.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-report", reportPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	// Stream discipline: the report goes to its file, the CSV to stdout,
	// and stderr confirms the write.
	if !strings.Contains(stdout.String(), "L1,R1") {
		t.Fatalf("match CSV missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "wrote run report") {
		t.Fatalf("stderr: %s", stderr.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Outcome != workflow.OutcomeOK {
		t.Fatalf("outcome = %q, error = %q", rep.Outcome, rep.Error)
	}
	if rep.Trace == nil || rep.Trace.Name != "emmatch" {
		t.Fatalf("trace root: %+v", rep.Trace)
	}
	// The workflow's stage spans nest under the binary's root span.
	stages := map[string]string{}
	var walk func(s *obs.SpanData)
	walk = func(s *obs.SpanData) {
		if strings.HasPrefix(s.Name, "stage.") {
			stages[s.Name] = s.Outcome
			if s.DurationMS < 0 {
				t.Fatalf("span %s has negative duration", s.Name)
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(rep.Trace)
	for _, want := range []string{"stage.sure_matches", "stage.blocked", "stage.final"} {
		if stages[want] != workflow.OutcomeOK {
			t.Fatalf("span %s outcome = %q (have %v)", want, stages[want], stages)
		}
	}
	// Hot-path counters: the registry was armed, so blocking ticked.
	if rep.Metrics == nil {
		t.Fatal("report has no metrics snapshot")
	}
	if rep.Metrics.Counters["block.pairs_blocked"] < 1 {
		t.Fatalf("block.pairs_blocked = %d; counters: %v",
			rep.Metrics.Counters["block.pairs_blocked"], rep.Metrics.Counters)
	}
	// Provenance mirrors the workflow log.
	steps := map[string]bool{}
	for _, p := range rep.Provenance {
		steps[p.Step] = true
	}
	for _, want := range []string{"sure_matches", "blocked", "candidates", "final"} {
		if !steps[want] {
			t.Fatalf("provenance missing step %s: %v", want, rep.Provenance)
		}
	}
}

// TestRunTraceFlag: -trace writes just the span tree.
func TestRunTraceFlag(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	tracePath := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-trace", tracePath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var span obs.SpanData
	if err := json.Unmarshal(data, &span); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if span.Name != "emmatch" || len(span.Children) == 0 {
		t.Fatalf("trace: %+v", span)
	}
}

// TestRunReportOnFailure: a run that dies mid-pipeline still writes the
// report, marked aborted and carrying the error — that is when the
// operator needs it most.
func TestRunReportOnFailure(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", `{
	  "name": "t",
	  "blockers": [{"type": "attr_equiv", "left_col": "Num", "right_col": "Num",
	                "left_transform": "missing"}]
	}`)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	reportPath := filepath.Join(dir, "run.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-report", reportPath}, &stdout, &stderr)
	if err == nil {
		t.Fatal("expected build failure")
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("failed run must still write the report: %v", err)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != workflow.OutcomeAborted || !strings.Contains(rep.Error, "unknown transform") {
		t.Fatalf("outcome=%q error=%q", rep.Outcome, rep.Error)
	}
}

// TestRunReportStdoutGuards: stdout carries exactly one data document.
func TestRunReportStdoutGuards(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	base := []string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none"}

	var stdout, stderr bytes.Buffer
	err := run(append(base, "-report", "-"), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-out") {
		t.Fatalf("-report - without -out must be rejected: %v", err)
	}
	err = run(append(base, "-out", filepath.Join(dir, "m.csv"), "-report", "-", "-trace", "-"),
		&stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("-report - with -trace - must be rejected: %v", err)
	}

	// With -out redirecting the CSV, the report may own stdout; stdout
	// must then be exactly the JSON document.
	stdout.Reset()
	stderr.Reset()
	err = run(append(base, "-out", filepath.Join(dir, "m.csv"), "-report", "-"), &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if _, err := obs.ParseReport(stdout.Bytes()); err != nil {
		t.Fatalf("stdout is not a clean report document: %v\n%s", err, stdout.String())
	}
}

// TestRunDebugAddrServes: -debug-addr starts the expvar/pprof server for
// the duration of the run and announces it on stderr.
func TestRunDebugAddrServes(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-debug-addr", "127.0.0.1:0"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "debug server on http://127.0.0.1:") {
		t.Fatalf("debug server not announced:\n%s", stderr.String())
	}
}
