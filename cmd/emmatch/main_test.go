package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinySpec = `{
  "name": "tiny",
  "blockers": [{"type": "attr_equiv", "left_col": "Num", "right_col": "Num"}],
  "sure_rules": [{"type": "equal", "name": "M1", "left_col": "Num", "right_col": "Num",
                  "verdict": "match"}]
}`

const leftCSV = "RecordId,Num\nL1,A100\nL2,B200\n"
const rightCSV = "RecordId,Num\nR1,A100\nR2,C300\n"

func TestRunHappyPath(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "L1,R1") {
		t.Fatalf("expected match L1,R1 in output:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 matches") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestRunMalformedCSVIsOneLineError(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	// Unclosed quote: encoding/csv rejects this mid-file.
	bad := writeFile(t, dir, "bad.csv", "RecordId,Num\nL1,\"A100\nL2,B200\n")
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", bad, "-right", right, "-transforms", "none"},
		&stdout, &stderr)
	if err == nil {
		t.Fatal("malformed CSV must fail")
	}
	// The diagnostic is a single line naming the file, never a stack trace.
	msg := err.Error()
	if strings.Contains(msg, "\n") || strings.Contains(msg, "goroutine") {
		t.Fatalf("diagnostic is not one line: %q", msg)
	}
	if !strings.Contains(msg, "bad.csv") {
		t.Fatalf("diagnostic does not name the file: %q", msg)
	}
}

func TestRunMissingFlagsIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestRunUnknownTransformSet(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "nope"},
		&stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown transform set") {
		t.Fatalf("err: %v", err)
	}
}

func TestRunSpecReferencingMissingTransform(t *testing.T) {
	// A spec whose rules name a transform absent from the registry must
	// surface the resolver's error, not a panic.
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", `{
	  "name": "t",
	  "blockers": [{"type": "attr_equiv", "left_col": "Num", "right_col": "Num",
	                "left_transform": "missing"}]
	}`)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none"},
		&stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown transform") {
		t.Fatalf("err: %v", err)
	}
}

func TestRunDriftCaptureThenCheckAndHistory(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	baseline := filepath.Join(dir, "baseline.json")
	hist := filepath.Join(dir, "hist")

	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none",
		"-out", filepath.Join(dir, "m1.csv"), "-drift-capture", baseline, "-history", hist},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("capture run: %v\nstderr: %s", err, stderr.String())
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not persisted: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none",
		"-out", filepath.Join(dir, "m2.csv"), "-drift-baseline", baseline, "-history", hist},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("check run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "quality verdict ok") {
		t.Fatalf("check run stderr:\n%s", stderr.String())
	}

	data, err := os.ReadFile(filepath.Join(hist, "runs.jsonl"))
	if err != nil {
		t.Fatalf("history not written: %v", err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("history has %d lines, want 2", n)
	}
}

func TestRunDriftFlagsMutuallyExclusive(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "spec.json", tinySpec)
	left := writeFile(t, dir, "left.csv", leftCSV)
	right := writeFile(t, dir, "right.csv", rightCSV)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right, "-transforms", "none",
		"-drift-capture", "a.json", "-drift-baseline", "b.json"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err: %v", err)
	}
}
