// Command emmatch is the production matcher: it loads a packaged workflow
// spec (JSON, as produced by the development process — see
// examples/production), rebuilds the workflow against two CSV tables, and
// writes the predicted matches. It is the "move it into the repository to
// do matching for other data slices" binary of Section 12, run under the
// hardened runtime: deadlines, an error budget for poison pairs, and a
// provenance log on stderr even when a stage aborts.
//
// Usage:
//
//	emmatch -spec workflow.json -left UMETRICSProjected.csv -right USDAProjected.csv \
//	        [-left-id RecordId] [-right-id RecordId] [-out matches.csv] [-transforms umetrics] \
//	        [-timeout 0] [-stage-timeout 0] [-error-budget 0] \
//	        [-report run.json] [-trace trace.json] [-debug-addr :6060] \
//	        [-checkpoint-dir ckpt/ [-resume]] \
//	        [-drift-capture baseline.json | -drift-baseline baseline.json] [-history runs/]
//
// Crash safety: -checkpoint-dir persists each expensive stage's output
// (blocking, matching) durably as it completes; rerunning with -resume
// restores validated checkpoints instead of recomputing, so a killed run
// finishes from where it stopped. The store is fingerprinted by the spec
// bytes and both tables' contents — changed inputs discard it.
//
// The -transforms flag selects the registered transform set the spec's
// rules reference ("umetrics" or "none").
//
// Observability: -report writes the machine-readable run report
// (per-stage spans with durations and outcomes, hot-path counters,
// provenance log, quarantine decisions); -trace writes just the span
// tree; -debug-addr serves live expvar metrics (/debug/vars), pprof
// (/debug/pprof/), and Prometheus text exposition (/metrics) for the
// duration of the run. Stream discipline: only data (the match CSV, or
// a report/trace directed at "-") goes to stdout; every diagnostic and
// progress line goes to stderr, so reports can be piped.
//
// Quality monitoring (see docs/OBSERVABILITY.md): -drift-capture
// profiles this run's inputs, features, candidates, and scores and
// writes the statistical baseline to the given path; -drift-baseline
// re-profiles the run and scores it against such a baseline (PSI, KS,
// null-rate / coverage / match-rate deltas), stamping the verdict into
// the run report — a breach marks the quality stage degraded_quality
// but never fails the run. -history appends the run report to an
// append-only JSONL directory that emmonitor check/diff/history reads.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/cliutil"
	"emgo/internal/drift"
	"emgo/internal/obs"
	"emgo/internal/obs/history"
	"emgo/internal/table"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: stages stop at their next
	// cancellation check, checkpoints and run reports flush on the way
	// out, and the process reports the interrupt distinctly (130).
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emmatch:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the whole program behind a testable seam. Any panic escaping
// the pipeline is recovered into a one-line diagnostic — a production
// binary must never greet the operator with a stack trace.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("emmatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "packaged workflow spec (JSON)")
	leftPath := fs.String("left", "", "left table CSV")
	rightPath := fs.String("right", "", "right table CSV")
	leftID := fs.String("left-id", "RecordId", "left record-ID column for the output")
	rightID := fs.String("right-id", "RecordId", "right record-ID column for the output")
	out := fs.String("out", "", "output CSV (default: stdout)")
	transformSet := fs.String("transforms", "umetrics", "transform registry the spec references: umetrics | none")
	dateCols := fs.String("date-cols", "FirstTransDate,LastTransDate",
		"comma-separated columns parsed as dates (needed by date features)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole run (0 = none)")
	stageTimeout := fs.Duration("stage-timeout", 0, "deadline per workflow stage (0 = none)")
	errorBudget := fs.Int("error-budget", 0, "candidate pairs that may be quarantined before aborting")
	reportPath := fs.String("report", "", "write the run report JSON to this path ('-' = stdout)")
	tracePath := fs.String("trace", "", "write the span trace tree JSON to this path ('-' = stdout)")
	debugAddr := fs.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) at this address during the run, e.g. :6060")
	ckptDir := fs.String("checkpoint-dir", "", "write crash-safe stage checkpoints under this directory")
	resume := fs.Bool("resume", false, "restore completed stages from -checkpoint-dir instead of recomputing them")
	driftCapture := fs.String("drift-capture", "", "profile this run and write the quality baseline JSON to this path")
	driftBaseline := fs.String("drift-baseline", "", "score this run's quality profile against the baseline at this path")
	historyDir := fs.String("history", "", "append the run report to this run-history directory (for emmonitor)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	if *specPath == "" || *leftPath == "" || *rightPath == "" {
		fmt.Fprintln(stderr, "usage: emmatch -spec workflow.json -left a.csv -right b.csv")
		return flag.ErrHelp
	}
	// Stdout carries exactly one data document. The match CSV defaults
	// there, so a report or trace may take it over only when -out
	// redirects the CSV to a file, and they cannot both claim it.
	if *reportPath == "-" && *out == "" {
		return fmt.Errorf("-report - needs -out so the match CSV does not share stdout")
	}
	if *tracePath == "-" && *out == "" {
		return fmt.Errorf("-trace - needs -out so the match CSV does not share stdout")
	}
	if *reportPath == "-" && *tracePath == "-" {
		return fmt.Errorf("-report and -trace cannot both write to stdout")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *driftCapture != "" && *driftBaseline != "" {
		return fmt.Errorf("-drift-capture and -drift-baseline are mutually exclusive")
	}

	// Observability: any of these flags arms the metrics registry so
	// hot-path counters (pairs blocked, vectors built, predictions,
	// retries, fault trips) tick for this run.
	if *reportPath != "" || *tracePath != "" || *debugAddr != "" || *historyDir != "" {
		obs.Enable()
	}
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(stderr, "emmatch: debug server on http://%s/debug/\n", dbg.Addr())
	}

	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := workflow.ParseSpec(data)
	if err != nil {
		return err
	}

	var transforms workflow.Transforms
	switch *transformSet {
	case "umetrics":
		transforms = umetrics.DeployTransforms()
	case "none":
		transforms = workflow.Transforms{}
	default:
		return fmt.Errorf("unknown transform set %q", *transformSet)
	}

	kinds := map[string]table.Kind{}
	for _, c := range strings.Split(*dateCols, ",") {
		if c = strings.TrimSpace(c); c != "" {
			kinds[c] = table.Date
		}
	}
	left, err := table.ReadCSVFile(*leftPath, kinds)
	if err != nil {
		return err
	}
	right, err := table.ReadCSVFile(*rightPath, kinds)
	if err != nil {
		return err
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	started := time.Now()
	var root *obs.Span
	if *reportPath != "" || *tracePath != "" || *historyDir != "" {
		// Root the process-wide trace so the workflow's stage spans nest
		// under the binary's own span.
		ctx, root = obs.NewTrace(ctx, "emmatch")
	}

	// writeDoc routes a data document to a file, or to stdout for "-".
	writeDoc := func(path string, data []byte) error {
		data = append(data, '\n')
		if path == "-" {
			_, err := stdout.Write(data)
			return err
		}
		return os.WriteFile(path, data, 0o644)
	}
	// writeArtifacts emits the trace and run report, on success and on
	// failure alike — an aborted run is exactly when the operator needs
	// them.
	writeArtifacts := func(res *workflow.Result, runErr error) error {
		root.End()
		if *tracePath != "" {
			data, err := json.MarshalIndent(root.Snapshot(), "", "  ")
			if err != nil {
				return err
			}
			if err := writeDoc(*tracePath, data); err != nil {
				return err
			}
			if *tracePath != "-" {
				fmt.Fprintf(stderr, "emmatch: wrote trace to %s\n", *tracePath)
			}
		}
		if *reportPath != "" || *historyDir != "" {
			var rep *obs.Report
			if res != nil {
				rep = res.Report
			}
			if rep == nil {
				// The run died before RunCtx could build a report (spec
				// or table errors): synthesize the abort record.
				rep = &obs.Report{
					Name: "emmatch", StartedAt: started, FinishedAt: time.Now(),
					Outcome: workflow.OutcomeAborted, Trace: root.Snapshot(),
				}
				if runErr != nil {
					rep.Error = runErr.Error()
				}
				if obs.Enabled() {
					snap := obs.Default().Snapshot()
					rep.Metrics = &snap
				}
			}
			if *reportPath != "" {
				data, err := rep.Marshal()
				if err != nil {
					return err
				}
				if err := writeDoc(*reportPath, data); err != nil {
					return err
				}
				if *reportPath != "-" {
					fmt.Fprintf(stderr, "emmatch: wrote run report to %s\n", *reportPath)
				}
			}
			if *historyDir != "" {
				store, err := history.Open(*historyDir)
				if err != nil {
					return err
				}
				if err := store.Append(rep); err != nil {
					return err
				}
				fmt.Fprintf(stderr, "emmatch: appended run report to %s\n", store.Path())
			}
		}
		return nil
	}

	opts := workflow.RunOptions{
		StageTimeout: *stageTimeout,
		ErrorBudget:  *errorBudget,
	}
	switch {
	case *driftCapture != "":
		// Capture mode: profile this run and persist the baseline.
		opts.Drift = &workflow.DriftStage{BaselinePath: *driftCapture}
	case *driftBaseline != "":
		base, err := drift.LoadProfile(*driftBaseline)
		if err != nil {
			return fmt.Errorf("drift baseline: %w", err)
		}
		opts.Drift = &workflow.DriftStage{Baseline: base}
	}
	if *ckptDir != "" {
		// The store is bound to the exact spec bytes and table contents:
		// edit any of them and every prior checkpoint is discarded rather
		// than resumed against the wrong inputs.
		store, err := ckpt.Open(*ckptDir, ckpt.Fingerprint(
			"emmatch", string(data), left.Fingerprint(), right.Fingerprint()))
		if err != nil {
			return fmt.Errorf("checkpoint store: %w", err)
		}
		if reason := store.Discarded(); reason != "" {
			fmt.Fprintf(stderr, "emmatch: prior checkpoints discarded: %s\n", reason)
		}
		if !*resume {
			for _, name := range store.Names() {
				store.Quarantine(name, "fresh run requested (-checkpoint-dir without -resume)")
			}
		} else if n := len(store.Names()); n > 0 {
			fmt.Fprintf(stderr, "emmatch: resuming from %d checkpoint(s) in %s\n", n, *ckptDir)
		}
		opts.Checkpoints = store
	}
	w, err := spec.BuildCtx(ctx, left, right, transforms, opts.Retry)
	if err != nil {
		if aerr := writeArtifacts(nil, err); aerr != nil {
			fmt.Fprintln(stderr, "emmatch: writing observability artifacts:", aerr)
		}
		return err
	}
	res, err := w.RunCtx(ctx, left, right, opts)
	if res != nil && res.Log != nil {
		fmt.Fprintf(stderr, "%s", res.Log)
	}
	if aerr := writeArtifacts(res, err); aerr != nil {
		if err == nil {
			return aerr
		}
		fmt.Fprintln(stderr, "emmatch: writing observability artifacts:", aerr)
	}
	if err != nil {
		return err
	}
	if n := len(res.Quarantined); n > 0 {
		fmt.Fprintf(stderr, "emmatch: %d pairs quarantined under the error budget\n", n)
	}
	if res.Quality != nil {
		fmt.Fprintf(stderr, "emmatch: quality verdict %s (see emmonitor check for details)\n", res.Quality.Verdict)
	}

	ids, err := res.MatchIDs(*leftID, *rightID)
	if err != nil {
		return err
	}
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	cw := csv.NewWriter(dst)
	if err := cw.Write([]string{*leftID, *rightID}); err != nil {
		return err
	}
	for _, m := range ids {
		if err := cw.Write([]string{m.Left, m.Right}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "emmatch: %d matches\n", len(ids))
	return nil
}
