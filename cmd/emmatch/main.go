// Command emmatch is the production matcher: it loads a packaged workflow
// spec (JSON, as produced by the development process — see
// examples/production), rebuilds the workflow against two CSV tables, and
// writes the predicted matches. It is the "move it into the repository to
// do matching for other data slices" binary of Section 12.
//
// Usage:
//
//	emmatch -spec workflow.json -left UMETRICSProjected.csv -right USDAProjected.csv \
//	        [-left-id RecordId] [-right-id RecordId] [-out matches.csv] [-transforms umetrics]
//
// The -transforms flag selects the registered transform set the spec's
// rules reference ("umetrics" or "none").
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"emgo/internal/table"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	specPath := flag.String("spec", "", "packaged workflow spec (JSON)")
	leftPath := flag.String("left", "", "left table CSV")
	rightPath := flag.String("right", "", "right table CSV")
	leftID := flag.String("left-id", "RecordId", "left record-ID column for the output")
	rightID := flag.String("right-id", "RecordId", "right record-ID column for the output")
	out := flag.String("out", "", "output CSV (default: stdout)")
	transformSet := flag.String("transforms", "umetrics", "transform registry the spec references: umetrics | none")
	dateCols := flag.String("date-cols", "FirstTransDate,LastTransDate",
		"comma-separated columns parsed as dates (needed by date features)")
	flag.Parse()

	if *specPath == "" || *leftPath == "" || *rightPath == "" {
		fmt.Fprintln(os.Stderr, "usage: emmatch -spec workflow.json -left a.csv -right b.csv")
		os.Exit(2)
	}

	data, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}
	spec, err := workflow.ParseSpec(data)
	if err != nil {
		fail(err)
	}

	var transforms workflow.Transforms
	switch *transformSet {
	case "umetrics":
		transforms = umetrics.DeployTransforms()
	case "none":
		transforms = workflow.Transforms{}
	default:
		fail(fmt.Errorf("unknown transform set %q", *transformSet))
	}

	kinds := map[string]table.Kind{}
	for _, c := range strings.Split(*dateCols, ",") {
		if c = strings.TrimSpace(c); c != "" {
			kinds[c] = table.Date
		}
	}
	left, err := table.ReadCSVFile(*leftPath, kinds)
	if err != nil {
		fail(err)
	}
	right, err := table.ReadCSVFile(*rightPath, kinds)
	if err != nil {
		fail(err)
	}

	w, err := spec.Build(left, right, transforms)
	if err != nil {
		fail(err)
	}
	res, err := w.Run(left, right)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "%s", res.Log)

	ids, err := res.MatchIDs(*leftID, *rightID)
	if err != nil {
		fail(err)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		dst = f
	}
	cw := csv.NewWriter(dst)
	if err := cw.Write([]string{*leftID, *rightID}); err != nil {
		fail(err)
	}
	for _, m := range ids {
		if err := cw.Write([]string{m.Left, m.Right}); err != nil {
			fail(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "emmatch: %d matches\n", len(ids))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "emmatch:", err)
	os.Exit(1)
}
