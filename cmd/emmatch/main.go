// Command emmatch is the production matcher: it loads a packaged workflow
// spec (JSON, as produced by the development process — see
// examples/production), rebuilds the workflow against two CSV tables, and
// writes the predicted matches. It is the "move it into the repository to
// do matching for other data slices" binary of Section 12, run under the
// hardened runtime: deadlines, an error budget for poison pairs, and a
// provenance log on stderr even when a stage aborts.
//
// Usage:
//
//	emmatch -spec workflow.json -left UMETRICSProjected.csv -right USDAProjected.csv \
//	        [-left-id RecordId] [-right-id RecordId] [-out matches.csv] [-transforms umetrics] \
//	        [-timeout 0] [-stage-timeout 0] [-error-budget 0]
//
// The -transforms flag selects the registered transform set the spec's
// rules reference ("umetrics" or "none").
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emgo/internal/table"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emmatch:", err)
		os.Exit(1)
	}
}

// run is the whole program behind a testable seam. Any panic escaping
// the pipeline is recovered into a one-line diagnostic — a production
// binary must never greet the operator with a stack trace.
func run(args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("emmatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "packaged workflow spec (JSON)")
	leftPath := fs.String("left", "", "left table CSV")
	rightPath := fs.String("right", "", "right table CSV")
	leftID := fs.String("left-id", "RecordId", "left record-ID column for the output")
	rightID := fs.String("right-id", "RecordId", "right record-ID column for the output")
	out := fs.String("out", "", "output CSV (default: stdout)")
	transformSet := fs.String("transforms", "umetrics", "transform registry the spec references: umetrics | none")
	dateCols := fs.String("date-cols", "FirstTransDate,LastTransDate",
		"comma-separated columns parsed as dates (needed by date features)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole run (0 = none)")
	stageTimeout := fs.Duration("stage-timeout", 0, "deadline per workflow stage (0 = none)")
	errorBudget := fs.Int("error-budget", 0, "candidate pairs that may be quarantined before aborting")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	if *specPath == "" || *leftPath == "" || *rightPath == "" {
		fmt.Fprintln(stderr, "usage: emmatch -spec workflow.json -left a.csv -right b.csv")
		return flag.ErrHelp
	}

	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := workflow.ParseSpec(data)
	if err != nil {
		return err
	}

	var transforms workflow.Transforms
	switch *transformSet {
	case "umetrics":
		transforms = umetrics.DeployTransforms()
	case "none":
		transforms = workflow.Transforms{}
	default:
		return fmt.Errorf("unknown transform set %q", *transformSet)
	}

	kinds := map[string]table.Kind{}
	for _, c := range strings.Split(*dateCols, ",") {
		if c = strings.TrimSpace(c); c != "" {
			kinds[c] = table.Date
		}
	}
	left, err := table.ReadCSVFile(*leftPath, kinds)
	if err != nil {
		return err
	}
	right, err := table.ReadCSVFile(*rightPath, kinds)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := workflow.RunOptions{
		StageTimeout: *stageTimeout,
		ErrorBudget:  *errorBudget,
	}
	w, err := spec.BuildCtx(ctx, left, right, transforms, opts.Retry)
	if err != nil {
		return err
	}
	res, err := w.RunCtx(ctx, left, right, opts)
	if res != nil && res.Log != nil {
		fmt.Fprintf(stderr, "%s", res.Log)
	}
	if err != nil {
		return err
	}
	if n := len(res.Quarantined); n > 0 {
		fmt.Fprintf(stderr, "emmatch: %d pairs quarantined under the error budget\n", n)
	}

	ids, err := res.MatchIDs(*leftID, *rightID)
	if err != nil {
		return err
	}
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	cw := csv.NewWriter(dst)
	if err := cw.Write([]string{*leftID, *rightID}); err != nil {
		return err
	}
	for _, m := range ids {
		if err := cw.Write([]string{m.Left, m.Right}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "emmatch: %d matches\n", len(ids))
	return nil
}
