package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/feature"
	"emgo/internal/leakcheck"
	"emgo/internal/ml"
	"emgo/internal/table"
	"emgo/internal/workflow"
)

// writeFixture persists a deployable spec (blockers, rule layers,
// features, imputer means, fitted matcher) and the two CSV tables it
// serves — the same shape internal/serve tests against, but passed to
// the binary the way production would pass it: as files.
func writeFixture(t *testing.T, dir string) (specPath, leftPath, rightPath string) {
	t.Helper()
	schema := table.MustSchema(
		table.Field{Name: "RecordId", Kind: table.String},
		table.Field{Name: "Num", Kind: table.String},
		table.Field{Name: "Title", Kind: table.String},
	)
	l := table.New("L", schema)
	l.MustAppend(table.Row{table.S("l0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	l.MustAppend(table.Row{table.S("l1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	l.MustAppend(table.Row{table.S("l2"), table.S("WIS00001"), table.S("dairy cattle genetics study wisconsin")})
	r := table.New("R", schema)
	r.MustAppend(table.Row{table.S("r0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	r.MustAppend(table.Row{table.S("r1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	r.MustAppend(table.Row{table.S("r2"), table.S("WIS99999"), table.S("dairy cattle genetics study wisconsin")})

	fs, err := feature.Generate(l, r, map[string]string{"Title": "Title"}, []string{"Title"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}, {A: 1, B: 0}, {A: 2, B: 0}, {A: 2, B: 2}}
	y := []int{1, 1, 0, 0, 0, 1}
	x, err := fs.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	matcherSpec, err := ml.ExportMatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := fs.Descriptors()
	if err != nil {
		t.Fatal(err)
	}
	spec := &workflow.Spec{
		Name: "serve-cli-fixture",
		Blockers: []workflow.BlockerSpec{
			{Type: "overlap", LeftCol: "Title", RightCol: "Title",
				Tokenizer: "word", Threshold: 3, Normalize: true},
		},
		SureRules: []workflow.RuleSpec{
			{Type: "equal", Name: "M1", LeftCol: "Num", RightCol: "Num", Verdict: "match"},
		},
		NegativeRules: []workflow.RuleSpec{
			{Type: "comparable_mismatch", Name: "neg", LeftCol: "Num", RightCol: "Num",
				Patterns: []string{"XXX#####"}},
		},
		Features:     descs,
		ImputerMeans: im.Means(),
		Matcher:      matcherSpec,
	}
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	specPath = filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	leftPath = filepath.Join(dir, "left.csv")
	rightPath = filepath.Join(dir, "right.csv")
	if err := l.WriteCSVFile(leftPath); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSVFile(rightPath); err != nil {
		t.Fatal(err)
	}
	return specPath, leftPath, rightPath
}

func TestRunMissingFlagsIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestRunBadInjectSpec(t *testing.T) {
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-inject", "ml.predict:bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-inject") {
		t.Fatalf("err: %v", err)
	}
}

func TestRunUnknownTransformSet(t *testing.T) {
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "nope"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown transform set") {
		t.Fatalf("err: %v", err)
	}
}

func TestExportMatcherWritesLoadableArtifact(t *testing.T) {
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	artifact := filepath.Join(dir, "matcher.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-export-matcher", artifact}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("export: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), artifact) {
		t.Fatalf("stdout: %s", stdout.String())
	}
	m, err := ml.LoadMatcherFile(artifact)
	if err != nil {
		t.Fatalf("exported artifact does not load: %v", err)
	}
	if m.Name() == "" {
		t.Fatal("loaded matcher has no name")
	}
}

// startServer launches runCtx on a goroutine bound to an OS-assigned
// port, waits for the address file, and returns the base URL plus the
// shutdown handles. The stderr buffer is only safe to read after the
// returned done channel fires.
func startServer(t *testing.T, args []string) (base string, cancel context.CancelFunc, done chan error, stderr *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	ctx, cancelCtx := context.WithCancel(context.Background())
	stderr = &bytes.Buffer{}
	done = make(chan error, 1)
	go func() {
		var stdout bytes.Buffer
		done <- runCtx(ctx, append(args,
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-drain-timeout", "2s"), &stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			cancelCtx()
			t.Fatalf("server did not write %s; last err %v", addrFile, err)
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before binding: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	return base, cancelCtx, done, stderr
}

func TestServeMatchAndGracefulShutdown(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	base, cancel, done, stderr := startServer(t, []string{
		"-spec", spec, "-left", left, "-right", right, "-transforms", "none"})

	resp, err := http.Post(base+"/v1/match", "application/json",
		strings.NewReader(`{"record":{"RecordId":"q1","Title":"swamp dodder ecology management carrot"}}`))
	if err != nil {
		cancel()
		t.Fatalf("match request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("match status %d: %s", resp.StatusCode, body)
	}
	var mr struct {
		Matches []struct {
			RightID string `json:"right_id"`
			Source  string `json:"source"`
		} `json:"matches"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		cancel()
		t.Fatalf("response: %v\n%s", err, body)
	}
	if len(mr.Matches) != 1 || mr.Matches[0].RightID != "r1" || mr.Degraded {
		cancel()
		t.Fatalf("unexpected response: %s", body)
	}
	for _, ep := range []string{"/healthz", "/readyz", "/-/status", "/-/drift", "/metrics", "/debug/vars"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			cancel()
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			cancel()
			t.Fatalf("GET %s: status %d", ep, resp.StatusCode)
		}
	}

	// Cancellation stands in for SIGTERM (the same context path): the
	// server must drain, self-check, and surface the interrupt. The
	// test client shares the process, so park its keep-alive goroutines
	// first or the server's leak self-check counts them.
	http.DefaultClient.CloseIdleConnections()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shutdown err: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	logs := stderr.String()
	for _, want := range []string{"draining", "drain complete", "no leaked goroutines"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("shutdown log missing %q:\n%s", want, logs)
		}
	}
}

func TestServeSIGHUPReloadsMatcherArtifact(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	artifact := filepath.Join(dir, "matcher.json")
	var stdout, stderr0 bytes.Buffer
	if err := run([]string{"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-export-matcher", artifact}, &stdout, &stderr0); err != nil {
		t.Fatalf("export: %v", err)
	}
	base, cancel, done, stderr := startServer(t, []string{
		"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-matcher", artifact})

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		cancel()
		t.Fatal(err)
	}
	// The reload is observable via /-/status: loaded_at moves forward
	// while the checksum stays (same bytes). Poll the endpoint instead
	// of racing the stderr buffer.
	deadline := time.Now().Add(5 * time.Second)
	reloaded := false
	for time.Now().Before(deadline) && !reloaded {
		resp, err := http.Get(base + "/-/status")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var st struct {
				Matcher struct {
					Path     string `json:"path"`
					Checksum string `json:"checksum"`
				} `json:"matcher"`
			}
			if json.Unmarshal(body, &st) == nil && st.Matcher.Path == artifact && st.Matcher.Checksum != "" {
				reloaded = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !reloaded {
		t.Fatalf("status never showed the artifact matcher:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "SIGHUP reloaded matcher") {
		t.Fatalf("stderr missing the SIGHUP reload line:\n%s", stderr.String())
	}
}

func TestServeInjectedMatcherFaultDegrades(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset() // -inject arms the global registry
	dir := t.TempDir()
	spec, left, right := writeFixture(t, dir)
	base, cancel, done, _ := startServer(t, []string{
		"-spec", spec, "-left", left, "-right", right,
		"-transforms", "none", "-inject", "ml.predict"})
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}()

	resp, err := http.Post(base+"/v1/match", "application/json",
		strings.NewReader(`{"record":{"RecordId":"q1","Title":"swamp dodder ecology management carrot"}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr struct {
		Degraded bool   `json:"degraded"`
		Reason   string `json:"degraded_reason"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("response: %v\n%s", err, body)
	}
	if !mr.Degraded || mr.Reason != "matcher_error" {
		t.Fatalf("expected rule-only degradation, got %s", body)
	}
}
