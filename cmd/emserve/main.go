// Command emserve is the online matching service: it loads a deployed
// workflow spec (JSON, as produced by the development process), rebuilds
// the workflow against the two deployment tables, and answers single-record
// match requests over HTTP/JSON — the "matching as a service" end state of
// Section 12, run under hostile-conditions machinery: bounded admission
// with load shedding (429 + Retry-After), per-request deadlines, a circuit
// breaker that degrades the learned matcher to the rule-only path, and
// atomic hot reload of the matcher artifact with checksum validation and
// rollback.
//
// Usage:
//
//	emserve -spec workflow.json -left left.csv -right right.csv \
//	        [-addr 127.0.0.1:8080] [-addr-file addr.txt] [-matcher matcher.json] \
//	        [-max-inflight 8] [-max-queue 64] [-request-timeout 5s] [-max-body 1048576] \
//	        [-read-header-timeout 5s] [-read-timeout 30s] [-write-timeout 0] [-idle-timeout 120s] \
//	        [-breaker-failures 5] [-breaker-cooldown 10s] [-breaker-latency 0] \
//	        [-transforms umetrics] [-date-cols ...] [-drift-baseline baseline.json] \
//	        [-max-batch 256] [-job-dir jobs/] [-job-workers 2] [-job-shard-size 32] \
//	        [-job-max-queued 8] [-job-attempts 3] \
//	        [-stream-chunk-timeout 15s] [-max-streams 4] [-stream-flush 256] \
//	        [-job-buffered-max 10000] \
//	        [-access-log events.jsonl] [-access-sample 10] [-tail-n 16] \
//	        [-slo availability=99.9,latency=250ms@99] [-tail-dump tail.json] \
//	        [-prof-dir prof/] [-prof-interval 60s] [-prof-cpu 1s] [-prof-max 32] \
//	        [-prof-on-breach] [-no-debug] [-inject site:spec ...]
//
//	emserve -spec workflow.json -left left.csv -right right.csv \
//	        -export-matcher matcher.json
//
// Endpoints (see docs/SERVING.md): POST /v1/match answers one record;
// POST /v1/match/batch answers a bounded batch in one amortized pipeline
// pass; POST /v1/jobs submits an async bulk job (poll GET /v1/jobs/{id},
// fetch GET /v1/jobs/{id}/results — needs -job-dir; add ?stream=ndjson
// for the resumable NDJSON stream with HMAC-signed cursors, which is
// mandatory past -job-buffered-max records). Stream chunks carry their
// own -stream-chunk-timeout write deadlines, so a global -write-timeout
// bounds buffered responses without cutting healthy long streams; at
// most -max-streams streams hold shard files open at once (excess sheds
// 429), and a drain ends active streams at a flush boundary with a
// resumable cursor. GET /healthz,
// /readyz and /-/status report liveness, readiness and the live
// breaker/queue counters; POST /-/reload hot-swaps the matcher
// artifact; POST /-/drain starts a graceful drain; GET /-/drift serves the
// live serving-traffic profile; /debug/ and /metrics expose expvar, pprof
// and Prometheus text (disable with -no-debug).
//
// Observability: every request carries a request ID (minted, or a
// sanitized client X-Request-Id) echoed on the response and threaded
// through spans and job shards. -access-log emits one JSON wide event
// per request (sampled by -access-sample for successes; errors, sheds
// and degraded answers always log). GET /debug/tail serves the in-memory
// tail capture — the N slowest plus every errored/degraded request of
// the current and previous windows, full span trees included — and
// -tail-dump writes that snapshot to a file on drain. -slo declares
// availability/latency objectives whose multi-window burn rates surface
// on /v1/status (alias of /-/status) and /metrics; emmonitor slo turns
// them into a check that exits non-zero on budget burn.
//
// Continuous profiling: -prof-dir arms internal/contprof — periodic
// CPU/heap/goroutine/mutex/block captures into a bounded on-disk ring
// (prune at -prof-max), requests labeled by route for `go tool pprof
// -tags`, tail-outlier admissions triggering captures, -prof-on-breach
// capturing on SLO burn-rate breaches, a final capture at drain, and
// GET/POST /debug/contprof{,/fetch,/trigger} serving the ring — see
// docs/OBSERVABILITY.md "Continuous profiling & perf gating".
//
// Signals: SIGTERM/SIGINT drain the server — stop admitting (503), wait
// for in-flight requests up to the drain timeout, checkpoint and stop
// in-flight job shards (completed shards stay durable under -job-dir and
// resume on restart), shut the listener down, verify no goroutines
// leaked, exit 130. SIGHUP reloads the matcher artifact from its current
// path (same protocol as POST /-/reload).
//
// -export-matcher extracts the spec-embedded matcher to a standalone
// artifact file and exits; serving with -matcher on such a file is what
// makes the artifact hot-reloadable (a spec-embedded matcher has no path
// to re-read).
//
// -inject arms a fault-injection plan (site:spec, repeatable; see
// internal/fault) — the smoke tests use it to force matcher failures and
// latency so shedding and degradation are exercised for real.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"emgo/internal/cliutil"
	"emgo/internal/contprof"
	"emgo/internal/drift"
	"emgo/internal/fault"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/obs/slo"
	"emgo/internal/retry"
	"emgo/internal/serve"
	"emgo/internal/table"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emserve:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the whole program behind a testable seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("emserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "packaged workflow spec (JSON)")
	leftPath := fs.String("left", "", "left table CSV (request records use its schema)")
	rightPath := fs.String("right", "", "right table CSV (the deployed corpus matched against)")
	matcherPath := fs.String("matcher", "", "standalone matcher artifact to serve (hot-reloadable; default: the spec-embedded matcher)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (for scripts binding port 0)")
	exportMatcher := fs.String("export-matcher", "", "write the spec-embedded matcher to this artifact file and exit")
	maxInflight := fs.Int("max-inflight", 0, "concurrent requests executing the pipeline (0 = default)")
	maxQueue := fs.Int("max-queue", 0, "requests allowed to wait for a slot before shedding (0 = default, <0 = never wait)")
	requestTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request deadline ceiling")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size cap in bytes")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight requests")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "how long a connection may dawdle over its request headers (Slowloris guard; 0 = unlimited)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "how long a connection may take to deliver a whole request (0 = unlimited)")
	writeTimeout := fs.Duration("write-timeout", 0, "how long a response write may take (0 = unlimited; request work is already bounded by -request-timeout)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "how long a keep-alive connection may sit idle between requests (0 = unlimited)")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive matcher failures that trip the breaker (0 = default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long the breaker stays open before probing (0 = default)")
	breakerLatency := fs.Duration("breaker-latency", 0, "matcher calls slower than this count as failures (0 = off)")
	transformSet := fs.String("transforms", "umetrics", "transform registry the spec references: umetrics | none")
	dateCols := fs.String("date-cols", "FirstTransDate,LastTransDate",
		"comma-separated columns parsed as dates (needed by date features)")
	driftBaseline := fs.String("drift-baseline", "", "training-time baseline profile; arms GET /-/drift?check=1")
	rightID := fs.String("right-id", "RecordId", "right-table ID column echoed in match responses")
	maxBatch := fs.Int("max-batch", 0, "records per /v1/match/batch request (0 = default; larger inputs go through jobs)")
	jobDir := fs.String("job-dir", "", "checkpoint root for the async job tier (empty = job endpoints disabled)")
	jobWorkers := fs.Int("job-workers", 0, "concurrent shard executors per job (0 = default)")
	jobShardSize := fs.Int("job-shard-size", 0, "records per job shard (0 = default)")
	jobMaxQueued := fs.Int("job-max-queued", 0, "jobs queued or running before submissions shed (0 = default)")
	jobAttempts := fs.Int("job-attempts", 0, "attempts per shard before quarantine (0 = default)")
	streamChunkTimeout := fs.Duration("stream-chunk-timeout", 0, "slow-reader budget: a results stream whose client absorbs no chunk for this long is cut at a resumable cursor (0 = default 15s)")
	maxStreams := fs.Int("max-streams", 0, "concurrent result streams holding shard files open; excess sheds 429 (0 = default)")
	streamFlushEvery := fs.Int("stream-flush", 0, "records per stream chunk between cursor commits (0 = default)")
	jobBufferedMax := fs.Int("job-buffered-max", 0, "records the legacy buffered results fetch will assemble; larger jobs must use ?stream=ndjson (0 = default)")
	noDebug := fs.Bool("no-debug", false, "do not mount /debug/ (expvar, pprof) and /metrics on the service")
	accessLog := fs.String("access-log", "", "write one JSON wide event per request to this file (- = stderr; empty = off)")
	accessSample := fs.Int("access-sample", 1, "log 1 in N successful requests (errors/sheds/degraded always log)")
	tailN := fs.Int("tail-n", 0, "slowest requests retained per window in the /debug/tail buffer (0 = default)")
	sloSpec := fs.String("slo", "", "service objectives, e.g. availability=99.9,latency=250ms@99 (empty = defaults)")
	tailDump := fs.String("tail-dump", "", "write the tail-capture snapshot to this file when the server drains")
	profDir := fs.String("prof-dir", "", "continuous-profiling retention ring directory (empty = continuous profiling off)")
	profInterval := fs.Duration("prof-interval", 0, "periodic capture interval (0 = default 60s; <0 = triggered captures only)")
	profCPU := fs.Duration("prof-cpu", 0, "CPU-profile sampling window per capture (0 = default 1s)")
	profMax := fs.Int("prof-max", 0, "captures retained in the ring before the oldest is pruned (0 = default 32)")
	profOnBreach := fs.Bool("prof-on-breach", false, "trigger a capture when an SLO burn-rate breach is detected (needs -prof-dir)")
	var injects multiFlag
	fs.Var(&injects, "inject", "arm a fault-injection plan, site:spec (repeatable; e.g. ml.predict:prob=0.5)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	if *specPath == "" || *leftPath == "" || *rightPath == "" {
		fmt.Fprintln(stderr, "usage: emserve -spec workflow.json -left a.csv -right b.csv [-addr :8080]")
		return flag.ErrHelp
	}
	for _, spec := range injects {
		site, err := fault.EnableSpec(spec)
		if err != nil {
			return fmt.Errorf("-inject %q: %w", spec, err)
		}
		fmt.Fprintf(stderr, "emserve: fault injection armed at %s\n", site)
	}

	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := workflow.ParseSpec(data)
	if err != nil {
		return err
	}
	var transforms workflow.Transforms
	switch *transformSet {
	case "umetrics":
		transforms = umetrics.DeployTransforms()
	case "none":
		transforms = workflow.Transforms{}
	default:
		return fmt.Errorf("unknown transform set %q", *transformSet)
	}
	kinds := map[string]table.Kind{}
	for _, c := range strings.Split(*dateCols, ",") {
		if c = strings.TrimSpace(c); c != "" {
			kinds[c] = table.Date
		}
	}
	left, err := table.ReadCSVFile(*leftPath, kinds)
	if err != nil {
		return err
	}
	right, err := table.ReadCSVFile(*rightPath, kinds)
	if err != nil {
		return err
	}

	// A served request must never trip a training pass: the spec is built
	// here exactly as emmatch builds it, then only its fitted parts run.
	wf, err := spec.BuildCtx(ctx, left, right, transforms, retry.Policy{})
	if err != nil {
		return err
	}

	if *exportMatcher != "" {
		if wf.Matcher == nil {
			return fmt.Errorf("-export-matcher: the spec embeds no fitted matcher")
		}
		if err := ml.SaveMatcherFile(*exportMatcher, wf.Matcher); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "emserve: wrote matcher artifact to %s\n", *exportMatcher)
		return nil
	}

	cfg := serve.Config{
		Admission:       serve.AdmissionConfig{MaxInFlight: *maxInflight, MaxQueue: *maxQueue},
		Breaker:         serve.BreakerConfig{Failures: *breakerFailures, Cooldown: *breakerCooldown, LatencyLimit: *breakerLatency},
		RequestTimeout:  *requestTimeout,
		MaxBodyBytes:    *maxBody,
		DrainTimeout:    *drainTimeout,
		MatcherPath:     *matcherPath,
		RightIDCol:      *rightID,
		MountDebug:      !*noDebug,
		MaxBatchRecords: *maxBatch,
		AccessSampleN:   *accessSample,
		TailN:           *tailN,
		Jobs: serve.JobConfig{
			Dir:           *jobDir,
			Workers:       *jobWorkers,
			ShardSize:     *jobShardSize,
			MaxQueued:     *jobMaxQueued,
			ShardAttempts: *jobAttempts,
		},
		Stream: serve.StreamConfig{
			ChunkTimeout:       *streamChunkTimeout,
			MaxStreams:         *maxStreams,
			FlushEvery:         *streamFlushEvery,
			BufferedMaxRecords: *jobBufferedMax,
		},
	}
	if *driftBaseline != "" {
		base, err := drift.LoadProfile(*driftBaseline)
		if err != nil {
			return fmt.Errorf("drift baseline: %w", err)
		}
		cfg.DriftBaseline = base
	}
	if *sloSpec != "" {
		objs, err := slo.ParseObjectives(*sloSpec)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		cfg.SLOs = objs
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-access-log: %w", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}

	// Serving always counts: the status/drift endpoints and /metrics are
	// only as good as the counters behind them.
	obs.Enable()

	var prof *contprof.Profiler
	if *profDir != "" {
		prof, err = contprof.Open(contprof.Config{
			Dir:         *profDir,
			Interval:    *profInterval,
			CPUDuration: *profCPU,
			MaxCaptures: *profMax,
		})
		if err != nil {
			return err
		}
		prof.Start()
		defer prof.Stop() // idempotent; shutdown() stops it before the leak check
		cfg.Profiler = prof
		cfg.ProfileOnBreach = *profOnBreach
	} else if *profOnBreach {
		return fmt.Errorf("-prof-on-breach needs -prof-dir")
	}

	srv, err := serve.New(ctx, cfg, wf, left, right)
	if err != nil {
		return err
	}
	defer srv.Close()

	// SIGHUP re-reads the matcher artifact from its current path — the
	// same validated swap-or-rollback protocol as POST /-/reload.
	// Registered before the leak baseline: the first signal.Notify in a
	// process starts the runtime's signal-delivery goroutine, which
	// lives until exit and must not read as a leak.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	// Baseline for the post-drain leak self-check, taken before the
	// listener spins up its accept loop.
	baseGoroutines := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	// Connection-level timeouts: without them one client holding its
	// request open (Slowloris) pins a connection forever — the admission
	// gate only protects work that reaches the handler.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	art := srv.Artifact()
	switch {
	case art == nil:
		fmt.Fprintf(stderr, "emserve: serving rule-only (no matcher) on http://%s/\n", bound)
	default:
		fmt.Fprintf(stderr, "emserve: serving matcher %s (%s) on http://%s/\n", art.Matcher.Name(), art.Checksum[:12], bound)
	}
	if jt := srv.JobTier(); jt != nil {
		fmt.Fprintf(stderr, "emserve: job tier enabled under %s (%d unfinished job(s) resumed)\n", *jobDir, jt.Recovered())
	}

	for {
		select {
		case <-hup:
			if art, rerr := srv.Reload(context.Background(), ""); rerr != nil {
				fmt.Fprintf(stderr, "emserve: SIGHUP reload failed (previous matcher stays active): %v\n", rerr)
			} else {
				fmt.Fprintf(stderr, "emserve: SIGHUP reloaded matcher %s (%s)\n", art.Path, art.Checksum[:12])
			}
		case err := <-serveErr:
			// The listener died on its own — a real serving failure.
			return fmt.Errorf("serve: %w", err)
		case <-ctx.Done():
			return shutdown(ctx, srv, httpSrv, prof, *drainTimeout, *tailDump, baseGoroutines, stderr)
		}
	}
}

// shutdown runs the graceful-drain sequence: stop admitting, wait for
// in-flight requests, take the final profile capture, close the
// listener, then self-check for leaked goroutines. It returns the
// context's error so the interrupt exits 130.
func shutdown(ctx context.Context, srv *serve.Server, httpSrv *http.Server, prof *contprof.Profiler, drainTimeout time.Duration, tailDump string, baseGoroutines int, stderr io.Writer) error {
	fmt.Fprintln(stderr, "emserve: signal received; draining")
	srv.StartDrain()
	select {
	case <-srv.Drained():
		fmt.Fprintln(stderr, "emserve: drain complete")
	case <-time.After(drainTimeout + time.Second):
		fmt.Fprintln(stderr, "emserve: drain timed out; shutting down anyway")
	}
	if prof != nil {
		// Final capture of the run's end state, then stop the periodic
		// goroutine before the leak self-check counts it.
		if m, perr := prof.CaptureNow(contprof.TriggerDrain, "", ""); perr != nil {
			fmt.Fprintf(stderr, "emserve: drain capture: %v\n", perr)
		} else {
			fmt.Fprintf(stderr, "emserve: drain capture %s written to %s\n", m.ID, prof.Dir())
		}
		prof.Stop()
	}
	if tailDump != "" {
		// Drained means every in-flight request has emitted its wide
		// event, so the snapshot taken now is complete for this run.
		data, merr := json.MarshalIndent(srv.TailSnapshot(), "", "  ")
		if merr == nil {
			merr = os.WriteFile(tailDump, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(stderr, "emserve: tail dump: %v\n", merr)
		} else {
			fmt.Fprintf(stderr, "emserve: tail snapshot written to %s\n", tailDump)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "emserve: listener shutdown: %v\n", err)
	}
	// Self-check: after the drain everything we started must be gone.
	// Keep-alive conns and the runtime need a beat to wind down, so poll
	// with the same grace the test helper uses.
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseGoroutines {
		fmt.Fprintf(stderr, "emserve: warning: %d goroutine(s) may have leaked (%d -> %d)\n", n-baseGoroutines, baseGoroutines, n)
	} else {
		fmt.Fprintln(stderr, "emserve: no leaked goroutines")
	}
	return ctx.Err()
}
