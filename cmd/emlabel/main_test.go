package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/label"
	"emgo/internal/table"
)

func labelFixture() (*table.Table, *table.Table) {
	schema := table.MustSchema(
		table.Field{Name: "ID", Kind: table.String},
		table.Field{Name: "Title", Kind: table.String},
	)
	l := table.New("L", schema)
	l.MustAppend(table.Row{table.S("l0"), table.S("corn fungicide")})
	l.MustAppend(table.Row{table.S("l1"), table.S("swamp dodder")})
	r := table.New("R", schema)
	r.MustAppend(table.Row{table.S("r0"), table.S("Corn Fungicide")})
	r.MustAppend(table.Row{table.S("r1"), table.S("Swamp Dodder")})
	return l, r
}

func TestLabelLoop(t *testing.T) {
	l, r := labelFixture()
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}}
	store := label.NewStore()
	// y, garbage then u, then quit before the third pair.
	in := strings.NewReader("y\nmaybe\nu\nq\n")
	var out bytes.Buffer
	if err := labelLoop(context.Background(), in, &out, l, r, pairs, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("labels stored = %d", store.Len())
	}
	if store.Get(block.Pair{A: 0, B: 0}) != label.Yes {
		t.Fatal("first pair should be Yes")
	}
	if store.Get(block.Pair{A: 1, B: 1}) != label.Unsure {
		t.Fatal("second pair should be Unsure after the retry prompt")
	}
	text := out.String()
	if !strings.Contains(text, "pair 1/3") || !strings.Contains(text, "corn fungicide") {
		t.Fatalf("rendering: %s", text)
	}
	if !strings.Contains(text, "please answer") {
		t.Fatal("invalid input should re-prompt")
	}
}

func TestLabelLoopSkipAndEOF(t *testing.T) {
	l, r := labelFixture()
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}}
	store := label.NewStore()
	// Skip the first; EOF before answering the second.
	in := strings.NewReader("s\n")
	var out bytes.Buffer
	if err := labelLoop(context.Background(), in, &out, l, r, pairs, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("skip and EOF must store nothing")
	}
}

func TestWriteLabels(t *testing.T) {
	l, r := labelFixture()
	store := label.NewStore()
	store.Set(block.Pair{A: 0, B: 0}, label.Yes)
	store.Set(block.Pair{A: 1, B: 1}, label.No)
	path := filepath.Join(t.TempDir(), "labels.csv")

	if err := writeLabels(path, l, r, "ID", "ID", store); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "l0,r0,Yes") || !strings.Contains(got, "l1,r1,No") {
		t.Fatalf("output: %s", got)
	}

	// Row-index fallback when no ID columns given.
	if err := writeLabels(path, l, r, "", "", store); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if !strings.Contains(string(data), "0,0,Yes") {
		t.Fatalf("index output: %s", data)
	}

	// Unknown ID column errors.
	if err := writeLabels(path, l, r, "Nope", "ID", store); err == nil {
		t.Fatal("unknown ID column should error")
	}
}

func TestRenderPairRightOnlyColumns(t *testing.T) {
	l, _ := labelFixture()
	r := table.New("R", table.MustSchema(
		table.Field{Name: "ID", Kind: table.String},
		table.Field{Name: "Extra", Kind: table.String},
	))
	r.MustAppend(table.Row{table.S("r0"), table.S("bonus")})
	var out bytes.Buffer
	renderPair(&out, l, r, block.Pair{A: 0, B: 0})
	text := out.String()
	if !strings.Contains(text, "Extra") || !strings.Contains(text, "bonus") {
		t.Fatalf("right-only column missing: %s", text)
	}
	if !strings.Contains(text, "(no column)") {
		t.Fatalf("missing-column marker absent: %s", text)
	}
}

// TestLabelLoopInterrupted: a cancelled context ends the session like
// "q" — no error, and judgments recorded before the interrupt survive
// for the caller to flush.
func TestLabelLoopInterrupted(t *testing.T) {
	l, r := labelFixture()
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}}
	store := label.NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	in := strings.NewReader("y\ny\n")
	if err := labelLoop(ctx, in, &out, l, r, pairs, store); err != nil {
		t.Fatalf("interrupted session must end cleanly: %v", err)
	}
	if store.Counts().Total() != 0 {
		t.Fatalf("pre-cancelled session recorded %d labels", store.Counts().Total())
	}
}

// TestRunCtxInterruptFlushesPartialLabels drives the whole seam: the
// context is cancelled mid-session (after the first judgment), and the
// output CSV must still contain the labels collected so far.
func TestRunCtxInterruptFlushesPartialLabels(t *testing.T) {
	dir := t.TempDir()
	l, r := labelFixture()
	lPath := filepath.Join(dir, "l.csv")
	rPath := filepath.Join(dir, "r.csv")
	if err := l.WriteCSVFile(lPath); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSVFile(rPath); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "labels.csv")

	ctx, cancel := context.WithCancel(context.Background())
	// The reader cancels the context after serving the first judgment,
	// simulating SIGINT between pairs.
	in := &cancelAfterFirstRead{data: strings.NewReader("y\n"), cancel: cancel}
	var stdout, stderr bytes.Buffer
	err := runCtx(ctx, []string{
		"-left", lPath, "-right", rPath, "-on", "Title",
		"-left-id", "ID", "-right-id", "ID", "-out", out, "-n", "5",
	}, in, &stdout, &stderr)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("interrupted run should surface the cancellation, got %v", err)
	}
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatalf("partial labels not flushed: %v", rerr)
	}
	if !strings.Contains(string(data), "Yes") {
		t.Fatalf("flushed labels missing the recorded judgment: %s", data)
	}
	if !strings.Contains(stderr.String(), "partial labels saved") {
		t.Fatalf("stderr should note the flush: %s", stderr.String())
	}
}

// cancelAfterFirstRead serves its underlying reader, firing cancel once
// the first read completes.
type cancelAfterFirstRead struct {
	data   io.Reader
	cancel context.CancelFunc
	done   bool
}

func (c *cancelAfterFirstRead) Read(p []byte) (int, error) {
	n, err := c.data.Read(p)
	if !c.done && n > 0 {
		c.done = true
		defer c.cancel()
	}
	return n, err
}
