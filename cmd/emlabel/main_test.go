package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/label"
	"emgo/internal/table"
)

func labelFixture() (*table.Table, *table.Table) {
	schema := table.MustSchema(
		table.Field{Name: "ID", Kind: table.String},
		table.Field{Name: "Title", Kind: table.String},
	)
	l := table.New("L", schema)
	l.MustAppend(table.Row{table.S("l0"), table.S("corn fungicide")})
	l.MustAppend(table.Row{table.S("l1"), table.S("swamp dodder")})
	r := table.New("R", schema)
	r.MustAppend(table.Row{table.S("r0"), table.S("Corn Fungicide")})
	r.MustAppend(table.Row{table.S("r1"), table.S("Swamp Dodder")})
	return l, r
}

func TestLabelLoop(t *testing.T) {
	l, r := labelFixture()
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}}
	store := label.NewStore()
	// y, garbage then u, then quit before the third pair.
	in := strings.NewReader("y\nmaybe\nu\nq\n")
	var out bytes.Buffer
	if err := labelLoop(in, &out, l, r, pairs, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("labels stored = %d", store.Len())
	}
	if store.Get(block.Pair{A: 0, B: 0}) != label.Yes {
		t.Fatal("first pair should be Yes")
	}
	if store.Get(block.Pair{A: 1, B: 1}) != label.Unsure {
		t.Fatal("second pair should be Unsure after the retry prompt")
	}
	text := out.String()
	if !strings.Contains(text, "pair 1/3") || !strings.Contains(text, "corn fungicide") {
		t.Fatalf("rendering: %s", text)
	}
	if !strings.Contains(text, "please answer") {
		t.Fatal("invalid input should re-prompt")
	}
}

func TestLabelLoopSkipAndEOF(t *testing.T) {
	l, r := labelFixture()
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}}
	store := label.NewStore()
	// Skip the first; EOF before answering the second.
	in := strings.NewReader("s\n")
	var out bytes.Buffer
	if err := labelLoop(in, &out, l, r, pairs, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("skip and EOF must store nothing")
	}
}

func TestWriteLabels(t *testing.T) {
	l, r := labelFixture()
	store := label.NewStore()
	store.Set(block.Pair{A: 0, B: 0}, label.Yes)
	store.Set(block.Pair{A: 1, B: 1}, label.No)
	path := filepath.Join(t.TempDir(), "labels.csv")

	if err := writeLabels(path, l, r, "ID", "ID", store); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "l0,r0,Yes") || !strings.Contains(got, "l1,r1,No") {
		t.Fatalf("output: %s", got)
	}

	// Row-index fallback when no ID columns given.
	if err := writeLabels(path, l, r, "", "", store); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if !strings.Contains(string(data), "0,0,Yes") {
		t.Fatalf("index output: %s", data)
	}

	// Unknown ID column errors.
	if err := writeLabels(path, l, r, "Nope", "ID", store); err == nil {
		t.Fatal("unknown ID column should error")
	}
}

func TestRenderPairRightOnlyColumns(t *testing.T) {
	l, _ := labelFixture()
	r := table.New("R", table.MustSchema(
		table.Field{Name: "ID", Kind: table.String},
		table.Field{Name: "Extra", Kind: table.String},
	))
	r.MustAppend(table.Row{table.S("r0"), table.S("bonus")})
	var out bytes.Buffer
	renderPair(&out, l, r, block.Pair{A: 0, B: 0})
	text := out.String()
	if !strings.Contains(text, "Extra") || !strings.Contains(text, "bonus") {
		t.Fatalf("right-only column missing: %s", text)
	}
	if !strings.Contains(text, "(no column)") {
		t.Fatalf("missing-column marker absent: %s", text)
	}
}
