// Command emlabel is the labeling tool of the EM process (the Section 8
// "cloud-based labeling tool with a good UI", as a terminal program): it
// blocks two CSV tables on a column, samples candidate pairs, shows each
// pair side by side, and records Yes/No/Unsure judgments to a CSV the
// pipeline can train on.
//
// Usage:
//
//	emlabel -left a.csv -right b.csv -on Title [-n 20] [-seed 1] \
//	        [-left-id RecordId] [-right-id RecordId] [-out labels.csv]
//
// Keys: y = match, n = non-match, u = unsure, s = skip, q = quit.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"emgo/internal/block"
	"emgo/internal/cliutil"
	"emgo/internal/label"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func main() {
	// SIGINT/SIGTERM end the labeling session gracefully: judgments
	// recorded so far are flushed to -out before exiting 130, so an
	// interrupted session never loses the labels already collected.
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emlabel:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdin, stdout, stderr)
}

// runCtx is the whole program behind a testable seam.
func runCtx(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emlabel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	leftPath := fs.String("left", "", "left table CSV")
	rightPath := fs.String("right", "", "right table CSV")
	on := fs.String("on", "", "column to block on (word overlap, K=2)")
	n := fs.Int("n", 20, "how many pairs to sample")
	seed := fs.Int64("seed", 1, "sampling seed")
	leftID := fs.String("left-id", "", "left ID column for the output (default: row index)")
	rightID := fs.String("right-id", "", "right ID column for the output (default: row index)")
	out := fs.String("out", "labels.csv", "output CSV (left,right,label)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	if *leftPath == "" || *rightPath == "" || *on == "" {
		fmt.Fprintln(stderr, "usage: emlabel -left a.csv -right b.csv -on Column")
		return flag.ErrHelp
	}
	left, err := table.ReadCSVFile(*leftPath, nil)
	if err != nil {
		return err
	}
	right, err := table.ReadCSVFile(*rightPath, nil)
	if err != nil {
		return err
	}
	cand, err := (block.Overlap{
		LeftCol: *on, RightCol: *on,
		Tokenizer: tokenize.Word{}, Threshold: 2, Normalize: true,
	}).Block(left, right)
	if err != nil {
		return err
	}
	if cand.Len() == 0 {
		return fmt.Errorf("no candidate pairs; try a different -on column")
	}
	count := *n
	if count > cand.Len() {
		count = cand.Len()
	}
	pairs, err := cand.Sample(count, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	store := label.NewStore()
	fmt.Fprintf(stdout, "labeling %d of %d candidate pairs (y/n/u, s=skip, q=quit)\n\n", count, cand.Len())
	if err := labelLoop(ctx, stdin, stdout, left, right, pairs, store); err != nil {
		return err
	}

	// The session's judgments are flushed whether it finished, quit, or
	// was interrupted — collected labels are too expensive to lose.
	if err := writeLabels(*out, left, right, *leftID, *rightID, store); err != nil {
		return err
	}
	c := store.Counts()
	fmt.Fprintf(stdout, "wrote %d labels (%d Yes / %d No / %d Unsure) to %s\n",
		c.Total(), c.Yes, c.No, c.Unsure, *out)
	if cerr := ctx.Err(); cerr != nil {
		fmt.Fprintln(stderr, "emlabel: session interrupted; partial labels saved")
		return cerr
	}
	return nil
}

// labelLoop drives the interactive session: render each pair, read a
// judgment, store it. It is separated from main for testing. A
// cancelled ctx ends the session between pairs like "q" does; the
// caller flushes whatever was recorded.
func labelLoop(ctx context.Context, in io.Reader, out io.Writer, left, right *table.Table, pairs []block.Pair, store *label.Store) error {
	reader := bufio.NewScanner(in)
	for i, p := range pairs {
		if ctx.Err() != nil {
			return nil
		}
		fmt.Fprintf(out, "--- pair %d/%d ---\n", i+1, len(pairs))
		renderPair(out, left, right, p)
		for {
			fmt.Fprint(out, "match? [y/n/u/s/q] ")
			if !reader.Scan() {
				return nil // EOF ends the session gracefully
			}
			switch strings.TrimSpace(strings.ToLower(reader.Text())) {
			case "y":
				store.Set(p, label.Yes)
			case "n":
				store.Set(p, label.No)
			case "u":
				store.Set(p, label.Unsure)
			case "s":
				// skip: no label
			case "q":
				return nil
			default:
				fmt.Fprintln(out, "please answer y, n, u, s, or q")
				continue
			}
			break
		}
	}
	return reader.Err()
}

// renderPair prints the two records side by side, one attribute per line.
func renderPair(out io.Writer, left, right *table.Table, p block.Pair) {
	names := left.Schema().Names()
	for _, col := range names {
		lv := left.Get(p.A, col)
		var rv string
		if right.Schema().Has(col) {
			rv = right.Get(p.B, col).String()
		} else {
			rv = "(no column)"
		}
		fmt.Fprintf(out, "  %-20s %-38q %q\n", col, lv.String(), rv)
	}
	// Right-only columns.
	for _, col := range right.Schema().Names() {
		if !left.Schema().Has(col) {
			fmt.Fprintf(out, "  %-20s %-38q %q\n", col, "(no column)", right.Get(p.B, col).String())
		}
	}
}

// writeLabels persists the session as (left,right,label) rows, using ID
// columns when given and row indices otherwise.
func writeLabels(path string, left, right *table.Table, leftID, rightID string, store *label.Store) error {
	idOf := func(t *table.Table, col string, row int) (string, error) {
		if col == "" {
			return fmt.Sprint(row), nil
		}
		v, err := t.Value(row, col)
		if err != nil {
			return "", err
		}
		return v.Str(), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"left", "right", "label"}); err != nil {
		f.Close()
		return err
	}
	for _, p := range store.Pairs() {
		l, err := idOf(left, leftID, p.A)
		if err != nil {
			f.Close()
			return err
		}
		r, err := idOf(right, rightID, p.B)
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Write([]string{l, r, store.Get(p).String()}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
