// Command emgen generates the synthetic UMETRICS/USDA dataset as CSV
// files — the seven raw tables of Figure 2, the extra UMETRICS slice of
// Section 10, and a ground-truth file for evaluation.
//
// Usage:
//
//	emgen [-scale 1.0] [-seed 1] [-full] [-out data/]
//
// With -full the auxiliary tables are generated at the exact Figure 2 row
// counts (1.45M employee rows, 378K vendor rows, ...); the default keeps
// them compact, which is all the matching pipeline needs.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"emgo/internal/table"
	"emgo/internal/umetrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "data scale relative to the paper (1.0 = Figure 2 sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	full := flag.Bool("full", false, "generate auxiliary tables at full Figure 2 size")
	projected := flag.Bool("projected", false, "also run the Section 6 pre-processing and write the projected matching tables")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	var params umetrics.Params
	if *scale == 1.0 && *full {
		params = umetrics.PaperParams()
	} else {
		params = umetrics.TestParams(*scale)
		if *full {
			pp := umetrics.PaperParams()
			params.EmployeeRows = int(float64(pp.EmployeeRows) * *scale)
			params.VendorRows = int(float64(pp.VendorRows) * *scale)
			params.SubAwardRows = int(float64(pp.SubAwardRows) * *scale)
		}
	}
	params.Seed = *seed

	ds, err := umetrics.Generate(params)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	tables := map[string]*table.Table{
		"UMETRICSAwardAggMatching.csv":    ds.AwardAgg,
		"UMETRICSAwardAggExtra.csv":       ds.ExtraAwardAgg,
		"UMETRICSEmployeesMatching.csv":   ds.Employees,
		"UMETRICSObjectCodesMatching.csv": ds.ObjectCodes,
		"UMETRICSOrgUnitsMatching.csv":    ds.OrgUnits,
		"UMETRICSSubAwardMatching.csv":    ds.SubAward,
		"UMETRICSVendorMatching.csv":      ds.Vendor,
		"USDAAwardMatching.csv":           ds.USDA,
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := tables[name]
		path := filepath.Join(*out, name)
		if err := t.WriteCSVFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("%-36s %9d rows x %2d cols\n", name, t.Len(), t.Schema().Len())
	}
	if err := writeTruth(filepath.Join(*out, "ground_truth.csv"), ds); err != nil {
		fail(err)
	}
	fmt.Printf("%-36s %9d true match pairs\n", "ground_truth.csv", ds.Truth.NumMatches())

	if *projected {
		proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
		if err != nil {
			fail(err)
		}
		if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
			fail(err)
		}
		for name, t := range map[string]*table.Table{
			"UMETRICSProjected.csv": proj.UMETRICS,
			"USDAProjected.csv":     proj.USDA,
		} {
			if err := t.WriteCSVFile(filepath.Join(*out, name)); err != nil {
				fail(err)
			}
			fmt.Printf("%-36s %9d rows x %2d cols\n", name, t.Len(), t.Schema().Len())
		}
	}
}

// writeTruth dumps the true (UniqueAwardNumber, AccessionNumber) pairs
// and their classes.
func writeTruth(path string, ds *umetrics.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber", "Class"}); err != nil {
		f.Close()
		return err
	}
	keys := ds.Truth.Matches()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].UAN != keys[j].UAN {
			return keys[i].UAN < keys[j].UAN
		}
		return keys[i].Accession < keys[j].Accession
	})
	for _, k := range keys {
		class := ds.Truth.MatchClass(k.UAN, k.Accession)
		if err := w.Write([]string{k.UAN, k.Accession, class.String()}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "emgen:", err)
	os.Exit(1)
}
