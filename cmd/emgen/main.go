// Command emgen generates the synthetic UMETRICS/USDA dataset as CSV
// files — the seven raw tables of Figure 2, the extra UMETRICS slice of
// Section 10, and a ground-truth file for evaluation.
//
// Usage:
//
//	emgen [-scale 1.0] [-seed 1] [-full] [-out data/]
//
// With -full the auxiliary tables are generated at the exact Figure 2 row
// counts (1.45M employee rows, 378K vendor rows, ...); the default keeps
// them compact, which is all the matching pipeline needs.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"emgo/internal/cliutil"
	"emgo/internal/table"
	"emgo/internal/umetrics"
)

func main() {
	// SIGINT/SIGTERM stop the run between table writes (each write is
	// atomic, so no truncated CSV is ever left behind) and exit 130.
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emgen:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the whole program behind a testable seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "data scale relative to the paper (1.0 = Figure 2 sizes)")
	seed := fs.Int64("seed", 1, "generator seed")
	full := fs.Bool("full", false, "generate auxiliary tables at full Figure 2 size")
	projected := fs.Bool("projected", false, "also run the Section 6 pre-processing and write the projected matching tables")
	out := fs.String("out", "data", "output directory")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	var params umetrics.Params
	if *scale == 1.0 && *full {
		params = umetrics.PaperParams()
	} else {
		params = umetrics.TestParams(*scale)
		if *full {
			pp := umetrics.PaperParams()
			params.EmployeeRows = int(float64(pp.EmployeeRows) * *scale)
			params.VendorRows = int(float64(pp.VendorRows) * *scale)
			params.SubAwardRows = int(float64(pp.SubAwardRows) * *scale)
		}
	}
	params.Seed = *seed

	ds, err := umetrics.Generate(params)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	tables := map[string]*table.Table{
		"UMETRICSAwardAggMatching.csv":    ds.AwardAgg,
		"UMETRICSAwardAggExtra.csv":       ds.ExtraAwardAgg,
		"UMETRICSEmployeesMatching.csv":   ds.Employees,
		"UMETRICSObjectCodesMatching.csv": ds.ObjectCodes,
		"UMETRICSOrgUnitsMatching.csv":    ds.OrgUnits,
		"UMETRICSSubAwardMatching.csv":    ds.SubAward,
		"UMETRICSVendorMatching.csv":      ds.Vendor,
		"USDAAwardMatching.csv":           ds.USDA,
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// A signal between writes stops the run with every finished file
		// intact (WriteCSVFile is atomic, so none is ever truncated).
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		t := tables[name]
		path := filepath.Join(*out, name)
		if err := t.WriteCSVFile(path); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-36s %9d rows x %2d cols\n", name, t.Len(), t.Schema().Len())
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if err := writeTruth(filepath.Join(*out, "ground_truth.csv"), ds); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-36s %9d true match pairs\n", "ground_truth.csv", ds.Truth.NumMatches())

	if *projected {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
		if err != nil {
			return err
		}
		if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
			return err
		}
		for name, t := range map[string]*table.Table{
			"UMETRICSProjected.csv": proj.UMETRICS,
			"USDAProjected.csv":     proj.USDA,
		} {
			if err := t.WriteCSVFile(filepath.Join(*out, name)); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-36s %9d rows x %2d cols\n", name, t.Len(), t.Schema().Len())
		}
	}
	return nil
}

// writeTruth dumps the true (UniqueAwardNumber, AccessionNumber) pairs
// and their classes.
func writeTruth(path string, ds *umetrics.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber", "Class"}); err != nil {
		f.Close()
		return err
	}
	keys := ds.Truth.Matches()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].UAN != keys[j].UAN {
			return keys[i].UAN < keys[j].UAN
		}
		return keys[i].Accession < keys[j].Accession
	})
	for _, k := range keys {
		class := ds.Truth.MatchClass(k.UAN, k.Accession)
		if err := w.Write([]string{k.UAN, k.Accession, class.String()}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
