package main

import (
	"strings"
	"testing"
)

// run returns 2 (usage) for argument errors, without touching the
// network; these pin the CLI contract the smoke scripts rely on.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"unknown mode", []string{"-mode", "stress", "-addr", "x"}, "unknown mode"},
		{"run needs addr", []string{"-mode", "run"}, "-addr is required"},
		{"soak needs addr", []string{"-mode", "soak"}, "-addr is required"},
		{"capacity needs addr", []string{"-mode", "capacity"}, "-addr is required"},
		{"chaos needs server-bin", []string{"-mode", "chaos"}, "-server-bin is required"},
		{"bad blend", []string{"-addr", "x", "-blend", "single=oops"}, "blend"},
		{"bad slo", []string{"-mode", "soak", "-addr", "x", "-slo", "latency=banana"}, "-slo"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			code := run(tc.argv, &out, &errb)
			if code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", tc.argv, code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", errb.String(), tc.want)
			}
		})
	}
}

func TestNormalizeURL(t *testing.T) {
	cases := map[string]string{
		"":                        "",
		"127.0.0.1:8080":          "http://127.0.0.1:8080",
		"http://host:1/":          "http://host:1",
		"https://host.example/x/": "https://host.example/x",
	}
	for in, want := range cases {
		if got := normalizeURL(in); got != want {
			t.Errorf("normalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}
