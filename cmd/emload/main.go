// Command emload is the open-loop load generator and soak harness for
// emserve (see docs/SERVING.md, "Capacity & soak testing").
//
//	emload -addr 127.0.0.1:8080 -right USDAProjected.csv \
//	       [-mode run|soak|capacity|chaos|stream] \
//	       [-profile uniform|poisson|burst|ramp] [-rate 50] [-duration 30s] \
//	       [-seed 1] [-blend single=88,batch=5,job=0,malformed=2,oversized=1,status=4] \
//	       [-pick zipf|uniform] [-zipf-s 1.2] \
//	       [-burst-factor 4] [-burst-every 10s] [-burst-len 2s] [-ramp-to 200] \
//	       [-timeout 10s] [-shed-retries 0] [-max-retry-after 2s] \
//	       [-report-every 5s] [-summary out.json] \
//	       [-slo "availability=99.5,latency=500ms@99"] [-require-retry-after] \
//	       [-max-unexpected 0] [-max-job-failures 0] [-check-server] \
//	       [-start-qps 5] [-max-qps 0] [-factor 2] [-step-duration 10s] [-p99-target 500] \
//	       [-server-bin ./emserve] [-workdir DIR] [-kill-spec after:shard_00001.json] \
//	       [-fault-spec ml.predict:first=3,err=chaos-fault] [-min-resumed 1] \
//	       [-shard-size 4] [-job-timeout 120s] [-- emserve base args...]
//
// Modes:
//
//	run       one load phase, summary JSON out; exit 0 unless the run
//	          itself could not execute.
//	soak      run + gate: client-side SLOs, zero unexpected answers,
//	          Retry-After on every shed, async-job health, and the
//	          server's own /v1/status burn rates. Exit 1 on any breach —
//	          a CI gate, not a report.
//	capacity  stepped-QPS search for the max sustainable rate at the p99
//	          target; the staircase lands in the summary JSON (and from
//	          there in BENCH_*.json via scripts/bench_snapshot.sh).
//	chaos     supervised chaos-soak: boots its own emserve (-server-bin +
//	          args after --), trips and recovers the breaker under
//	          injected matcher faults, SIGKILLs the server at a shard
//	          boundary mid-load via EMCKPT_KILL, restarts it, and
//	          requires byte-identical job resume, Retry-After on sheds,
//	          a re-closed breaker, and a leak- and race-clean drain.
//	stream    resumable-results proof: submit a job, stream its results
//	          once cleanly and once with injected disconnects every
//	          -disconnect-every chunks (cursor persisted to
//	          -cursor-file), and require byte-identical reassembly; the
//	          chaos fetch's MB/s and resume count land in the summary.
//
// Everything is seeded and deterministic on the generator side: the
// same flags replay the same arrival schedule bit for bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emgo/internal/load"
	"emgo/internal/obs/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, the testable seam.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emload", flag.ContinueOnError)
	fs.SetOutput(stderr)

	mode := fs.String("mode", "run", "run | soak | capacity | chaos | stream")
	addr := fs.String("addr", "", "server under test (host:port or http URL); not used by -mode chaos")
	right := fs.String("right", "", "right-table CSV the record pool is mined from")
	summaryPath := fs.String("summary", "", "write the summary JSON here instead of stdout")

	profile := fs.String("profile", load.ProfilePoisson, "arrival profile: uniform | poisson | burst | ramp")
	rate := fs.Float64("rate", 50, "mean arrival rate (requests/second)")
	duration := fs.Duration("duration", 30*time.Second, "load phase length")
	seed := fs.Int64("seed", 1, "seed for every schedule draw (same seed = same schedule)")
	blendSpec := fs.String("blend", "", "request blend, e.g. single=88,batch=5,malformed=2,oversized=1,status=4 (empty = default)")
	pick := fs.String("pick", load.PickZipf, "record pick distribution: zipf | uniform")
	zipfS := fs.Float64("zipf-s", 1.2, "zipf skew exponent (>1)")
	burstFactor := fs.Float64("burst-factor", 4, "rate multiplier inside bursts (profile burst)")
	burstEvery := fs.Duration("burst-every", 10*time.Second, "burst period (profile burst)")
	burstLen := fs.Duration("burst-len", 2*time.Second, "burst length (profile burst)")
	rampTo := fs.Float64("ramp-to", 0, "final rate of profile ramp (0 = 4x -rate)")

	timeout := fs.Duration("timeout", 10*time.Second, "per-request client deadline")
	shedRetries := fs.Int("shed-retries", 0, "extra attempts for shed answers, honoring Retry-After under jittered backoff")
	maxRetryAfter := fs.Duration("max-retry-after", 2*time.Second, "cap on how long one Retry-After hint may stall a retry")
	batchSize := fs.Int("batch-size", 8, "records per batch request")
	jobRecords := fs.Int("job-records", 16, "records per blend-submitted async job")
	maxOutstanding := fs.Int("max-outstanding", 4096, "in-flight cap; arrivals past it are dropped (never delayed)")
	reportEvery := fs.Duration("report-every", 5*time.Second, "live eps/percentile line period (0 = silent)")

	sloSpec := fs.String("slo", "availability=99.5,latency=500ms@99", "client-side objectives the soak gate asserts (emserve -slo syntax)")
	maxUnexpected := fs.Int64("max-unexpected", 0, "allowed unexpected answers (wrong status for the request kind)")
	requireRetryAfter := fs.Bool("require-retry-after", true, "fail the gate when any shed answer lacks Retry-After")
	maxJobFailures := fs.Int64("max-job-failures", 0, "allowed async job failures")
	maxDropFrac := fs.Float64("max-drop-frac", 0.01, "allowed fraction of arrivals dropped at the outstanding cap")
	checkServer := fs.Bool("check-server", true, "also assert the server's /v1/status SLO burn rates")

	startQPS := fs.Float64("start-qps", 5, "capacity search: first step rate")
	maxQPS := fs.Float64("max-qps", 0, "capacity search: rate ceiling (0 = 4096x start)")
	factor := fs.Float64("factor", 2, "capacity search: rate multiplier between steps")
	stepDuration := fs.Duration("step-duration", 10*time.Second, "capacity search: per-step length")
	p99Target := fs.Float64("p99-target", 500, "capacity search: p99 bar in ms a step must hold")
	profCapture := fs.Bool("prof-capture", false, "capacity search: trigger a server profile capture and replay one step at the settled rate (needs emserve -prof-dir)")

	serverBin := fs.String("server-bin", "", "chaos: emserve binary to supervise (base args after --)")
	workDir := fs.String("workdir", "", "chaos: scratch dir for job dirs, logs, address files (default: a temp dir)")
	killSpec := fs.String("kill-spec", "after:shard_00001.json", "chaos: EMCKPT_KILL spec armed on the victim server")
	faultSpec := fs.String("fault-spec", "ml.predict:first=3,err=chaos-fault", "chaos: -inject plan armed on the victim server")
	breakerFailures := fs.Int("breaker-failures", 2, "chaos: victim's -breaker-failures")
	breakerCooldown := fs.Duration("breaker-cooldown", 300*time.Millisecond, "chaos: victim's -breaker-cooldown")
	minResumed := fs.Int("min-resumed", 1, "chaos: resumed-shard floor the restarted job must report")
	shardSize := fs.Int("shard-size", 4, "chaos/stream: canonical job shard size")
	chaosJobRecords := fs.Int("chaos-job-records", 24, "chaos: canonical job record count")
	jobTimeout := fs.Duration("job-timeout", 120*time.Second, "chaos/stream: per-await job deadline")

	disconnectEvery := fs.Int("disconnect-every", 1, "stream: drop the connection after this many committed chunks and resume (0 = no chaos)")
	cursorPath := fs.String("cursor-file", "", "stream: persist the committed resume cursor to this file after every chunk")

	if err := fs.Parse(argv); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	blend := load.DefaultBlend()
	if *blendSpec != "" {
		b, err := load.ParseBlend(*blendSpec)
		if err != nil {
			fmt.Fprintf(stderr, "emload: %v\n", err)
			return 2
		}
		blend = b
	}

	var pool *load.RecordPool
	if *right != "" {
		p, err := load.NewRecordPool(*right)
		if err != nil {
			fmt.Fprintf(stderr, "emload: %v\n", err)
			return 2
		}
		pool = p
	}

	sched := load.ScheduleConfig{
		Profile:     *profile,
		Rate:        *rate,
		Duration:    *duration,
		Seed:        *seed,
		BurstFactor: *burstFactor,
		BurstEvery:  *burstEvery,
		BurstLen:    *burstLen,
		RampTo:      *rampTo,
		Pick:        *pick,
		ZipfS:       *zipfS,
		Blend:       blend,
	}
	if pool != nil {
		sched.PickN = pool.Size()
	}
	clientCfg := load.ClientConfig{
		BaseURL:       normalizeURL(*addr),
		Timeout:       *timeout,
		Seed:          *seed,
		ShedRetries:   *shedRetries,
		MaxRetryAfter: *maxRetryAfter,
		BatchSize:     *batchSize,
		JobRecords:    *jobRecords,
	}

	summary := &load.Summary{GeneratedBy: "emload", Mode: *mode, Target: clientCfg.BaseURL, Pass: true}
	var code int
	switch *mode {
	case "run", "soak":
		if *addr == "" {
			fmt.Fprintln(stderr, "emload: -addr is required for -mode run/soak")
			return 2
		}
		objectives, err := slo.ParseObjectives(*sloSpec)
		if err != nil {
			fmt.Fprintf(stderr, "emload: -slo: %v\n", err)
			return 2
		}
		res, err := load.Run(ctx, load.RunConfig{
			Schedule:       sched,
			Client:         clientCfg,
			Pool:           pool,
			MaxOutstanding: *maxOutstanding,
			ReportEvery:    *reportEvery,
			Report:         stderr,
		})
		if res == nil {
			fmt.Fprintf(stderr, "emload: %v\n", err)
			return 2
		}
		summary.Phases = append(summary.Phases, load.NewPhaseSummary(*mode, sched, res))
		if *mode == "soak" {
			gate := load.Gate{
				Objectives:        objectives,
				MaxUnexpected:     *maxUnexpected,
				RequireRetryAfter: *requireRetryAfter,
				MaxJobFailures:    *maxJobFailures,
				MaxDropFrac:       *maxDropFrac,
			}
			if *checkServer {
				gate.CheckServer = load.NewClient(clientCfg, pool)
			}
			summary.Gate = gate.Evaluate(ctx, res)
			summary.Pass = summary.Gate.Pass
			for _, c := range summary.Gate.Checks {
				verdict := "ok"
				if !c.Pass {
					verdict = "BREACH"
				}
				fmt.Fprintf(stderr, "emload: gate %-20s %-6s %s\n", c.Name, verdict, c.Detail)
			}
		}

	case "capacity":
		if *addr == "" {
			fmt.Fprintln(stderr, "emload: -addr is required for -mode capacity")
			return 2
		}
		cres, err := load.SearchCapacity(ctx, load.CapacityConfig{
			StartQPS:       *startQPS,
			MaxQPS:         *maxQPS,
			Factor:         *factor,
			StepDuration:   *stepDuration,
			P99TargetMS:    *p99Target,
			TriggerProfile: *profCapture,
			Schedule:       sched,
			Client:         clientCfg,
			Pool:           pool,
			MaxOutstanding: *maxOutstanding,
			ReportEvery:    *reportEvery,
			Report:         stderr,
		})
		if err != nil && cres == nil {
			fmt.Fprintf(stderr, "emload: %v\n", err)
			return 2
		}
		summary.Capac = cres
		summary.Pass = cres.MaxSustainableQPS > 0
		fmt.Fprintf(stderr, "emload: max sustainable rate %.1f qps at p99 <= %.0fms (achieved %.1f qps, p99 %.1fms)\n",
			cres.MaxSustainableQPS, cres.P99TargetMS, cres.AchievedAtMaxQPS, cres.P99AtMaxMS)

	case "stream":
		if *addr == "" {
			fmt.Fprintln(stderr, "emload: -addr is required for -mode stream")
			return 2
		}
		sres, err := load.RunStream(ctx, load.StreamRunConfig{
			Client:          clientCfg,
			Pool:            pool,
			JobRecords:      *jobRecords,
			ShardSize:       *shardSize,
			DisconnectEvery: *disconnectEvery,
			CursorPath:      *cursorPath,
			JobTimeout:      *jobTimeout,
			Report:          stderr,
		})
		if err != nil {
			fmt.Fprintf(stderr, "emload: stream: %v\n", err)
			return 2
		}
		summary.Stream = sres
		summary.Pass = sres.Pass

	case "chaos":
		if *serverBin == "" {
			fmt.Fprintln(stderr, "emload: -server-bin is required for -mode chaos (emserve base args after --)")
			return 2
		}
		wd := *workDir
		if wd == "" {
			tmp, err := os.MkdirTemp("", "emload-chaos-")
			if err != nil {
				fmt.Fprintf(stderr, "emload: %v\n", err)
				return 2
			}
			defer os.RemoveAll(tmp)
			wd = tmp
		}
		chres, err := load.RunChaos(ctx, load.ChaosConfig{
			Server:          load.ServerConfig{Bin: *serverBin, Args: fs.Args(), WorkDir: wd},
			Client:          clientCfg,
			Pool:            pool,
			JobRecords:      *chaosJobRecords,
			ShardSize:       *shardSize,
			JobTimeout:      *jobTimeout,
			MinResumed:      *minResumed,
			KillSpec:        *killSpec,
			FaultSpec:       *faultSpec,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
			Rate:            *rate,
			LoadDuration:    *duration,
			Seed:            *seed,
			Blend:           blend,
			ReportEvery:     *reportEvery,
			Report:          stderr,
		})
		if err != nil {
			fmt.Fprintf(stderr, "emload: chaos: %v\n", err)
			return 2
		}
		summary.Target = *serverBin
		summary.Chaos = chres
		summary.Phases = chres.Phases
		summary.Pass = chres.Pass

	default:
		fmt.Fprintf(stderr, "emload: unknown mode %q (want run|soak|capacity|chaos)\n", *mode)
		return 2
	}

	out := io.Writer(stdout)
	if *summaryPath != "" {
		f, err := os.Create(*summaryPath)
		if err != nil {
			fmt.Fprintf(stderr, "emload: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	if err := summary.Write(out); err != nil {
		fmt.Fprintf(stderr, "emload: write summary: %v\n", err)
		return 2
	}
	if !summary.Pass {
		fmt.Fprintln(stderr, "emload: FAIL")
		if code == 0 {
			code = 1
		}
	}
	return code
}

// normalizeURL accepts host:port or a full URL.
func normalizeURL(addr string) string {
	if addr == "" {
		return ""
	}
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}
