// Command emprofile prints per-column statistics of CSV tables — the
// exploration step of Section 4 (the pandas-profiling role): missing and
// unique counts, numeric statistics, and the most frequent values.
//
// Usage:
//
//	emprofile [-top] file.csv [file2.csv ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/table"
)

func main() {
	top := flag.Bool("top", false, "also print each column's most frequent values")
	patterns := flag.Bool("patterns", false, "also print each string column's identifier shapes (digits→#, letters→X, years→YYYY)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: emprofile [-top] file.csv ...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		t, err := table.ReadCSVFile(path, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emprofile:", err)
			os.Exit(1)
		}
		rep := profile.Profile(t)
		fmt.Print(rep)
		if *top {
			for _, c := range rep.Columns {
				if len(c.Top) == 0 {
					continue
				}
				fmt.Printf("  %s top values:", c.Name)
				for _, tv := range c.Top {
					fmt.Printf(" %q×%d", tv.Value, tv.Count)
				}
				fmt.Println()
			}
		}
		if *patterns {
			gen := func(s string) string { return string(rules.Generalize(s)) }
			for _, c := range rep.Columns {
				if c.Kind != table.String {
					continue
				}
				shapes, err := profile.Patterns(t, c.Name, 5, gen)
				if err != nil || len(shapes) == 0 {
					continue
				}
				fmt.Printf("  %s shapes:", c.Name)
				for _, s := range shapes {
					fmt.Printf(" %q×%d", s.Pattern, s.Count)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}
}
