// Command emprofile prints per-column statistics of CSV tables — the
// exploration step of Section 4 (the pandas-profiling role): missing and
// unique counts, numeric statistics, and the most frequent values.
//
// Usage:
//
//	emprofile [-top] [-patterns] file.csv [file2.csv ...]
//
// Stream discipline: stdout carries only the profile report (the data),
// so it can be piped or redirected; per-file progress and every
// diagnostic go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"emgo/internal/cliutil"
	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/table"
)

func main() {
	// SIGINT/SIGTERM stop the run between files; the interrupt exits
	// with the conventional 130 instead of a generic failure.
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emprofile:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the program behind a testable seam; a panic anywhere in
// profiling becomes a one-line diagnostic instead of a stack trace.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()

	fs := flag.NewFlagSet("emprofile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Bool("top", false, "also print each column's most frequent values")
	patterns := fs.Bool("patterns", false, "also print each string column's identifier shapes (digits→#, letters→X, years→YYYY)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: emprofile [-top] [-patterns] file.csv ...")
		return flag.ErrHelp
	}
	for _, path := range fs.Args() {
		// A signal between files stops the sweep cleanly: finished
		// profiles have already been written to stdout.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		t, err := table.ReadCSVFile(path, nil)
		if err != nil {
			return err // ReadCSVFile already names the file
		}
		fmt.Fprintf(stderr, "emprofile: %s: %d rows, %d columns\n", path, t.Len(), t.Schema().Len())
		rep := profile.Profile(t)
		fmt.Fprint(stdout, rep)
		if *top {
			for _, c := range rep.Columns {
				if len(c.Top) == 0 {
					continue
				}
				fmt.Fprintf(stdout, "  %s top values:", c.Name)
				for _, tv := range c.Top {
					fmt.Fprintf(stdout, " %q×%d", tv.Value, tv.Count)
				}
				fmt.Fprintln(stdout)
			}
		}
		if *patterns {
			gen := func(s string) string { return string(rules.Generalize(s)) }
			for _, c := range rep.Columns {
				if c.Kind != table.String {
					continue
				}
				shapes, err := profile.Patterns(t, c.Name, 5, gen)
				if err != nil || len(shapes) == 0 {
					continue
				}
				fmt.Fprintf(stdout, "  %s shapes:", c.Name)
				for _, s := range shapes {
					fmt.Fprintf(stdout, " %q×%d", s.Pattern, s.Count)
				}
				fmt.Fprintln(stdout)
			}
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
