package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProfilesCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("Id,Score\na,1\nb,2\nc,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-top", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Id") || !strings.Contains(out, "Score") {
		t.Fatalf("profile missing columns:\n%s", out)
	}
}

func TestRunMalformedCSVIsOneLineError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(path, []byte("Id,Score\na,\"1\nb,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{path}, &stdout, &stderr)
	if err == nil {
		t.Fatal("malformed CSV must fail")
	}
	msg := err.Error()
	if strings.Contains(msg, "\n") || strings.Contains(msg, "goroutine") {
		t.Fatalf("diagnostic is not one line: %q", msg)
	}
	if !strings.Contains(msg, "bad.csv") {
		t.Fatalf("diagnostic does not name the file: %q", msg)
	}
}

func TestRunNoArgsIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
