package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emgo/internal/obs"
	"emgo/internal/workflow"
)

// TestRunSmallScaleWithObservability runs the whole case study at a
// small scale with -report and -trace, checking the stream discipline
// (report on stdout? no — files; human report on stdout; progress on
// stderr) and that the written artifacts parse.
func TestRunSmallScaleWithObservability(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "run.json")
	tracePath := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "0.15", "-seed", "7",
		"-report", reportPath, "-trace", tracePath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	// The human-readable report is the stdout data document.
	if !strings.Contains(stdout.String(), "Section 4 / Figure 2") {
		t.Fatalf("stdout does not look like the case-study report:\n%.400s", stdout.String())
	}
	// Diagnostics live on stderr.
	if !strings.Contains(stderr.String(), "wrote run report") {
		t.Fatalf("stderr: %s", stderr.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Name != "emcasestudy" || rep.Outcome != workflow.OutcomeOK {
		t.Fatalf("report header: name=%q outcome=%q error=%q", rep.Name, rep.Outcome, rep.Error)
	}
	if rep.Trace == nil {
		t.Fatal("report has no trace")
	}
	sections := map[string]bool{}
	for _, c := range rep.Trace.Children {
		sections[c.Name] = true
	}
	for _, want := range []string{
		"casestudy.generate", "casestudy.blocking", "casestudy.matching",
	} {
		if !sections[want] {
			t.Fatalf("trace missing section span %s (have %v)", want, sections)
		}
	}
	// The registry was armed, so the learning hot path must have ticked.
	if rep.Metrics == nil || rep.Metrics.Counters["ml.predictions"] < 1 {
		t.Fatalf("metrics missing or empty: %+v", rep.Metrics)
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceData), `"emcasestudy"`) {
		t.Fatalf("trace file: %.200s", traceData)
	}
}
