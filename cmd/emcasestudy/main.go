// Command emcasestudy runs the full UMETRICS/USDA entity-matching case
// study end to end — data generation, exploration, pre-processing,
// blocking, sampling and labeling, matcher selection, the three workflow
// generations, and accuracy estimation — and prints every number next to
// the value the paper reports.
//
// Usage:
//
//	emcasestudy [-scale 1.0] [-seed 7] [-out matches.csv] \
//	            [-report run.json] [-trace trace.json] [-debug-addr :6060] \
//	            [-checkpoint-dir ckpt/ [-resume]] [-history runs/]
//
// Crash safety: -checkpoint-dir persists each completed section
// durably; rerunning with -resume restores validated checkpoints (and
// fast-forwards the run's random streams to match) instead of
// recomputing, so a killed study resumes from its last durable section.
// The store is fingerprinted by the full configuration — a different
// -scale or -seed discards it.
//
// Observability: -report writes a machine-readable run report (section
// spans, hot-path counters, fault/retry counts); -trace writes just the
// span tree; -debug-addr serves live expvar metrics and pprof during the
// run — useful because a full-scale case study runs long enough to
// profile. -history appends the run report to an append-only JSONL
// directory so emmonitor can diff and track study runs over time. The
// human-readable report stays on stdout; diagnostics and progress go to
// stderr.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/cliutil"
	"emgo/internal/obs"
	"emgo/internal/obs/history"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

func main() {
	// SIGINT/SIGTERM cancel the study context: sections stop at their
	// next cancellation check, completed-section checkpoints and the run
	// report flush on the way out, and the interrupt exits distinctly.
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "emcasestudy:", err)
		if interrupted {
			os.Exit(cliutil.ExitInterrupted)
		}
		os.Exit(1)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the whole program behind a testable seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emcasestudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "data scale relative to the paper (1.0 = Figure 2 sizes)")
	seed := fs.Int64("seed", 7, "seed for every random choice in the run")
	out := fs.String("out", "", "optional CSV file for the final match ID pairs")
	labelsOut := fs.String("labels", "", "optional CSV file for the released labeled pairs")
	specOut := fs.String("spec", "", "optional JSON file for the packaged deployment workflow")
	reportPath := fs.String("report", "", "write the observability run report JSON to this path")
	tracePath := fs.String("trace", "", "write the span trace tree JSON to this path")
	debugAddr := fs.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) at this address during the run, e.g. :6060")
	ckptDir := fs.String("checkpoint-dir", "", "write crash-safe section checkpoints under this directory")
	resume := fs.Bool("resume", false, "restore completed sections from -checkpoint-dir instead of recomputing them")
	historyDir := fs.String("history", "", "append the run report to this run-history directory (for emmonitor)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp // the FlagSet already printed the diagnostic
	}

	cfg := umetrics.DefaultConfig()
	if *scale != 1.0 {
		cfg = umetrics.TestConfig(*scale)
	}
	cfg.Seed = *seed

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		store, err := ckpt.Open(*ckptDir, cfg.Fingerprint())
		if err != nil {
			return fmt.Errorf("checkpoint store: %w", err)
		}
		if reason := store.Discarded(); reason != "" {
			fmt.Fprintf(stderr, "emcasestudy: prior checkpoints discarded: %s\n", reason)
		}
		if !*resume {
			// A fresh run was requested: retire any prior artifacts to the
			// quarantine directory so they cannot influence this run.
			for _, name := range store.Names() {
				store.Quarantine(name, "fresh run requested (-checkpoint-dir without -resume)")
			}
		} else if n := len(store.Names()); n > 0 {
			fmt.Fprintf(stderr, "emcasestudy: resuming from %d checkpoint(s) in %s\n", n, *ckptDir)
		}
		cfg.Checkpoints = store
	}

	if *reportPath != "" || *tracePath != "" || *debugAddr != "" || *historyDir != "" {
		obs.Enable()
	}
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(stderr, "emcasestudy: debug server on http://%s/debug/\n", dbg.Addr())
	}
	started := time.Now()
	var root *obs.Span
	if *reportPath != "" || *tracePath != "" || *historyDir != "" {
		ctx, root = obs.NewTrace(ctx, "emcasestudy")
	}

	rep, runErr := umetrics.RunCtxStudy(ctx, cfg)
	root.End()
	if *tracePath != "" {
		data, err := json.MarshalIndent(root.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*tracePath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "emcasestudy: writing trace:", err)
		} else {
			fmt.Fprintf(stderr, "emcasestudy: wrote trace to %s\n", *tracePath)
		}
	}
	if *reportPath != "" || *historyDir != "" {
		outcome := workflow.OutcomeOK
		obsRep := &obs.Report{
			Name:      "emcasestudy",
			StartedAt: started, FinishedAt: time.Now(),
			Trace: root.Snapshot(),
		}
		if runErr != nil {
			outcome = workflow.OutcomeAborted
			obsRep.Error = runErr.Error()
		}
		obsRep.Outcome = outcome
		if obs.Enabled() {
			snap := obs.Default().Snapshot()
			obsRep.Metrics = &snap
		}
		if *reportPath != "" {
			data, err := obsRep.Marshal()
			if err == nil {
				err = os.WriteFile(*reportPath, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(stderr, "emcasestudy: writing run report:", err)
			} else {
				fmt.Fprintf(stderr, "emcasestudy: wrote run report to %s\n", *reportPath)
			}
		}
		if *historyDir != "" {
			store, err := history.Open(*historyDir)
			if err == nil {
				err = store.Append(obsRep)
			}
			if err != nil {
				fmt.Fprintln(stderr, "emcasestudy: appending run history:", err)
			} else {
				fmt.Fprintf(stderr, "emcasestudy: appended run report to %s\n", store.Path())
			}
		}
	}
	if runErr != nil {
		return runErr
	}
	rep.Write(stdout)

	if *out != "" {
		if err := writeMatches(*out, rep); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d matches to %s\n", len(rep.Matches), *out)
	}
	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, rep); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d labeled pairs to %s\n", len(rep.LabeledPairs), *labelsOut)
	}
	if *specOut != "" {
		data, err := rep.Deployment.Marshal()
		if err == nil {
			err = os.WriteFile(*specOut, data, 0o644)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote deployment workflow spec to %s\n", *specOut)
	}
	return nil
}

// writeLabels releases the labeled tuple pairs — the dataset contribution
// the paper makes ("to serve as a good challenge problem for EM
// researchers").
func writeLabels(path string, rep *umetrics.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber", "Label", "Phase"}); err != nil {
		f.Close()
		return err
	}
	for _, lp := range rep.LabeledPairs {
		if err := w.Write([]string{lp.UAN, lp.Accession, lp.Label.String(), lp.Phase}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMatches writes the final matches as (UniqueAwardNumber,
// AccessionNumber) pairs — the deliverable format of Section 12.
func writeMatches(path string, rep *umetrics.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber"}); err != nil {
		f.Close()
		return err
	}
	for _, m := range rep.Matches {
		if err := w.Write([]string{m.Left, m.Right}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
