// Command emcasestudy runs the full UMETRICS/USDA entity-matching case
// study end to end — data generation, exploration, pre-processing,
// blocking, sampling and labeling, matcher selection, the three workflow
// generations, and accuracy estimation — and prints every number next to
// the value the paper reports.
//
// Usage:
//
//	emcasestudy [-scale 1.0] [-seed 7] [-out matches.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"emgo/internal/umetrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "data scale relative to the paper (1.0 = Figure 2 sizes)")
	seed := flag.Int64("seed", 7, "seed for every random choice in the run")
	out := flag.String("out", "", "optional CSV file for the final match ID pairs")
	labelsOut := flag.String("labels", "", "optional CSV file for the released labeled pairs")
	specOut := flag.String("spec", "", "optional JSON file for the packaged deployment workflow")
	flag.Parse()

	cfg := umetrics.DefaultConfig()
	if *scale != 1.0 {
		cfg = umetrics.TestConfig(*scale)
	}
	cfg.Seed = *seed

	rep, err := umetrics.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcasestudy:", err)
		os.Exit(1)
	}
	rep.Write(os.Stdout)

	if *out != "" {
		if err := writeMatches(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "emcasestudy:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d matches to %s\n", len(rep.Matches), *out)
	}
	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "emcasestudy:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d labeled pairs to %s\n", len(rep.LabeledPairs), *labelsOut)
	}
	if *specOut != "" {
		data, err := rep.Deployment.Marshal()
		if err == nil {
			err = os.WriteFile(*specOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "emcasestudy:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote deployment workflow spec to %s\n", *specOut)
	}
}

// writeLabels releases the labeled tuple pairs — the dataset contribution
// the paper makes ("to serve as a good challenge problem for EM
// researchers").
func writeLabels(path string, rep *umetrics.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber", "Label", "Phase"}); err != nil {
		f.Close()
		return err
	}
	for _, lp := range rep.LabeledPairs {
		if err := w.Write([]string{lp.UAN, lp.Accession, lp.Label.String(), lp.Phase}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMatches writes the final matches as (UniqueAwardNumber,
// AccessionNumber) pairs — the deliverable format of Section 12.
func writeMatches(path string, rep *umetrics.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"UniqueAwardNumber", "AccessionNumber"}); err != nil {
		f.Close()
		return err
	}
	for _, m := range rep.Matches {
		if err := w.Write([]string{m.Left, m.Right}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
