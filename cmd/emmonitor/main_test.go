package main

import (
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emgo/internal/drift"
	"emgo/internal/obs"
	"emgo/internal/obs/history"
	"emgo/internal/obs/slo"
)

// fixtureProfiles builds a baseline and a live profile; drifted controls
// whether the live one is shifted far past the fail thresholds.
func fixtureProfiles(t *testing.T, drifted bool) (*drift.Profile, *drift.Profile) {
	t.Helper()
	build := func(mean float64, name string) *drift.Profile {
		c := drift.NewCollector(0, 1)
		c.SetFeatureNames([]string{"jaccard"})
		for i := 0; i < 400; i++ {
			c.ObserveVector([]float64{mean + float64(i%100)/1000})
			c.ObservePrediction(i%2, mean, true)
		}
		return c.Profile(name, 100, 100, []int{1, 2, 3, 0}, nil)
	}
	base := build(0.2, "baseline")
	live := base
	if drifted {
		live = build(0.9, "live")
	} else {
		live = build(0.2, "live")
	}
	return base, live
}

// writeRunReport persists a run report embedding the live profile.
func writeRunReport(t *testing.T, dir string, live *drift.Profile) string {
	t.Helper()
	rep := &obs.Report{
		Name: "deploy-slice", Outcome: "ok",
		StartedAt: time.Unix(10, 0), FinishedAt: time.Unix(12, 0),
		Quality: drift.CaptureQuality(live),
	}
	path := filepath.Join(dir, "run.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassesOnIdenticalProfile(t *testing.T) {
	dir := t.TempDir()
	base, live := fixtureProfiles(t, false)
	basePath := filepath.Join(dir, "baseline.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	runPath := writeRunReport(t, dir, live)

	var out, errOut strings.Builder
	if err := run([]string{"check", "-baseline", basePath, "-run", runPath}, &out, &errOut); err != nil {
		t.Fatalf("clean check failed: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "verdict ok") {
		t.Fatalf("check output:\n%s", out.String())
	}
}

func TestCheckBreachesOnDriftedProfile(t *testing.T) {
	dir := t.TempDir()
	base, live := fixtureProfiles(t, true)
	basePath := filepath.Join(dir, "baseline.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	runPath := writeRunReport(t, dir, live)

	var out, errOut strings.Builder
	err := run([]string{"check", "-baseline", basePath, "-run", runPath}, &out, &errOut)
	if !errors.Is(err, errBreach) {
		t.Fatalf("drifted check returned %v, want errBreach\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verdict fail") {
		t.Fatalf("check output:\n%s", out.String())
	}
}

func TestCheckUsesLatestHistoryRun(t *testing.T) {
	dir := t.TempDir()
	base, live := fixtureProfiles(t, false)
	basePath := filepath.Join(dir, "baseline.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	histDir := filepath.Join(dir, "history")
	store, err := history.Open(histDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(&obs.Report{Name: "older", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(&obs.Report{Name: "latest", Outcome: "ok", Quality: drift.CaptureQuality(live)}); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if err := run([]string{"check", "-baseline", basePath, "-dir", histDir}, &out, &errOut); err != nil {
		t.Fatalf("history check failed: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "run latest") {
		t.Fatalf("did not check the most recent run:\n%s", out.String())
	}
}

func TestCheckCustomThresholdsAndStrict(t *testing.T) {
	dir := t.TempDir()
	base, live := fixtureProfiles(t, false)
	basePath := filepath.Join(dir, "baseline.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	// The identical profiles differ only in row counts (none here), so
	// with an absurdly tight warn threshold on nothing they still pass;
	// instead verify a typoed threshold key is rejected.
	badTh := filepath.Join(dir, "th.json")
	if err := writeFile(badTh, `{"psi_wrn": 0.5}`); err != nil {
		t.Fatal(err)
	}
	runPath := writeRunReport(t, dir, live)
	var out, errOut strings.Builder
	err := run([]string{"check", "-baseline", basePath, "-run", runPath, "-thresholds", badTh}, &out, &errOut)
	if err == nil || errors.Is(err, errBreach) {
		t.Fatalf("typoed thresholds accepted: %v", err)
	}
}

func TestCheckRejectsReportWithoutProfile(t *testing.T) {
	dir := t.TempDir()
	base, _ := fixtureProfiles(t, false)
	basePath := filepath.Join(dir, "baseline.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	rep := &obs.Report{Name: "plain", Outcome: "ok"}
	runPath := filepath.Join(dir, "run.json")
	if err := rep.WriteFile(runPath); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run([]string{"check", "-baseline", basePath, "-run", runPath}, &out, &errOut)
	if err == nil || errors.Is(err, errBreach) {
		t.Fatalf("report without profile: %v", err)
	}
}

func TestDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	a := &obs.Report{Name: "a", Outcome: "ok",
		Metrics: &obs.MetricsSnapshot{Counters: map[string]int64{"ml.predictions": 10}}}
	b := &obs.Report{Name: "b", Outcome: "ok",
		Metrics: &obs.MetricsSnapshot{Counters: map[string]int64{"ml.predictions": 30}}}
	pa := filepath.Join(dir, "a.json")
	pb := filepath.Join(dir, "b.json")
	if err := a.WriteFile(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(pb); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run([]string{"diff", pa, pb}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ml.predictions") || !strings.Contains(out.String(), "+20") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

func TestHistorySubcommand(t *testing.T) {
	dir := t.TempDir()
	store, err := history.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"one", "two"} {
		rep := &obs.Report{Name: name, Outcome: "ok",
			StartedAt: time.Unix(10, 0), FinishedAt: time.Unix(11, 0),
			Quality: &obs.QualityData{Verdict: "ok"}}
		if err := store.Append(rep); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut strings.Builder
	if err := run([]string{"history", "-dir", dir}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"one", "two", "outcome", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("history output missing %q:\n%s", want, out.String())
		}
	}
	if err := run([]string{"history"}, &out, &errOut); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("missing -dir: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no args: %v", err)
	}
	if err := run([]string{"bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"check"}, &out, &errOut); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("check without flags: %v", err)
	}
	if err := run([]string{"diff", "only-one"}, &out, &errOut); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("diff with one arg: %v", err)
	}
}

// writeFile is a tiny test helper for literal fixtures.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// sloFixture renders a status document whose SLO report has the given
// breach state.
func sloFixture(t *testing.T, dir string, breached bool) string {
	t.Helper()
	rep := &slo.Report{
		GeneratedAt:   time.Unix(100, 0),
		FastWindowMS:  300000,
		SlowWindowMS:  3600000,
		BurnThreshold: 14.4,
		Breached:      breached,
		Objectives: []slo.ObjectiveStatus{{
			Objective: slo.Objective{Name: "availability", Kind: slo.KindAvailability, Target: 99.9},
			FastBurn:  0.5, SlowBurn: 0.2, FastBad: 1, FastTotal: 200, SlowBad: 2, SlowTotal: 900,
		}},
	}
	if breached {
		o := &rep.Objectives[0]
		o.FastBurn, o.SlowBurn, o.Breached = 100, 100, true
	}
	data, err := json.Marshal(map[string]any{"ready": true, "slo": rep})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "status.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSLOHealthyFromFile(t *testing.T) {
	path := sloFixture(t, t.TempDir(), false)
	var out, errOut strings.Builder
	if err := run([]string{"slo", "-file", path}, &out, &errOut); err != nil {
		t.Fatalf("healthy slo: %v", err)
	}
	for _, want := range []string{"availability", "error budget holds"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("slo output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSLOBreachExitsOne(t *testing.T) {
	path := sloFixture(t, t.TempDir(), true)
	var out, errOut strings.Builder
	err := run([]string{"slo", "-file", path}, &out, &errOut)
	if !errors.Is(err, errBreach) {
		t.Fatalf("breached slo: want errBreach, got %v", err)
	}
	if !strings.Contains(err.Error(), "availability") {
		t.Fatalf("breach error does not name the objective: %v", err)
	}
}

func TestSLOFetchesFromURL(t *testing.T) {
	path := sloFixture(t, t.TempDir(), false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	}))
	defer ts.Close()
	var out, errOut strings.Builder
	if err := run([]string{"slo", "-url", ts.URL}, &out, &errOut); err != nil {
		t.Fatalf("slo -url: %v", err)
	}
}

func TestSLOUsageAndBadInput(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"slo"}, &out, &errOut); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("slo without flags: %v", err)
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"ready":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"slo", "-file", empty}, &out, &errOut); err == nil || errors.Is(err, errBreach) {
		t.Fatalf("status without slo section: want usage/IO error, got %v", err)
	}
}
