// Command emmonitor is the run-history and quality-monitoring CLI for
// deployed matchers — the operational companion to emmatch. It works on
// the machine-readable artifacts the pipeline already emits (run
// reports, drift baselines, run-history directories) and is designed to
// sit in cron/CI: "check" exits non-zero when a deployed run's quality
// drifted past the fail thresholds, so a scheduled matching job can gate
// publication of its matches on it.
//
// Usage:
//
//	emmonitor check -baseline baseline.json (-run run.json | -dir history/) \
//	        [-thresholds th.json] [-strict]
//	emmonitor diff runA.json runB.json
//	emmonitor history -dir history/ [-n 20]
//	emmonitor slo (-url http://addr | -file status.json) [-timeout 5s]
//
// check re-scores the live statistical profile embedded in a run report
// against a training-time baseline (possibly under different thresholds
// than the run used) and prints every signal; with -dir it checks the
// most recent run in the history. Exit status: 0 when quality holds,
// 1 on a fail-threshold breach (or any warn under -strict), 2 on usage
// or I/O errors, 130 when interrupted by SIGINT/SIGTERM (so a breach
// verdict is never confused with an operator abort).
//
// diff compares two run reports: per-stage wall time, counters,
// histogram percentiles (p50/p90/p99), and quality signals.
//
// history lists the runs recorded in an append-only history directory
// (see internal/obs/history), most recent last.
//
// slo reads a serving-tier status document — live from a running
// emserve (-url, fetching /v1/status) or from a file (-file) — and
// gates on its multi-window SLO burn rates: exit 1 when any objective
// burns its error budget past the threshold in both the fast and slow
// windows, 0 when the budget holds. Designed as the paging/CI
// counterpart of the in-process /v1/status report.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"emgo/internal/cliutil"
	"emgo/internal/drift"
	"emgo/internal/obs"
	"emgo/internal/obs/history"
	"emgo/internal/obs/slo"
)

// errBreach marks a quality-gate failure, distinguished from usage/IO
// errors so CI gets exit 1 for "quality degraded" and 2 for "the check
// itself could not run".
var errBreach = errors.New("quality degraded")

func main() {
	// SIGINT/SIGTERM cancel the run context before the next subcommand
	// step; an interrupt exits 130, never masquerading as a breach.
	ctx, stop := cliutil.SignalContext(context.Background())
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	interrupted := cliutil.Interrupted(ctx, err)
	stop()
	switch {
	case err == nil:
	case interrupted:
		fmt.Fprintln(os.Stderr, "emmonitor:", err)
		os.Exit(cliutil.ExitInterrupted)
	case errors.Is(err, errBreach):
		fmt.Fprintln(os.Stderr, "emmonitor:", err)
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "emmonitor:", err)
		os.Exit(2)
	}
}

// run is runCtx without cancellation, kept as the testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

// runCtx is the whole program behind a testable seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if len(args) == 0 {
		usage(stderr)
		return flag.ErrHelp
	}
	switch args[0] {
	case "check":
		return runCheck(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "history":
		return runHistory(args[1:], stdout, stderr)
	case "slo":
		return runSLO(ctx, args[1:], stdout, stderr)
	case "perf":
		return runPerf(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return flag.ErrHelp
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  emmonitor check -baseline baseline.json (-run run.json | -dir history/) [-thresholds th.json] [-strict]
  emmonitor diff runA.json runB.json
  emmonitor history -dir history/ [-n 20]
  emmonitor slo (-url http://addr | -file status.json) [-timeout 5s]
  emmonitor perf OLD_BENCH.json NEW_BENCH.json [-warn 0.10] [-fail 0.20] [-strict]

exit status:
  0    success (check: quality holds; slo: no budget burn; perf: no regression)
  1    check found a fail-threshold breach (or any warn under -strict);
       slo found an objective burning its error budget in both windows;
       perf found a benchmark or capacity regression over the fail bar
  2    usage error, unreadable input, or internal failure
  130  interrupted by SIGINT/SIGTERM before finishing`)
}

// loadReport reads and parses a run report.
func loadReport(path string) (*obs.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obs.ParseReport(data)
}

func runCheck(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmonitor check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "training-time baseline profile (JSON, from a drift-capture run)")
	runPath := fs.String("run", "", "run report to check (must embed a quality profile)")
	dir := fs.String("dir", "", "run-history directory; checks the most recent run")
	thresholdsPath := fs.String("thresholds", "", "JSON file overriding the warn/fail thresholds")
	strict := fs.Bool("strict", false, "treat warn-level drift as a breach too")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp
	}
	if *baselinePath == "" || (*runPath == "") == (*dir == "") {
		fmt.Fprintln(stderr, "emmonitor check needs -baseline and exactly one of -run / -dir")
		return flag.ErrHelp
	}

	base, err := drift.LoadProfile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	var rep *obs.Report
	if *runPath != "" {
		if rep, err = loadReport(*runPath); err != nil {
			return fmt.Errorf("run report: %w", err)
		}
	} else {
		store, err := history.Open(*dir)
		if err != nil {
			return err
		}
		if rep, err = store.Last(); err != nil {
			return err
		}
		if rep == nil {
			return fmt.Errorf("history %s is empty", *dir)
		}
	}
	live, err := drift.ProfileFromQuality(rep.Quality)
	if err != nil {
		return fmt.Errorf("run %q: %w (was it run with drift monitoring?)", rep.Name, err)
	}

	th := drift.Thresholds{}
	if *thresholdsPath != "" {
		data, err := os.ReadFile(*thresholdsPath)
		if err != nil {
			return fmt.Errorf("thresholds: %w", err)
		}
		if err := unmarshalStrict(data, &th); err != nil {
			return fmt.Errorf("thresholds: %w", err)
		}
	}

	asmt, err := drift.Evaluate(base, live, th)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "run %s vs baseline %s: verdict %s\n", rep.Name, base.Name, asmt.Verdict)
	for _, s := range asmt.Signals {
		marker := " "
		switch s.Status {
		case drift.StatusWarn:
			marker = "!"
		case drift.StatusFail:
			marker = "X"
		}
		fmt.Fprintf(stdout, "  %s %-40s %.4f (warn %.2f fail %.2f)\n", marker, s.Name, s.Value, s.Warn, s.Fail)
	}
	if asmt.EstimatedPrecision != nil {
		fmt.Fprintf(stdout, "  estimated precision (drift-discounted): %s\n", asmt.EstimatedPrecision)
	}
	if asmt.Breached() || (*strict && asmt.Verdict == drift.StatusWarn) {
		return fmt.Errorf("%w: verdict %s", errBreach, asmt.Verdict)
	}
	return nil
}

// unmarshalStrict rejects unknown fields, so a typoed threshold name
// fails loudly instead of silently using the default.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func runDiff(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmonitor diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "emmonitor diff needs exactly two run-report paths")
		return flag.ErrHelp
	}
	a, err := loadReport(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	b, err := loadReport(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	return history.DiffReports(a, b).Render(stdout)
}

func runHistory(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmonitor history", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "run-history directory")
	n := fs.Int("n", 20, "show at most the n most recent runs (0 = all)")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "emmonitor history needs -dir")
		return flag.ErrHelp
	}
	store, err := history.Open(*dir)
	if err != nil {
		return err
	}
	reps, skipped, err := store.List()
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "emmonitor: skipped %d corrupt history line(s)\n", skipped)
	}
	if len(reps) == 0 {
		fmt.Fprintln(stdout, "no runs recorded")
		return nil
	}
	start := 0
	if *n > 0 && len(reps) > *n {
		start = len(reps) - *n
	}
	fmt.Fprintf(stdout, "%-4s %-24s %-20s %-10s %-8s %s\n", "#", "run", "started", "outcome", "quality", "duration")
	for i := start; i < len(reps); i++ {
		r := reps[i]
		verdict := "-"
		if r.Quality != nil {
			verdict = r.Quality.Verdict
		}
		dur := r.FinishedAt.Sub(r.StartedAt).Round(time.Millisecond)
		fmt.Fprintf(stdout, "%-4d %-24s %-20s %-10s %-8s %s\n",
			i+1, clip(r.Name, 24), r.StartedAt.Format("2006-01-02 15:04:05"), r.Outcome, verdict, dur)
	}
	return nil
}

// sloStatus is the slice of the serving status document the slo check
// reads; extra fields are ignored so the check tolerates status-schema
// growth.
type sloStatus struct {
	SLO *slo.Report `json:"slo"`
}

func runSLO(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmonitor slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "base URL of a running emserve (fetches /v1/status)")
	file := fs.String("file", "", "status document to read instead of fetching (JSON)")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP fetch timeout for -url")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp
	}
	if (*url == "") == (*file == "") {
		fmt.Fprintln(stderr, "emmonitor slo needs exactly one of -url / -file")
		return flag.ErrHelp
	}

	var data []byte
	var err error
	if *file != "" {
		if data, err = os.ReadFile(*file); err != nil {
			return err
		}
	} else {
		if data, err = fetchStatus(ctx, *url, *timeout); err != nil {
			return err
		}
	}
	var st sloStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("parse status document: %w", err)
	}
	if st.SLO == nil || len(st.SLO.Objectives) == 0 {
		return fmt.Errorf("status document carries no SLO report (is the serving tier running with SLO tracking?)")
	}

	rep := st.SLO
	fmt.Fprintf(stdout, "slo report at %s (fast %s / slow %s, burn threshold %.1f)\n",
		rep.GeneratedAt.Format("2006-01-02 15:04:05"),
		time.Duration(rep.FastWindowMS*float64(time.Millisecond)).Round(time.Second),
		time.Duration(rep.SlowWindowMS*float64(time.Millisecond)).Round(time.Second),
		rep.BurnThreshold)
	var breached []string
	for _, o := range rep.Objectives {
		marker := " "
		if o.Breached {
			marker = "X"
			breached = append(breached, o.Name)
		}
		fmt.Fprintf(stdout, "  %s %-24s target %.3g%%  fast burn %.2f (%d/%d)  slow burn %.2f (%d/%d)\n",
			marker, o.Name, o.Target, o.FastBurn, o.FastBad, o.FastTotal, o.SlowBurn, o.SlowBad, o.SlowTotal)
	}
	if len(breached) > 0 {
		return fmt.Errorf("%w: SLO budget burning on %s", errBreach, strings.Join(breached, ", "))
	}
	fmt.Fprintln(stdout, "error budget holds")
	return nil
}

// fetchStatus GETs the status document from a running server. A bare
// base URL gets /v1/status appended; a URL already naming a status path
// is used as-is, so both -url http://addr and -url http://addr/-/status
// work.
func fetchStatus(ctx context.Context, url string, timeout time.Duration) ([]byte, error) {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/status") {
		url = strings.TrimSuffix(url, "/") + "/v1/status"
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return data, nil
}

// clip shortens s to width runes with an ellipsis.
func clip(s string, width int) string {
	if len(s) <= width {
		return s
	}
	if width <= 1 {
		return s[:width]
	}
	return s[:width-1] + "…"
}
