package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// perfSnapshot builds a BENCH-style snapshot document for the gate.
// mutate edits the base document before it is serialized.
func perfSnapshot(t *testing.T, dir, name string, mutate func(doc map[string]any)) string {
	t.Helper()
	doc := map[string]any{
		"generated_by": "scripts/bench_snapshot.sh",
		"go":           "go1.24.4",
		"benchtime":    "0.2s",
		"benchcount":   3,
		"environment": map[string]any{
			"go": "go1.24.4", "goos": "linux", "goarch": "amd64",
			"gomaxprocs": 8, "cpu_model": "TestCPU v1", "kernel": "6.18.5",
		},
		"benchmarks": []map[string]any{
			{"package": "internal/match", "name": "BenchmarkMatchPair-8",
				"iterations": 1000, "ns_per_op": 50000.0, "bytes_per_op": 2048.0, "allocs_per_op": 30.0},
			{"package": "internal/serve", "name": "BenchmarkMatchSingle-8",
				"iterations": 500, "ns_per_op": 200000.0, "bytes_per_op": 8192.0, "allocs_per_op": 120.0},
			{"package": "internal/blocking", "name": "BenchmarkKeyLookup-8",
				"iterations": 100000, "ns_per_op": 40.0, "bytes_per_op": 0.0, "allocs_per_op": 0.0},
		},
		"count": 3,
		"serving_capacity": map[string]any{
			"generated_by": "emload", "mode": "capacity", "pass": true,
			"capacity": map[string]any{
				"p99_target_ms": 250.0, "step_duration_s": 4.0,
				"max_sustainable_qps": 512.0, "achieved_at_max_qps": 500.0, "p99_at_max_ms": 200.0,
			},
		},
	}
	if mutate != nil {
		mutate(doc)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// setNs rewrites one benchmark's ns_per_op in a snapshot document.
func setNs(doc map[string]any, name string, ns float64) {
	for _, b := range doc["benchmarks"].([]map[string]any) {
		if b["name"] == name {
			b["ns_per_op"] = ns
			return
		}
	}
	panic("no benchmark " + name)
}

// gate runs `emmonitor perf` through the program seam and returns the
// combined output and error.
func gate(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(append([]string{"perf"}, args...), &out, &errOut)
	return out.String() + errOut.String(), err
}

func TestPerfGateHoldsOnIdenticalSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	new_ := perfSnapshot(t, dir, "new.json", nil)
	out, err := gate(t, old, new_)
	if err != nil {
		t.Fatalf("identical snapshots breached: %v\n%s", err, out)
	}
	if !strings.Contains(out, "gate holds") {
		t.Fatalf("no verdict line in output:\n%s", out)
	}
}

// TestPerfGateExactThreshold pins the epsilon semantics: a regression of
// exactly the fail threshold (20% with benchcount 3, so no slack)
// breaches, and one epsilon under it only warns.
func TestPerfGateExactThreshold(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)

	atBar := perfSnapshot(t, dir, "at.json", func(doc map[string]any) {
		setNs(doc, "BenchmarkMatchPair-8", 60000) // exactly +20%
	})
	out, err := gate(t, old, atBar)
	if !errors.Is(err, errBreach) {
		t.Fatalf("exact +20%% did not breach: err=%v\n%s", err, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkMatchPair-8") {
		t.Fatalf("breach output names no failing benchmark:\n%s", out)
	}

	underBar := perfSnapshot(t, dir, "under.json", func(doc map[string]any) {
		setNs(doc, "BenchmarkMatchPair-8", 59990) // +19.98%: warn only
	})
	out, err = gate(t, old, underBar)
	if err != nil {
		t.Fatalf("+19.98%% breached the default gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "WARN") {
		t.Fatalf("+19.98%% raised no warning:\n%s", out)
	}
	// ... but -strict promotes that warn to a breach.
	if _, err := gate(t, "-strict", old, underBar); !errors.Is(err, errBreach) {
		t.Fatalf("-strict did not promote the warn: err=%v", err)
	}
}

// TestPerfGateNoiseSlack pins the min-of-N widening: the same +25%
// regression breaches against a 3-pass baseline but only warns when the
// new snapshot was a single pass (+10 points of slack → bar at 30%).
func TestPerfGateNoiseSlack(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	slow := func(doc map[string]any) { setNs(doc, "BenchmarkMatchPair-8", 62500) } // +25%

	threePass := perfSnapshot(t, dir, "new3.json", slow)
	if _, err := gate(t, old, threePass); !errors.Is(err, errBreach) {
		t.Fatalf("+25%% at benchcount 3 did not breach: err=%v", err)
	}

	onePass := perfSnapshot(t, dir, "new1.json", func(doc map[string]any) {
		slow(doc)
		doc["benchcount"] = 1
	})
	out, err := gate(t, old, onePass)
	if err != nil {
		t.Fatalf("+25%% at benchcount 1 breached despite slack: %v\n%s", err, out)
	}
	if !strings.Contains(out, "noise slack") {
		t.Fatalf("slack not announced:\n%s", out)
	}
}

// TestPerfGateNanobenchFloor: a huge relative regression on a benchmark
// under the ns floor is reported but never gated.
func TestPerfGateNanobenchFloor(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	new_ := perfSnapshot(t, dir, "new.json", func(doc map[string]any) {
		setNs(doc, "BenchmarkKeyLookup-8", 80) // +100% on a 40ns bench
	})
	out, err := gate(t, old, new_)
	if err != nil {
		t.Fatalf("nanobench doubled and the gate breached: %v\n%s", err, out)
	}
	if !strings.Contains(out, "gating floor") {
		t.Fatalf("floored regression not reported:\n%s", out)
	}
}

func TestPerfGateMissingAndAddedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	new_ := perfSnapshot(t, dir, "new.json", func(doc map[string]any) {
		benches := doc["benchmarks"].([]map[string]any)
		// Drop BenchmarkMatchPair, add a new one.
		kept := benches[1:]
		kept = append(kept, map[string]any{
			"package": "internal/contprof", "name": "BenchmarkCapture-8",
			"iterations": 100, "ns_per_op": 900000.0, "bytes_per_op": 4096.0, "allocs_per_op": 50.0,
		})
		doc["benchmarks"] = kept
	})
	out, err := gate(t, old, new_)
	if err != nil {
		t.Fatalf("missing benchmark breached the default gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "disappeared") || !strings.Contains(out, "BenchmarkMatchPair-8") {
		t.Fatalf("disappeared benchmark not warned:\n%s", out)
	}
	if !strings.Contains(out, "added benchmark") || !strings.Contains(out, "BenchmarkCapture-8") {
		t.Fatalf("added benchmark not noted:\n%s", out)
	}
	// Under -strict the disappearance is a breach: silently dropping a
	// benchmark is how regressions hide.
	if _, err := gate(t, "-strict", old, new_); !errors.Is(err, errBreach) {
		t.Fatalf("-strict did not breach on a disappeared benchmark: err=%v", err)
	}
}

func TestPerfGateCapacityFold(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)

	// One staircase step down (512 → 256, 50%): warn only.
	oneStep := perfSnapshot(t, dir, "one.json", func(doc map[string]any) {
		cap_ := doc["serving_capacity"].(map[string]any)["capacity"].(map[string]any)
		cap_["max_sustainable_qps"] = 256.0
	})
	out, err := gate(t, old, oneStep)
	if err != nil {
		t.Fatalf("one capacity step down breached: %v\n%s", err, out)
	}
	if !strings.Contains(out, "capacity dropped") {
		t.Fatalf("capacity drop not warned:\n%s", out)
	}

	// Two steps down (512 → 128, 75%): fail.
	twoSteps := perfSnapshot(t, dir, "two.json", func(doc map[string]any) {
		cap_ := doc["serving_capacity"].(map[string]any)["capacity"].(map[string]any)
		cap_["max_sustainable_qps"] = 128.0
	})
	if out, err := gate(t, old, twoSteps); !errors.Is(err, errBreach) {
		t.Fatalf("75%% capacity drop did not breach: err=%v\n%s", err, out)
	}

	// Different p99 targets: not comparable, no gate.
	otherTarget := perfSnapshot(t, dir, "target.json", func(doc map[string]any) {
		cap_ := doc["serving_capacity"].(map[string]any)["capacity"].(map[string]any)
		cap_["p99_target_ms"] = 100.0
		cap_["max_sustainable_qps"] = 64.0
	})
	if out, err := gate(t, old, otherTarget); err != nil {
		t.Fatalf("mismatched p99 targets gated anyway: %v\n%s", err, out)
	}
}

func TestPerfGateEnvironmentMismatch(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	otherBox := perfSnapshot(t, dir, "other.json", func(doc map[string]any) {
		doc["environment"].(map[string]any)["cpu_model"] = "OtherCPU v9"
	})

	// Mismatched environments refuse to compare: exit 2, not a breach.
	out, err := gate(t, old, otherBox)
	if err == nil || errors.Is(err, errBreach) || errors.Is(err, flag.ErrHelp) {
		t.Fatalf("env mismatch err = %v, want plain error\n%s", err, out)
	}
	if !strings.Contains(err.Error(), "different environments") {
		t.Fatalf("error does not explain the mismatch: %v", err)
	}

	// -allow-env-mismatch downgrades to a warning and compares.
	out, err = gate(t, "-allow-env-mismatch", old, otherBox)
	if err != nil {
		t.Fatalf("-allow-env-mismatch still failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "environment mismatch") {
		t.Fatalf("mismatch not surfaced as a warning:\n%s", out)
	}

	// A snapshot predating the environment block compares with a note.
	legacy := perfSnapshot(t, dir, "legacy.json", func(doc map[string]any) {
		delete(doc, "environment")
	})
	out, err = gate(t, legacy, old)
	if err != nil {
		t.Fatalf("missing environment block failed the gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "environment metadata missing") {
		t.Fatalf("missing env not noted:\n%s", out)
	}
}

func TestPerfGateMemoryRegression(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	bloated := perfSnapshot(t, dir, "bloat.json", func(doc map[string]any) {
		for _, b := range doc["benchmarks"].([]map[string]any) {
			if b["name"] == "BenchmarkMatchSingle-8" {
				b["bytes_per_op"] = 16384.0 // +100% B/op
			}
		}
	})
	out, err := gate(t, old, bloated)
	if !errors.Is(err, errBreach) {
		t.Fatalf("doubled B/op did not breach: err=%v\n%s", err, out)
	}
	if !strings.Contains(out, "B/op") {
		t.Fatalf("B/op regression not named:\n%s", out)
	}
}

func TestPerfGateThresholdOverrides(t *testing.T) {
	dir := t.TempDir()
	old := perfSnapshot(t, dir, "old.json", nil)
	new_ := perfSnapshot(t, dir, "new.json", func(doc map[string]any) {
		setNs(doc, "BenchmarkMatchPair-8", 65000) // +30%
	})
	th := filepath.Join(dir, "th.json")
	if err := os.WriteFile(th, []byte(`{"internal/match.BenchmarkMatchPair-8":{"warn":0.40,"fail":0.60}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := gate(t, "-thresholds", th, old, new_); err != nil {
		t.Fatalf("override did not loosen the gate: %v\n%s", err, out)
	}
	// Without the override the same delta breaches.
	if _, err := gate(t, old, new_); !errors.Is(err, errBreach) {
		t.Fatalf("+30%% without override did not breach: err=%v", err)
	}
}

func TestPerfGateUsageErrors(t *testing.T) {
	if err := run([]string{"perf"}, new(bytes.Buffer), new(bytes.Buffer)); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no-arg perf err = %v, want ErrHelp", err)
	}
	dir := t.TempDir()
	ok := perfSnapshot(t, dir, "ok.json", nil)
	if err := run([]string{"perf", ok, filepath.Join(dir, "absent.json")}, new(bytes.Buffer), new(bytes.Buffer)); err == nil || errors.Is(err, errBreach) {
		t.Fatalf("unreadable snapshot err = %v, want plain error", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"perf", ok, bad}, new(bytes.Buffer), new(bytes.Buffer)); err == nil || errors.Is(err, errBreach) {
		t.Fatalf("empty snapshot err = %v, want plain error", err)
	}
}
