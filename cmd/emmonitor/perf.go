package main

// perf is the noise-aware benchmark regression gate: it diffs two
// BENCH_*.json snapshots (as written by scripts/bench_snapshot.sh) and
// exits 1 when any benchmark regressed past its fail threshold — the
// committed BENCH_pr*.json trajectory becomes an enforced contract
// instead of an eyeballed one.
//
// Noise model: each snapshot records how many whole-suite passes its
// numbers are the minimum of ("benchcount"). The minimum estimator only
// converges from above — scheduler interference inflates, never
// deflates — so the fewer passes a snapshot took, the more of an
// apparent regression is plausibly jitter. The gate widens its
// thresholds by a slack keyed to min(old.benchcount, new.benchcount):
// one pass +10 points, two passes +5, three or more +0. Benchmarks
// whose old ns/op sits under -min-ns (nanobenches where one cache miss
// is 30%) are reported but never gated.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchSnapshot is the subset of a BENCH_*.json the gate reads.
// Unknown top-level keys are ignored (snapshots grow fields over time);
// the two the gate *computes* from are strict below.
type benchSnapshot struct {
	Go          string           `json:"go"`
	Benchtime   string           `json:"benchtime"`
	Benchcount  int              `json:"benchcount"`
	Environment *benchEnv        `json:"environment"`
	Benchmarks  []benchEntry     `json:"benchmarks"`
	Serving     *servingCapacity `json:"serving_capacity"`
}

type benchEntry struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchEnv is the environment block bench_snapshot.sh embeds so
// cross-machine snapshots are never silently compared as if one
// machine regressed into the other.
type benchEnv struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model"`
	Kernel     string `json:"kernel"`
}

// servingCapacity is the emload summary fold; only the capacity verdict
// is gated.
type servingCapacity struct {
	Capacity *struct {
		P99TargetMS       float64 `json:"p99_target_ms"`
		MaxSustainableQPS float64 `json:"max_sustainable_qps"`
		P99AtMaxMS        float64 `json:"p99_at_max_ms"`
	} `json:"capacity"`
}

// perfThresholds are regression ratios (new/old - 1) at which a
// benchmark warns or fails; a -thresholds file overrides them per
// benchmark key ("package.BenchmarkName-P").
type perfThresholds struct {
	Warn float64 `json:"warn"`
	Fail float64 `json:"fail"`
}

// ratioEpsilon absorbs float round-trip error so a synthetic
// exactly-at-threshold inflation (the acceptance test) lands on the
// breach side deterministically.
const ratioEpsilon = 1e-9

// perfFinding is one gate observation, ordered fail > warn > info.
type perfFinding struct {
	level string // "fail" | "warn" | "info"
	text  string
}

func runPerf(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmonitor perf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	warn := fs.Float64("warn", 0.10, "ns/op regression ratio that warns (before noise slack)")
	fail := fs.Float64("fail", 0.20, "ns/op regression ratio that fails the gate (before noise slack)")
	memWarn := fs.Float64("mem-warn", 0.20, "B/op and allocs/op regression ratio that warns")
	memFail := fs.Float64("mem-fail", 0.50, "B/op and allocs/op regression ratio that fails")
	capWarn := fs.Float64("capacity-warn", 0.40, "serving-capacity drop fraction that warns (one factor-2 step down = 0.5)")
	capFail := fs.Float64("capacity-fail", 0.70, "serving-capacity drop fraction that fails (two steps down = 0.75)")
	minNs := fs.Float64("min-ns", 100, "benchmarks with old ns/op under this are reported, never gated")
	strict := fs.Bool("strict", false, "treat warns (including missing benchmarks) as breaches")
	allowEnv := fs.Bool("allow-env-mismatch", false, "compare snapshots from different environments anyway (mismatch downgraded to a warning)")
	thresholdsPath := fs.String("thresholds", "", "JSON file of per-benchmark {\"pkg.BenchmarkName-P\": {\"warn\":..,\"fail\":..}} overrides")
	if err := fs.Parse(args); err != nil {
		return flag.ErrHelp
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: emmonitor perf OLD_BENCH.json NEW_BENCH.json [-warn 0.10] [-fail 0.20] [-strict]")
		return flag.ErrHelp
	}
	oldSnap, err := loadBenchSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, err := loadBenchSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	overrides := map[string]perfThresholds{}
	if *thresholdsPath != "" {
		data, err := os.ReadFile(*thresholdsPath)
		if err != nil {
			return err
		}
		if err := unmarshalStrict(data, &overrides); err != nil {
			return fmt.Errorf("thresholds %s: %w", *thresholdsPath, err)
		}
	}

	var findings []perfFinding
	note := func(level, format string, a ...any) {
		findings = append(findings, perfFinding{level, fmt.Sprintf(format, a...)})
	}

	// Environment guard: two snapshots that disagree on the machine are
	// not a regression signal at all. Old snapshots predate the
	// environment block; with either side missing, the numbers are
	// still the best available evidence, so compare and say so.
	switch {
	case oldSnap.Environment == nil || newSnap.Environment == nil:
		note("info", "environment metadata missing from %s; cross-environment drift cannot be ruled out",
			pickMissingEnv(fs.Arg(0), fs.Arg(1), oldSnap, newSnap))
	case envMismatch(oldSnap.Environment, newSnap.Environment) != "":
		diff := envMismatch(oldSnap.Environment, newSnap.Environment)
		if !*allowEnv {
			return fmt.Errorf("snapshots come from different environments (%s); numbers are not comparable (override with -allow-env-mismatch)", diff)
		}
		note("warn", "environment mismatch (%s): treat every delta below with suspicion", diff)
	}

	// The min-of-N estimator's slack: either side measured with few
	// passes widens both thresholds.
	slack := noiseSlack(oldSnap.Benchcount, newSnap.Benchcount)
	if slack > 0 {
		note("info", "noise slack +%.0f points (benchcount old=%d new=%d; 3+ passes removes it)",
			100*slack, oldSnap.Benchcount, newSnap.Benchcount)
	}

	oldByKey := map[string]benchEntry{}
	for _, b := range oldSnap.Benchmarks {
		oldByKey[b.Package+"."+b.Name] = b
	}
	newKeys := map[string]bool{}
	regressed, improved, gated := 0, 0, 0
	for _, nb := range newSnap.Benchmarks {
		key := nb.Package + "." + nb.Name
		newKeys[key] = true
		ob, ok := oldByKey[key]
		if !ok {
			note("info", "added benchmark %s (%.0f ns/op); future gates will cover it", key, nb.NsPerOp)
			continue
		}
		th := perfThresholds{Warn: *warn, Fail: *fail}
		if o, ok := overrides[key]; ok {
			th = o
		}
		r := ratio(ob.NsPerOp, nb.NsPerOp)
		switch {
		case ob.NsPerOp < *minNs:
			if r >= th.Fail+slack-ratioEpsilon {
				note("info", "%s: ns/op %+.1f%% (%.1f -> %.1f) — under the %.0fns gating floor, not gated",
					key, 100*r, ob.NsPerOp, nb.NsPerOp, *minNs)
			}
		case r >= th.Fail+slack-ratioEpsilon:
			note("fail", "%s: ns/op regressed %+.1f%% (%.0f -> %.0f), over the %.0f%% fail bar",
				key, 100*r, ob.NsPerOp, nb.NsPerOp, 100*(th.Fail+slack))
			regressed++
		case r >= th.Warn+slack-ratioEpsilon:
			note("warn", "%s: ns/op regressed %+.1f%% (%.0f -> %.0f), over the %.0f%% warn bar",
				key, 100*r, ob.NsPerOp, nb.NsPerOp, 100*(th.Warn+slack))
			regressed++
		case r <= -(th.Warn + slack):
			improved++
		}
		if ob.NsPerOp >= *minNs {
			gated++
		}
		// Allocation metrics are near-deterministic per op, so the
		// slack does not apply; the floors skip benchmarks so small
		// that one transient allocation flips the ratio.
		if ob.BytesPerOp >= 64 {
			if br := ratio(ob.BytesPerOp, nb.BytesPerOp); br >= *memFail-ratioEpsilon {
				note("fail", "%s: B/op regressed %+.1f%% (%.0f -> %.0f)", key, 100*br, ob.BytesPerOp, nb.BytesPerOp)
			} else if br >= *memWarn-ratioEpsilon {
				note("warn", "%s: B/op regressed %+.1f%% (%.0f -> %.0f)", key, 100*br, ob.BytesPerOp, nb.BytesPerOp)
			}
		}
		if ob.AllocsPerOp >= 4 {
			if ar := ratio(ob.AllocsPerOp, nb.AllocsPerOp); ar >= *memFail-ratioEpsilon {
				note("fail", "%s: allocs/op regressed %+.1f%% (%.0f -> %.0f)", key, 100*ar, ob.AllocsPerOp, nb.AllocsPerOp)
			} else if ar >= *memWarn-ratioEpsilon {
				note("warn", "%s: allocs/op regressed %+.1f%% (%.0f -> %.0f)", key, 100*ar, ob.AllocsPerOp, nb.AllocsPerOp)
			}
		}
	}
	for key, ob := range oldByKey {
		if !newKeys[key] {
			note("warn", "benchmark %s (%.0f ns/op) disappeared from the new snapshot — deleted, renamed, or silently skipped?", key, ob.NsPerOp)
		}
	}

	// The serving_capacity fold: the capacity search walks a geometric
	// staircase, so its resolution is one factor step — a single step
	// down (50% under factor 2) is the smallest observable drop and
	// warns; two steps (75%) is unambiguous and fails.
	gateCapacity(oldSnap, newSnap, *capWarn, *capFail, note)

	return reportPerf(findings, gated, regressed, improved, *strict, stdout)
}

// loadBenchSnapshot reads one BENCH_*.json and validates the parts the
// gate computes from.
func loadBenchSnapshot(path string) (*benchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s benchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	seen := map[string]bool{}
	for _, b := range s.Benchmarks {
		if b.Package == "" || b.Name == "" || b.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: malformed benchmark entry %+v", path, b)
		}
		key := b.Package + "." + b.Name
		if seen[key] {
			return nil, fmt.Errorf("%s: duplicate benchmark %s", path, key)
		}
		seen[key] = true
	}
	return &s, nil
}

// ratio is the relative change new/old - 1 (old is validated > 0 for
// ns/op; mem callers gate on their own floors).
func ratio(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return new/old - 1
}

// noiseSlack widens thresholds when either snapshot's minimum was taken
// over too few suite passes to have converged.
func noiseSlack(oldCount, newCount int) float64 {
	n := oldCount
	if newCount < n {
		n = newCount
	}
	switch {
	case n <= 1:
		return 0.10
	case n == 2:
		return 0.05
	}
	return 0
}

// envMismatch describes the first difference between two environment
// blocks ("" = same environment). GOMAXPROCS and kernel are compared
// too: a container with half the cores is a different machine as far as
// parallel benchmarks are concerned.
func envMismatch(a, b *benchEnv) string {
	switch {
	case a.GOOS != b.GOOS || a.GOARCH != b.GOARCH:
		return fmt.Sprintf("platform %s/%s vs %s/%s", a.GOOS, a.GOARCH, b.GOOS, b.GOARCH)
	case a.CPUModel != b.CPUModel:
		return fmt.Sprintf("cpu %q vs %q", a.CPUModel, b.CPUModel)
	case a.GOMAXPROCS != b.GOMAXPROCS:
		return fmt.Sprintf("GOMAXPROCS %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS)
	case a.Go != b.Go:
		return fmt.Sprintf("toolchain %q vs %q", a.Go, b.Go)
	case a.Kernel != b.Kernel:
		return fmt.Sprintf("kernel %q vs %q", a.Kernel, b.Kernel)
	}
	return ""
}

func pickMissingEnv(oldPath, newPath string, o, n *benchSnapshot) string {
	switch {
	case o.Environment == nil && n.Environment == nil:
		return "both snapshots"
	case o.Environment == nil:
		return oldPath
	}
	return newPath
}

// gateCapacity judges the serving_capacity fold when both snapshots
// carry one at the same p99 target.
func gateCapacity(o, n *benchSnapshot, capWarn, capFail float64, note func(level, format string, a ...any)) {
	oc, nc := capacityOf(o), capacityOf(n)
	switch {
	case oc == nil && nc == nil:
		return
	case oc == nil:
		note("info", "serving capacity appears in the new snapshot: %.0f qps at p99<=%.0fms", nc.MaxSustainableQPS, nc.P99TargetMS)
		return
	case nc == nil:
		note("warn", "serving capacity disappeared from the new snapshot (was %.0f qps)", oc.MaxSustainableQPS)
		return
	case oc.P99TargetMS != nc.P99TargetMS:
		note("info", "serving capacity p99 targets differ (%.0fms vs %.0fms); capacities not comparable", oc.P99TargetMS, nc.P99TargetMS)
		return
	case oc.MaxSustainableQPS <= 0:
		note("info", "old snapshot sustained no load; capacity gate skipped")
		return
	}
	drop := 1 - nc.MaxSustainableQPS/oc.MaxSustainableQPS
	switch {
	case drop >= capFail-ratioEpsilon:
		note("fail", "serving capacity dropped %.0f%% (%.0f -> %.0f qps at p99<=%.0fms)",
			100*drop, oc.MaxSustainableQPS, nc.MaxSustainableQPS, nc.P99TargetMS)
	case drop >= capWarn-ratioEpsilon:
		note("warn", "serving capacity dropped %.0f%% (%.0f -> %.0f qps at p99<=%.0fms) — one staircase step; rerun to confirm",
			100*drop, oc.MaxSustainableQPS, nc.MaxSustainableQPS, nc.P99TargetMS)
	}
}

func capacityOf(s *benchSnapshot) *struct {
	P99TargetMS       float64 `json:"p99_target_ms"`
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	P99AtMaxMS        float64 `json:"p99_at_max_ms"`
} {
	if s.Serving == nil {
		return nil
	}
	return s.Serving.Capacity
}

// reportPerf prints the findings (fails first) and the verdict line,
// and turns the verdict into the errBreach/ nil contract.
func reportPerf(findings []perfFinding, gated, regressed, improved int, strict bool, stdout io.Writer) error {
	rank := map[string]int{"fail": 0, "warn": 1, "info": 2}
	sort.SliceStable(findings, func(i, j int) bool {
		return rank[findings[i].level] < rank[findings[j].level]
	})
	fails, warns := 0, 0
	for _, f := range findings {
		fmt.Fprintf(stdout, "%-5s %s\n", strings.ToUpper(f.level), f.text)
		switch f.level {
		case "fail":
			fails++
		case "warn":
			warns++
		}
	}
	fmt.Fprintf(stdout, "perf: %d benchmark(s) gated, %d regressed, %d improved, %d warn(s), %d fail(s)\n",
		gated, regressed, improved, warns, fails)
	switch {
	case fails > 0:
		return fmt.Errorf("%w: %d benchmark regression(s) over the fail threshold", errBreach, fails)
	case strict && warns > 0:
		return fmt.Errorf("%w: %d warning(s) under -strict", errBreach, warns)
	}
	fmt.Fprintln(stdout, "perf: gate holds")
	return nil
}
