// Package emgo's root tests are the experiment harness: each TestE* /
// TestA* regenerates one of the paper's tables, figures, or reported
// numbers (see the per-experiment index in DESIGN.md) and asserts that
// the qualitative shape the paper reports holds. Run with -v to see the
// paper-vs-measured values; EXPERIMENTS.md records a reference run.
package emgo

import (
	"math/rand"
	"sync"
	"testing"

	"emgo/internal/block"
	"emgo/internal/estimate"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/profile"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
)

// The full-scale case study is the shared fixture for E2-E8; it runs once.
var (
	studyOnce sync.Once
	studyRep  *umetrics.Report
	studyErr  error
)

func fullStudy(t testing.TB) *umetrics.Report {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale case study skipped with -short")
	}
	studyOnce.Do(func() {
		studyRep, studyErr = umetrics.Run(umetrics.DefaultConfig())
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return studyRep
}

// The full-aux dataset (exact Figure 2 sizes) is the fixture for E1.
var (
	figure2Once sync.Once
	figure2DS   *umetrics.Dataset
	figure2Err  error
)

func figure2Data(t testing.TB) *umetrics.Dataset {
	t.Helper()
	if testing.Short() {
		t.Skip("full-size table generation skipped with -short")
	}
	figure2Once.Do(func() {
		figure2DS, figure2Err = umetrics.Generate(umetrics.PaperParams())
	})
	if figure2Err != nil {
		t.Fatal(figure2Err)
	}
	return figure2DS
}

// TestE1_Figure2 regenerates Figure 2: the exact row and column counts of
// the seven raw tables.
func TestE1_Figure2(t *testing.T) {
	ds := figure2Data(t)
	want := []struct {
		name string
		tab  interface {
			Len() int
		}
		rows, cols int
	}{
		{"UMETRICSAwardAggMatching", ds.AwardAgg, 1336, 13},
		{"UMETRICSEmployeesMatching", ds.Employees, 1454070, 13},
		{"UMETRICSObjectCodesMatching", ds.ObjectCodes, 4574, 3},
		{"UMETRICSOrgUnitsMatching", ds.OrgUnits, 264, 5},
		{"UMETRICSSubAwardMatching", ds.SubAward, 21470, 23},
		{"UMETRICSVendorMatching", ds.Vendor, 377746, 21},
		{"USDAAwardMatching", ds.USDA, 1915, 78},
	}
	tables := []interface {
		Len() int
		Name() string
		Schema() interface{ Len() int }
	}{}
	_ = tables
	for _, w := range want {
		if got := w.tab.Len(); got != w.rows {
			t.Errorf("%s rows = %d, paper says %d", w.name, got, w.rows)
		}
	}
	cols := map[string]int{
		"AwardAgg": ds.AwardAgg.Schema().Len(), "Employees": ds.Employees.Schema().Len(),
		"ObjectCodes": ds.ObjectCodes.Schema().Len(), "OrgUnits": ds.OrgUnits.Schema().Len(),
		"SubAward": ds.SubAward.Schema().Len(), "Vendor": ds.Vendor.Schema().Len(),
		"USDA": ds.USDA.Schema().Len(),
	}
	wantCols := map[string]int{
		"AwardAgg": 13, "Employees": 13, "ObjectCodes": 3, "OrgUnits": 5,
		"SubAward": 23, "Vendor": 21, "USDA": 78,
	}
	for name, wc := range wantCols {
		if cols[name] != wc {
			t.Errorf("%s cols = %d, paper says %d", name, cols[name], wc)
		}
	}
	// The Figure 2 exploration also profiles the tables (Section 4).
	rep := profile.Profile(ds.AwardAgg)
	if c := rep.Column("UniqueAwardNumber"); c == nil || c.Unique != 1336 || c.Missing != 0 {
		t.Errorf("UniqueAwardNumber should be a complete key column: %+v", c)
	}
	t.Logf("E1: all seven tables at exact Figure 2 sizes")
}

// TestE2_Blocking regenerates the Section 7 blocking numbers: the
// three-blocker pipeline, the candidate-set algebra, the threshold sweep,
// and the blocking-debugger check.
func TestE2_Blocking(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E2: cartesian=%d (paper ~2.56M)", rep.CartesianPairs)
	t.Logf("E2: C2=%d (paper 2937), C3=%d (paper 1375), C=%d (paper 3177)", rep.C2, rep.C3, rep.ConsolidatedC)
	t.Logf("E2: C2∩C3=%d (1140), C2−C3=%d (1797), C3−C2=%d (235)", rep.C2AndC3, rep.C2MinusC3, rep.C3MinusC2)
	t.Logf("E2: sweep K=1:%d (~200K) K=3:%d (2937) K=7:%d (few hundred)",
		rep.OverlapSweep[1], rep.OverlapSweep[3], rep.OverlapSweep[7])
	t.Logf("E2: debugger matches top-10=%d (paper: none seen)", rep.DebuggerMatchesTop10)

	if rep.CartesianPairs != 1336*1915 {
		t.Errorf("cartesian = %d want %d", rep.CartesianPairs, 1336*1915)
	}
	// Shape: K=1 is orders of magnitude above K=3, which is far above K=7.
	if rep.OverlapSweep[1] < 10*rep.OverlapSweep[3] {
		t.Errorf("K=1 (%d) should dwarf K=3 (%d)", rep.OverlapSweep[1], rep.OverlapSweep[3])
	}
	if rep.OverlapSweep[7] >= rep.OverlapSweep[3] {
		t.Errorf("K=7 (%d) should be far below K=3 (%d)", rep.OverlapSweep[7], rep.OverlapSweep[3])
	}
	// Shape: candidate set within a small factor of the paper's 3177,
	// three orders below the Cartesian product.
	if rep.ConsolidatedC < 1000 || rep.ConsolidatedC > 12000 {
		t.Errorf("consolidated C = %d, out of the paper's ballpark (3177)", rep.ConsolidatedC)
	}
	// Both title blockers contribute unique pairs (footnote 3).
	if rep.C2MinusC3 == 0 || rep.C3MinusC2 == 0 {
		t.Error("C2 and C3 must each contribute pairs")
	}
	if rep.DebuggerMatchesTop10 > 1 {
		t.Errorf("debugger top-10 contains %d matches; paper's user saw none", rep.DebuggerMatchesTop10)
	}
}

// TestE3_SamplingLabeling regenerates the Section 8 labeling process: the
// iterative rounds, the cross-check episode, and the final composition.
func TestE3_SamplingLabeling(t *testing.T) {
	rep := fullStudy(t)
	c := rep.FinalLabels
	t.Logf("E3: rounds=%v", rep.RoundCounts)
	t.Logf("E3: final %d/%d/%d (paper 68/200/32)", c.Yes, c.No, c.Unsure)
	t.Logf("E3: cross-check mismatches=%d (paper 22), flipped=%d (paper 4)", rep.CrossMismatch, rep.CrossFlipped)
	t.Logf("E3: LOOCV flagged=%d, revised=%d (paper's D1-D3)", rep.LOOCVFlagged, rep.LabelRevisions)

	if c.Total() != 300 {
		t.Errorf("expected 300 labels, got %d", c.Total())
	}
	// Shape: No dominates, Yes is a fifth to a third, Unsure ~10%.
	if c.No <= c.Yes || c.Yes == 0 || c.Unsure == 0 {
		t.Errorf("label composition off: %+v", c)
	}
	if c.Unsure < 5 || c.Unsure > 80 {
		t.Errorf("unsure count %d out of shape (paper 32)", c.Unsure)
	}
	if rep.CrossMismatch == 0 {
		t.Error("the cross-check episode should find disagreements")
	}
	if rep.LOOCVFlagged == 0 {
		t.Error("label debugging should flag pairs")
	}
}

// TestE4_MatcherSelection regenerates the Section 9 selection story: six
// matchers under 5-fold CV, and the case-insensitive feature fix raising
// accuracy.
func TestE4_MatcherSelection(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E4: initial best=%s F1=%.3f", rep.BestInitial, rep.CVInitial[0].F1)
	t.Logf("E4: after fix best=%s P=%.3f R=%.3f F1=%.3f (paper: DT, 97/95/94.7)",
		rep.BestFinal, rep.CVWithCase[0].Precision, rep.CVWithCase[0].Recall, rep.CVWithCase[0].F1)

	if len(rep.CVInitial) != 6 || len(rep.CVWithCase) != 6 {
		t.Fatal("six matchers must be compared")
	}
	if rep.CVWithCase[0].F1 <= rep.CVInitial[0].F1 {
		t.Errorf("case features must improve F1: %.3f -> %.3f",
			rep.CVInitial[0].F1, rep.CVWithCase[0].F1)
	}
	if rep.CVWithCase[0].F1 < 0.85 {
		t.Errorf("final F1 %.3f below the paper's ~0.95 band", rep.CVWithCase[0].F1)
	}
}

// TestE5_Figure8 regenerates the initial workflow totals.
func TestE5_Figure8(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E5: M1-in-C=%d (210), learned=%d (807), total=%d (1017)",
		rep.M1InC, rep.LearnedFig8, rep.TotalFig8)
	if rep.M1InC == 0 || rep.LearnedFig8 == 0 {
		t.Error("both the rule and the learner must contribute")
	}
	if rep.TotalFig8 < rep.M1InC+rep.LearnedFig8 {
		t.Error("total must include sure and learned matches")
	}
	// Ballpark: within 2x of the paper's 1017.
	if rep.TotalFig8 < 500 || rep.TotalFig8 > 2000 {
		t.Errorf("Figure 8 total %d far from the paper's 1017", rep.TotalFig8)
	}
}

// TestE6_Figure9 regenerates the Section 10 complication handling: the
// discovered rule's impact and the patched two-slice workflow.
func TestE6_Figure9(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E6: rule2 cartesian=%d (473) inC=%d (411) predicted=%d (397)",
		rep.Rule2Cartesian, rep.Rule2InC, rep.Rule2Predicted)
	t.Logf("E6: sure=%d/%d (683/55) cand=%d/%d (2556/1220) learned=%d/%d (399/0) total=%d (1137)",
		rep.SureOriginal, rep.SureExtra, rep.CandOriginal, rep.CandExtra,
		rep.LearnedOriginal, rep.LearnedExtra, rep.TotalFig9)

	// Shape: blocking lost some rule-2 pairs (the reason the rule must be
	// applied directly to the tables).
	if rep.Rule2InC >= rep.Rule2Cartesian {
		t.Error("blocking should lose some rule-2 pairs")
	}
	// The learner had already found most kept rule-2 pairs.
	if rep.Rule2Predicted*10 < rep.Rule2InC*8 {
		t.Errorf("matcher should predict most rule-2 pairs: %d of %d", rep.Rule2Predicted, rep.Rule2InC)
	}
	if rep.SureOriginal <= rep.M1InC {
		t.Error("rule 2 must add sure matches beyond M1")
	}
	if rep.SureExtra == 0 {
		t.Error("the extra slice must contribute sure matches")
	}
	// Extra slice contributes (almost) no learned matches (paper: 0).
	if rep.LearnedExtra > rep.LearnedOriginal/4 {
		t.Errorf("extra slice learned %d, should be near zero", rep.LearnedExtra)
	}
}

// TestE7_AccuracyEstimation regenerates the Section 11 Corleone
// estimates: IRIS at perfect precision and mediocre recall, the learning
// workflow at much higher recall and visibly lower precision.
func TestE7_AccuracyEstimation(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E7: ours  P=%s (75.2,80.3) R=%s (98.1,99.6)", rep.EstOursAll.Precision, rep.EstOursAll.Recall)
	t.Logf("E7: IRIS  P=%s (100,100)   R=%s (65.1,71.8)", rep.EstIRISAll.Precision, rep.EstIRISAll.Recall)
	t.Logf("E7: eval labels %d/%d/%d (paper 92/292/16)", rep.EvalLabels.Yes, rep.EvalLabels.No, rep.EvalLabels.Unsure)
	t.Logf("E7: gold IRIS %v", rep.GoldIRIS)
	t.Logf("E7: gold Fig9 %v", rep.GoldFig9)

	// IRIS: perfect precision, recall in the paper's band (on gold).
	if p := rep.GoldIRIS.Precision(); p < 0.999 {
		t.Errorf("IRIS gold precision %.3f, paper says 100%%", p)
	}
	if r := rep.GoldIRIS.Recall(); r < 0.55 || r > 0.85 {
		t.Errorf("IRIS gold recall %.3f outside the paper's 65-72%% band (with slack)", r)
	}
	// Ours: recall far above IRIS, precision visibly below 1.
	if rep.GoldFig9.Recall() <= rep.GoldIRIS.Recall()+0.1 {
		t.Errorf("learning workflow recall %.3f should far exceed IRIS %.3f",
			rep.GoldFig9.Recall(), rep.GoldIRIS.Recall())
	}
	if p := rep.GoldFig9.Precision(); p > 0.97 {
		t.Errorf("learning workflow gold precision %.3f should show false positives (paper ~0.78)", p)
	}
	// The estimated intervals agree with gold within sampling slack.
	if g := rep.GoldIRIS.Recall(); g < rep.EstIRISAll.Recall.Lo-0.1 || g > rep.EstIRISAll.Recall.Hi+0.1 {
		t.Errorf("IRIS recall estimate %s does not track gold %.3f", rep.EstIRISAll.Recall, g)
	}
	// Second estimation round narrowed the intervals (paper step 3).
	if rep.EstOursAll.Precision.Width() > rep.EstOursFirst.Precision.Width()+1e-9 {
		t.Error("doubling the evaluation sample must not widen the interval")
	}
}

// TestE8_Figure10 regenerates the final workflow: negative rules veto
// learner false positives, restoring precision at a small recall cost.
func TestE8_Figure10(t *testing.T) {
	rep := fullStudy(t)
	t.Logf("E8: vetoed=%d+%d (paper 292), final=%d (845)",
		rep.VetoedOriginal, rep.VetoedExtra, rep.FinalMatches)
	t.Logf("E8: final est P=%s (96.7,98.8) R=%s (94.2,97.1)", rep.EstFinal.Precision, rep.EstFinal.Recall)
	t.Logf("E8: gold final %v", rep.GoldFinal)

	if rep.VetoedOriginal == 0 {
		t.Error("negative rules must veto learned matches")
	}
	if rep.FinalMatches >= rep.TotalFig9 {
		t.Error("final total must shrink after vetoes")
	}
	if p := rep.GoldFinal.Precision(); p < 0.93 {
		t.Errorf("final gold precision %.3f below the paper's ~0.97", p)
	}
	if rep.GoldFinal.Precision() <= rep.GoldFig9.Precision() {
		t.Error("negative rules must raise precision")
	}
	if r := rep.GoldFinal.Recall(); r < 0.88 {
		t.Errorf("final gold recall %.3f below the paper's ~0.95 band", r)
	}
	if rep.GoldFinal.Recall() > rep.GoldFig9.Recall() {
		t.Error("vetoes cannot raise recall")
	}
	if len(rep.Matches) != rep.FinalMatches {
		t.Errorf("deliverable has %d ID pairs, expected %d", len(rep.Matches), rep.FinalMatches)
	}
}

// TestE9_MatchDefinition regenerates the Figures 5/6 match-definition
// examples: an M1 award-number match and an M2 title-similarity match
// exist in the generated data and the rules engine fires on them.
func TestE9_MatchDefinition(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	ds, err := umetrics.Generate(umetrics.TestParams(0.25))
	if err != nil {
		t.Fatal(err)
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		t.Fatal(err)
	}
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := umetrics.M1Rule(proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	word := tokenize.Word{}

	var fig5, fig6 bool
	for a := 0; a < proj.UMETRICS.Len(); a++ {
		for b := 0; b < proj.USDA.Len(); b++ {
			p := block.Pair{A: a, B: b}
			if !oracle.IsMatch(p) {
				continue
			}
			switch oracle.Class(p) {
			case umetrics.ClassFederal:
				// Figure 5: the M1 rule must fire.
				if m1.Apply(proj.UMETRICS.Row(a), proj.USDA.Row(b)) != 0 {
					fig5 = true
				}
			case umetrics.ClassTitle:
				// Figure 6: award number missing, titles similar.
				if proj.USDA.Get(b, "AwardNumber").IsNull() {
					ta := word.Tokens(tokenize.Normalize(proj.UMETRICS.Get(a, "AwardTitle").Str()))
					tb := word.Tokens(tokenize.Normalize(proj.USDA.Get(b, "AwardTitle").Str()))
					if jac(ta, tb) > 0.5 {
						fig6 = true
					}
				}
			}
		}
	}
	if !fig5 {
		t.Error("no Figure 5 style M1 match found")
	}
	if !fig6 {
		t.Error("no Figure 6 style title match found")
	}
}

func jac(a, b []string) float64 {
	sa := map[string]bool{}
	for _, x := range a {
		sa[x] = true
	}
	inter, union := 0, len(sa)
	sb := map[string]bool{}
	for _, x := range b {
		if sb[x] {
			continue
		}
		sb[x] = true
		if sa[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ablationWorld builds a small labeled world shared by the ablations.
type ablationWorldT struct {
	ds     *umetrics.Dataset
	proj   *umetrics.Projected
	oracle *umetrics.TruthOracle
	cand   *block.CandidateSet
	pairs  []block.Pair
	labels []label.Label
}

var (
	ablOnce sync.Once
	ablW    *ablationWorldT
	ablErr  error
)

func ablationWorld(t testing.TB) *ablationWorldT {
	t.Helper()
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	ablOnce.Do(func() {
		ablW, ablErr = buildAblationWorld()
	})
	if ablErr != nil {
		t.Fatal(ablErr)
	}
	return ablW
}

func buildAblationWorld() (*ablationWorldT, error) {
	ds, err := umetrics.Generate(umetrics.TestParams(0.4))
	if err != nil {
		return nil, err
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		return nil, err
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		return nil, err
	}
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		return nil, err
	}
	cand, err := block.UnionBlock(proj.UMETRICS, proj.USDA,
		block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
		block.OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true},
	)
	if err != nil {
		return nil, err
	}
	w := &ablationWorldT{ds: ds, proj: proj, oracle: oracle, cand: cand}
	// Label every candidate that the number rules do NOT already decide
	// (mirroring how the pipeline removes sure matches from training):
	// truth for decidable pairs, Unsure for hard pairs AND for the
	// lookalike traps (the paper's first-pass "primarily unsures").
	for _, p := range cand.Pairs() {
		if cls := oracle.Class(p); cls == umetrics.ClassFederal || cls == umetrics.ClassState {
			continue
		}
		w.pairs = append(w.pairs, p)
		switch {
		case oracle.IsHard(p) || oracle.IsTrap(p):
			w.labels = append(w.labels, label.Unsure)
		case oracle.IsMatch(p):
			w.labels = append(w.labels, label.Yes)
		default:
			w.labels = append(w.labels, label.No)
		}
	}
	return w, nil
}

// ablationCV cross-validates a decision tree over the world's labeled
// pairs with a given feature set and unsure-handling policy.
func ablationCV(w *ablationWorldT, fs *feature.Set, unsureAs int) (ml.CVResult, error) {
	var pairs []block.Pair
	var y []int
	for i, p := range w.pairs {
		switch w.labels[i] {
		case label.Yes:
			pairs = append(pairs, p)
			y = append(y, 1)
		case label.No:
			pairs = append(pairs, p)
			y = append(y, 0)
		case label.Unsure:
			if unsureAs >= 0 {
				pairs = append(pairs, p)
				y = append(y, unsureAs)
			}
		}
	}
	x, err := fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, pairs)
	if err != nil {
		return ml.CVResult{}, err
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		return ml.CVResult{}, err
	}
	if x, err = im.Transform(x); err != nil {
		return ml.CVResult{}, err
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		return ml.CVResult{}, err
	}
	return ml.CrossValidate(ml.Factory{
		Name: "decision_tree",
		New:  func() ml.Matcher { return &ml.DecisionTree{} },
	}, ds, 5, rand.New(rand.NewSource(42)))
}

var ablCorr = map[string]string{
	"AwardNumber": "AwardNumber", "AwardTitle": "AwardTitle",
	"FirstTransDate": "FirstTransDate", "LastTransDate": "LastTransDate",
	"EmployeeName": "EmployeeName",
}

var ablOrder = []string{"AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "EmployeeName"}

// TestA1_CaseFeatureAblation: the Section 9 design choice — keep raw case
// and add case-insensitive features rather than lowercasing everything.
func TestA1_CaseFeatureAblation(t *testing.T) {
	w := ablationWorld(t)
	plain, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, ablCorr, ablOrder)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ablationCV(w, plain, -1)
	if err != nil {
		t.Fatal(err)
	}
	withCase, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, ablCorr, ablOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(withCase, w.proj.UMETRICS, ablCorr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		t.Fatal(err)
	}
	with, err := ablationCV(w, withCase, -1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A1: F1 without case features %.3f, with %.3f", without.F1, with.F1)
	if with.F1 <= without.F1 {
		t.Errorf("case-insensitive features should improve F1: %.3f -> %.3f", without.F1, with.F1)
	}
}

// TestA2_BlockerUnionAblation: footnote 3 — neither title blocker alone
// retains all the true matches the union retains.
func TestA2_BlockerUnionAblation(t *testing.T) {
	w := ablationWorld(t)
	c2, err := (block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true}).Block(w.proj.UMETRICS, w.proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := (block.OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true}).Block(w.proj.UMETRICS, w.proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	trueIn := func(c *block.CandidateSet) int {
		n := 0
		for _, p := range c.Pairs() {
			if w.oracle.IsMatch(p) {
				n++
			}
		}
		return n
	}
	t2, t3, tu := trueIn(c2), trueIn(c3), trueIn(w.cand)
	t.Logf("A2: true matches kept — C2 only: %d, C3 only: %d, union: %d", t2, t3, tu)
	if t2 >= tu && t3 >= tu {
		t.Error("the union should retain strictly more true matches than at least one blocker alone")
	}
	if tu < t2 || tu < t3 {
		t.Error("the union can never retain fewer than a component")
	}
}

// TestA3_UnsureHandling: footnote 5 — dropping Unsure pairs from training
// is at least as good as coercing them to either class.
func TestA3_UnsureHandling(t *testing.T) {
	w := ablationWorld(t)
	fs, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, ablCorr, ablOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(fs, w.proj.UMETRICS, ablCorr, []string{"AwardTitle", "EmployeeName"}); err != nil {
		t.Fatal(err)
	}
	dropped, err := ablationCV(w, fs, -1)
	if err != nil {
		t.Fatal(err)
	}
	asNo, err := ablationCV(w, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	asYes, err := ablationCV(w, fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A3: F1 dropped=%.3f, unsure-as-No=%.3f, unsure-as-Yes=%.3f", dropped.F1, asNo.F1, asYes.F1)
	if dropped.F1+0.02 < asNo.F1 && dropped.F1+0.02 < asYes.F1 {
		t.Errorf("dropping unsures (%.3f) should not lose clearly to coercion (%.3f / %.3f)",
			dropped.F1, asNo.F1, asYes.F1)
	}
}

// TestE7_EstimatorCalibration is a property of the estimation substrate:
// on synthetic candidate sets with known truth the Corleone interval
// brackets the real precision/recall most of the time.
func TestE7_EstimatorCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hitsP, hitsR, trials := 0, 0, 60
	for trial := 0; trial < trials; trial++ {
		// A universe of 2000 pairs, 400 true; a predictor that catches
		// 90% of true and wrongly fires on 5% of false.
		type item struct{ truth, pred bool }
		var items []item
		tp, fp, fn := 0, 0, 0
		for i := 0; i < 2000; i++ {
			truth := i < 400
			var pred bool
			if truth {
				pred = rng.Float64() < 0.9
			} else {
				pred = rng.Float64() < 0.05
			}
			switch {
			case truth && pred:
				tp++
			case truth && !pred:
				fn++
			case !truth && pred:
				fp++
			}
			items = append(items, item{truth, pred})
		}
		goldP := float64(tp) / float64(tp+fp)
		goldR := float64(tp) / float64(tp+fn)
		// Label a 400-pair random sample.
		perm := rng.Perm(len(items))
		var predicted []bool
		var labels []label.Label
		for _, i := range perm[:400] {
			predicted = append(predicted, items[i].pred)
			if items[i].truth {
				labels = append(labels, label.Yes)
			} else {
				labels = append(labels, label.No)
			}
		}
		est, err := estimate.FromLabels(predicted, labels)
		if err != nil {
			t.Fatal(err)
		}
		if goldP >= est.Precision.Lo && goldP <= est.Precision.Hi {
			hitsP++
		}
		if goldR >= est.Recall.Lo && goldR <= est.Recall.Hi {
			hitsR++
		}
	}
	t.Logf("E7-calibration: 95%% interval covered gold precision %d/%d, recall %d/%d",
		hitsP, trials, hitsR, trials)
	// 95% nominal coverage; demand at least 80% empirically.
	if hitsP < trials*8/10 || hitsR < trials*8/10 {
		t.Errorf("interval coverage too low: P %d/%d, R %d/%d", hitsP, trials, hitsR, trials)
	}
}
