package emgo

import (
	"testing"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/umetrics"
)

// TestA5_RulesVsThreshold compares the paper's precision fix — negative
// pattern rules applied to the learner's output (Section 12, "localized
// changes") — with the obvious alternative of raising the classifier's
// decision threshold. The rules surgically remove comparable-number
// false positives; the threshold trades recall globally. At equal
// precision the rule-patched matcher must keep at least as much recall.
func TestA5_RulesVsThreshold(t *testing.T) {
	w := ablationWorld(t)

	// Train a tree on the decided labels (case features included).
	fs, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, ablCorr, ablOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(fs, w.proj.UMETRICS, ablCorr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		t.Fatal(err)
	}
	var trainPairs []block.Pair
	var y []int
	for i, p := range w.pairs {
		switch w.labels[i] {
		case label.Yes:
			trainPairs = append(trainPairs, p)
			y = append(y, 1)
		case label.No:
			trainPairs = append(trainPairs, p)
			y = append(y, 0)
		}
	}
	x, err := fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, trainPairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}

	// Score the learner-relevant candidate pairs against gold: hard
	// pairs excluded (as in estimation), and the number-rule-decided
	// pairs excluded (the sure rules handle those, not the learner).
	var evalPairs []block.Pair
	var gold []int
	for _, p := range w.cand.Pairs() {
		if w.oracle.IsHard(p) {
			continue
		}
		if cls := w.oracle.Class(p); cls == umetrics.ClassFederal || cls == umetrics.ClassState {
			continue
		}
		evalPairs = append(evalPairs, p)
		if w.oracle.IsMatch(p) {
			gold = append(gold, 1)
		} else {
			gold = append(gold, 0)
		}
	}
	ex, err := fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, evalPairs)
	if err != nil {
		t.Fatal(err)
	}
	if ex, err = im.Transform(ex); err != nil {
		t.Fatal(err)
	}
	evalDS, err := ml.NewDataset(fs.Names(), ex, gold)
	if err != nil {
		t.Fatal(err)
	}

	// Approach A: default threshold + negative rules.
	neg, err := umetrics.NegativeRules(w.proj.UMETRICS, w.proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	var rulesConf ml.Confusion
	for i, p := range evalPairs {
		pred := tree.Predict(ex[i])
		if pred == 1 && neg.Judge(w.proj.UMETRICS.Row(p.A), w.proj.USDA.Row(p.B)) == rules.NonMatch {
			pred = 0
		}
		switch {
		case gold[i] == 1 && pred == 1:
			rulesConf.TP++
		case gold[i] == 0 && pred == 1:
			rulesConf.FP++
		case gold[i] == 0 && pred == 0:
			rulesConf.TN++
		default:
			rulesConf.FN++
		}
	}

	// Approach B: threshold tuning to the same precision.
	curve, err := ml.PRCurve(tree, evalDS)
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := ml.OperatingPointFor(curve, rulesConf.Precision())
	t.Logf("A5: rules       P=%.3f R=%.3f", rulesConf.Precision(), rulesConf.Recall())
	if ok {
		t.Logf("A5: threshold   P=%.3f R=%.3f (th=%.3f)",
			pt.Confusion.Precision(), pt.Confusion.Recall(), pt.Threshold)
	} else {
		t.Logf("A5: no threshold reaches the rules' precision %.3f at all", rulesConf.Precision())
	}

	if rulesConf.Precision() < 0.8 {
		t.Errorf("rule-patched precision %.3f below expectation", rulesConf.Precision())
	}
	// The paper's point, in its two possible strengths: either no global
	// threshold reaches the rules' precision at all (the traps are
	// feature-indistinguishable from matches, so the probability ordering
	// cannot separate them — only the pattern knowledge can), or, if one
	// does, it must sacrifice at least as much recall as the rules did.
	if ok && rulesConf.Recall() < pt.Confusion.Recall()-1e-9 {
		t.Errorf("at equal precision, rules should keep at least the threshold's recall: %.3f vs %.3f",
			rulesConf.Recall(), pt.Confusion.Recall())
	}
}

// TestPatternDiscovery reproduces how the pattern list behind the
// negative rule can be derived from the data itself: profiling the
// generated identifier columns recovers exactly the shapes the paper
// reports (federal "YYYY-#####-#####" award numbers and "WIS#####"
// project numbers).
func TestPatternDiscovery(t *testing.T) {
	w := ablationWorld(t)
	gen := func(s string) string { return string(rules.Generalize(s)) }

	awards, err := profile.Patterns(w.proj.USDA, "AwardNumber", 1, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(awards) == 0 || awards[0].Pattern != "YYYY-#####-#####" {
		t.Fatalf("award-number pattern = %+v", awards)
	}
	// Discovered shapes are in the published pattern set.
	ps := umetrics.KnownPatterns()
	found := false
	for _, p := range ps {
		if string(p) == awards[0].Pattern {
			found = true
		}
	}
	if !found {
		t.Fatalf("discovered pattern %q missing from KnownPatterns", awards[0].Pattern)
	}
}
