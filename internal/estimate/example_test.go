package estimate_test

import (
	"fmt"

	"emgo/internal/estimate"
	"emgo/internal/label"
)

func ExampleFromLabels() {
	// A labeled random sample of the candidate set: whether the matcher
	// predicted each sampled pair, and what the expert said.
	predicted := []bool{true, true, true, true, false, false}
	labels := []label.Label{
		label.Yes, label.Yes, label.Yes, label.No, // 3 of 4 predictions correct
		label.Yes,    // one missed match
		label.Unsure, // ignored
	}
	est, _ := estimate.FromLabels(predicted, labels)
	fmt.Printf("precision %.2f over %d, recall %.2f over %d\n",
		est.Precision.Point, est.SamplePredicted,
		est.Recall.Point, est.SampleMatches)
	// Output: precision 0.75 over 4, recall 0.75 over 4
}
