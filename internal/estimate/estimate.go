// Package estimate implements the Corleone-style accuracy estimation of
// Section 11: given a labeled random sample of the consolidated candidate
// set, it estimates the precision and recall of any matcher's predicted
// match set as binomial confidence intervals, without needing labels for
// the whole Cartesian product.
package estimate

import (
	"fmt"
	"math"

	"emgo/internal/block"
	"emgo/internal/label"
)

// Interval is a point estimate with a confidence interval, all in [0,1].
type Interval struct {
	Lo, Point, Hi float64
}

// String renders the interval as the paper reports them, e.g.
// "(75.2%, 80.3%)".
func (iv Interval) String() string {
	return fmt.Sprintf("(%.1f%%, %.1f%%)", iv.Lo*100, iv.Hi*100)
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Widen expands the interval by delta on both sides, clamped to [0,1].
// Quality monitoring uses it to discount a training-time accuracy
// estimate by observed drift: the point estimate is kept, but the
// claimed certainty around it shrinks as the deployed slice moves away
// from the slice the estimate was measured on.
func (iv Interval) Widen(delta float64) Interval {
	if delta <= 0 {
		return iv
	}
	out := Interval{Lo: iv.Lo - delta, Point: iv.Point, Hi: iv.Hi + delta}
	if out.Lo < 0 {
		out.Lo = 0
	}
	if out.Hi > 1 {
		out.Hi = 1
	}
	return out
}

// Estimate is the estimated accuracy of a predicted match set.
type Estimate struct {
	Precision Interval
	Recall    Interval
	// SamplePredicted is how many decided sample pairs the matcher
	// predicted as matches (the precision denominator).
	SamplePredicted int
	// SampleMatches is how many decided sample pairs are labeled Yes (the
	// recall denominator).
	SampleMatches int
	// Ignored is how many sample pairs were Unsure and skipped (footnote
	// 10: "the estimation procedure ignores the Unsure pairs").
	Ignored int
}

// z95 is the two-sided 95% normal quantile used for the intervals.
const z95 = 1.96

// binomialInterval returns the normal-approximation 95% CI for k successes
// out of n, clamped to [0,1]. With n == 0 the estimate is vacuous: (1,1)
// — the convention under which a matcher with no predicted matches in the
// sample reports perfect precision (this is how IRIS reports (100%,100%)).
func binomialInterval(k, n int) Interval {
	if n == 0 {
		return Interval{Lo: 1, Point: 1, Hi: 1}
	}
	p := float64(k) / float64(n)
	half := z95 * math.Sqrt(p*(1-p)/float64(n))
	lo := p - half
	hi := p + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Point: p, Hi: hi}
}

// WilsonInterval returns the Wilson-score 95% CI for k successes out of
// n. Unlike the normal approximation (which collapses to a zero-width
// interval at p̂ = 0 or 1, exactly how the paper's IRIS precision reads
// (100%, 100%)), Wilson stays honest near the boundaries; it is offered
// for users who prefer it over the paper-faithful default.
func WilsonInterval(k, n int) Interval {
	if n == 0 {
		return Interval{Lo: 1, Point: 1, Hi: 1}
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z95 * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Point: p, Hi: hi}
}

// WilsonFromRate returns the Wilson-score 95% CI for an observed success
// rate over n trials — the form quality monitoring needs when it has a
// calibrated score average (mean P(match) over predicted matches)
// rather than integer label counts. The rate is clamped to [0,1]; n <= 0
// yields the vacuous (1,1) interval, matching WilsonInterval's n == 0
// convention.
func WilsonFromRate(rate float64, n int) Interval {
	if n <= 0 {
		return Interval{Lo: 1, Point: 1, Hi: 1}
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	k := int(math.Round(rate * float64(n)))
	iv := WilsonInterval(k, n)
	iv.Point = rate
	return iv
}

// PrecisionRecall estimates the accuracy of the predicted match set pred
// from a labeled random sample of the candidate universe. The sample must
// have been drawn uniformly from the same candidate set that pred was
// predicted over (the Section 11 step-1 requirement); pairs labeled Unsure
// are ignored.
func PrecisionRecall(pred *block.CandidateSet, sample *label.Store) (Estimate, error) {
	pairs := sample.Pairs()
	predicted := make([]bool, len(pairs))
	labels := make([]label.Label, len(pairs))
	for i, p := range pairs {
		predicted[i] = pred.Contains(p)
		labels[i] = sample.Get(p)
	}
	return FromLabels(predicted, labels)
}

// FromLabels is the sample-level form of PrecisionRecall for callers whose
// candidate universe spans multiple table slices (the Figure 9
// consolidated set E = C1 ∪ C2 ∪ D1 ∪ D2): element i of predicted says
// whether the matcher predicted sampled pair i as a match, and labels[i]
// is the expert's label for it.
func FromLabels(predicted []bool, labels []label.Label) (Estimate, error) {
	if len(predicted) != len(labels) {
		return Estimate{}, fmt.Errorf("estimate: %d predictions vs %d labels", len(predicted), len(labels))
	}
	if len(labels) == 0 {
		return Estimate{}, fmt.Errorf("estimate: empty sample")
	}
	var est Estimate
	var predYes, matchCaught int
	for i, l := range labels {
		switch l {
		case label.Unsure:
			est.Ignored++
			continue
		case label.Yes:
			est.SampleMatches++
			if predicted[i] {
				matchCaught++
			}
		}
		if predicted[i] {
			est.SamplePredicted++
			if l == label.Yes {
				predYes++
			}
		}
	}
	est.Precision = binomialInterval(predYes, est.SamplePredicted)
	est.Recall = binomialInterval(matchCaught, est.SampleMatches)
	return est, nil
}

// MissingFromCandidates returns the pairs in pred that are NOT in the
// candidate universe cand — the Section 11 step-1 sanity check that found
// one terminated IRIS award outside the consolidated candidate set.
func MissingFromCandidates(pred, cand *block.CandidateSet) []block.Pair {
	var out []block.Pair
	for _, p := range pred.Pairs() {
		if !cand.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}
