package estimate

import (
	"math"
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/label"
	"emgo/internal/table"
)

func tinyTables() (*table.Table, *table.Table) {
	l := table.New("L", table.MustSchema(table.Field{Name: "X", Kind: table.Int}))
	r := table.New("R", table.MustSchema(table.Field{Name: "X", Kind: table.Int}))
	for i := 0; i < 100; i++ {
		l.MustAppend(table.Row{table.I(int64(i))})
		r.MustAppend(table.Row{table.I(int64(i))})
	}
	return l, r
}

func TestBinomialInterval(t *testing.T) {
	iv := binomialInterval(0, 0)
	if iv.Lo != 1 || iv.Hi != 1 || iv.Point != 1 {
		t.Fatalf("vacuous interval: %+v", iv)
	}
	// Perfect precision has zero width (the IRIS (100%,100%) case).
	iv = binomialInterval(50, 50)
	if iv.Lo != 1 || iv.Hi != 1 {
		t.Fatalf("all-correct interval: %+v", iv)
	}
	iv = binomialInterval(0, 50)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("all-wrong interval: %+v", iv)
	}
	iv = binomialInterval(25, 50)
	if iv.Point != 0.5 {
		t.Fatalf("point = %v", iv.Point)
	}
	want := 1.96 * math.Sqrt(0.25/50)
	if math.Abs((iv.Hi-iv.Lo)/2-want) > 1e-12 {
		t.Fatalf("half width = %v want %v", (iv.Hi-iv.Lo)/2, want)
	}
	// Clamping.
	iv = binomialInterval(49, 50)
	if iv.Hi > 1 || iv.Lo < 0 {
		t.Fatalf("unclamped: %+v", iv)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 0.752, Point: 0.78, Hi: 0.803}
	if got := iv.String(); !strings.Contains(got, "75.2%") || !strings.Contains(got, "80.3%") {
		t.Fatalf("string: %s", got)
	}
	if math.Abs(iv.Width()-0.051) > 1e-12 {
		t.Fatalf("width: %v", iv.Width())
	}
}

func TestPrecisionRecall(t *testing.T) {
	l, r := tinyTables()
	// Predicted matches: diagonal pairs 0..49.
	pred := block.NewCandidateSet(l, r)
	for i := 0; i < 50; i++ {
		pred.Add(block.Pair{A: i, B: i})
	}
	// Sample: 20 predicted pairs of which 15 true, plus 10 unpredicted
	// true matches, plus 5 unsures.
	sample := label.NewStore()
	for i := 0; i < 15; i++ {
		sample.Set(block.Pair{A: i, B: i}, label.Yes)
	}
	for i := 15; i < 20; i++ {
		sample.Set(block.Pair{A: i, B: i}, label.No) // false positives
	}
	for i := 50; i < 60; i++ {
		sample.Set(block.Pair{A: i, B: i}, label.Yes) // missed matches
	}
	for i := 60; i < 65; i++ {
		sample.Set(block.Pair{A: i, B: i}, label.Unsure)
	}

	est, err := PrecisionRecall(pred, sample)
	if err != nil {
		t.Fatal(err)
	}
	if est.SamplePredicted != 20 || est.SampleMatches != 25 || est.Ignored != 5 {
		t.Fatalf("denominators: %+v", est)
	}
	if math.Abs(est.Precision.Point-0.75) > 1e-12 {
		t.Fatalf("precision point = %v", est.Precision.Point)
	}
	if math.Abs(est.Recall.Point-0.6) > 1e-12 {
		t.Fatalf("recall point = %v", est.Recall.Point)
	}
	if est.Precision.Lo >= est.Precision.Point || est.Precision.Hi <= est.Precision.Point {
		t.Fatal("precision interval should straddle point")
	}
}

func TestPrecisionRecallMoreLabelsNarrowerInterval(t *testing.T) {
	l, r := tinyTables()
	pred := block.NewCandidateSet(l, r)
	for i := 0; i < 100; i++ {
		pred.Add(block.Pair{A: i, B: i})
	}
	small, large := label.NewStore(), label.NewStore()
	// Same 3:1 yes/no composition, different sizes (Section 11 step 3:
	// 200 -> 400 labels shrank the intervals).
	for i := 0; i < 20; i++ {
		lab := label.Yes
		if i%4 == 0 {
			lab = label.No
		}
		small.Set(block.Pair{A: i, B: i}, lab)
	}
	for i := 0; i < 80; i++ {
		lab := label.Yes
		if i%4 == 0 {
			lab = label.No
		}
		large.Set(block.Pair{A: i, B: i}, lab)
	}
	e1, err := PrecisionRecall(pred, small)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := PrecisionRecall(pred, large)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Precision.Width() >= e1.Precision.Width() {
		t.Fatalf("more labels should narrow the interval: %v vs %v",
			e2.Precision.Width(), e1.Precision.Width())
	}
}

func TestPrecisionRecallEmptySample(t *testing.T) {
	l, r := tinyTables()
	pred := block.NewCandidateSet(l, r)
	if _, err := PrecisionRecall(pred, label.NewStore()); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestPrecisionRecallVacuousMatcher(t *testing.T) {
	l, r := tinyTables()
	pred := block.NewCandidateSet(l, r) // predicts nothing
	sample := label.NewStore()
	sample.Set(block.Pair{A: 0, B: 0}, label.Yes)
	sample.Set(block.Pair{A: 1, B: 1}, label.No)
	est, err := PrecisionRecall(pred, sample)
	if err != nil {
		t.Fatal(err)
	}
	if est.Precision.Lo != 1 || est.Precision.Hi != 1 {
		t.Fatalf("vacuous precision: %+v", est.Precision)
	}
	if est.Recall.Point != 0 {
		t.Fatalf("recall of empty predictor: %+v", est.Recall)
	}
}

func TestMissingFromCandidates(t *testing.T) {
	l, r := tinyTables()
	cand := block.NewCandidateSet(l, r)
	cand.Add(block.Pair{A: 0, B: 0})
	pred := block.NewCandidateSet(l, r)
	pred.Add(block.Pair{A: 0, B: 0})
	pred.Add(block.Pair{A: 5, B: 5}) // the "terminated award" case
	missing := MissingFromCandidates(pred, cand)
	if len(missing) != 1 || missing[0] != (block.Pair{A: 5, B: 5}) {
		t.Fatalf("missing: %v", missing)
	}
}
