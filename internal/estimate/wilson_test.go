package estimate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonInterval(t *testing.T) {
	// Vacuous case matches the normal convention.
	iv := WilsonInterval(0, 0)
	if iv.Lo != 1 || iv.Hi != 1 {
		t.Fatalf("vacuous: %+v", iv)
	}
	// Unlike the normal approximation, Wilson does NOT collapse at p=1:
	// 50/50 successes still leaves honest uncertainty.
	iv = WilsonInterval(50, 50)
	if iv.Lo >= 1 {
		t.Fatalf("Wilson at p=1 should keep width: %+v", iv)
	}
	if iv.Hi != 1 || iv.Point != 1 {
		t.Fatalf("Wilson upper/point at p=1: %+v", iv)
	}
	// Reference value: k=8, n=10 → Wilson 95% ≈ (0.490, 0.943).
	iv = WilsonInterval(8, 10)
	if math.Abs(iv.Lo-0.490) > 0.01 || math.Abs(iv.Hi-0.943) > 0.01 {
		t.Fatalf("Wilson(8,10) = %+v", iv)
	}
}

// Properties: the interval contains the point estimate, stays in [0,1],
// and narrows as n grows at fixed p.
func TestWilsonProperties(t *testing.T) {
	f := func(k, n uint8) bool {
		kk, nn := int(k), int(n)
		if nn == 0 {
			nn = 1
		}
		kk %= nn + 1
		iv := WilsonInterval(kk, nn)
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			return false
		}
		return iv.Point >= iv.Lo-1e-12 && iv.Point <= iv.Hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	small := WilsonInterval(5, 10)
	large := WilsonInterval(500, 1000)
	if large.Width() >= small.Width() {
		t.Fatalf("more data should narrow the interval: %v vs %v", large.Width(), small.Width())
	}
}
