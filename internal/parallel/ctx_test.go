package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestForCtxMatchesSerial(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	got := make([]int, n)
	if err := ForCtx(context.Background(), n, func(i int) error {
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForCtxWorkerPanicBecomesError(t *testing.T) {
	out := make([]int, 100)
	err := ForWorkersCtx(context.Background(), 100, 4, func(i int) error {
		if i == 37 {
			panic("kaboom")
		}
		out[i] = 1
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Index != 37 {
		t.Fatalf("panic index = %d", pe.Index)
	}
	if !strings.Contains(err.Error(), "index 37") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error message: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error should carry a stack")
	}
	if idx, ok := FailingIndex(err); !ok || idx != 37 {
		t.Fatalf("FailingIndex = %d, %v", idx, ok)
	}
}

func TestForCtxErrorCarriesIndex(t *testing.T) {
	sentinel := errors.New("bad row")
	err := ForWorkersCtx(context.Background(), 50, 4, func(i int) error {
		if i == 12 {
			return sentinel
		}
		return nil
	})
	var ie *IndexError
	if !errors.As(err, &ie) || ie.Index != 12 {
		t.Fatalf("err: %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("wrapped error lost")
	}
	if idx, ok := FailingIndex(err); !ok || idx != 12 {
		t.Fatalf("FailingIndex = %d, %v", idx, ok)
	}
}

func TestForCtxLowestIndexWinsWhenSerial(t *testing.T) {
	// Serial path: the first failing index is returned even when later
	// ones would fail too.
	err := ForWorkersCtx(context.Background(), 10, 1, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if idx, ok := FailingIndex(err); !ok || idx != 3 {
		t.Fatalf("err: %v", err)
	}
}

func TestForCtxStopsDispatchAfterFailure(t *testing.T) {
	var calls atomic.Int64
	err := ForWorkersCtx(context.Background(), 10000, 4, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n >= 10000 {
		t.Fatalf("failure did not stop dispatch: %d calls", n)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForCtx(ctx, 100, func(i int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	if calls != 0 {
		t.Fatalf("pre-cancelled run executed %d calls", calls)
	}
	if _, ok := FailingIndex(err); ok {
		t.Fatal("cancellation has no failing index")
	}
}

func TestForCtxCancellationPromptNoLeak(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 5000
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- ForWorkersCtx(ctx, n, 4, func(i int) error {
			started.Add(1)
			// Each in-flight item blocks until cancellation, so the run
			// can only finish early by honouring ctx.
			<-ctx.Done()
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ForCtx did not return")
	}
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("cancellation did not stop dispatch: %d items started", got)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

func TestForCtxNoLeakAfterPanic(t *testing.T) {
	leakcheck.Check(t)
	for round := 0; round < 10; round++ {
		err := ForWorkersCtx(context.Background(), 200, 8, func(i int) error {
			if i == 100 {
				panic("leak check")
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
}

func TestForPanicPropagatesToCaller(t *testing.T) {
	// The non-ctx For no longer kills the process on a worker panic: the
	// panic resurfaces on the calling goroutine where recover works.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected propagated panic")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T: %v", r, r)
		}
		if pe.Index != 5 || fmt.Sprint(pe.Value) != "ouch" {
			t.Fatalf("panic error: %v", pe)
		}
	}()
	For(10, func(i int) {
		if i == 5 {
			panic("ouch")
		}
	})
}

func TestForCtxZeroAndNegativeN(t *testing.T) {
	if err := ForCtx(context.Background(), 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForCtx(context.Background(), -3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
