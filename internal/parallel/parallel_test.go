package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	f := func(n uint8) bool {
		nn := int(n)
		counts := make([]int32, nn)
		For(nn, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-3, func(int) { called = true })
	if called {
		t.Fatal("fn must not be called for n <= 0")
	}
}

func TestForWorkersBothPaths(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		out := make([]int32, 50)
		ForWorkers(50, workers, func(i int) {
			atomic.AddInt32(&out[i], 1)
		})
		for i, c := range out {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForDeterministicOutput(t *testing.T) {
	out1 := make([]int, 1000)
	out2 := make([]int, 1000)
	For(1000, func(i int) { out1[i] = i * i })
	For(1000, func(i int) { out2[i] = i * i })
	for i := range out1 {
		if out1[i] != out2[i] || out1[i] != i*i {
			t.Fatal("per-index results must be deterministic")
		}
	}
}
