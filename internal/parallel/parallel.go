// Package parallel provides the deterministic fan-out helper the
// compute-heavy stages share (vectorization, forest training,
// leave-one-out debugging): work is split by index across workers and
// results land in preallocated slots, so concurrency never changes any
// output.
//
// The context-aware forms (ForCtx, ForWorkersCtx) are the hardened
// runtime: they stop dispatching on cancellation or first failure,
// recover worker panics into errors carrying the failing index and
// stack, and leak no goroutines — every worker has exited by the time
// they return.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic recovered by ForCtx, carrying the failing
// index and the worker's stack.
type PanicError struct {
	// Index is the work item whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic at index %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// IndexError wraps an error returned by fn(i) with the index it failed
// at, so callers can quarantine the failing item.
type IndexError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *IndexError) Error() string {
	return fmt.Sprintf("parallel: index %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *IndexError) Unwrap() error { return e.Err }

// FailingIndex extracts the work-item index from an error returned by
// ForCtx/ForWorkersCtx (a PanicError or IndexError anywhere in the
// chain). ok is false for errors with no index, e.g. cancellation.
func FailingIndex(err error) (idx int, ok bool) {
	for err != nil {
		switch e := err.(type) {
		case *PanicError:
			return e.Index, true
		case *IndexError:
			return e.Index, true
		}
		u, isWrapped := err.(interface{ Unwrap() error })
		if !isWrapped {
			return 0, false
		}
		err = u.Unwrap()
	}
	return 0, false
}

// For runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n) workers.
// fn must only write to state owned by index i (e.g. out[i]); For returns
// when all calls finish. n <= 0 is a no-op. A panicking fn no longer
// kills the process: the panic is recovered, remaining work stops, and
// the panic is re-raised on the calling goroutine as a *PanicError, so a
// deferred recover in the caller can observe it.
func For(n int, fn func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// ForWorkers is For with an explicit worker count (values below 2 run
// serially).
func ForWorkers(n, workers int, fn func(i int)) {
	err := ForWorkersCtx(context.Background(), n, workers, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		// Background context and nil-returning fn: the only possible
		// error is a recovered worker panic. Re-raise it where the
		// caller can recover it.
		panic(err)
	}
}

// ForCtx runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers, honouring ctx. It returns nil when every call succeeded;
// otherwise the first failure by lowest index (*IndexError for returned
// errors, *PanicError for recovered panics), or ctx.Err() when cancelled
// before any failure. On cancellation or failure no new work is
// dispatched; already-running calls finish, and ForCtx returns only once
// every worker has exited (no goroutine leaks).
func ForCtx(ctx context.Context, n int, fn func(i int) error) error {
	return ForWorkersCtx(ctx, n, runtime.GOMAXPROCS(0), fn)
}

// ForWorkersCtx is ForCtx with an explicit worker count (values below 2
// run serially). The deterministic-output guarantee holds: a successful
// run executes fn for every index exactly once regardless of workers.
func ForWorkersCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	abort := make(chan struct{}) // closed on first failure to stop dispatch
	var closeAbort sync.Once

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := call(i, fn); err != nil {
					record(i, err)
					closeAbort.Do(func() { close(abort) })
				}
			}
		}()
	}

	done := ctx.Done()
	cancelled := false
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			cancelled = true
			break dispatch
		case <-abort:
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// call invokes fn(i), converting a panic into a *PanicError and a
// returned error into an *IndexError.
func call(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := fn(i); ferr != nil {
		return &IndexError{Index: i, Err: ferr}
	}
	return nil
}
