// Package parallel provides the deterministic fan-out helper the
// compute-heavy stages share (vectorization, forest training,
// leave-one-out debugging): work is split by index across workers and
// results land in preallocated slots, so concurrency never changes any
// output.
package parallel

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n) workers.
// fn must only write to state owned by index i (e.g. out[i]); For returns
// when all calls finish. n <= 0 is a no-op.
func For(n int, fn func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// ForWorkers is For with an explicit worker count (values below 2 run
// serially).
func ForWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
