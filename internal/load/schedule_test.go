package load

import (
	"testing"
	"time"
)

func TestBuildScheduleDeterministic(t *testing.T) {
	for _, profile := range []string{ProfileUniform, ProfilePoisson, ProfileBurst, ProfileRamp} {
		cfg := ScheduleConfig{Profile: profile, Rate: 200, Duration: 2 * time.Second, Seed: 7,
			PickN: 100, Blend: DefaultBlend()}
		a, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		b, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", profile, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %+v vs %+v — schedule is not deterministic", profile, i, a[i], b[i])
			}
		}
	}
}

func TestBuildScheduleSeedChangesDraws(t *testing.T) {
	cfg := ScheduleConfig{Profile: ProfilePoisson, Rate: 200, Duration: 2 * time.Second, PickN: 100}
	a, _ := BuildSchedule(cfg)
	cfg.Seed = 99
	b, _ := BuildSchedule(cfg)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].At != b[i].At {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical Poisson schedules")
	}
}

func TestUniformSchedule(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{Profile: ProfileUniform, Rate: 100, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 100 {
		t.Fatalf("100qps x 1s yields %d arrivals, want 100", len(arr))
	}
	gap := arr[1].At - arr[0].At
	for i := 1; i < len(arr); i++ {
		if d := arr[i].At - arr[i-1].At; d != gap {
			t.Fatalf("uniform gap drifted at %d: %v vs %v", i, d, gap)
		}
	}
	if arr[0].At != 0 {
		t.Fatalf("first arrival at %v, want 0", arr[0].At)
	}
}

func TestPoissonScheduleRate(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{Profile: ProfilePoisson, Rate: 500, Duration: 4 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 2000 expected arrivals; a 10% tolerance is ~4.5 sigma.
	if n := len(arr); n < 1800 || n > 2200 {
		t.Fatalf("poisson 500qps x 4s yields %d arrivals, want ~2000", n)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
}

func TestBurstScheduleDensity(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{
		Profile: ProfileBurst, Rate: 100, Duration: 2 * time.Second,
		BurstFactor: 5, BurstEvery: time.Second, BurstLen: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	inBurst, outBurst := 0, 0
	for _, a := range arr {
		phase := a.At % time.Second
		if phase < 200*time.Millisecond {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows cover 20% of the time at 5x the rate: the window
	// should hold roughly half the arrivals, and certainly be denser
	// per unit time than the base period.
	if float64(inBurst)/0.4 <= float64(outBurst)/1.6 {
		t.Fatalf("burst windows are not denser: %d in 0.4s vs %d in 1.6s", inBurst, outBurst)
	}
}

func TestRampScheduleClimbs(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{Profile: ProfileRamp, Rate: 50, Duration: 2 * time.Second, RampTo: 400})
	if err != nil {
		t.Fatal(err)
	}
	firstHalf, secondHalf := 0, 0
	for _, a := range arr {
		if a.At < time.Second {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if secondHalf <= firstHalf {
		t.Fatalf("ramp did not climb: %d arrivals in the first half, %d in the second", firstHalf, secondHalf)
	}
}

func TestZipfPickSkew(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{
		Profile: ProfileUniform, Rate: 2000, Duration: time.Second,
		Pick: PickZipf, PickN: 1000, ZipfS: 1.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range arr {
		if a.Record < 0 || a.Record >= 1000 {
			t.Fatalf("record index %d out of pool range", a.Record)
		}
		counts[a.Record]++
	}
	// Zipf concentrates mass on low indices: the hottest key must be
	// far above the uniform expectation (2 per key).
	if counts[0] < 100 {
		t.Fatalf("zipf head key drew %d of 2000 picks — not skewed", counts[0])
	}
}

func TestUniformPickCoversPool(t *testing.T) {
	arr, err := BuildSchedule(ScheduleConfig{
		Profile: ProfileUniform, Rate: 1000, Duration: time.Second,
		Pick: PickUniform, PickN: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range arr {
		seen[a.Record] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform pick over 1000 draws hit %d of 10 keys", len(seen))
	}
}

func TestBuildScheduleRejects(t *testing.T) {
	cases := []ScheduleConfig{
		{Profile: ProfileUniform, Rate: 0, Duration: time.Second},
		{Profile: ProfileUniform, Rate: 10, Duration: 0},
		{Profile: "sawtooth", Rate: 10, Duration: time.Second},
		{Profile: ProfileUniform, Rate: 10, Duration: time.Second, Pick: "pareto"},
		{Profile: ProfileUniform, Rate: 1e9, Duration: time.Hour},
	}
	for _, cfg := range cases {
		if _, err := BuildSchedule(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}
