package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Stream mode: prove the resumable transport end to end against a live
// server. Submit a job, stream its results twice — once clean as the
// byte-exact reference, once through the disconnect-injection chaos
// hook with a persisted cursor — and require the reassembled bytes to
// be identical. The chaos fetch's throughput and resume count land in
// the summary, which bench_snapshot.sh folds into the BENCH trajectory.

// StreamRunConfig drives one stream-mode run.
type StreamRunConfig struct {
	Client ClientConfig
	Pool   *RecordPool
	// JobRecords sizes the submitted job; ShardSize its shards (0 = the
	// server's default).
	JobRecords int
	ShardSize  int
	// DisconnectEvery injects a client disconnect after this many
	// committed chunks on the chaos fetch (0 = no injection).
	DisconnectEvery int
	// CursorPath persists the chaos fetch's cursor ("" = memory only).
	CursorPath string
	// JobTimeout bounds the submit→completed wait.
	JobTimeout time.Duration
	// Report receives progress lines (nil = silent).
	Report io.Writer
}

// StreamResult is the stream-mode summary section.
type StreamResult struct {
	JobID   string `json:"job_id"`
	Records int    `json:"records"`
	// Bytes/Lines/Chunks/Resumes account the chaos (resumed) fetch.
	Bytes     int64   `json:"bytes"`
	Lines     int     `json:"lines"`
	Chunks    int     `json:"chunks"`
	Resumes   int     `json:"resumes"`
	DurationS float64 `json:"duration_s"`
	MBPerS    float64 `json:"mb_per_s"`
	// ByteIdentical reports the chaos fetch reassembled exactly the
	// clean fetch's bytes — the transport's core promise.
	ByteIdentical bool `json:"byte_identical"`
	Pass          bool `json:"pass"`
}

// RunStream executes one stream-mode run.
func RunStream(ctx context.Context, cfg StreamRunConfig) (*StreamResult, error) {
	if cfg.JobRecords <= 0 {
		cfg.JobRecords = 64
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	report := cfg.Report
	if report == nil {
		report = io.Discard
	}
	c := NewClient(cfg.Client, cfg.Pool)
	defer c.CloseIdle()

	st, err := c.SubmitJob(ctx, cfg.Pool.JobRecords(cfg.JobRecords), cfg.ShardSize)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(report, "emload: stream: job %s submitted (%d records)\n", st.ID, cfg.JobRecords)
	if _, err := c.AwaitJob(ctx, st.ID, cfg.JobTimeout); err != nil {
		return nil, err
	}

	// Reference: one clean, uninterrupted stream.
	var ref bytes.Buffer
	refStats, err := c.StreamJobResults(ctx, st.ID, &ref, StreamOptions{})
	if err != nil {
		return nil, fmt.Errorf("reference stream: %w", err)
	}

	// Chaos: disconnect-injected, cursor-persisted, resumed.
	var got bytes.Buffer
	start := time.Now()
	stats, err := c.StreamJobResults(ctx, st.ID, &got, StreamOptions{
		DisconnectEvery: cfg.DisconnectEvery,
		CursorPath:      cfg.CursorPath,
		MaxResumes:      refStats.Chunks + 8, // every chunk may disconnect once
	})
	if err != nil {
		return nil, fmt.Errorf("resumed stream: %w", err)
	}
	elapsed := time.Since(start)

	res := &StreamResult{
		JobID:     st.ID,
		Records:   cfg.JobRecords,
		Bytes:     stats.Bytes,
		Lines:     stats.Lines,
		Chunks:    stats.Chunks,
		Resumes:   stats.Resumes,
		DurationS: elapsed.Seconds(),
	}
	if elapsed > 0 {
		res.MBPerS = float64(stats.Bytes) / (1 << 20) / elapsed.Seconds()
	}
	res.ByteIdentical = bytes.Equal(ref.Bytes(), got.Bytes())
	res.Pass = res.ByteIdentical && stats.Complete && refStats.Complete

	// Cross-check against the buffered document when the job is small
	// enough for it: stream lines = records + summary.
	if raw, err := c.JobResults(ctx, st.ID); err == nil {
		var doc struct {
			Results []json.RawMessage `json:"results"`
		}
		if json.Unmarshal(raw, &doc) == nil && stats.Lines != len(doc.Results)+1 {
			fmt.Fprintf(report, "emload: stream: line count %d does not match buffered records %d + summary\n",
				stats.Lines, len(doc.Results))
			res.Pass = false
		}
	}
	fmt.Fprintf(report, "emload: stream: %d bytes in %d chunks, %d resumes, %.2f MB/s, byte_identical=%v\n",
		stats.Bytes, stats.Chunks, stats.Resumes, res.MBPerS, res.ByteIdentical)
	return res, nil
}
