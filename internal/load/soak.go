package load

import (
	"context"
	"fmt"
	"time"

	"emgo/internal/obs/slo"
)

// Gate is the soak-mode assertion set: client-side objectives computed
// from the run's own accounting, plus server-side checks read back from
// /v1/status. A soak passes only when every check passes — the harness
// exits non-zero otherwise, which is what makes it a CI gate rather
// than a report.
type Gate struct {
	// Objectives are client-side reliability targets, in the same syntax
	// the server's -slo flag takes (slo.ParseObjectives). Availability is
	// judged over non-shed completions (sheds are admission policy, not
	// failures); latency objectives are judged over every completed
	// request — a shed answer is an answer the client waited for.
	Objectives []slo.Objective
	// MaxUnexpected caps ClassUnexpected outcomes (default 0: a 200 to a
	// malformed body is a bug, not noise).
	MaxUnexpected int64
	// RequireRetryAfter fails the gate when any shed answer arrived
	// without a Retry-After hint.
	RequireRetryAfter bool
	// MaxJobFailures caps failed blend-submitted jobs (default 0).
	MaxJobFailures int64
	// MaxDropFrac caps the fraction of arrivals the generator itself
	// dropped at the outstanding cap; past it the measurement is not
	// trustworthy (default 0.01).
	MaxDropFrac float64
	// CheckServer, when set, also fetches /v1/status from this client
	// and fails the gate when the server reports a breached SLO.
	CheckServer *Client
	// RequireBreakerClosed additionally demands the server's breaker be
	// "closed" at gate time (chaos-soak's recovery proof).
	RequireBreakerClosed bool
}

// GateCheck is one named verdict.
type GateCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// GateResult is the full gate evaluation, embedded in the summary JSON.
type GateResult struct {
	Pass   bool        `json:"pass"`
	Checks []GateCheck `json:"checks"`
}

// check appends one verdict.
func (g *GateResult) check(name string, pass bool, format string, args ...any) {
	g.Checks = append(g.Checks, GateCheck{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	if !pass {
		g.Pass = false
	}
}

// Evaluate judges one finished load phase against the gate.
func (gate Gate) Evaluate(ctx context.Context, res *Result) *GateResult {
	out := &GateResult{Pass: true}

	bad := res.Classes[ClassServerError] + res.Classes[ClassTimeout] +
		res.Classes[ClassNetError] + res.Classes[ClassUnexpected]
	nonShed := res.Completed - res.Classes[ClassShed]

	for _, o := range gate.Objectives {
		switch o.Kind {
		case slo.KindAvailability:
			if nonShed == 0 {
				out.check(o.Name, false, "no non-shed requests completed")
				continue
			}
			okFrac := 100 * float64(nonShed-bad) / float64(nonShed)
			out.check(o.Name, okFrac >= o.Target,
				"%.3f%% ok (want >= %.3f%%; %d bad of %d non-shed)", okFrac, o.Target, bad, nonShed)
		case slo.KindLatency:
			if res.Completed == 0 {
				out.check(o.Name, false, "no requests completed")
				continue
			}
			q := res.Hist.Quantile(o.Target / 100)
			out.check(o.Name, q <= o.ThresholdMS,
				"p%g = %s (want <= %s)", o.Target, fmtMS(q), fmtMS(o.ThresholdMS))
		}
	}

	if gate.MaxUnexpected >= 0 {
		n := res.Classes[ClassUnexpected]
		out.check("unexpected_answers", n <= gate.MaxUnexpected,
			"%d unexpected answer(s) (allowed %d)", n, gate.MaxUnexpected)
	}
	if gate.RequireRetryAfter {
		out.check("shed_retry_after", res.ShedNoRetryAfter == 0,
			"%d shed answer(s) missing Retry-After", res.ShedNoRetryAfter)
	}
	if res.JobsSubmitted > 0 || gate.MaxJobFailures > 0 {
		out.check("jobs", res.JobsFailed <= gate.MaxJobFailures,
			"%d of %d async job(s) failed (allowed %d)", res.JobsFailed, res.JobsSubmitted, gate.MaxJobFailures)
	}
	maxDrop := gate.MaxDropFrac
	if maxDrop <= 0 {
		maxDrop = 0.01
	}
	if res.Scheduled > 0 {
		dropFrac := float64(res.Dropped) / float64(res.Scheduled)
		out.check("generator_drops", dropFrac <= maxDrop,
			"dropped %.2f%% of arrivals at the outstanding cap (allowed %.2f%%)", 100*dropFrac, 100*maxDrop)
	}

	if gate.CheckServer != nil {
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		st, err := gate.CheckServer.Status(sctx)
		switch {
		case err != nil:
			out.check("server_status", false, "fetch /v1/status: %v", err)
		default:
			if st.SLO != nil {
				detail := "error budget holds"
				for _, o := range st.SLO.Objectives {
					if o.Breached {
						detail = fmt.Sprintf("objective %s breached (fast %.1fx / slow %.1fx)", o.Name, o.FastBurn, o.SlowBurn)
					}
				}
				out.check("server_slo", !st.SLO.Breached, "%s", detail)
			}
			if gate.RequireBreakerClosed {
				out.check("breaker_closed", st.Breaker == "closed", "breaker is %q", st.Breaker)
			}
		}
	}
	return out
}
