package load

import (
	"encoding/json"
	"io"

	"emgo/internal/obs"
)

// LatencySummary is the headline latency numbers in milliseconds,
// coordinated-omission-corrected (charged from scheduled send times).
type LatencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// latencySummary distills a histogram snapshot.
func latencySummary(h obs.HistogramSnapshot) LatencySummary {
	ls := LatencySummary{
		P50MS:  h.Quantile(0.50),
		P90MS:  h.Quantile(0.90),
		P99MS:  h.Quantile(0.99),
		P999MS: h.Quantile(0.999),
		MaxMS:  h.Max,
	}
	if h.Count > 0 {
		ls.MeanMS = h.Sum / float64(h.Count)
	}
	return ls
}

// PhaseSummary is one load phase rendered for the machine-readable
// summary document.
type PhaseSummary struct {
	Name        string           `json:"name,omitempty"`
	Profile     string           `json:"profile"`
	TargetQPS   float64          `json:"target_qps"`
	DurationS   float64          `json:"duration_s"`
	Seed        int64            `json:"seed"`
	Blend       string           `json:"blend"`
	Scheduled   int64            `json:"scheduled"`
	Sent        int64            `json:"sent"`
	Completed   int64            `json:"completed"`
	Dropped     int64            `json:"dropped,omitempty"`
	Unsent      int64            `json:"unsent,omitempty"`
	OfferedQPS  float64          `json:"offered_qps"`
	AchievedQPS float64          `json:"achieved_qps"`
	Classes     map[string]int64 `json:"classes"`
	Kinds       map[Kind]int64   `json:"kinds"`
	Degraded    int64            `json:"degraded"`
	// ShedMissingRetryAfter counts contract violations: a 429/503 shed
	// answer with no Retry-After hint.
	ShedMissingRetryAfter int64                 `json:"shed_missing_retry_after"`
	Retries               int64                 `json:"retries,omitempty"`
	JobsSubmitted         int64                 `json:"jobs_submitted,omitempty"`
	JobsCompleted         int64                 `json:"jobs_completed,omitempty"`
	JobsFailed            int64                 `json:"jobs_failed,omitempty"`
	Latency               LatencySummary        `json:"latency"`
	Histogram             obs.HistogramSnapshot `json:"histogram"`
}

// NewPhaseSummary renders one phase result against the schedule that
// produced it.
func NewPhaseSummary(name string, cfg ScheduleConfig, res *Result) PhaseSummary {
	cfg = cfg.withDefaults()
	blend := cfg.Blend
	if blend.total() == 0 {
		blend = Blend{Single: 1}
	}
	return PhaseSummary{
		Name:                  name,
		Profile:               cfg.Profile,
		TargetQPS:             cfg.Rate,
		DurationS:             cfg.Duration.Seconds(),
		Seed:                  cfg.Seed,
		Blend:                 blend.String(),
		Scheduled:             res.Scheduled,
		Sent:                  res.Sent,
		Completed:             res.Completed,
		Dropped:               res.Dropped,
		Unsent:                res.Unsent,
		OfferedQPS:            res.OfferedQPS,
		AchievedQPS:           res.AchievedQPS,
		Classes:               res.Classes,
		Kinds:                 res.Kinds,
		Degraded:              res.Degraded,
		ShedMissingRetryAfter: res.ShedNoRetryAfter,
		Retries:               res.Retries,
		JobsSubmitted:         res.JobsSubmitted,
		JobsCompleted:         res.JobsCompleted,
		JobsFailed:            res.JobsFailed,
		Latency:               latencySummary(res.Hist),
		Histogram:             res.Hist,
	}
}

// Summary is emload's machine-readable output: one JSON document per
// run, whatever the mode. bench_snapshot.sh folds it into the
// BENCH_*.json trajectory so serving-path performance is versioned
// alongside the library benchmarks.
type Summary struct {
	GeneratedBy string `json:"generated_by"`
	Mode        string `json:"mode"`
	Target      string `json:"target,omitempty"`
	// Pass mirrors the process exit: false when any gate check failed.
	Pass   bool            `json:"pass"`
	Phases []PhaseSummary  `json:"phases,omitempty"`
	Gate   *GateResult     `json:"gate,omitempty"`
	Capac  *CapacityResult `json:"capacity,omitempty"`
	Chaos  *ChaosResult    `json:"chaos,omitempty"`
	Stream *StreamResult   `json:"stream,omitempty"`
}

// Write renders the summary as indented JSON.
func (s *Summary) Write(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
