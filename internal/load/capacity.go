package load

import (
	"context"
	"fmt"
	"io"
	"time"
)

// CapacityConfig drives the stepped-QPS capacity search: run the open
// loop at increasing rates until a step misses the latency target or
// burns too many errors; the last passing step is the box's sustainable
// capacity at that target.
type CapacityConfig struct {
	// StartQPS is the first step's rate (default 5).
	StartQPS float64
	// MaxQPS bounds the search (default 4096 * StartQPS).
	MaxQPS float64
	// Factor multiplies the rate between steps (default 2; values closer
	// to 1 trade wall clock for resolution).
	Factor float64
	// StepDuration is how long each step runs (default 10s). The first
	// WarmupFrac of each step is discarded from the verdict... kept
	// simple: the whole step counts; make steps long enough to amortize
	// cold starts.
	StepDuration time.Duration
	// P99TargetMS is the latency bar a step must hold (default 500).
	P99TargetMS float64
	// MaxBadFrac caps (server errors + timeouts + net errors +
	// unexpected) over non-shed completions per step (default 0.01).
	MaxBadFrac float64
	// MaxShedFrac caps shed answers over all completions per step
	// (default 0.05): a box serving 1% of offered load at great latency
	// is not "holding" that load.
	MaxShedFrac float64
	// TriggerProfile, after the search settles, asks the server's
	// continuous profiler for a capture and replays one confirmation
	// step at the max sustainable rate so the capture samples the
	// plateau — the profile of the box at the load it can actually
	// hold, not of an idle box after the search. Needs emserve
	// -prof-dir; a server without the endpoint degrades to a warning.
	TriggerProfile bool

	// Schedule is the per-step schedule template; Rate and Duration are
	// overwritten per step. Client, Pool, MaxOutstanding, Report, and
	// ReportEvery behave as in RunConfig.
	Schedule       ScheduleConfig
	Client         ClientConfig
	Pool           *RecordPool
	MaxOutstanding int
	ReportEvery    time.Duration
	Report         io.Writer
}

// CapacityStep is one step's verdict.
type CapacityStep struct {
	TargetQPS   float64        `json:"target_qps"`
	AchievedQPS float64        `json:"achieved_qps"`
	Latency     LatencySummary `json:"latency"`
	Bad         int64          `json:"bad"`
	Shed        int64          `json:"shed"`
	Completed   int64          `json:"completed"`
	Pass        bool           `json:"pass"`
	Reason      string         `json:"reason,omitempty"`
}

// CapacityResult is the search outcome: the staircase walked and the
// max rate the box sustained at the p99 target.
type CapacityResult struct {
	P99TargetMS       float64        `json:"p99_target_ms"`
	StepDurationS     float64        `json:"step_duration_s"`
	MaxSustainableQPS float64        `json:"max_sustainable_qps"`
	AchievedAtMaxQPS  float64        `json:"achieved_at_max_qps"`
	P99AtMaxMS        float64        `json:"p99_at_max_ms"`
	Steps             []CapacityStep `json:"steps"`
	// ProfileTriggered records that the server accepted a plateau
	// profile-capture trigger (see CapacityConfig.TriggerProfile).
	ProfileTriggered bool `json:"profile_triggered,omitempty"`
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.StartQPS <= 0 {
		c.StartQPS = 5
	}
	if c.MaxQPS <= 0 {
		c.MaxQPS = 4096 * c.StartQPS
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 10 * time.Second
	}
	if c.P99TargetMS <= 0 {
		c.P99TargetMS = 500
	}
	if c.MaxBadFrac <= 0 {
		c.MaxBadFrac = 0.01
	}
	if c.MaxShedFrac <= 0 {
		c.MaxShedFrac = 0.05
	}
	if c.Report == nil {
		c.Report = io.Discard
	}
	return c
}

// SearchCapacity walks the rate staircase and reports the maximum
// sustainable QPS at the configured p99 target. The search stops at the
// first failing step (service time only degrades with offered load, so
// later steps cannot pass) or at MaxQPS.
func SearchCapacity(ctx context.Context, cfg CapacityConfig) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	out := &CapacityResult{
		P99TargetMS:   cfg.P99TargetMS,
		StepDurationS: cfg.StepDuration.Seconds(),
	}
	for rate := cfg.StartQPS; rate <= cfg.MaxQPS; rate *= cfg.Factor {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		sched := cfg.Schedule
		sched.Rate = rate
		sched.Duration = cfg.StepDuration
		fmt.Fprintf(cfg.Report, "emload: capacity step %.1f qps (%v)\n", rate, cfg.StepDuration)
		res, err := Run(ctx, RunConfig{
			Schedule:       sched,
			Client:         cfg.Client,
			Pool:           cfg.Pool,
			MaxOutstanding: cfg.MaxOutstanding,
			ReportEvery:    cfg.ReportEvery,
			Report:         cfg.Report,
		})
		if err != nil && res == nil {
			return out, err
		}
		step := evaluateStep(cfg, rate, res)
		out.Steps = append(out.Steps, step)
		fmt.Fprintf(cfg.Report, "emload: capacity step %.1f qps -> %s\n", rate, stepVerdict(step))
		if !step.Pass {
			break
		}
		out.MaxSustainableQPS = rate
		out.AchievedAtMaxQPS = step.AchievedQPS
		out.P99AtMaxMS = step.Latency.P99MS
	}
	if cfg.TriggerProfile && out.MaxSustainableQPS > 0 && ctx.Err() == nil {
		capturePlateau(ctx, cfg, out)
	}
	return out, nil
}

// capturePlateau triggers a server-side profile capture and replays one
// step at the settled max sustainable rate, so the capture's CPU window
// samples the box under the load the search just proved it can hold.
func capturePlateau(ctx context.Context, cfg CapacityConfig, out *CapacityResult) {
	client := NewClient(cfg.Client, cfg.Pool)
	defer client.CloseIdle()
	detail := fmt.Sprintf("qps=%.1f p99_ms=%.1f", out.MaxSustainableQPS, out.P99AtMaxMS)
	scheduled, err := client.TriggerProfile(ctx, "capacity_plateau", detail)
	if err != nil {
		fmt.Fprintf(cfg.Report, "emload: plateau profile trigger skipped: %v\n", err)
		return
	}
	out.ProfileTriggered = true
	fmt.Fprintf(cfg.Report, "emload: plateau profile capture triggered (scheduled=%v); replaying %.1f qps for the capture window\n",
		scheduled, out.MaxSustainableQPS)
	sched := cfg.Schedule
	sched.Rate = out.MaxSustainableQPS
	sched.Duration = cfg.StepDuration
	if _, err := Run(ctx, RunConfig{
		Schedule:       sched,
		Client:         cfg.Client,
		Pool:           cfg.Pool,
		MaxOutstanding: cfg.MaxOutstanding,
		ReportEvery:    cfg.ReportEvery,
		Report:         cfg.Report,
	}); err != nil {
		fmt.Fprintf(cfg.Report, "emload: plateau replay: %v\n", err)
	}
}

// evaluateStep judges one step against the capacity bars.
func evaluateStep(cfg CapacityConfig, rate float64, res *Result) CapacityStep {
	step := CapacityStep{
		TargetQPS:   rate,
		AchievedQPS: res.AchievedQPS,
		Latency:     latencySummary(res.Hist),
		Completed:   res.Completed,
		Shed:        res.Classes[ClassShed],
		Bad: res.Classes[ClassServerError] + res.Classes[ClassTimeout] +
			res.Classes[ClassNetError] + res.Classes[ClassUnexpected],
		Pass: true,
	}
	nonShed := res.Completed - step.Shed
	switch {
	case res.Completed == 0:
		step.Pass, step.Reason = false, "no requests completed"
	case step.Latency.P99MS > cfg.P99TargetMS:
		step.Pass = false
		step.Reason = fmt.Sprintf("p99 %s over target %s", fmtMS(step.Latency.P99MS), fmtMS(cfg.P99TargetMS))
	case nonShed > 0 && float64(step.Bad)/float64(nonShed) > cfg.MaxBadFrac:
		step.Pass = false
		step.Reason = fmt.Sprintf("%d bad of %d non-shed answers over the %.1f%% budget", step.Bad, nonShed, 100*cfg.MaxBadFrac)
	case float64(step.Shed)/float64(res.Completed) > cfg.MaxShedFrac:
		step.Pass = false
		step.Reason = fmt.Sprintf("%d of %d answers shed over the %.1f%% budget", step.Shed, res.Completed, 100*cfg.MaxShedFrac)
	case res.Scheduled > 0 && float64(res.Dropped)/float64(res.Scheduled) > 0.01:
		step.Pass = false
		step.Reason = fmt.Sprintf("generator dropped %d arrivals; measurement untrustworthy", res.Dropped)
	}
	return step
}

func stepVerdict(s CapacityStep) string {
	if s.Pass {
		return fmt.Sprintf("pass (p99 %s, %d shed, %d bad)", fmtMS(s.Latency.P99MS), s.Shed, s.Bad)
	}
	return "FAIL: " + s.Reason
}
