package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"time"

	"emgo/internal/obs/slo"
)

// ServerStatus is the subset of emserve's /v1/status document the
// harness asserts against.
type ServerStatus struct {
	Requests int64       `json:"requests"`
	Degraded int64       `json:"degraded"`
	InFlight int         `json:"inflight"`
	Queued   int64       `json:"queued"`
	Breaker  string      `json:"breaker"`
	Draining bool        `json:"draining"`
	SLO      *slo.Report `json:"slo"`
}

// JobStatus is the subset of the job poll document the harness reads.
type JobStatus struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	Shards        int    `json:"shards"`
	DoneShards    int    `json:"done_shards"`
	ResumedShards int    `json:"resumed_shards"`
	Error         string `json:"error"`
}

// getJSON fetches one JSON document.
func getJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, truncate(data, 200))
	}
	return json.Unmarshal(data, v)
}

// Status fetches the server's operational status document.
func (c *Client) Status(ctx context.Context) (*ServerStatus, error) {
	var st ServerStatus
	if err := getJSON(ctx, c.http, c.cfg.BaseURL+"/v1/status", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// TriggerProfile asks the server's continuous profiler for a capture
// (POST /debug/contprof/trigger). It reports whether the server
// scheduled one — false also covers "deduplicated into a capture
// already in flight", which for a load test is success. An error means
// the endpoint is absent (server started without -prof-dir) or
// unreachable.
func (c *Client) TriggerProfile(ctx context.Context, reason, detail string) (bool, error) {
	url := c.cfg.BaseURL + "/debug/contprof/trigger?reason=" + neturl.QueryEscape(reason)
	if detail != "" {
		url += "&detail=" + neturl.QueryEscape(detail)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("profile trigger: %d: %s", resp.StatusCode, truncate(data, 200))
	}
	var ans struct {
		Scheduled bool `json:"scheduled"`
	}
	if err := json.Unmarshal(data, &ans); err != nil {
		return false, fmt.Errorf("profile trigger answer: %w", err)
	}
	return ans.Scheduled, nil
}

// SubmitJob submits records as an async job and returns its status
// document (202) — the submission is content-addressed, so resubmitting
// the same records yields the same job id.
func (c *Client) SubmitJob(ctx context.Context, records []map[string]any, shardSize int) (*JobStatus, error) {
	doc := map[string]any{"records": records}
	if shardSize > 0 {
		doc["shard_size"] = shardSize
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("job submit: %d: %s", resp.StatusCode, truncate(data, 200))
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		return nil, fmt.Errorf("job submit answer carries no id: %s", truncate(data, 200))
	}
	return &st, nil
}

// JobStatus polls one job.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := getJSON(ctx, c.http, c.cfg.BaseURL+"/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// AwaitJob polls until the job reaches a terminal state or the deadline
// lapses.
func (c *Client) AwaitJob(ctx context.Context, id string, timeout time.Duration) (*JobStatus, error) {
	deadline := time.Now().Add(timeout)
	var last *JobStatus
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		st, err := c.JobStatus(ctx, id)
		if err == nil {
			last = st
			switch st.State {
			case "completed":
				return st, nil
			case "failed":
				return st, fmt.Errorf("job %s failed: %s", id, st.Error)
			}
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	state := "unknown"
	if last != nil {
		state = last.State
	}
	return last, fmt.Errorf("job %s did not complete within %v (state %s)", id, timeout, state)
}

// JobResults fetches a completed job's raw result bytes — raw, so two
// runs can be compared byte for byte.
func (c *Client) JobResults(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("job results: %d: %s", resp.StatusCode, truncate(data, 200))
	}
	return data, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}
