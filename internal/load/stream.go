package load

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"strings"
	"time"

	"emgo/internal/ckpt"
)

// Streaming results client: fetches /v1/jobs/{id}/results?stream=ndjson
// and survives everything the transport is built to survive — dropped
// connections, a server restart, its own process being SIGKILLed. The
// discipline that makes the output byte-identical to a one-shot fetch
// is commit-on-cursor: data lines are buffered per chunk and written to
// the output only when the chunk's trailing {"cursor":...} control line
// arrives. A connection that dies mid-chunk loses only uncommitted
// lines, and the resume re-fetches exactly those — never a duplicate,
// never a gap. The committed cursor is persisted after every chunk, so
// a killed client restarts from its cursor file, not from zero.

// StreamOptions tunes one streaming fetch.
type StreamOptions struct {
	// Cursor resumes from an explicit token ("" starts fresh — unless
	// CursorPath holds one from a previous run).
	Cursor string
	// CursorPath persists the last committed cursor after every chunk
	// ("" keeps it in memory only). The file is written atomically so a
	// kill between chunks leaves a valid resume point.
	CursorPath string
	// MaxResumes caps reconnections before giving up (default 8).
	MaxResumes int
	// DisconnectEvery is a chaos hook: drop the connection after this
	// many committed chunks and resume (0 = off).
	DisconnectEvery int
	// ReadDelay is a chaos hook: sleep this long between line reads to
	// impersonate a slow reader (0 = off).
	ReadDelay time.Duration
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.MaxResumes <= 0 {
		o.MaxResumes = 8
	}
	return o
}

// StreamStats accounts one streaming fetch.
type StreamStats struct {
	// Bytes and Lines are committed output (data lines only — control
	// lines are transport, not payload).
	Bytes int64
	Lines int
	// Chunks counts committed chunks; Resumes counts reconnections
	// (injected disconnects, server cuts, drains, and shed waits).
	Chunks  int
	Resumes int
	// Complete reports the terminal summary line was committed.
	Complete bool
	// Cursor is the last committed resume token.
	Cursor string
}

// streamLine is the minimal per-line probe: control lines carry Cursor,
// the terminal data line carries Done.
type streamLine struct {
	Cursor string `json:"cursor"`
	Done   bool   `json:"done"`
}

// StreamJobResults streams a completed job's results into w, resuming
// across disconnects until the terminal summary line commits. The bytes
// written to w are exactly the data lines of a one-shot stream.
func (c *Client) StreamJobResults(ctx context.Context, id string, w io.Writer, opt StreamOptions) (*StreamStats, error) {
	opt = opt.withDefaults()
	stats := &StreamStats{Cursor: opt.Cursor}
	if stats.Cursor == "" && opt.CursorPath != "" {
		if b, err := os.ReadFile(opt.CursorPath); err == nil {
			stats.Cursor = strings.TrimSpace(string(b))
		}
	}
	// Streams last as long as the reader is slow; the load client's
	// per-request Timeout would cut healthy long fetches, so streaming
	// rides an untimed client on the shared transport. Cancellation
	// still arrives through ctx.
	hc := &http.Client{Transport: c.http.Transport}

	resumes := 0
	for {
		complete, err := c.streamOnce(ctx, hc, id, w, opt, stats)
		if complete {
			stats.Resumes = resumes
			return stats, nil
		}
		if ctx.Err() != nil {
			stats.Resumes = resumes
			return stats, ctx.Err()
		}
		if resumes >= opt.MaxResumes {
			stats.Resumes = resumes
			return stats, fmt.Errorf("stream of job %s incomplete after %d resumes: %w", id, resumes, err)
		}
		resumes++
		var shed *shedError
		if errors.As(err, &shed) {
			// 429/503: the stream gate or a drain. Honor the hint like
			// every other client, bounded the same way.
			delay := shed.retryAfter
			if delay <= 0 {
				delay = 200 * time.Millisecond
			}
			if delay > c.cfg.MaxRetryAfter {
				delay = c.cfg.MaxRetryAfter
			}
			select {
			case <-ctx.Done():
				stats.Resumes = resumes
				return stats, ctx.Err()
			case <-time.After(delay):
			}
		}
	}
}

// shedError marks a 429/503 answer on the stream route.
type shedError struct {
	status     int
	retryAfter time.Duration
}

func (e *shedError) Error() string { return fmt.Sprintf("stream shed: %d", e.status) }

// streamOnce runs one connection's worth of the stream: connect at the
// current cursor, commit chunks as their cursors arrive, stop at the
// summary line, an injected disconnect, or a transport error. It
// reports whether the stream is complete; an incomplete return's error
// explains why this connection ended (the caller decides on resuming).
func (c *Client) streamOnce(ctx context.Context, hc *http.Client, id string, w io.Writer, opt StreamOptions, stats *StreamStats) (bool, error) {
	url := c.cfg.BaseURL + "/v1/jobs/" + id + "/results?stream=ndjson"
	if stats.Cursor != "" {
		url += "&cursor=" + neturl.QueryEscape(stats.Cursor)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
		hint, _ := retryAfterHint(resp.Header)
		return false, &shedError{status: resp.StatusCode, retryAfter: hint}
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return false, fmt.Errorf("stream job results: %d: %s", resp.StatusCode, truncate(data, 200))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var pending [][]byte // this chunk's data lines, uncommitted
	pendingDone := false
	chunksThisConn := 0
	for sc.Scan() {
		if opt.ReadDelay > 0 {
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(opt.ReadDelay):
			}
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe streamLine
		if err := json.Unmarshal(line, &probe); err != nil {
			return false, fmt.Errorf("stream line is not JSON: %s", truncate(line, 120))
		}
		if probe.Cursor == "" {
			// Data line: buffer until its chunk's cursor arrives.
			pending = append(pending, append([]byte(nil), line...))
			if probe.Done {
				pendingDone = true
			}
			continue
		}
		// Control line: the server has durably delivered everything
		// buffered. Commit — output first, then the cursor, so a kill
		// between the two re-fetches a chunk rather than skipping one.
		if err := commitChunk(w, pending, probe.Cursor, opt.CursorPath, stats); err != nil {
			return false, err
		}
		if pendingDone {
			stats.Complete = true
			return true, nil
		}
		pending = pending[:0]
		chunksThisConn++
		if opt.DisconnectEvery > 0 && chunksThisConn >= opt.DisconnectEvery {
			// Chaos hook: abandon the connection mid-stream. Anything
			// after the committed cursor is re-fetched on resume.
			return false, fmt.Errorf("injected disconnect after %d chunks", chunksThisConn)
		}
	}
	// The connection ended without the summary line: server cut, drain,
	// or a torn chunk. Uncommitted lines are dropped by design.
	if err := sc.Err(); err != nil {
		return false, err
	}
	return false, fmt.Errorf("stream ended before the summary line (%d uncommitted lines dropped)", len(pending))
}

// commitChunk writes a chunk's data lines to the output and persists
// the cursor that vouches for them.
func commitChunk(w io.Writer, lines [][]byte, cursor, cursorPath string, stats *StreamStats) error {
	for _, line := range lines {
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
		stats.Bytes += int64(len(line)) + 1
		stats.Lines++
	}
	stats.Chunks++
	stats.Cursor = cursor
	if cursorPath != "" {
		if err := ckpt.AtomicWriteFile(cursorPath, []byte(cursor), 0o644); err != nil {
			return fmt.Errorf("persist stream cursor: %w", err)
		}
	}
	return nil
}
