package load

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RunConfig drives one open-loop load phase.
type RunConfig struct {
	// Schedule describes the arrivals; Client the server and request
	// shapes; Pool the record source (may be nil for record-free blends).
	Schedule ScheduleConfig
	Client   ClientConfig
	Pool     *RecordPool
	// MaxOutstanding caps concurrently in-flight requests — generator
	// self-protection, not pacing (default 4096). An arrival finding the
	// cap full is counted as dropped, never delayed: delaying it would
	// re-introduce coordinated omission through the back door.
	MaxOutstanding int
	// ReportEvery prints a live eps/percentile line to Report at this
	// period (0 = silent).
	ReportEvery time.Duration
	// Report receives live lines (default io.Discard).
	Report io.Writer
	// JobWait bounds how long the end of the run waits for async jobs
	// submitted by the blend to finish (default 30s; 0 keeps default,
	// negative skips waiting).
	JobWait time.Duration
}

// Result is one load phase's full accounting.
type Result struct {
	Snapshot
	// Scheduled is how many arrivals the schedule held; Sent how many
	// were issued; Dropped how many the outstanding cap refused;
	// Unsent how many were abandoned on context cancellation.
	Scheduled int64
	Sent      int64
	Dropped   int64
	Unsent    int64
	// OfferedQPS is the schedule's rate over the wall clock; AchievedQPS
	// counts completed requests.
	OfferedQPS  float64
	AchievedQPS float64
	// JobsSubmitted/JobsCompleted/JobsFailed track blend-submitted async
	// jobs through their poll/fetch lifecycle.
	JobsSubmitted int64
	JobsCompleted int64
	JobsFailed    int64
}

// Run executes one open-loop phase: walk the schedule on the wall
// clock, dispatch every arrival the instant it is due, and account for
// every completion with its latency charged from the scheduled send
// time. Cancelling ctx abandons unsent arrivals (counted) and returns
// what was measured so far.
func Run(ctx context.Context, cfg RunConfig) (*Result, error) {
	sched, err := BuildSchedule(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	if cfg.Report == nil {
		cfg.Report = io.Discard
	}
	if cfg.JobWait == 0 {
		cfg.JobWait = 30 * time.Second
	}
	needsRecords := cfg.Schedule.Blend.total() == 0 ||
		cfg.Schedule.Blend.Single > 0 || cfg.Schedule.Blend.Batch > 0 || cfg.Schedule.Blend.Job > 0
	if cfg.Pool == nil && needsRecords {
		return nil, fmt.Errorf("load: blend %q carries record-bearing requests but no record pool was given", cfg.Schedule.Blend.String())
	}

	client := NewClient(cfg.Client, cfg.Pool)
	defer client.CloseIdle()
	rec := NewRecorder()
	res := &Result{Scheduled: int64(len(sched))}
	watcher := newJobWatcher(client)

	// Live reporting rides its own ticker so a stalled server cannot
	// silence the heartbeat.
	repDone := make(chan struct{})
	var repWG sync.WaitGroup
	if cfg.ReportEvery > 0 {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			rep := &reporter{rec: rec, out: cfg.Report}
			t := time.NewTicker(cfg.ReportEvery)
			defer t.Stop()
			for {
				select {
				case <-repDone:
					return
				case <-t.C:
					rep.line()
				}
			}
		}()
	}

	rec.Start()
	start := time.Now()
	sem := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	var sent, dropped int64

dispatch:
	for i, arr := range sched {
		if wait := time.Until(start.Add(arr.At)); wait > 0 {
			select {
			case <-ctx.Done():
				res.Unsent = int64(len(sched) - i)
				break dispatch
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			res.Unsent = int64(len(sched) - i)
			break dispatch
		}
		select {
		case sem <- struct{}{}:
		default:
			// The cap is full: drop the send and say so. Silently queueing
			// it would shift its send time and corrupt the measurement.
			dropped++
			continue
		}
		wg.Add(1)
		sent++
		go func(i int, arr Arrival) {
			defer wg.Done()
			defer func() { <-sem }()
			out := client.Do(ctx, i, arr)
			rec.Observe(out, time.Since(start.Add(arr.At)))
			if out.JobID != "" {
				watcher.track(out.JobID)
			}
		}(i, arr)
	}
	wg.Wait()
	if cfg.JobWait > 0 {
		watcher.wait(ctx, cfg.JobWait)
	}
	elapsed := time.Since(start)

	close(repDone)
	repWG.Wait()

	res.Snapshot = rec.Snapshot()
	res.Sent = sent
	res.Dropped = dropped
	if elapsed > 0 {
		res.OfferedQPS = float64(res.Scheduled) / elapsed.Seconds()
		res.AchievedQPS = float64(res.Completed) / elapsed.Seconds()
	}
	res.JobsSubmitted, res.JobsCompleted, res.JobsFailed = watcher.counts()
	return res, ctx.Err()
}

// jobWatcher follows blend-submitted async jobs through poll and fetch,
// so a soak asserts the full submit -> poll -> fetch lifecycle, not
// just the 202.
type jobWatcher struct {
	client *Client

	mu        sync.Mutex
	pending   map[string]bool
	submitted int64

	completed atomic.Int64
	failed    atomic.Int64
}

func newJobWatcher(c *Client) *jobWatcher {
	return &jobWatcher{client: c, pending: map[string]bool{}}
}

// track registers one submitted job id (idempotent — content-addressed
// resubmissions collapse to one watch).
func (w *jobWatcher) track(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.submitted++
	w.pending[id] = true
}

// wait polls every pending job until all reach a terminal state (a
// completed job is also fetched) or the timeout lapses; stragglers
// count as failed.
func (w *jobWatcher) wait(ctx context.Context, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		w.mu.Lock()
		ids := make([]string, 0, len(w.pending))
		for id := range w.pending {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if len(ids) == 0 {
			return
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			w.failed.Add(int64(len(ids)))
			return
		}
		for _, id := range ids {
			st, err := w.client.JobStatus(ctx, id)
			if err != nil {
				continue // poll again next round
			}
			switch st.State {
			case "completed":
				if _, ferr := w.client.JobResults(ctx, id); ferr != nil {
					w.failed.Add(1)
				} else {
					w.completed.Add(1)
				}
			case "failed", "cancelled":
				w.failed.Add(1)
			default:
				continue
			}
			w.mu.Lock()
			delete(w.pending, id)
			w.mu.Unlock()
		}
		select {
		case <-ctx.Done():
		case <-time.After(150 * time.Millisecond):
		}
	}
}

func (w *jobWatcher) counts() (submitted, completed, failed int64) {
	w.mu.Lock()
	submitted = w.submitted
	w.mu.Unlock()
	return submitted, w.completed.Load(), w.failed.Load()
}
