package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"emgo/internal/retry"
	"emgo/internal/table"
)

// Outcome classes. A request is classified against what its kind
// *expects*: a 400 answer to a deliberately malformed body is ClassOK
// (the reject path worked), while a 200 to it is ClassUnexpected — the
// generator is also a correctness probe.
const (
	ClassOK          = "ok"
	ClassShed        = "shed"         // 429/503: admission policy working
	ClassTimeout     = "timeout"      // client deadline or server 504
	ClassServerError = "server_error" // 5xx
	ClassNetError    = "net_error"    // transport failure
	ClassUnexpected  = "unexpected"   // wrong status for the kind
)

// Outcome is one finished request as the recorder sees it.
type Outcome struct {
	Kind     Kind
	Class    string
	Status   int
	Degraded bool
	// ShedNoRetryAfter marks a shed answer missing its Retry-After
	// header — a contract violation soak and chaos modes assert against.
	ShedNoRetryAfter bool
	// Attempts counts tries including the first (retries follow the
	// server's Retry-After hint under jittered backoff).
	Attempts int
	// JobID is the submitted job's id (KindJob successes only).
	JobID string
}

// RecordPool holds left-schema records mined from a CSV, the raw
// material every record-bearing request kind draws from. Title-only
// records take the learned blocking + matcher path — the expensive work
// the load test must exercise.
type RecordPool struct {
	titles []string
}

// NewRecordPool mines the title column of the given table CSV.
func NewRecordPool(csvPath string) (*RecordPool, error) {
	t, err := table.ReadCSVFile(csvPath, nil)
	if err != nil {
		return nil, err
	}
	col, err := t.Col("AwardTitle")
	if err != nil {
		return nil, fmt.Errorf("load: record pool: %w", err)
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("load: record pool %s is empty", csvPath)
	}
	titles := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		titles[i] = t.Row(i)[col].Str()
	}
	return &RecordPool{titles: titles}, nil
}

// Size is the pool size (what ScheduleConfig.PickN should be).
func (p *RecordPool) Size() int { return len(p.titles) }

// record builds one request record for pool index i with the given id.
func (p *RecordPool) record(id string, i int) map[string]any {
	return map[string]any{
		"RecordId":   id,
		"AwardTitle": p.titles[i%len(p.titles)],
	}
}

// JobRecords builds the deterministic canonical job body: the first n
// titles with fixed ids. Two runs over the same CSV submit the same
// records, so the content-addressed job id — and the result bytes — are
// comparable across processes and restarts (the chaos-soak contract).
func (p *RecordPool) JobRecords(n int) []map[string]any {
	recs := make([]map[string]any, n)
	for i := range recs {
		recs[i] = p.record(fmt.Sprintf("job-%d", i), i)
	}
	return recs
}

// ClientConfig tunes the load client.
type ClientConfig struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Timeout is the per-request client deadline (default 10s).
	Timeout time.Duration
	// Seed drives retry jitter (deterministic per request).
	Seed int64
	// ShedRetries is how many extra attempts a shed request gets, each
	// honoring the server's Retry-After hint under jittered backoff
	// (default 0: open-loop purity — a shed is an answer, not a cue to
	// hammer; soak mode turns retries on to exercise the hint path).
	ShedRetries int
	// MaxRetryAfter caps how long one Retry-After hint can stall a
	// retry (default 2s — a 60s hint must not wedge a short soak).
	MaxRetryAfter time.Duration
	// BatchSize is records per KindBatch request (default 8).
	BatchSize int
	// JobRecords is records per KindJob submission (default 16).
	JobRecords int
	// OversizedBytes is the body size of KindOversized requests
	// (default 2 MiB — past the server's 1 MiB default cap).
	OversizedBytes int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 2 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.JobRecords <= 0 {
		c.JobRecords = 16
	}
	if c.OversizedBytes <= 0 {
		c.OversizedBytes = 2 << 20
	}
	return c
}

// Client issues blend requests against one server. Safe for concurrent
// use; every method classifies rather than fails, so the runner's
// accounting survives any server behavior.
type Client struct {
	cfg  ClientConfig
	http *http.Client
	pool *RecordPool
}

// NewClient builds the load client around a record pool (pool may be
// nil when the blend carries no record-bearing kinds).
func NewClient(cfg ClientConfig, pool *RecordPool) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg: cfg,
		http: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				// An open-loop burst needs as many conns as the schedule
				// says, not what Go's per-host default (2) allows.
				MaxIdleConnsPerHost: 256,
			},
		},
		pool: pool,
	}
}

// CloseIdle releases kept-alive connections (end-of-run hygiene).
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

// Do issues the i-th arrival's request and classifies the answer.
func (c *Client) Do(ctx context.Context, i int, arr Arrival) Outcome {
	body, path, method, expect := c.build(i, arr)
	out := Outcome{Kind: arr.Kind, Attempts: 1}

	// The shed-retry loop: delays come from a deterministic jittered
	// backoff schedule (internal/retry), raised to the server's
	// Retry-After hint when one arrived — honoring the hint is the
	// whole point, it is what de-synchronizes the retry storm.
	backoff := retry.Policy{
		MaxAttempts: c.cfg.ShedRetries + 1,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    c.cfg.MaxRetryAfter,
		Seed:        c.cfg.Seed ^ int64(i+1),
	}.Schedule()

	for attempt := 0; ; attempt++ {
		status, hdr, respBody, err := c.roundTrip(ctx, method, path, body)
		switch {
		case err != nil:
			if ctx.Err() != nil || isTimeout(err) {
				out.Class = ClassTimeout
				return out
			}
			out.Class = ClassNetError
			return out
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			out.Status = status
			hint, ok := retryAfterHint(hdr)
			if !ok {
				out.ShedNoRetryAfter = true
			}
			if attempt >= len(backoff) {
				out.Class = ClassShed
				return out
			}
			delay := backoff[attempt]
			if ok && hint > delay {
				delay = hint
			}
			if delay > c.cfg.MaxRetryAfter {
				delay = c.cfg.MaxRetryAfter
			}
			select {
			case <-ctx.Done():
				out.Class = ClassShed
				return out
			case <-time.After(delay):
			}
			out.Attempts++
		default:
			out.Status = status
			out.Class = classify(status, expect)
			if out.Class == ClassOK && (arr.Kind == KindSingle || arr.Kind == KindBatch) {
				out.Degraded = isDegraded(arr.Kind, respBody)
			}
			if out.Class == ClassOK && arr.Kind == KindJob {
				out.JobID = jobID(respBody)
			}
			return out
		}
	}
}

// build assembles the i-th request's body, path, method, and the
// status its kind expects.
func (c *Client) build(i int, arr Arrival) (body []byte, path, method string, expect int) {
	switch arr.Kind {
	case KindSingle:
		doc := map[string]any{"record": c.pool.record(fmt.Sprintf("load-%d", i), arr.Record)}
		body, _ = json.Marshal(doc)
		return body, "/v1/match", http.MethodPost, http.StatusOK
	case KindBatch:
		recs := make([]map[string]any, c.cfg.BatchSize)
		for j := range recs {
			recs[j] = c.pool.record(fmt.Sprintf("load-%d-%d", i, j), arr.Record+j)
		}
		doc := map[string]any{"records": recs}
		body, _ = json.Marshal(doc)
		return body, "/v1/match/batch", http.MethodPost, http.StatusOK
	case KindJob:
		recs := make([]map[string]any, c.cfg.JobRecords)
		for j := range recs {
			// Ids carry the arrival index so distinct arrivals submit
			// distinct (content-addressed) jobs.
			recs[j] = c.pool.record(fmt.Sprintf("load-%d-%d", i, j), arr.Record+j)
		}
		doc := map[string]any{"records": recs}
		body, _ = json.Marshal(doc)
		return body, "/v1/jobs", http.MethodPost, http.StatusAccepted
	case KindMalformed:
		// Truncated JSON with an unknown field: must be refused 400.
		return []byte(`{"reqord": {"AwardTitle": "x"`), "/v1/match", http.MethodPost, http.StatusBadRequest
	case KindOversized:
		// A body past the server's cap: must be refused 413 without
		// buffering the world.
		doc := bytes.Repeat([]byte("x"), c.cfg.OversizedBytes)
		body = append([]byte(`{"record": {"AwardTitle": "`), doc...)
		body = append(body, []byte(`"}}`)...)
		return body, "/v1/match", http.MethodPost, http.StatusRequestEntityTooLarge
	case KindStatus:
		return nil, "/v1/status", http.MethodGet, http.StatusOK
	}
	return nil, "/v1/status", http.MethodGet, http.StatusOK
}

// roundTrip performs one HTTP exchange, reading at most 1 MiB of the
// answer (the classifier needs the envelope, not the payload).
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	// Drain any remainder so the connection is reusable.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode, resp.Header, data, nil
}

// classify maps a terminal status against the kind's expectation.
func classify(status, expect int) string {
	switch {
	case status == expect:
		return ClassOK
	case status == http.StatusGatewayTimeout:
		return ClassTimeout
	case status >= 500:
		return ClassServerError
	default:
		return ClassUnexpected
	}
}

// isTimeout reports whether a transport error is a deadline.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return strings.Contains(err.Error(), "Client.Timeout exceeded")
}

// retryAfterHint parses the Retry-After header (whole seconds).
func retryAfterHint(hdr http.Header) (time.Duration, bool) {
	v := hdr.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	s, err := strconv.Atoi(v)
	if err != nil || s < 0 {
		return 0, false
	}
	return time.Duration(s) * time.Second, true
}

// isDegraded peeks at a successful match answer for the degraded mark.
func isDegraded(kind Kind, body []byte) bool {
	if kind == KindBatch {
		var doc struct {
			Results []struct {
				Degraded bool `json:"degraded"`
			} `json:"results"`
		}
		if json.Unmarshal(body, &doc) == nil {
			for _, r := range doc.Results {
				if r.Degraded {
					return true
				}
			}
		}
		return false
	}
	var doc struct {
		Degraded bool `json:"degraded"`
	}
	return json.Unmarshal(body, &doc) == nil && doc.Degraded
}

// jobID extracts the job id from a 202 submission answer.
func jobID(body []byte) string {
	var doc struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &doc) == nil {
		return doc.ID
	}
	return ""
}
