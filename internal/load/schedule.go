// Package load is the open-loop traffic generator and soak harness for
// the serving tier: deterministic seeded arrival schedules, mixed
// request blends against a live emserve, a Retry-After-honoring client,
// live eps/latency reporting through internal/obs histograms, and the
// soak / capacity-search / chaos-soak assertion modes behind
// cmd/emload.
//
// Open-loop is the load-model decision everything else follows from.
// A closed-loop generator (k workers, each sending the next request
// when the previous answer returns) silently slows down exactly when
// the server does, so an overloaded server measures *better*: the
// coordinated-omission trap. Here send times are fixed by the schedule
// before the run starts — a response arriving late never delays the
// next arrival, and every request's latency is charged from its
// *scheduled* send time, so queueing delay inside the generator counts
// against the server the way a real user would experience it.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival profiles.
const (
	ProfileUniform = "uniform"
	ProfilePoisson = "poisson"
	ProfileBurst   = "burst"
	ProfileRamp    = "ramp"
)

// Record-pick distributions.
const (
	PickUniform = "uniform"
	PickZipf    = "zipf"
)

// ScheduleConfig describes one deterministic arrival schedule. The same
// config always yields the same schedule: send times, request kinds,
// and record indices are all drawn from rngs seeded with Seed, so a
// soak run (or a failure it found) is replayable bit for bit.
type ScheduleConfig struct {
	// Profile is the inter-arrival shape: ProfileUniform (evenly spaced),
	// ProfilePoisson (exponential gaps, the classic open-system model),
	// ProfileBurst (uniform base with periodic bursts), or ProfileRamp
	// (rate climbing linearly from Rate to RampTo).
	Profile string
	// Rate is the mean arrival rate in requests/second (> 0).
	Rate float64
	// Duration is how long the schedule runs (> 0).
	Duration time.Duration
	// Seed drives every random draw (0 picks 1, so the zero config is
	// still deterministic).
	Seed int64

	// BurstFactor multiplies Rate inside a burst window (default 4).
	BurstFactor float64
	// BurstEvery is the burst period (default 10s).
	BurstEvery time.Duration
	// BurstLen is how long each burst lasts (default 2s).
	BurstLen time.Duration

	// RampTo is the final rate of ProfileRamp (default 4x Rate).
	RampTo float64

	// Pick selects how record indices are drawn: PickUniform or PickZipf
	// (default PickZipf — real traffic is skewed, and a skewed key
	// distribution is what exercises caches and hot rows).
	Pick string
	// PickN is the record-pool size indices are drawn from (> 0 when the
	// blend carries record-bearing requests).
	PickN int
	// ZipfS is the Zipf skew exponent (> 1, default 1.2).
	ZipfS float64

	// Blend weights the request kinds; the zero Blend is all single
	// matches.
	Blend Blend
}

// Arrival is one scheduled request: fire at At (offset from run start),
// with kind Kind, using record index Record (record-bearing kinds).
type Arrival struct {
	At     time.Duration
	Kind   Kind
	Record int
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Profile == "" {
		c.Profile = ProfileUniform
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BurstFactor <= 1 {
		c.BurstFactor = 4
	}
	if c.BurstEvery <= 0 {
		c.BurstEvery = 10 * time.Second
	}
	if c.BurstLen <= 0 || c.BurstLen >= c.BurstEvery {
		c.BurstLen = c.BurstEvery / 5
	}
	if c.RampTo <= 0 {
		c.RampTo = 4 * c.Rate
	}
	if c.Pick == "" {
		c.Pick = PickZipf
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	return c
}

// BuildSchedule materializes the whole open-loop schedule up front.
// Precomputing (rather than drawing arrivals on the fly) is what makes
// the generator coordinated-omission-free by construction: nothing the
// server does during the run can move a send time that was fixed before
// the run began.
func BuildSchedule(cfg ScheduleConfig) ([]Arrival, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: schedule rate must be > 0, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: schedule duration must be > 0, got %v", cfg.Duration)
	}
	if cfg.Rate*cfg.Duration.Seconds() > 50e6 {
		return nil, fmt.Errorf("load: schedule of %g arrivals is unreasonably large", cfg.Rate*cfg.Duration.Seconds())
	}

	var times []time.Duration
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Profile {
	case ProfileUniform:
		times = uniformTimes(cfg.Rate, cfg.Duration)
	case ProfilePoisson:
		times = poissonTimes(rng, cfg.Rate, cfg.Duration)
	case ProfileBurst:
		times = burstTimes(cfg)
	case ProfileRamp:
		times = rampTimes(cfg)
	default:
		return nil, fmt.Errorf("load: unknown arrival profile %q (want %s|%s|%s|%s)",
			cfg.Profile, ProfileUniform, ProfilePoisson, ProfileBurst, ProfileRamp)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("load: schedule %gqps x %v yields no arrivals", cfg.Rate, cfg.Duration)
	}

	kinds, err := cfg.Blend.assign(len(times), cfg.Seed)
	if err != nil {
		return nil, err
	}
	picker, err := newPicker(cfg.Pick, cfg.Seed, cfg.PickN, cfg.ZipfS)
	if err != nil {
		return nil, err
	}

	out := make([]Arrival, len(times))
	for i, at := range times {
		out[i] = Arrival{At: at, Kind: kinds[i], Record: picker.pick()}
	}
	return out, nil
}

// uniformTimes spaces arrivals evenly: i/rate.
func uniformTimes(rate float64, d time.Duration) []time.Duration {
	n := int(rate * d.Seconds())
	out := make([]time.Duration, 0, n)
	gap := float64(time.Second) / rate
	for i := 0; ; i++ {
		at := time.Duration(float64(i) * gap)
		if at >= d {
			return out
		}
		out = append(out, at)
	}
}

// poissonTimes draws exponential inter-arrival gaps with mean 1/rate —
// the memoryless arrivals of an open system of many independent users.
func poissonTimes(rng *rand.Rand, rate float64, d time.Duration) []time.Duration {
	var out []time.Duration
	at := time.Duration(0)
	for {
		// ExpFloat64 has mean 1; scale to mean 1/rate seconds.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		at += gap
		if at >= d {
			return out
		}
		out = append(out, at)
	}
}

// burstTimes lays a uniform base rate, multiplied by BurstFactor inside
// each [k*BurstEvery, k*BurstEvery+BurstLen) window — the thundering
// herd the admission gate exists for.
func burstTimes(cfg ScheduleConfig) []time.Duration {
	var out []time.Duration
	at := 0.0
	dur := cfg.Duration.Seconds()
	for at < dur {
		out = append(out, time.Duration(at*float64(time.Second)))
		rate := cfg.Rate
		phase := math.Mod(at, cfg.BurstEvery.Seconds())
		if phase < cfg.BurstLen.Seconds() {
			rate *= cfg.BurstFactor
		}
		at += 1 / rate
	}
	return out
}

// rampTimes climbs the instantaneous rate linearly from Rate to RampTo
// across the run — the capacity staircase compressed into one schedule.
func rampTimes(cfg ScheduleConfig) []time.Duration {
	var out []time.Duration
	at := 0.0
	dur := cfg.Duration.Seconds()
	for at < dur {
		out = append(out, time.Duration(at*float64(time.Second)))
		frac := at / dur
		rate := cfg.Rate + (cfg.RampTo-cfg.Rate)*frac
		at += 1 / rate
	}
	return out
}

// picker draws record-pool indices under a distribution.
type picker struct {
	n    int
	zipf *rand.Zipf // nil = uniform
	rng  *rand.Rand
}

func newPicker(dist string, seed int64, n int, s float64) (*picker, error) {
	if n <= 0 {
		n = 1
	}
	// Offset the seed so the pick stream is independent of the arrival
	// stream even though both derive from cfg.Seed.
	rng := rand.New(rand.NewSource(seed + 0x9e3779b9))
	switch dist {
	case PickUniform:
		return &picker{n: n, rng: rng}, nil
	case PickZipf:
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		if z == nil {
			return nil, fmt.Errorf("load: bad zipf parameters (s=%g n=%d)", s, n)
		}
		return &picker{n: n, zipf: z, rng: rng}, nil
	default:
		return nil, fmt.Errorf("load: unknown pick distribution %q (want %s|%s)", dist, PickUniform, PickZipf)
	}
}

func (p *picker) pick() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}
