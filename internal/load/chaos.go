package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// ServerConfig describes how to spawn an emserve under the harness's
// supervision: the binary, the base argument list (spec, tables,
// matcher — everything EXCEPT the listen/addr-file/job-dir plumbing the
// supervisor owns), and a scratch directory for logs and address files.
type ServerConfig struct {
	Bin     string
	Args    []string
	WorkDir string
}

// ServerProc is one supervised emserve process. The supervisor owns the
// address file and stderr log so restarts over the same job dir are a
// one-liner and the drain contract can be asserted from the log.
type ServerProc struct {
	Addr    string
	LogPath string
	JobDir  string

	cmd  *exec.Cmd
	done chan error
}

// StartServer boots one emserve with the job tier rooted at jobDir,
// plus any extra flags (fault plans, breaker tuning) and environment
// (EMCKPT_KILL), and waits for its address file.
func StartServer(ctx context.Context, cfg ServerConfig, jobDir, logName string, extraArgs, extraEnv []string) (*ServerProc, error) {
	logPath := filepath.Join(cfg.WorkDir, logName)
	addrFile := filepath.Join(cfg.WorkDir, logName+".addr")
	_ = os.Remove(addrFile)
	logF, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}

	args := append([]string{}, cfg.Args...)
	args = append(args,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-job-dir", jobDir,
	)
	args = append(args, extraArgs...)
	cmd := exec.Command(cfg.Bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = logF
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		logF.Close()
		return nil, fmt.Errorf("load: start %s: %w", cfg.Bin, err)
	}
	p := &ServerProc{LogPath: logPath, JobDir: jobDir, cmd: cmd, done: make(chan error, 1)}
	go func() {
		err := cmd.Wait()
		logF.Close()
		p.done <- err
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, rerr := os.ReadFile(addrFile); rerr == nil && len(bytes.TrimSpace(data)) > 0 {
			p.Addr = strings.TrimSpace(strings.SplitN(string(data), "\n", 2)[0])
			return p, nil
		}
		select {
		case werr := <-p.done:
			return nil, fmt.Errorf("load: %s died during startup (%v); log %s:\n%s",
				cfg.Bin, werr, logPath, tailFile(logPath, 2000))
		case <-ctx.Done():
			p.Kill()
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			p.Kill()
			return nil, fmt.Errorf("load: %s never wrote its address file; log %s:\n%s",
				cfg.Bin, logPath, tailFile(logPath, 2000))
		}
	}
}

// BaseURL is the supervised server's HTTP root.
func (p *ServerProc) BaseURL() string { return "http://" + p.Addr }

// WaitExit blocks until the process exits (e.g. a self-SIGKILL at an
// armed chaos kill-point) and returns its exit code; -1 means killed by
// signal, which is exactly what EMCKPT_KILL produces.
func (p *ServerProc) WaitExit(timeout time.Duration) (int, error) {
	select {
	case err := <-p.done:
		p.done <- err // keep the channel readable for later callers
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(timeout):
		return 0, fmt.Errorf("load: server still running after %v", timeout)
	}
}

// Kill force-terminates the process (cleanup path, not a chaos event).
func (p *ServerProc) Kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	<-p.done
	p.done <- nil
}

// Drain SIGTERMs the server and asserts the graceful-exit contract the
// smoke suite enforces everywhere: exit code 130, the zero-leak
// self-check in the log, and no race-detector reports. Every violation
// comes back as one failure string.
func (p *ServerProc) Drain(timeout time.Duration) []string {
	var fails []string
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	code, err := p.WaitExit(timeout)
	if err != nil {
		_ = p.cmd.Process.Kill()
		return append(fails, fmt.Sprintf("drain: %v", err))
	}
	if code != 130 {
		fails = append(fails, fmt.Sprintf("drain: exit %d, want 130; log tail:\n%s", code, tailFile(p.LogPath, 2000)))
	}
	log := tailFile(p.LogPath, 1<<20)
	if !strings.Contains(log, "no leaked goroutines") {
		fails = append(fails, "drain: the zero-leak self-check did not pass ("+p.LogPath+")")
	}
	if strings.Contains(log, "WARNING: DATA RACE") {
		fails = append(fails, "drain: the race detector fired ("+p.LogPath+")")
	}
	return fails
}

// LogContains reports whether the server's stderr log holds a marker.
func (p *ServerProc) LogContains(marker string) bool {
	return strings.Contains(tailFile(p.LogPath, 1<<20), marker)
}

// tailFile reads up to n trailing bytes of a file, best-effort.
func tailFile(path string, n int64) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	if int64(len(data)) > n {
		data = data[int64(len(data))-n:]
	}
	return string(data)
}

// ChaosConfig drives the chaos-soak: a clean reference pass, then a
// faulted server SIGKILLed mid-load at a shard-commit boundary, then a
// restart that must resume the job byte-identically while the breaker
// re-closes and load keeps flowing.
type ChaosConfig struct {
	Server ServerConfig
	Client ClientConfig
	Pool   *RecordPool

	// JobRecords/ShardSize shape the canonical async job (defaults 24/4;
	// the kill-spec names shards, so the shard count must exceed the
	// killed shard's index).
	JobRecords int
	ShardSize  int
	// JobTimeout bounds each await (default 120s).
	JobTimeout time.Duration
	// MinResumed is the resumed-shard floor the restarted job must report
	// (default 1): proof it resumed instead of recomputing from scratch.
	MinResumed int

	// KillSpec arms EMCKPT_KILL on the faulted server (default
	// "after:shard_00001.json" — die exactly at a shard-commit boundary).
	KillSpec string
	// FaultSpec arms -inject on the faulted server (default
	// "ml.predict:first=3,err=chaos-fault" — three matcher faults to trip
	// the breaker, all consumed before the canonical job is submitted so
	// shard results stay deterministic).
	FaultSpec string
	// BreakerFailures/BreakerCooldown tune the faulted server's breaker
	// so the open -> re-close round trip fits a smoke budget (defaults
	// 2 and 300ms).
	BreakerFailures int
	BreakerCooldown time.Duration
	// BreakerWait bounds the breaker exercise (default 30s).
	BreakerWait time.Duration

	// Rate/LoadDuration/Seed/Blend shape each load phase (defaults 25
	// qps, 8s, seed 1, single-heavy with malformed/status probes and NO
	// job kind — job submission is explicit so the kill-point timing is
	// controlled).
	Rate         float64
	LoadDuration time.Duration
	Seed         int64
	Blend        Blend

	ReportEvery time.Duration
	Report      io.Writer
}

// ChaosResult is the chaos-soak verdict, embedded in the summary JSON.
type ChaosResult struct {
	RefJobID              string         `json:"ref_job_id"`
	ChaosJobID            string         `json:"chaos_job_id"`
	Killed                bool           `json:"killed"`
	KillExit              int            `json:"kill_exit"`
	BreakerOpened         bool           `json:"breaker_opened"`
	BreakerReclosed       bool           `json:"breaker_reclosed"`
	ResumedShards         int            `json:"resumed_shards"`
	ByteIdentical         bool           `json:"byte_identical"`
	ResultBytes           int            `json:"result_bytes"`
	ShedMissingRetryAfter int64          `json:"shed_missing_retry_after"`
	DrainClean            bool           `json:"drain_clean"`
	Phases                []PhaseSummary `json:"phases"`
	Failures              []string       `json:"failures"`
	Pass                  bool           `json:"pass"`
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.JobRecords <= 0 {
		c.JobRecords = 24
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 4
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.MinResumed <= 0 {
		c.MinResumed = 1
	}
	if c.KillSpec == "" {
		c.KillSpec = "after:shard_00001.json"
	}
	if c.FaultSpec == "" {
		c.FaultSpec = "ml.predict:first=3,err=chaos-fault"
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 300 * time.Millisecond
	}
	if c.BreakerWait <= 0 {
		c.BreakerWait = 30 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 25
	}
	if c.LoadDuration <= 0 {
		c.LoadDuration = 8 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Blend.total() == 0 {
		c.Blend = Blend{Single: 90, Batch: 4, Malformed: 2, Status: 4}
	}
	if c.Blend.Job > 0 {
		// A blend-submitted job would race the canonical one for the
		// kill-point; fold its weight into singles.
		c.Blend.Single += c.Blend.Job
		c.Blend.Job = 0
	}
	if c.Report == nil {
		c.Report = io.Discard
	}
	return c
}

// RunChaos executes the full chaos-soak choreography:
//
//  1. reference: clean server, canonical job, fetch bytes, drain clean;
//  2. faulted server: matcher faults trip the breaker, steady singles
//     drive it open -> half-open -> closed (all faults consumed);
//  3. open-loop load starts; the canonical job is submitted mid-load;
//     the armed kill-point SIGKILLs the server at a shard boundary;
//  4. restart over the same job dir under fresh load: the job must
//     resume (not restart), complete, and fetch byte-identical to the
//     reference; sheds must carry Retry-After; the breaker must be
//     closed; the final drain must be leak- and race-clean.
//
// Every violated expectation lands in Failures; Pass is their absence.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	res := &ChaosResult{DrainClean: true}
	failf := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
		fmt.Fprintf(cfg.Report, "emload: chaos FAIL: "+format+"\n", args...)
	}
	say := func(format string, args ...any) {
		fmt.Fprintf(cfg.Report, "emload: chaos: "+format+"\n", args...)
	}
	records := cfg.Pool.JobRecords(cfg.JobRecords)

	// Phase 1: reference bytes from an unmolested server.
	say("reference server starting")
	ref, err := StartServer(ctx, cfg.Server, filepath.Join(cfg.Server.WorkDir, "jobs_ref"), "chaos_ref.err",
		[]string{"-job-shard-size", fmt.Sprint(cfg.ShardSize), "-job-workers", "1"}, nil)
	if err != nil {
		return res, err
	}
	refClient := NewClient(clientFor(cfg.Client, ref), cfg.Pool)
	refBytes, refID, err := runJob(ctx, refClient, records, cfg.ShardSize, cfg.JobTimeout, 0)
	refClient.CloseIdle()
	if err != nil {
		ref.Kill()
		return res, fmt.Errorf("load: reference job: %w", err)
	}
	res.RefJobID = refID
	res.ResultBytes = len(refBytes)
	say("reference job %s -> %d result bytes", refID, len(refBytes))
	if fails := ref.Drain(30 * time.Second); len(fails) > 0 {
		res.DrainClean = false
		for _, f := range fails {
			failf("reference %s", f)
		}
	}

	// Phase 2: the faulted, kill-armed server.
	say("faulted server starting (kill %s, inject %s)", cfg.KillSpec, cfg.FaultSpec)
	chaosDir := filepath.Join(cfg.Server.WorkDir, "jobs_chaos")
	victim, err := StartServer(ctx, cfg.Server, chaosDir, "chaos_kill.err",
		[]string{
			"-job-shard-size", fmt.Sprint(cfg.ShardSize), "-job-workers", "1",
			"-inject", cfg.FaultSpec,
			"-breaker-failures", fmt.Sprint(cfg.BreakerFailures),
			"-breaker-cooldown", cfg.BreakerCooldown.String(),
		},
		[]string{"EMCKPT_KILL=" + cfg.KillSpec})
	if err != nil {
		return res, err
	}
	exercise := NewClient(clientFor(cfg.Client, victim), cfg.Pool)
	opened, reclosed := exerciseBreaker(ctx, exercise, cfg.BreakerWait)
	exercise.CloseIdle()
	res.BreakerOpened, res.BreakerReclosed = opened, reclosed
	if !opened {
		failf("breaker never opened under %s", cfg.FaultSpec)
	}
	if !reclosed {
		failf("breaker never re-closed after the faults were consumed")
	}
	say("breaker exercised: opened=%v re-closed=%v", opened, reclosed)

	// Phase 3: open-loop load with the canonical job submitted mid-phase.
	loadA := make(chan *Result, 1)
	go func() {
		r, _ := Run(ctx, RunConfig{
			Schedule: ScheduleConfig{
				Profile: ProfilePoisson, Rate: cfg.Rate, Duration: cfg.LoadDuration,
				Seed: cfg.Seed, Blend: cfg.Blend,
			},
			Client:      clientFor(cfg.Client, victim),
			Pool:        cfg.Pool,
			ReportEvery: cfg.ReportEvery,
			Report:      cfg.Report,
			JobWait:     -1, // the server is about to die; nothing to await
		})
		loadA <- r
	}()
	time.Sleep(cfg.LoadDuration / 4)
	submit := NewClient(clientFor(cfg.Client, victim), cfg.Pool)
	chaosID, serr := submitWithRetry(ctx, submit, records, cfg.ShardSize, 20)
	submit.CloseIdle()
	if serr != nil {
		failf("canonical job submission under load: %v", serr)
	} else {
		res.ChaosJobID = chaosID
		if chaosID != refID {
			failf("chaos job id %s differs from reference %s — submission is not content-addressed", chaosID, refID)
		}
	}

	code, werr := victim.WaitExit(cfg.LoadDuration + cfg.JobTimeout)
	if werr != nil {
		failf("kill-point never fired: %v", werr)
		victim.Kill()
	} else {
		res.Killed, res.KillExit = true, code
		if code == 0 || code == 130 {
			res.Killed = false
			failf("server exited %d, expected a SIGKILL at %s", code, cfg.KillSpec)
		}
		if !victim.LogContains("chaos kill at") {
			failf("kill marker missing from %s", victim.LogPath)
		}
	}
	say("server down (exit %d); mid-load kill delivered", code)
	if r := <-loadA; r != nil {
		res.ShedMissingRetryAfter += r.ShedNoRetryAfter
		res.Phases = append(res.Phases, NewPhaseSummary("chaos_load_kill", ScheduleConfig{
			Profile: ProfilePoisson, Rate: cfg.Rate, Duration: cfg.LoadDuration,
			Seed: cfg.Seed, Blend: cfg.Blend,
		}, r))
	}

	// Phase 4: restart over the same job dir, resume under fresh load.
	say("restarting over %s", chaosDir)
	heir, err := StartServer(ctx, cfg.Server, chaosDir, "chaos_resume.err",
		[]string{"-job-shard-size", fmt.Sprint(cfg.ShardSize), "-job-workers", "1"}, nil)
	if err != nil {
		return res, err
	}
	if !heir.LogContains("unfinished job(s) resumed") {
		failf("restart did not report a recovered job (%s)", heir.LogPath)
	}

	loadB := make(chan *Result, 1)
	go func() {
		r, _ := Run(ctx, RunConfig{
			Schedule: ScheduleConfig{
				Profile: ProfilePoisson, Rate: cfg.Rate, Duration: cfg.LoadDuration,
				Seed: cfg.Seed + 1, Blend: cfg.Blend,
			},
			Client:      clientFor(cfg.Client, heir),
			Pool:        cfg.Pool,
			ReportEvery: cfg.ReportEvery,
			Report:      cfg.Report,
		})
		loadB <- r
	}()

	await := NewClient(clientFor(cfg.Client, heir), cfg.Pool)
	st, aerr := await.AwaitJob(ctx, refID, cfg.JobTimeout)
	switch {
	case aerr != nil:
		failf("resumed job did not complete: %v", aerr)
	default:
		res.ResumedShards = st.ResumedShards
		if st.ResumedShards < cfg.MinResumed {
			failf("job resumed %d shard(s), want >= %d — the restart recomputed durable work", st.ResumedShards, cfg.MinResumed)
		}
		gotBytes, ferr := await.JobResults(ctx, refID)
		switch {
		case ferr != nil:
			failf("fetch resumed results: %v", ferr)
		case !bytes.Equal(gotBytes, refBytes):
			failf("resumed results differ from the reference run (%d vs %d bytes)", len(gotBytes), len(refBytes))
		default:
			res.ByteIdentical = true
			say("resumed results byte-identical to the reference (%d bytes, %d shard(s) resumed)", len(gotBytes), st.ResumedShards)
		}
	}

	if r := <-loadB; r != nil {
		res.ShedMissingRetryAfter += r.ShedNoRetryAfter
		res.Phases = append(res.Phases, NewPhaseSummary("chaos_load_resume", ScheduleConfig{
			Profile: ProfilePoisson, Rate: cfg.Rate, Duration: cfg.LoadDuration,
			Seed: cfg.Seed + 1, Blend: cfg.Blend,
		}, r))
		if n := r.Classes[ClassUnexpected]; n > 0 {
			failf("%d unexpected answer(s) in the resume-phase load", n)
		}
	}
	if res.ShedMissingRetryAfter > 0 {
		failf("%d shed answer(s) missing Retry-After", res.ShedMissingRetryAfter)
	}
	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	if stt, serr2 := await.Status(sctx); serr2 != nil {
		failf("final /v1/status: %v", serr2)
	} else if stt.Breaker != "closed" {
		failf("final breaker state %q, want closed", stt.Breaker)
	}
	scancel()
	await.CloseIdle()

	if fails := heir.Drain(30 * time.Second); len(fails) > 0 {
		res.DrainClean = false
		for _, f := range fails {
			failf("resume %s", f)
		}
	}
	res.Pass = len(res.Failures) == 0
	return res, nil
}

// clientFor points a client config at a supervised server.
func clientFor(cfg ClientConfig, p *ServerProc) ClientConfig {
	cfg.BaseURL = p.BaseURL()
	return cfg
}

// runJob submits, awaits, and fetches one job.
func runJob(ctx context.Context, c *Client, records []map[string]any, shardSize int, timeout time.Duration, retries int) (body []byte, id string, err error) {
	id, err = submitWithRetry(ctx, c, records, shardSize, retries)
	if err != nil {
		return nil, "", err
	}
	if _, err = c.AwaitJob(ctx, id, timeout); err != nil {
		return nil, id, err
	}
	body, err = c.JobResults(ctx, id)
	return body, id, err
}

// submitWithRetry pushes one job submission through transient sheds —
// under load, admission may bounce a submit with 429/503; the job tier
// is content-addressed, so retrying is always safe.
func submitWithRetry(ctx context.Context, c *Client, records []map[string]any, shardSize, retries int) (string, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		st, err := c.SubmitJob(ctx, records, shardSize)
		if err == nil {
			return st.ID, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
	return "", lastErr
}

// exerciseBreaker drives steady single-record requests at the faulted
// matcher until the breaker is seen open and then closed again. Each
// failed request consumes one armed fault; once they are spent, the
// half-open probe succeeds and the breaker re-closes — proof of the
// full trip/recover round trip, and a guarantee that no fault is left
// to contaminate later (deterministic) job shards.
func exerciseBreaker(ctx context.Context, c *Client, timeout time.Duration) (opened, reclosed bool) {
	deadline := time.Now().Add(timeout)
	i := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		c.Do(ctx, i, Arrival{Kind: KindSingle, Record: i})
		i++
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		st, err := c.Status(sctx)
		cancel()
		if err == nil {
			switch st.Breaker {
			case "open", "half_open":
				opened = true
			case "closed":
				if opened {
					return opened, true
				}
			}
		}
		select {
		case <-ctx.Done():
			return opened, reclosed
		case <-time.After(50 * time.Millisecond):
		}
	}
	return opened, reclosed
}
