package load

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emgo/internal/obs"
)

// latencyBuckets are the upper bounds (milliseconds) of the client-side
// latency histogram — finer than the server's buckets at the low end
// and stretching to 60s so a wedged request is still charged, not lost.
var latencyBuckets = []float64{
	0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// Recorder aggregates outcomes concurrently: per-class and per-kind
// atomic counters plus an internal/obs histogram of
// coordinated-omission-corrected latencies. It owns a private obs
// registry so percentile math and snapshots ride the same code the
// server's metrics use, without requiring the global registry.
type Recorder struct {
	reg  *obs.Registry
	hist *obs.Histogram

	mu      sync.Mutex
	classes map[string]int64
	kinds   map[Kind]int64

	completed        atomic.Int64
	degraded         atomic.Int64
	shedNoRetryAfter atomic.Int64
	retries          atomic.Int64

	start time.Time
}

// NewRecorder builds an empty recorder; the clock starts at Start.
func NewRecorder() *Recorder {
	reg := obs.NewRegistry()
	return &Recorder{
		reg:     reg,
		hist:    reg.Histogram("load.latency_ms", latencyBuckets),
		classes: map[string]int64{},
		kinds:   map[Kind]int64{},
	}
}

// Start marks the schedule's t=0.
func (r *Recorder) Start() { r.start = time.Now() }

// Observe folds one finished request in. latency is charged from the
// request's *scheduled* send time, so generator backlog and slow
// responses both count.
func (r *Recorder) Observe(out Outcome, latency time.Duration) {
	r.hist.Observe(float64(latency) / float64(time.Millisecond))
	r.mu.Lock()
	r.classes[out.Class]++
	r.kinds[out.Kind]++
	r.mu.Unlock()
	r.completed.Add(1)
	if out.Degraded {
		r.degraded.Add(1)
	}
	if out.ShedNoRetryAfter {
		r.shedNoRetryAfter.Add(1)
	}
	if out.Attempts > 1 {
		r.retries.Add(int64(out.Attempts - 1))
	}
}

// Snapshot is the recorder's state at one instant.
type Snapshot struct {
	Elapsed          time.Duration
	Completed        int64
	Classes          map[string]int64
	Kinds            map[Kind]int64
	Degraded         int64
	ShedNoRetryAfter int64
	Retries          int64
	Hist             obs.HistogramSnapshot
}

// Snapshot captures the current totals.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		Elapsed:          time.Since(r.start),
		Completed:        r.completed.Load(),
		Degraded:         r.degraded.Load(),
		ShedNoRetryAfter: r.shedNoRetryAfter.Load(),
		Retries:          r.retries.Load(),
		Classes:          map[string]int64{},
		Kinds:            map[Kind]int64{},
	}
	r.mu.Lock()
	for c, n := range r.classes {
		snap.Classes[c] = n
	}
	for k, n := range r.kinds {
		snap.Kinds[k] = n
	}
	r.mu.Unlock()
	if hs, ok := r.reg.Snapshot().Histograms["load.latency_ms"]; ok {
		snap.Hist = hs
	}
	return snap
}

// Class returns one class's current count.
func (r *Recorder) Class(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.classes[name]
}

// diffHist subtracts an earlier histogram snapshot from a later one,
// yielding the interval histogram live reporting quotes percentiles
// from.
func diffHist(later, earlier obs.HistogramSnapshot) obs.HistogramSnapshot {
	if len(later.Counts) == 0 {
		return later
	}
	out := obs.HistogramSnapshot{
		Bounds: later.Bounds,
		Counts: make([]int64, len(later.Counts)),
		Count:  later.Count - earlier.Count,
		Sum:    later.Sum - earlier.Sum,
		Max:    later.Max, // max does not subtract; cumulative max is honest enough live
	}
	for i := range later.Counts {
		out.Counts[i] = later.Counts[i]
		if i < len(earlier.Counts) {
			out.Counts[i] -= earlier.Counts[i]
		}
	}
	return out
}

// reporter prints one live line per interval: interval eps and
// percentiles plus cumulative class counts — the rulio-sim style
// heartbeat that makes a soak watchable.
type reporter struct {
	rec  *Recorder
	out  io.Writer
	prev Snapshot
}

func (p *reporter) line() {
	cur := p.rec.Snapshot()
	interval := cur.Elapsed - p.prev.Elapsed
	if interval <= 0 {
		return
	}
	ih := diffHist(cur.Hist, p.prev.Hist)
	eps := float64(cur.Completed-p.prev.Completed) / interval.Seconds()
	fmt.Fprintf(p.out, "emload: t=%-5s eps=%7.1f p50=%s p99=%s p99.9=%s %s\n",
		cur.Elapsed.Truncate(time.Second),
		eps,
		fmtMS(ih.Quantile(0.50)), fmtMS(ih.Quantile(0.99)), fmtMS(ih.Quantile(0.999)),
		classLine(cur.Classes),
	)
	p.prev = cur
}

// classLine renders cumulative class counts in a fixed order.
func classLine(classes map[string]int64) string {
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	s := ""
	for _, c := range names {
		if classes[c] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", c, classes[c])
	}
	if s == "" {
		return "idle"
	}
	return s
}

// fmtMS renders a millisecond quantity compactly.
func fmtMS(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms < 10:
		return fmt.Sprintf("%.1fms", ms)
	case ms < 10000:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
}
