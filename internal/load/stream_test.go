package load

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

// fakeStreamServer mimics emserve's NDJSON results stream: chunks of
// data lines each sealed by a {"cursor":...} control line, a terminal
// summary line with done:true, and opaque resume tokens. It can shed
// the first request and tear the first connection mid-chunk.
type fakeStreamServer struct {
	lines     [][]byte // data lines; the last is the summary
	chunk     int      // data lines per committed chunk
	cutAfter  int      // tear connection 1 after this many committed chunks (0 = never)
	shedFirst atomic.Bool
	conns     atomic.Int64

	mu      sync.Mutex
	cursors []string // every ?cursor= the server was asked to resume from
}

func newFakeStreamServer(records, chunk int) *fakeStreamServer {
	f := &fakeStreamServer{chunk: chunk}
	for i := 0; i < records; i++ {
		f.lines = append(f.lines, []byte(fmt.Sprintf(`{"index":%d,"title":"record %d"}`, i, i)))
	}
	f.lines = append(f.lines, []byte(fmt.Sprintf(`{"done":true,"records":%d}`, records)))
	return f
}

// want is the byte-exact output of a complete fetch.
func (f *fakeStreamServer) want() []byte {
	return append(bytes.Join(f.lines, []byte("\n")), '\n')
}

func (f *fakeStreamServer) seenCursors() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.cursors...)
}

func (f *fakeStreamServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/jfake/results", func(w http.ResponseWriter, r *http.Request) {
		if f.shedFirst.CompareAndSwap(true, false) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		start := 0
		if cur := r.URL.Query().Get("cursor"); cur != "" {
			if _, err := fmt.Sscanf(cur, "t%d", &start); err != nil || start < 0 || start > len(f.lines) {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			f.mu.Lock()
			f.cursors = append(f.cursors, cur)
			f.mu.Unlock()
		}
		conn := f.conns.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		chunks := 0
		for i := start; i < len(f.lines); {
			end := min(i+f.chunk, len(f.lines))
			for _, ln := range f.lines[i:end] {
				w.Write(ln)           //nolint:errcheck
				w.Write([]byte("\n")) //nolint:errcheck
			}
			chunks++
			if conn == 1 && f.cutAfter > 0 && chunks > f.cutAfter {
				// Tear the connection after the chunk's data lines but
				// before its control line: a torn chunk the client must
				// drop and re-fetch.
				fl.Flush()
				panic(http.ErrAbortHandler)
			}
			fmt.Fprintf(w, "{\"cursor\":\"t%d\"}\n", end)
			fl.Flush()
			i = end
		}
	})
	return mux
}

func newStreamTestClient(t *testing.T, f *fakeStreamServer) *Client {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	c := NewClient(ClientConfig{BaseURL: srv.URL}, testPool(8))
	t.Cleanup(c.CloseIdle)
	return c
}

func TestStreamJobResultsCompletes(t *testing.T) {
	leakcheck.Check(t)
	f := newFakeStreamServer(9, 2)
	c := newStreamTestClient(t, f)

	var out bytes.Buffer
	stats, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete || stats.Resumes != 0 {
		t.Fatalf("stats = %+v, want complete with no resumes", stats)
	}
	if stats.Lines != 10 { // 9 records + summary
		t.Fatalf("stats.Lines = %d, want 10", stats.Lines)
	}
	if !bytes.Equal(out.Bytes(), f.want()) {
		t.Fatalf("streamed output differs:\ngot:  %q\nwant: %q", out.Bytes(), f.want())
	}
	if stats.Bytes != int64(out.Len()) {
		t.Fatalf("stats.Bytes = %d, wrote %d", stats.Bytes, out.Len())
	}
}

// TestStreamResumesAcrossTornConnection: the server tears connection 1
// mid-chunk; the client drops the uncommitted lines, resumes from its
// committed cursor, and the final output is byte-identical anyway.
func TestStreamResumesAcrossTornConnection(t *testing.T) {
	leakcheck.Check(t)
	f := newFakeStreamServer(9, 2)
	f.cutAfter = 2
	c := newStreamTestClient(t, f)

	var out bytes.Buffer
	stats, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete || stats.Resumes != 1 {
		t.Fatalf("stats = %+v, want complete after exactly 1 resume", stats)
	}
	if !bytes.Equal(out.Bytes(), f.want()) {
		t.Fatalf("cut+resume output differs:\ngot:  %q\nwant: %q", out.Bytes(), f.want())
	}
	// The resume asked for the committed position (2 chunks × 2 lines),
	// not the torn chunk's.
	if got := f.seenCursors(); len(got) != 1 || got[0] != "t4" {
		t.Fatalf("server saw resume cursors %v, want [t4]", got)
	}
}

// TestStreamInjectedDisconnects: the client-side chaos hook drops the
// connection after every committed chunk and the fetch still converges
// byte-identically.
func TestStreamInjectedDisconnects(t *testing.T) {
	leakcheck.Check(t)
	f := newFakeStreamServer(9, 2)
	c := newStreamTestClient(t, f)

	var out bytes.Buffer
	stats, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{
		DisconnectEvery: 1,
		MaxResumes:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete || stats.Resumes < 3 {
		t.Fatalf("stats = %+v, want completion across several resumes", stats)
	}
	if !bytes.Equal(out.Bytes(), f.want()) {
		t.Fatalf("chaos output differs:\ngot:  %q\nwant: %q", out.Bytes(), f.want())
	}
}

// TestStreamCursorFileSurvivesRestart: a fetch that dies with its
// cursor persisted is finished by a second fetch (a "new process")
// that reads the cursor file and appends only the missing lines.
func TestStreamCursorFileSurvivesRestart(t *testing.T) {
	leakcheck.Check(t)
	f := newFakeStreamServer(9, 2)
	c := newStreamTestClient(t, f)
	cursorPath := filepath.Join(t.TempDir(), "stream.cursor")

	// First fetch: disconnect after 2 chunks with no resumes allowed —
	// the closest in-process stand-in for a SIGKILL after a commit.
	var out bytes.Buffer
	_, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{
		CursorPath:      cursorPath,
		DisconnectEvery: 2,
		MaxResumes:      1, // first disconnect resumes once, second aborts
	})
	if err == nil {
		t.Fatal("truncated fetch reported success")
	}
	persisted, rerr := os.ReadFile(cursorPath)
	if rerr != nil || len(persisted) == 0 {
		t.Fatalf("no cursor persisted: %v", rerr)
	}

	// Second fetch ("after restart"): options carry no cursor — it must
	// come off disk.
	stats, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{CursorPath: cursorPath})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete {
		t.Fatalf("restarted fetch incomplete: %+v", stats)
	}
	if !bytes.Equal(out.Bytes(), f.want()) {
		t.Fatalf("restart output differs:\ngot:  %q\nwant: %q", out.Bytes(), f.want())
	}
	if got := f.seenCursors(); len(got) == 0 || got[len(got)-1] != strings.TrimSpace(string(persisted)) {
		t.Fatalf("restart did not resume from the persisted cursor %q: server saw %v", persisted, got)
	}
}

// TestStreamHonorsShed: a 429 before the stream starts is retried with
// the hint, bounded by MaxRetryAfter, and counts as a resume.
func TestStreamHonorsShed(t *testing.T) {
	leakcheck.Check(t)
	f := newFakeStreamServer(5, 2)
	f.shedFirst.Store(true)
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	c := NewClient(ClientConfig{BaseURL: srv.URL, MaxRetryAfter: 50 * time.Millisecond}, testPool(8))
	t.Cleanup(c.CloseIdle)

	var out bytes.Buffer
	start := time.Now()
	stats, err := c.StreamJobResults(context.Background(), "jfake", &out, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete || stats.Resumes != 1 {
		t.Fatalf("stats = %+v, want complete after the shed retry", stats)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed retry ignored the MaxRetryAfter cap: took %v", elapsed)
	}
	if !bytes.Equal(out.Bytes(), f.want()) {
		t.Fatalf("post-shed output differs: %q", out.Bytes())
	}
}
