package load

import (
	"context"
	"testing"
	"time"

	"emgo/internal/leakcheck"
	"emgo/internal/obs/slo"
)

// mkResult synthesizes a Result with the given class counts.
func mkResult(classes map[string]int64) *Result {
	res := &Result{}
	res.Classes = classes
	for _, n := range classes {
		res.Completed += n
	}
	res.Scheduled = res.Completed
	res.Sent = res.Completed
	return res
}

func gateCheck(t *testing.T, gr *GateResult, name string) GateCheck {
	t.Helper()
	for _, c := range gr.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("gate has no check %q: %+v", name, gr.Checks)
	return GateCheck{}
}

func mustObjectives(t *testing.T, spec string) []slo.Objective {
	t.Helper()
	obj, err := slo.ParseObjectives(spec)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestGateAvailabilityExcludesSheds(t *testing.T) {
	leakcheck.Check(t)
	gate := Gate{Objectives: mustObjectives(t, "availability=99")}
	// 1000 ok + 500 shed + 5 server errors: availability over non-shed
	// answers is 1000/1005 = 99.5% — passing, because sheds are
	// admission policy, not failures.
	res := mkResult(map[string]int64{ClassOK: 1000, ClassShed: 500, ClassServerError: 5})
	gr := gate.Evaluate(context.Background(), res)
	if c := gateCheck(t, gr, "availability"); !c.Pass {
		t.Fatalf("availability check failed with sheds excluded: %s", c.Detail)
	}
	// 20 server errors: 1000/1020 = 98.0% — breached.
	res = mkResult(map[string]int64{ClassOK: 1000, ClassShed: 500, ClassServerError: 20})
	gr = gate.Evaluate(context.Background(), res)
	if c := gateCheck(t, gr, "availability"); c.Pass {
		t.Fatal("2% server errors passed a 99% availability objective")
	}
	if gr.Pass {
		t.Fatal("gate passed with a breached objective")
	}
}

func TestGateLatencyObjective(t *testing.T) {
	leakcheck.Check(t)
	gate := Gate{Objectives: mustObjectives(t, "latency=100ms@99")}

	rec := NewRecorder()
	rec.Start()
	for i := 0; i < 100; i++ {
		rec.Observe(Outcome{Kind: KindSingle, Class: ClassOK}, 20e6) // 20ms
	}
	res := &Result{Snapshot: rec.Snapshot()}
	res.Scheduled, res.Sent = res.Completed, res.Completed
	if gr := gate.Evaluate(context.Background(), res); !gr.Pass {
		t.Fatalf("20ms p99 failed a 100ms objective: %+v", gr.Checks)
	}

	slow := NewRecorder()
	slow.Start()
	for i := 0; i < 100; i++ {
		slow.Observe(Outcome{Kind: KindSingle, Class: ClassOK}, 400e6) // 400ms
	}
	res = &Result{Snapshot: slow.Snapshot()}
	res.Scheduled, res.Sent = res.Completed, res.Completed
	if gr := gate.Evaluate(context.Background(), res); gr.Pass {
		t.Fatal("400ms p99 passed a 100ms objective")
	}
}

func TestGateUnexpectedAnswers(t *testing.T) {
	gate := Gate{}
	res := mkResult(map[string]int64{ClassOK: 100, ClassUnexpected: 1})
	if gr := gate.Evaluate(context.Background(), res); gr.Pass {
		t.Fatal("an unexpected answer passed the default zero-tolerance gate")
	}
	gate.MaxUnexpected = 1
	if gr := gate.Evaluate(context.Background(), res); !gr.Pass {
		t.Fatal("one allowed unexpected answer failed the gate")
	}
}

func TestGateShedRetryAfterContract(t *testing.T) {
	gate := Gate{RequireRetryAfter: true}
	res := mkResult(map[string]int64{ClassOK: 100, ClassShed: 10})
	res.ShedNoRetryAfter = 3
	gr := gate.Evaluate(context.Background(), res)
	if c := gateCheck(t, gr, "shed_retry_after"); c.Pass {
		t.Fatal("sheds without Retry-After passed the contract check")
	}
	res.ShedNoRetryAfter = 0
	gr = gate.Evaluate(context.Background(), res)
	if c := gateCheck(t, gr, "shed_retry_after"); !c.Pass {
		t.Fatalf("clean sheds failed the contract check: %s", c.Detail)
	}
}

func TestGateJobFailures(t *testing.T) {
	gate := Gate{}
	res := mkResult(map[string]int64{ClassOK: 10})
	res.JobsSubmitted, res.JobsFailed = 3, 1
	if gr := gate.Evaluate(context.Background(), res); gr.Pass {
		t.Fatal("a failed job passed the zero-tolerance gate")
	}
	res.JobsFailed = 0
	if gr := gate.Evaluate(context.Background(), res); !gr.Pass {
		t.Fatal("healthy jobs failed the gate")
	}
}

func TestGateGeneratorDrops(t *testing.T) {
	gate := Gate{}
	res := mkResult(map[string]int64{ClassOK: 100})
	res.Scheduled = 200
	res.Dropped = 100 // 50% dropped: the measurement is garbage
	if gr := gate.Evaluate(context.Background(), res); gr.Pass {
		t.Fatal("50% generator drops passed the gate")
	}
}

func TestEvaluateStepVerdicts(t *testing.T) {
	cfg := CapacityConfig{}.withDefaults()

	rec := NewRecorder()
	rec.Start()
	for i := 0; i < 200; i++ {
		rec.Observe(Outcome{Kind: KindSingle, Class: ClassOK}, 10e6)
	}
	res := &Result{Snapshot: rec.Snapshot(), AchievedQPS: 100}
	res.Scheduled, res.Sent = res.Completed, res.Completed
	if step := evaluateStep(cfg, 100, res); !step.Pass {
		t.Fatalf("healthy step failed: %s", step.Reason)
	}

	slow := NewRecorder()
	slow.Start()
	for i := 0; i < 200; i++ {
		slow.Observe(Outcome{Kind: KindSingle, Class: ClassOK}, 900e6) // 900ms > 500ms target
	}
	res = &Result{Snapshot: slow.Snapshot()}
	res.Scheduled, res.Sent = res.Completed, res.Completed
	if step := evaluateStep(cfg, 100, res); step.Pass {
		t.Fatal("900ms p99 passed a 500ms capacity bar")
	}

	shed := NewRecorder()
	shed.Start()
	for i := 0; i < 100; i++ {
		class := ClassOK
		if i < 20 {
			class = ClassShed // 20% shed > 5% budget
		}
		shed.Observe(Outcome{Kind: KindSingle, Class: class}, 10e6)
	}
	res = &Result{Snapshot: shed.Snapshot()}
	res.Scheduled, res.Sent = res.Completed, res.Completed
	if step := evaluateStep(cfg, 100, res); step.Pass {
		t.Fatal("20% sheds passed the 5% capacity budget")
	}
}

func TestSearchCapacityStopsAtFirstFailingStep(t *testing.T) {
	leakcheck.Check(t)
	ts := newDelayServer(t, 5*time.Millisecond)
	cres, err := SearchCapacity(context.Background(), CapacityConfig{
		StartQPS:     10,
		MaxQPS:       40,
		Factor:       2,
		StepDuration: 500 * time.Millisecond,
		P99TargetMS:  1, // unholdable: a 5ms service time can never pass
		Schedule:     ScheduleConfig{Profile: ProfileUniform, PickN: 8},
		Client:       ClientConfig{BaseURL: ts.URL},
		Pool:         testPool(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Steps) != 1 {
		t.Fatalf("search ran %d steps past a failing first step", len(cres.Steps))
	}
	if cres.MaxSustainableQPS != 0 {
		t.Fatalf("max sustainable %.1f with no passing step", cres.MaxSustainableQPS)
	}

	ok, err := SearchCapacity(context.Background(), CapacityConfig{
		StartQPS:     10,
		MaxQPS:       20,
		Factor:       2,
		StepDuration: 500 * time.Millisecond,
		P99TargetMS:  5000,
		Schedule:     ScheduleConfig{Profile: ProfileUniform, PickN: 8},
		Client:       ClientConfig{BaseURL: ts.URL},
		Pool:         testPool(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok.MaxSustainableQPS != 20 {
		t.Fatalf("max sustainable %.1f, want 20 (both steps hold a 5s bar)", ok.MaxSustainableQPS)
	}
	if len(ok.Steps) != 2 {
		t.Fatalf("search ran %d steps, want 2", len(ok.Steps))
	}
}
