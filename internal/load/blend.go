package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind is one request shape in the traffic blend.
type Kind string

// Request kinds. Single/Batch/JobSubmit carry records; Malformed and
// Oversized are deliberately hostile bodies the server must refuse
// cheaply; Status probes the operational endpoint the way a balancer
// would.
const (
	KindSingle    Kind = "single"
	KindBatch     Kind = "batch"
	KindJob       Kind = "job"
	KindMalformed Kind = "malformed"
	KindOversized Kind = "oversized"
	KindStatus    Kind = "status"
)

// kindOrder fixes the iteration order everywhere weights are walked, so
// blends are deterministic regardless of map iteration.
var kindOrder = []Kind{KindSingle, KindBatch, KindJob, KindMalformed, KindOversized, KindStatus}

// Blend weights the request kinds. Weights are relative, not
// percentages; the zero Blend means all single matches.
type Blend struct {
	Single    int
	Batch     int
	Job       int
	Malformed int
	Oversized int
	Status    int
}

// DefaultBlend is the mixed-traffic default: mostly single matches, a
// batch and status sprinkle, and a trickle of hostile bodies so the
// reject path is always exercised.
func DefaultBlend() Blend {
	return Blend{Single: 88, Batch: 5, Malformed: 2, Oversized: 1, Status: 4}
}

// weight returns the weight for one kind.
func (b Blend) weight(k Kind) int {
	switch k {
	case KindSingle:
		return b.Single
	case KindBatch:
		return b.Batch
	case KindJob:
		return b.Job
	case KindMalformed:
		return b.Malformed
	case KindOversized:
		return b.Oversized
	case KindStatus:
		return b.Status
	}
	return 0
}

// total sums the weights.
func (b Blend) total() int {
	t := 0
	for _, k := range kindOrder {
		t += b.weight(k)
	}
	return t
}

// String renders the blend in ParseBlend syntax, omitting zero weights.
func (b Blend) String() string {
	var parts []string
	for _, k := range kindOrder {
		if w := b.weight(k); w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, w))
		}
	}
	return strings.Join(parts, ",")
}

// ParseBlend parses the -blend flag syntax: comma-separated
// kind=weight clauses, e.g. "single=80,batch=10,malformed=5,status=5".
// Unmentioned kinds get weight 0; at least one weight must be positive.
func ParseBlend(s string) (Blend, error) {
	var b Blend
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Blend{}, fmt.Errorf("load: blend %q: %q is not kind=weight", s, clause)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Blend{}, fmt.Errorf("load: blend %q: weight %q must be a non-negative integer", s, val)
		}
		switch Kind(strings.TrimSpace(name)) {
		case KindSingle:
			b.Single = w
		case KindBatch:
			b.Batch = w
		case KindJob:
			b.Job = w
		case KindMalformed:
			b.Malformed = w
		case KindOversized:
			b.Oversized = w
		case KindStatus:
			b.Status = w
		default:
			return Blend{}, fmt.Errorf("load: blend %q: unknown kind %q", s, name)
		}
	}
	if b.total() <= 0 {
		return Blend{}, fmt.Errorf("load: blend %q has no positive weight", s)
	}
	return b, nil
}

// assign deterministically deals n arrivals across the blend's kinds in
// proportion to their weights, shuffled by seed so kinds interleave
// rather than arriving in runs.
func (b Blend) assign(n int, seed int64) ([]Kind, error) {
	if b.total() == 0 {
		b = Blend{Single: 1}
	}
	total := b.total()
	out := make([]Kind, 0, n)
	// Largest-remainder apportionment: exact proportions up to rounding,
	// so a 1% weight still appears in short runs.
	type share struct {
		kind Kind
		frac float64
	}
	counts := map[Kind]int{}
	assigned := 0
	var rem []share
	for _, k := range kindOrder {
		w := b.weight(k)
		if w == 0 {
			continue
		}
		exact := float64(n) * float64(w) / float64(total)
		c := int(exact)
		counts[k] = c
		assigned += c
		rem = append(rem, share{kind: k, frac: exact - float64(c)})
	}
	sort.SliceStable(rem, func(i, j int) bool { return rem[i].frac > rem[j].frac })
	for i := 0; assigned < n; i++ {
		counts[rem[i%len(rem)].kind]++
		assigned++
	}
	for _, k := range kindOrder {
		for i := 0; i < counts[k]; i++ {
			out = append(out, k)
		}
	}
	// Interleave deterministically; a distinct seed offset keeps this
	// stream independent of arrival times and record picks.
	rng := rand.New(rand.NewSource(seed + 0x51ed2701))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}
