package load

import (
	"testing"
)

func TestParseBlendRoundTrip(t *testing.T) {
	b, err := ParseBlend("single=80,batch=10,job=2,malformed=5,status=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Blend{Single: 80, Batch: 10, Job: 2, Malformed: 5, Status: 3}
	if b != want {
		t.Fatalf("parsed %+v, want %+v", b, want)
	}
	b2, err := ParseBlend(b.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", b.String(), err)
	}
	if b2 != b {
		t.Fatalf("String round trip lost weights: %q -> %+v", b.String(), b2)
	}
}

func TestParseBlendRejects(t *testing.T) {
	for _, s := range []string{
		"single",           // no weight
		"single=-1",        // negative
		"single=x",         // not a number
		"telepathy=10",     // unknown kind
		"single=0,batch=0", // nothing positive
		"",                 // empty
	} {
		if _, err := ParseBlend(s); err == nil {
			t.Errorf("ParseBlend(%q) accepted, want error", s)
		}
	}
}

func TestBlendAssignProportions(t *testing.T) {
	b := Blend{Single: 88, Batch: 5, Malformed: 2, Oversized: 1, Status: 4}
	kinds, err := b.assign(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1000 {
		t.Fatalf("assigned %d kinds, want 1000", len(kinds))
	}
	counts := map[Kind]int{}
	for _, k := range kinds {
		counts[k]++
	}
	// Largest-remainder apportionment is exact here (weights sum to 100).
	want := map[Kind]int{KindSingle: 880, KindBatch: 50, KindMalformed: 20, KindOversized: 10, KindStatus: 40}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("kind %s: %d of 1000, want exactly %d", k, counts[k], n)
		}
	}
}

func TestBlendAssignSmallRunsKeepRareKinds(t *testing.T) {
	// A 1%-weight kind must still appear in a 100-arrival run.
	b := Blend{Single: 99, Oversized: 1}
	kinds, _ := b.assign(100, 1)
	seen := false
	for _, k := range kinds {
		if k == KindOversized {
			seen = true
		}
	}
	if !seen {
		t.Fatal("1% kind vanished from a 100-arrival schedule")
	}
}

func TestBlendAssignDeterministicAndInterleaved(t *testing.T) {
	b := DefaultBlend()
	a1, _ := b.assign(500, 42)
	a2, _ := b.assign(500, 42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignment differs at %d with the same seed", i)
		}
	}
	// Interleaving: the first 100 slots of a shuffled 88% single blend
	// should not be 100% single.
	other := 0
	for _, k := range a1[:100] {
		if k != KindSingle {
			other++
		}
	}
	if other == 0 {
		t.Fatal("first 100 arrivals are all single — kinds arrived in runs, not interleaved")
	}
	a3, _ := b.assign(500, 43)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical interleavings")
	}
}

func TestZeroBlendIsAllSingles(t *testing.T) {
	kinds, err := Blend{}.assign(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		if k != KindSingle {
			t.Fatalf("zero blend produced kind %s", k)
		}
	}
}
