package load

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestRunAccountsEveryArrival(t *testing.T) {
	leakcheck.Check(t)
	srv, c := &fakeServer{}, ClientConfig{}
	ts := newHTTPTestServer(t, srv)
	c.BaseURL = ts.URL

	res, err := Run(context.Background(), RunConfig{
		Schedule: ScheduleConfig{
			Profile: ProfileUniform, Rate: 200, Duration: time.Second,
			Seed: 3, PickN: 32, Blend: Blend{Single: 90, Malformed: 5, Status: 5},
		},
		Client: c,
		Pool:   testPool(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 200 {
		t.Fatalf("scheduled %d, want 200", res.Scheduled)
	}
	if res.Sent+res.Dropped+res.Unsent != res.Scheduled {
		t.Fatalf("sent %d + dropped %d + unsent %d != scheduled %d",
			res.Sent, res.Dropped, res.Unsent, res.Scheduled)
	}
	if res.Completed != res.Sent {
		t.Fatalf("completed %d != sent %d", res.Completed, res.Sent)
	}
	var classTotal int64
	for _, n := range res.Classes {
		classTotal += n
	}
	if classTotal != res.Completed {
		t.Fatalf("class counts sum to %d, completions %d", classTotal, res.Completed)
	}
	if res.Classes[ClassOK] != res.Completed {
		t.Fatalf("%d of %d completions ok against a healthy server: %v",
			res.Classes[ClassOK], res.Completed, res.Classes)
	}
	if res.Hist.Count != res.Completed {
		t.Fatalf("histogram holds %d samples, want %d", res.Hist.Count, res.Completed)
	}
	if res.AchievedQPS <= 0 || res.OfferedQPS <= 0 {
		t.Fatalf("rates not computed: offered %.1f achieved %.1f", res.OfferedQPS, res.AchievedQPS)
	}
}

func TestRunDropsAtOutstandingCapInsteadOfDelaying(t *testing.T) {
	leakcheck.Check(t)
	stall := make(chan struct{})
	ts := newStallServer(t, stall)

	start := time.Now()
	res, err := Run(context.Background(), RunConfig{
		Schedule: ScheduleConfig{
			Profile: ProfileUniform, Rate: 100, Duration: time.Second, PickN: 8,
		},
		Client:         ClientConfig{BaseURL: ts.URL, Timeout: 3 * time.Second},
		Pool:           testPool(8),
		MaxOutstanding: 4,
	})
	close(stall)
	if err != nil {
		t.Fatal(err)
	}
	// Every request past the 4 in-flight slots must be dropped, and the
	// dispatch loop must still finish on schedule: open-loop generators
	// never convert backpressure into delayed sends.
	if res.Dropped < 90 {
		t.Fatalf("dropped %d of %d, want the bulk of the schedule", res.Dropped, res.Scheduled)
	}
	if res.Sent > 8 {
		t.Fatalf("sent %d requests with 4 slots against a stalled server", res.Sent)
	}
	if e := time.Since(start); e > 6*time.Second {
		t.Fatalf("run took %v — drops must not delay the schedule", e)
	}
}

func TestRunChargesLatencyFromScheduledSendTime(t *testing.T) {
	leakcheck.Check(t)
	// A server with a constant 30ms service time, loaded at a rate its
	// one connection can absorb: measured latency must be >= the service
	// time for every request (charged from the schedule, it can only be
	// larger, never smaller).
	ts := newDelayServer(t, 30*time.Millisecond)
	res, err := Run(context.Background(), RunConfig{
		Schedule: ScheduleConfig{Profile: ProfileUniform, Rate: 20, Duration: time.Second, PickN: 8},
		Client:   ClientConfig{BaseURL: ts.URL},
		Pool:     testPool(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if p50 := res.Hist.Quantile(0.5); p50 < 25 {
		t.Fatalf("p50 %.1fms below the 30ms service time — latency is not charged from the scheduled send", p50)
	}
}

func TestRunCancellation(t *testing.T) {
	leakcheck.Check(t)
	ts := newHTTPTestServer(t, &fakeServer{})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, RunConfig{
		Schedule: ScheduleConfig{Profile: ProfileUniform, Rate: 50, Duration: 10 * time.Second, PickN: 8},
		Client:   ClientConfig{BaseURL: ts.URL},
		Pool:     testPool(8),
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Unsent == 0 {
		t.Fatal("cancellation abandoned no arrivals on a 10s schedule")
	}
}

func TestRunLiveReporting(t *testing.T) {
	leakcheck.Check(t)
	ts := newHTTPTestServer(t, &fakeServer{})
	var buf syncBuffer
	_, err := Run(context.Background(), RunConfig{
		Schedule:    ScheduleConfig{Profile: ProfileUniform, Rate: 100, Duration: time.Second, PickN: 8},
		Client:      ClientConfig{BaseURL: ts.URL},
		Pool:        testPool(8),
		ReportEvery: 200 * time.Millisecond,
		Report:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "eps=") || !strings.Contains(out, "p99=") {
		t.Fatalf("live report lines missing eps/percentiles:\n%s", out)
	}
}

func TestRunRejectsRecordBlendWithoutPool(t *testing.T) {
	_, err := Run(context.Background(), RunConfig{
		Schedule: ScheduleConfig{Profile: ProfileUniform, Rate: 10, Duration: time.Second},
		Client:   ClientConfig{BaseURL: "http://127.0.0.1:1"},
	})
	if err == nil || !strings.Contains(err.Error(), "record pool") {
		t.Fatalf("record-bearing blend without a pool accepted: %v", err)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for the reporter goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newHTTPTestServer boots the fake emserve for a test.
func newHTTPTestServer(t *testing.T, f *fakeServer) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return ts
}

// newStallServer answers nothing until stall closes (or the request is
// abandoned).
func newStallServer(t *testing.T, stall chan struct{}) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// newDelayServer answers 200 after a fixed service time.
func newDelayServer(t *testing.T, d time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		w.Write([]byte(`{"degraded": false}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}
