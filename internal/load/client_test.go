package load

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

// testPool builds an in-memory record pool (no CSV on disk needed).
func testPool(n int) *RecordPool {
	titles := make([]string, n)
	for i := range titles {
		titles[i] = "award title " + string(rune('a'+i%26))
	}
	return &RecordPool{titles: titles}
}

// fakeServer mimics emserve's envelope behavior closely enough to
// exercise every classification path.
type fakeServer struct {
	shedEvery       int64 // every Nth request answers 429
	shedRetryAfter  bool  // sheds carry Retry-After: 1
	degraded        bool
	requests        atomic.Int64
	malformedAnswer int // status for malformed bodies (default 400)
}

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"breaker": "closed"})
	})
	mux.HandleFunc("/v1/match", func(w http.ResponseWriter, r *http.Request) {
		n := f.requests.Add(1)
		if f.shedEvery > 0 && n%f.shedEvery == 0 {
			if f.shedRetryAfter {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		body, _ := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if len(body) > 1<<20 {
			w.WriteHeader(http.StatusRequestEntityTooLarge)
			return
		}
		var doc struct {
			Record map[string]any `json:"record"`
		}
		if err := json.Unmarshal(body, &doc); err != nil || doc.Record == nil {
			status := f.malformedAnswer
			if status == 0 {
				status = http.StatusBadRequest
			}
			w.WriteHeader(status)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"degraded": f.degraded})
	})
	mux.HandleFunc("/v1/match/batch", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"results": []map[string]any{{"degraded": f.degraded}},
		})
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "job-abc", "state": "queued"})
	})
	return mux
}

func newTestClient(t *testing.T, f *fakeServer, cfg ClientConfig) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	cfg.BaseURL = srv.URL
	c := NewClient(cfg, testPool(32))
	t.Cleanup(c.CloseIdle)
	return c, srv
}

func TestClientClassifiesKinds(t *testing.T) {
	leakcheck.Check(t)
	c, _ := newTestClient(t, &fakeServer{}, ClientConfig{OversizedBytes: 2 << 20})
	ctx := context.Background()

	cases := []struct {
		kind  Kind
		class string
	}{
		{KindSingle, ClassOK},
		{KindBatch, ClassOK},
		{KindMalformed, ClassOK}, // 400 is the EXPECTED answer
		{KindOversized, ClassOK}, // 413 is the EXPECTED answer
		{KindStatus, ClassOK},
		{KindJob, ClassOK},
	}
	for i, tc := range cases {
		out := c.Do(ctx, i, Arrival{Kind: tc.kind, Record: i})
		if out.Class != tc.class {
			t.Errorf("%s: class %s (status %d), want %s", tc.kind, out.Class, out.Status, tc.class)
		}
		if tc.kind == KindJob && out.JobID == "" {
			t.Error("job submission did not surface the job id")
		}
	}
}

func TestClientMalformedAcceptedIsUnexpected(t *testing.T) {
	leakcheck.Check(t)
	// A server that answers 200 to garbage is broken; the generator must
	// say so rather than celebrate the 200.
	c, _ := newTestClient(t, &fakeServer{malformedAnswer: http.StatusOK}, ClientConfig{})
	out := c.Do(context.Background(), 0, Arrival{Kind: KindMalformed})
	if out.Class != ClassUnexpected {
		t.Fatalf("200 to a malformed body classified %s, want %s", out.Class, ClassUnexpected)
	}
}

func TestClientShedTracking(t *testing.T) {
	leakcheck.Check(t)
	c, _ := newTestClient(t, &fakeServer{shedEvery: 1, shedRetryAfter: true}, ClientConfig{})
	out := c.Do(context.Background(), 0, Arrival{Kind: KindSingle})
	if out.Class != ClassShed {
		t.Fatalf("class %s, want shed", out.Class)
	}
	if out.ShedNoRetryAfter {
		t.Fatal("Retry-After was present but flagged missing")
	}

	c2, _ := newTestClient(t, &fakeServer{shedEvery: 1, shedRetryAfter: false}, ClientConfig{})
	out = c2.Do(context.Background(), 0, Arrival{Kind: KindSingle})
	if !out.ShedNoRetryAfter {
		t.Fatal("missing Retry-After on a shed answer was not flagged")
	}
}

func TestClientShedRetriesHonorHint(t *testing.T) {
	leakcheck.Check(t)
	f := &fakeServer{shedEvery: 2, shedRetryAfter: true} // every 2nd request sheds
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	c := NewClient(ClientConfig{
		BaseURL:       srv.URL,
		ShedRetries:   2,
		MaxRetryAfter: 50 * time.Millisecond, // cap the 1s hint so the test is fast
	}, testPool(8))
	defer c.CloseIdle()

	// Request #2 to the server sheds; with retries armed the client must
	// come back and land the answer.
	start := time.Now()
	c.Do(context.Background(), 0, Arrival{Kind: KindSingle}) // request 1: ok
	out := c.Do(context.Background(), 1, Arrival{Kind: KindSingle})
	if out.Class != ClassOK {
		t.Fatalf("retried request classified %s, want ok", out.Class)
	}
	if out.Attempts < 2 {
		t.Fatalf("%d attempts recorded, want >= 2", out.Attempts)
	}
	// The retry delay must be bounded by MaxRetryAfter, not the server's
	// 1-second hint.
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("retry stalled %v — the Retry-After cap did not bite", e)
	}
}

func TestClientTimeoutClass(t *testing.T) {
	leakcheck.Check(t)
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall)
	c := NewClient(ClientConfig{BaseURL: srv.URL, Timeout: 50 * time.Millisecond}, testPool(8))
	defer c.CloseIdle()
	out := c.Do(context.Background(), 0, Arrival{Kind: KindSingle})
	if out.Class != ClassTimeout {
		t.Fatalf("stalled request classified %s, want timeout", out.Class)
	}
}

func TestClientNetErrorClass(t *testing.T) {
	leakcheck.Check(t)
	// A closed port: connection refused.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c := NewClient(ClientConfig{BaseURL: url, Timeout: time.Second}, testPool(8))
	defer c.CloseIdle()
	out := c.Do(context.Background(), 0, Arrival{Kind: KindSingle})
	if out.Class != ClassNetError {
		t.Fatalf("refused connection classified %s, want net_error", out.Class)
	}
}

func TestClientDegradedDetection(t *testing.T) {
	leakcheck.Check(t)
	c, _ := newTestClient(t, &fakeServer{degraded: true}, ClientConfig{})
	for _, kind := range []Kind{KindSingle, KindBatch} {
		out := c.Do(context.Background(), 0, Arrival{Kind: kind})
		if !out.Degraded {
			t.Errorf("%s: degraded answer not detected", kind)
		}
	}
}

func TestJobRecordsDeterministic(t *testing.T) {
	p := testPool(32)
	a, _ := json.Marshal(p.JobRecords(8))
	b, _ := json.Marshal(p.JobRecords(8))
	if string(a) != string(b) {
		t.Fatal("JobRecords is not deterministic — content-addressed job ids would diverge")
	}
}
