package serve

import (
	"context"
	"fmt"
	"os"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/fault"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/retry"
)

// Artifact is one loaded matcher artifact: the fitted model plus the
// provenance the service reports and the reload protocol verifies.
type Artifact struct {
	// Matcher is the fitted model.
	Matcher ml.Matcher
	// Checksum is the SHA-256 fingerprint of the artifact bytes (the
	// same hashing the checkpoint store uses for its manifests), so an
	// operator can verify which model build is live.
	Checksum string
	// Path is where the artifact was loaded from ("<spec>" when the
	// matcher came embedded in the workflow spec).
	Path string
	// LoadedAt is when this artifact became live.
	LoadedAt time.Time
}

// LoadArtifact reads, verifies, and validates a matcher artifact file.
// Reads pass the "serve.reload" fault site and transient failures are
// retried under policy; decode and validation failures are permanent.
// wantFeatures > 0 additionally probes the model with a zero vector of
// that width — a matcher trained against a different feature set must
// be rejected at load time, not panic on the first request.
func LoadArtifact(ctx context.Context, path string, wantFeatures int, policy retry.Policy) (*Artifact, error) {
	var data []byte
	err := retry.Do(ctx, policy, func() error {
		if ferr := fault.Inject("serve.reload"); ferr != nil {
			return ferr
		}
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("serve: read matcher artifact %s: %w", path, err)
	}
	m, err := ml.LoadMatcherBytes(path, data)
	if err != nil {
		return nil, err
	}
	if err := probeMatcher(m, wantFeatures); err != nil {
		return nil, fmt.Errorf("serve: matcher artifact %s: %w", path, err)
	}
	return &Artifact{
		Matcher:  m,
		Checksum: ckpt.Fingerprint(string(data)),
		Path:     path,
		LoadedAt: time.Now(),
	}, nil
}

// probeMatcher exercises the model against a zero vector of the
// workflow's feature width, converting a shape-mismatch panic into an
// error the reload path can roll back on.
func probeMatcher(m ml.Matcher, features int) (err error) {
	if features <= 0 {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe with %d-feature vector panicked: %v", features, r)
		}
	}()
	probe := make([]float64, features)
	label := m.Predict(probe)
	if label != 0 && label != 1 {
		return fmt.Errorf("probe predicted label %d, want 0 or 1", label)
	}
	return nil
}

// Reload atomically replaces the live matcher with the artifact at
// path (empty = the path the server was started with). The swap is
// all-or-nothing: a missing, corrupt, or shape-incompatible artifact
// leaves the previous matcher serving and returns the error — the
// rollback the deployment protocol requires. On success the breaker is
// reset, since its failure history described the replaced model.
func (s *Server) Reload(ctx context.Context, path string) (*Artifact, error) {
	if path == "" {
		path = s.matcherPath
	}
	if path == "" || path == specArtifactPath {
		return nil, fmt.Errorf("serve: no matcher artifact path to reload from (started with the spec-embedded matcher)")
	}
	// Serialize reloads; the artifact swap itself is a single atomic
	// pointer store, so in-flight requests keep the model they started
	// with and are never torn.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	art, err := LoadArtifact(ctx, path, s.featureWidth(), s.cfg.RetryPolicy)
	if err != nil {
		obs.C("serve.reload.failed").Inc()
		return nil, err
	}
	prev := s.artifact.Load()
	s.artifact.Store(art)
	s.breaker.Reset()
	obs.C("serve.reload.ok").Inc()
	if prev != nil && prev.Checksum == art.Checksum {
		obs.C("serve.reload.unchanged").Inc()
	}
	return art, nil
}
