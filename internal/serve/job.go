package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/contprof"
	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/parallel"
	"emgo/internal/table"
)

// The async job tier turns the one-record service into the offline shape
// the paper actually deployed: submit a whole table, poll, fetch the
// results later. Robustness is the organizing principle:
//
//   - every job is split into fixed-size shards, and every shard is a
//     crash-safe unit: its result is written through the ckpt store
//     (temp + fsync + atomic rename, SHA-256 manifest, fingerprint
//     binding), so a SIGKILL at any instant loses at most the shard in
//     flight and a restart resumes from the last durable shard with
//     byte-identical output;
//   - each shard carries its own circuit breaker around the learned
//     matcher plus a bounded retry loop; a poisoned shard degrades to
//     the rule-only path or is quarantined with an explicit reason
//     instead of failing the job;
//   - shard executors take slots from the same admission gate online
//     requests use, so batch work is backpressured by interactive
//     traffic (and shows up in the same EWMA Retry-After hints) instead
//     of starving it;
//   - a drain stops new shards but lets the in-flight shard commit, so
//     graceful shutdown checkpoints instead of discarding work.

// Job states.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobCompleted   = "completed"
	JobFailed      = "failed"
	JobCancelled   = "cancelled"
	JobInterrupted = "interrupted" // stopped by drain/shutdown; resumes on restart
)

// Job-tier defaults.
const (
	DefaultJobShardSize     = 32
	DefaultJobWorkers       = 2
	DefaultJobMaxQueued     = 8
	DefaultJobMaxRecords    = 100000
	DefaultJobMaxBodyBytes  = 64 << 20
	DefaultJobShardAttempts = 3
	DefaultJobShardTimeout  = 60 * time.Second
	DefaultJobRetryBackoff  = 25 * time.Millisecond
)

// ErrJobShed is returned by Submit when the job queue is full; the HTTP
// layer maps it to 429 + Retry-After, the same shedding contract the
// single-record path uses.
var ErrJobShed = errors.New("serve: job queue full, submission shed")

// errJobStopped surfaces drain/shutdown inside a shard attempt. It is
// deliberately NOT propagated out of runShard as an error: an error
// would cancel the fan-out context and abort sibling shards mid-write,
// and the drain contract is the opposite — in-flight shards commit,
// untouched shards are skipped, the job parks as interrupted.
var errJobStopped = errors.New("serve: job tier stopping")

// JobConfig tunes the async job tier. The zero value disables it (Dir
// is required: jobs are durable by construction).
type JobConfig struct {
	// Dir is the root directory job checkpoints live under, one
	// subdirectory per job. Empty disables the job tier.
	Dir string
	// ShardSize is the default records-per-shard when a submission does
	// not pick its own (default DefaultJobShardSize).
	ShardSize int
	// Workers bounds how many shards execute concurrently (default
	// DefaultJobWorkers). Keep it below the admission MaxInFlight or
	// batch work can occupy every pipeline slot.
	Workers int
	// MaxQueued bounds jobs queued or running at once; submissions
	// beyond it are shed with ErrJobShed (default DefaultJobMaxQueued).
	MaxQueued int
	// MaxRecords caps records per job (default DefaultJobMaxRecords).
	MaxRecords int
	// MaxBodyBytes caps job-submission bodies (default
	// DefaultJobMaxBodyBytes).
	MaxBodyBytes int64
	// ShardAttempts is how many times a shard is attempted before it is
	// quarantined (default DefaultJobShardAttempts).
	ShardAttempts int
	// ShardTimeout bounds one shard execution attempt (default
	// DefaultJobShardTimeout); a timed-out attempt is retried.
	ShardTimeout time.Duration
	// RetryBackoff is the pause between shard attempts (default
	// DefaultJobRetryBackoff); it also gives a tripped per-shard breaker
	// time to half-open.
	RetryBackoff time.Duration
	// Breaker tunes the per-shard circuit breakers around the learned
	// matcher (zero = the same defaults the online breaker uses).
	Breaker BreakerConfig
}

// withDefaults fills zero fields.
func (c JobConfig) withDefaults() JobConfig {
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultJobShardSize
	}
	if c.Workers <= 0 {
		c.Workers = DefaultJobWorkers
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = DefaultJobMaxQueued
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = DefaultJobMaxRecords
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultJobMaxBodyBytes
	}
	if c.ShardAttempts <= 0 {
		c.ShardAttempts = DefaultJobShardAttempts
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = DefaultJobShardTimeout
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultJobRetryBackoff
	}
	return c
}

// jobSpec is the durable identity of a job (artifact "job.json"): what
// to match, in which shard geometry. It deliberately carries no
// timestamps or host state so the job fingerprint — and therefore the
// job ID — is a pure function of the submitted work.
type jobSpec struct {
	ID        string           `json:"id"`
	ShardSize int              `json:"shard_size"`
	Records   []map[string]any `json:"records"`
}

// JobRecordResult is one record's deterministic match answer inside a
// job: MatchResponse minus the run-varying fields (latency, breaker
// state), so completed shards are byte-identical across runs and
// restarts.
type JobRecordResult struct {
	// Index is the record's position in the submitted job.
	Index int `json:"index"`
	// Matches are the final matches, in the same order and with the
	// same provenance as the online endpoint.
	Matches []Match `json:"matches"`
	// Degraded and DegradedReason mirror MatchResponse.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Candidates and Vetoed mirror MatchResponse.
	Candidates int `json:"candidates"`
	Vetoed     int `json:"vetoed"`
}

// shardArtifact is the durable unit of job progress: one shard's
// results, or its quarantine marker.
type shardArtifact struct {
	Shard       int               `json:"shard"`
	Quarantined bool              `json:"quarantined,omitempty"`
	Reason      string            `json:"reason,omitempty"`
	Records     []JobRecordResult `json:"records,omitempty"`
}

// QuarantinedShard names a shard the job gave up on and why.
type QuarantinedShard struct {
	Shard  int    `json:"shard"`
	Reason string `json:"reason"`
}

// JobStatus is the poll document for one job.
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Records int    `json:"records"`
	Shards  int    `json:"shards"`
	// DoneShards counts shards committed durably (including
	// quarantined ones); ResumedShards is the subset inherited from a
	// previous process instead of computed by this one.
	DoneShards    int `json:"done_shards"`
	ResumedShards int `json:"resumed_shards"`
	// Retries counts shard attempts that failed and were retried.
	Retries int `json:"retries"`
	// Quarantined lists shards this process quarantined (the durable
	// truth lives in the shard artifacts and is reported by results).
	Quarantined []QuarantinedShard `json:"quarantined,omitempty"`
	// DegradedRecords counts records answered without the learned
	// matcher.
	DegradedRecords int    `json:"degraded_records"`
	Error           string `json:"error,omitempty"`
}

// JobResults is the fetch document: every record's answer, assembled
// from the durable shard artifacts in shard order — byte-identical no
// matter how many crashes and resumes produced the shards.
type JobResults struct {
	JobID       string             `json:"job_id"`
	Records     int                `json:"records"`
	Shards      int                `json:"shards"`
	Quarantined []QuarantinedShard `json:"quarantined,omitempty"`
	Results     []JobRecordResult  `json:"results"`
}

// Job is one submitted bulk-matching job.
type Job struct {
	ID string

	// origin is the request ID of the submission that created the job
	// in this process ("" for recovered jobs) — the join key between
	// the submit wide event and the job's execution trace.
	origin string

	spec        jobSpec
	rows        []table.Row
	fingerprint string
	store       *ckpt.Store
	shards      int

	mu          sync.Mutex
	state       string
	done        int
	resumed     int
	retries     int
	quarantined []QuarantinedShard
	degraded    int
	errMsg      string
	breakers    map[int]*Breaker
	brCfg       BreakerConfig

	cancelled atomic.Bool
	// interrupted records that at least one shard was skipped because
	// the tier was stopping; the settle logic parks the job resumable.
	interrupted atomic.Bool
}

// shardName is the ckpt artifact name of one shard; the chaos harness
// targets these names with EMCKPT_KILL (e.g. "mid:shard_00002.json").
func shardName(idx int) string { return fmt.Sprintf("shard_%05d.json", idx) }

// shardLen is how many records shard idx carries (the last shard may
// be short).
func (j *Job) shardLen(idx int) int {
	lo := idx * j.spec.ShardSize
	hi := lo + j.spec.ShardSize
	if hi > len(j.rows) {
		hi = len(j.rows)
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// jobArtifact is the durable job-spec artifact name.
const jobArtifact = "job.json"

// Jobs is the async job manager: a FIFO queue of jobs executed one at a
// time, each fanning its shards across a bounded worker pool.
type Jobs struct {
	cfg JobConfig
	srv *Server

	// streamKey signs resume cursors for the streaming results
	// transport; it persists under cfg.Dir so cursors outlive restarts.
	streamKey []byte

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*Job
	queue     []*Job
	stopped   bool
	recovered int

	wg       sync.WaitGroup
	stopOnce sync.Once
}

// newJobs builds the manager (defaults applied, root dir created).
func newJobs(cfg JobConfig, srv *Server) (*Jobs, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: job tier needs a checkpoint directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job dir: %w", err)
	}
	key, err := loadStreamKey(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: stream cursor key: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	jm := &Jobs{cfg: cfg, srv: srv, streamKey: key, ctx: ctx, cancel: cancel, jobs: make(map[string]*Job)}
	jm.cond = sync.NewCond(&jm.mu)
	return jm, nil
}

// Start spawns the dispatcher that executes queued jobs.
func (jm *Jobs) Start() {
	jm.wg.Add(1)
	go jm.dispatch()
}

// Config returns the manager's effective (defaulted) configuration.
func (jm *Jobs) Config() JobConfig { return jm.cfg }

// Recovered reports how many unfinished jobs the last Recover re-queued.
func (jm *Jobs) Recovered() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.recovered
}

// matcherChecksum identifies the live matcher for fingerprint binding:
// resumed shards are only trusted when they were computed by the same
// artifact (and the same right table / feature stack implied by it).
func (jm *Jobs) matcherChecksum() string {
	if art := jm.srv.artifact.Load(); art != nil {
		return art.Checksum
	}
	return "rule-only"
}

// jobFingerprint binds a job directory to its exact work: the canonical
// record bytes, the shard geometry, the live matcher, and the request
// schema. Any mismatch makes ckpt.Open quarantine the old manifest and
// recompute every shard rather than mixing results from two worlds.
func (jm *Jobs) jobFingerprint(canonical []byte, shardSize int) string {
	return ckpt.Fingerprint(
		string(canonical),
		strconv.Itoa(shardSize),
		jm.matcherChecksum(),
		jm.srv.left.Schema().String(),
	)
}

// decodeJobRecords decodes records with the same number-preserving
// posture the HTTP decoders use, so recovering a spec from disk parses
// cells exactly as the original submission did (json.Number round-trips
// "1.00" as "1.00"; float64 would collapse it to "1" and change what
// table.Parse sees).
func decodeJobRecords(data []byte) (jobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var spec jobSpec
	if err := dec.Decode(&spec); err != nil {
		return jobSpec{}, err
	}
	return spec, nil
}

// Submit validates, persists, and enqueues a job. Submission is
// idempotent: the job ID is derived from the work's fingerprint, so
// resubmitting identical records returns the existing job (completed
// shards and all) instead of redoing the work. A full queue sheds with
// ErrJobShed. origin is the submitting request's ID ("" when unknown);
// it is carried into the job's execution trace so asynchronous work
// joins back to the request that caused it.
func (jm *Jobs) Submit(records []map[string]any, shardSize int, origin string) (*Job, error) {
	if shardSize <= 0 {
		shardSize = jm.cfg.ShardSize
	}
	if len(records) == 0 {
		return nil, badRequest(`job needs a non-empty "records" array`)
	}
	if len(records) > jm.cfg.MaxRecords {
		return nil, &RequestError{
			Status: 413,
			Msg:    fmt.Sprintf("job has %d records, cap is %d", len(records), jm.cfg.MaxRecords),
		}
	}
	rows, err := recordRows(jm.srv.left.Schema(), records)
	if err != nil {
		return nil, err
	}
	canonical, err := json.Marshal(records)
	if err != nil {
		return nil, badRequest("encode records: %v", err)
	}
	fp := jm.jobFingerprint(canonical, shardSize)
	id := "j" + fp[:16]

	jm.mu.Lock()
	if existing, ok := jm.jobs[id]; ok {
		st := existing.state
		jm.mu.Unlock()
		if st == JobFailed || st == JobCancelled || st == JobInterrupted {
			jm.enqueue(existing)
		}
		return existing, nil
	}
	pending := 0
	for _, j := range jm.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			pending++
		}
	}
	if pending >= jm.cfg.MaxQueued {
		jm.mu.Unlock()
		obs.C("serve.job.shed").Inc()
		return nil, ErrJobShed
	}
	jm.mu.Unlock()

	spec := jobSpec{ID: id, ShardSize: shardSize, Records: records}
	job, err := jm.openJob(id, spec, rows, fp)
	if err != nil {
		return nil, err
	}
	job.origin = origin
	jm.mu.Lock()
	jm.jobs[id] = job
	jm.mu.Unlock()
	obs.C("serve.job.submitted").Inc()
	if job.state != JobCompleted {
		jm.enqueue(job)
	}
	return job, nil
}

// openJob opens (or creates) a job's durable store, persists its spec,
// and counts the shards a previous process already committed.
func (jm *Jobs) openJob(id string, spec jobSpec, rows []table.Row, fp string) (*Job, error) {
	store, err := ckpt.Open(filepath.Join(jm.cfg.Dir, id), fp)
	if err != nil {
		return nil, fmt.Errorf("serve: open job store: %w", err)
	}
	if !store.Has(jobArtifact) {
		if err := store.WriteJSON(jobArtifact, spec); err != nil {
			return nil, fmt.Errorf("serve: persist job spec: %w", err)
		}
	}
	shards := (len(rows) + spec.ShardSize - 1) / spec.ShardSize
	job := &Job{
		ID:          id,
		spec:        spec,
		rows:        rows,
		fingerprint: fp,
		store:       store,
		shards:      shards,
		state:       JobQueued,
		breakers:    make(map[int]*Breaker),
		brCfg:       jm.cfg.Breaker,
	}
	for i := 0; i < shards; i++ {
		if store.Has(shardName(i)) {
			job.done++
			job.resumed++
		}
	}
	if job.done == shards {
		job.state = JobCompleted
	}
	return job, nil
}

// Recover scans the job root for directories a previous process left
// behind, re-registers every job it can decode, and re-queues the
// unfinished ones. Undecodable directories are skipped (and counted),
// never fatal: recovery must not take the service down.
func (jm *Jobs) Recover() (int, error) {
	entries, err := os.ReadDir(jm.cfg.Dir)
	if err != nil {
		return 0, fmt.Errorf("serve: scan job dir: %w", err)
	}
	requeued := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		jm.mu.Lock()
		_, known := jm.jobs[id]
		jm.mu.Unlock()
		if known {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(jm.cfg.Dir, id, jobArtifact))
		if err != nil {
			obs.C("serve.job.recover_skipped").Inc()
			continue
		}
		spec, err := decodeJobRecords(raw)
		if err != nil || len(spec.Records) == 0 || spec.ShardSize <= 0 {
			obs.C("serve.job.recover_skipped").Inc()
			continue
		}
		rows, err := recordRows(jm.srv.left.Schema(), spec.Records)
		if err != nil {
			obs.C("serve.job.recover_skipped").Inc()
			continue
		}
		canonical, err := json.Marshal(spec.Records)
		if err != nil {
			obs.C("serve.job.recover_skipped").Inc()
			continue
		}
		fp := jm.jobFingerprint(canonical, spec.ShardSize)
		spec.ID = id
		job, err := jm.openJob(id, spec, rows, fp)
		if err != nil {
			obs.C("serve.job.recover_skipped").Inc()
			continue
		}
		jm.mu.Lock()
		jm.jobs[id] = job
		jm.mu.Unlock()
		if job.state != JobCompleted {
			jm.enqueue(job)
			requeued++
		}
		obs.C("serve.job.recovered").Inc()
	}
	jm.mu.Lock()
	jm.recovered = requeued
	jm.mu.Unlock()
	return requeued, nil
}

// enqueue puts a job (back) on the FIFO queue.
func (jm *Jobs) enqueue(job *Job) {
	jm.mu.Lock()
	for _, q := range jm.queue {
		if q == job {
			jm.mu.Unlock()
			return
		}
	}
	job.mu.Lock()
	job.state = JobQueued
	job.errMsg = ""
	job.mu.Unlock()
	job.cancelled.Store(false)
	job.interrupted.Store(false)
	jm.queue = append(jm.queue, job)
	obs.G("serve.job.queue_depth").Set(int64(len(jm.queue)))
	jm.mu.Unlock()
	jm.cond.Signal()
}

// Get returns a job by ID (nil when unknown).
func (jm *Jobs) Get(id string) *Job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.jobs[id]
}

// List snapshots every known job's status, sorted by ID.
func (jm *Jobs) List() []*JobStatus {
	jm.mu.Lock()
	jobs := make([]*Job, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel marks a job cancelled. A queued job never starts; a running
// job stops after the shard in flight (which still commits, so the
// work is not lost if the job is resubmitted).
func (jm *Jobs) Cancel(id string) *Job {
	job := jm.Get(id)
	if job == nil {
		return nil
	}
	job.cancelled.Store(true)
	job.mu.Lock()
	if job.state == JobQueued {
		job.state = JobCancelled
	}
	job.mu.Unlock()
	obs.C("serve.job.cancelled").Inc()
	return job
}

// StartDrain stops the dispatcher from picking up new jobs or shards;
// the shard in flight finishes and commits.
func (jm *Jobs) StartDrain() {
	jm.mu.Lock()
	jm.stopped = true
	jm.mu.Unlock()
	jm.cond.Broadcast()
}

// stopping reports whether a drain or stop has begun.
func (jm *Jobs) stopping() bool {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.stopped
}

// Stop drains and waits for the dispatcher to exit; past timeout it
// hard-cancels the in-flight shard (crash-safe by construction — the
// shard simply is not committed and recomputes on resume). It reports
// whether shutdown was graceful. Safe to call more than once.
func (jm *Jobs) Stop(timeout time.Duration) bool {
	jm.StartDrain()
	graceful := true
	jm.stopOnce.Do(func() {
		done := make(chan struct{})
		go func() {
			jm.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(timeout):
			graceful = false
			jm.cancel()
			<-done
		}
	})
	jm.cancel()
	return graceful
}

// dispatch is the job loop: pop a job, run its shards, repeat.
func (jm *Jobs) dispatch() {
	defer jm.wg.Done()
	for {
		job := jm.next()
		if job == nil {
			return
		}
		jm.runJob(job)
	}
}

// next blocks for the next queued job; nil means the tier is stopping.
func (jm *Jobs) next() *Job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	for {
		if jm.stopped {
			return nil
		}
		if len(jm.queue) > 0 {
			job := jm.queue[0]
			jm.queue = jm.queue[1:]
			obs.G("serve.job.queue_depth").Set(int64(len(jm.queue)))
			return job
		}
		jm.cond.Wait()
	}
}

// runJob executes every missing shard of one job across the bounded
// worker pool and settles the job's final state.
func (jm *Jobs) runJob(job *Job) {
	if job.cancelled.Load() {
		job.setState(JobCancelled)
		return
	}
	// Progress is recounted from the durable store as shards run (the
	// Has fast path re-tallies inherited shards), so the open-time
	// snapshot must not double-count.
	job.mu.Lock()
	job.state = JobRunning
	job.done, job.resumed = 0, 0
	job.quarantined = nil
	job.degraded = 0
	job.mu.Unlock()
	jobStart := time.Now()
	ctx, span := obs.NewTrace(jm.ctx, "serve.job")
	span.Annotate("job", job.ID)
	if job.origin != "" {
		span.Annotate("request_id", job.origin)
		ctx = obs.WithRequestID(ctx, job.origin)
	}
	span.SetItems(job.shards)
	defer span.End()

	err := parallel.ForWorkersCtx(ctx, job.shards, jm.cfg.Workers, func(i int) error {
		return jm.runShard(ctx, job, i)
	})

	stopped := job.interrupted.Load() || jm.stopping() || jm.ctx.Err() != nil
	job.mu.Lock()
	switch {
	case job.cancelled.Load():
		job.state = JobCancelled
		span.SetOutcome("cancelled")
	case err == nil && job.done == job.shards:
		job.state = JobCompleted
		span.SetOutcome("ok")
		obs.C("serve.job.completed").Inc()
	case stopped:
		// Drain or shutdown: everything committed so far is durable;
		// Recover (or a resubmit) picks the job back up.
		job.state = JobInterrupted
		span.SetOutcome("interrupted")
		obs.C("serve.job.interrupted").Inc()
	case err != nil:
		job.state = JobFailed
		job.errMsg = err.Error()
		span.SetOutcome("failed")
		obs.C("serve.job.failed").Inc()
	default:
		// No error but shards are missing — should be impossible; fail
		// loudly rather than report a hole-ridden job as complete.
		job.state = JobFailed
		job.errMsg = fmt.Sprintf("job finished with %d/%d shards committed", job.done, job.shards)
		span.SetOutcome("failed")
		obs.C("serve.job.failed").Inc()
	}
	state, errMsg, degraded := job.state, job.errMsg, job.degraded
	job.mu.Unlock()

	// One wide event per job execution — the async mirror of the
	// per-request contract, joined to the submitting request by the
	// propagated ID. Unhealthy outcomes also land in the tail buffer so
	// a failed overnight job is inspectable from /debug/tail.
	span.End()
	ev := &obs.WideEvent{
		Time:       jobStart,
		RequestID:  job.origin,
		Route:      "job",
		Outcome:    jobOutcome(state, degraded),
		DurationMS: float64(time.Since(jobStart)) / float64(time.Millisecond),
		Records:    len(job.rows),
		JobID:      job.ID,
		Err:        errMsg,
	}
	ev.Stages = span.StageDurations()
	jm.srv.events.Log(ev)
	if ev.Outcome != obs.OutcomeOK {
		jm.srv.tailBuf.Add(ev, span)
	}
}

// jobOutcome maps a settled job state onto the wide-event vocabulary.
func jobOutcome(state string, degraded int) string {
	switch state {
	case JobFailed:
		return obs.OutcomeError
	case JobInterrupted:
		return obs.OutcomeDraining
	case JobCompleted:
		if degraded > 0 {
			return obs.OutcomeDegraded
		}
	}
	return obs.OutcomeOK
}

// breaker returns shard idx's circuit breaker, creating it on first use.
func (j *Job) breaker(idx int) *Breaker {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.breakers[idx]
	if b == nil {
		b = NewBreaker(j.brCfg)
		j.breakers[idx] = b
	}
	return b
}

// transientReason reports whether a degradation reason is worth
// retrying: a matcher error or timeout may be a passing fault (and the
// per-shard breaker decides when to stop believing that); an open
// breaker or a missing matcher will not improve within this shard.
func transientReason(reason string) bool {
	switch reason {
	case ReasonMatcherError, ReasonMatcherSlow, ReasonBlockerError:
		return true
	}
	return false
}

// runShard makes shard idx durable: skip if already committed, else
// attempt-execute-commit with bounded retries, degrading through the
// shard's breaker and quarantining as a last resort. It returns an
// error only for stop conditions (drain, shutdown, cancel, store
// failure); a quarantined shard is a handled outcome, not an error.
func (jm *Jobs) runShard(ctx context.Context, job *Job, idx int) error {
	name := shardName(idx)
	if job.store.Has(name) {
		job.mu.Lock()
		job.done++
		job.resumed++
		job.mu.Unlock()
		obs.C("serve.job.shards_resumed").Inc()
		return nil
	}
	lo := idx * job.spec.ShardSize
	hi := lo + job.spec.ShardSize
	if hi > len(job.rows) {
		hi = len(job.rows)
	}

	var lastErr error
	for attempt := 1; attempt <= jm.cfg.ShardAttempts; attempt++ {
		// Stop conditions skip the shard WITHOUT an error: an error here
		// would cancel sibling shards mid-commit (see errJobStopped).
		if jm.stopping() || ctx.Err() != nil {
			job.interrupted.Store(true)
			return nil
		}
		if job.cancelled.Load() {
			return nil
		}
		if attempt > 1 {
			job.mu.Lock()
			job.retries++
			job.mu.Unlock()
			obs.C("serve.job.retries").Inc()
			select {
			case <-ctx.Done():
				job.interrupted.Store(true)
				return nil
			case <-time.After(jm.cfg.RetryBackoff):
			}
		}
		art, err := jm.execShardOnce(ctx, job, idx, lo, hi)
		if err != nil {
			if errors.Is(err, errJobStopped) || ctx.Err() != nil {
				job.interrupted.Store(true)
				return nil
			}
			lastErr = err
			continue
		}
		// A transiently-degraded shard is retried while its breaker
		// still believes in the matcher (closed, or half-open probing);
		// once the breaker opens, the rule-only answer is the answer.
		if art.degradedReason() != "" && transientReason(art.degradedReason()) &&
			attempt < jm.cfg.ShardAttempts && job.breaker(idx).State() != BreakerOpen {
			lastErr = fmt.Errorf("shard %d degraded (%s)", idx, art.degradedReason())
			continue
		}
		if err := jm.commitShard(ctx, job, idx, name, art); err != nil {
			if ctx.Err() != nil {
				job.interrupted.Store(true)
				return nil
			}
			lastErr = err
			continue
		}
		job.mu.Lock()
		job.done++
		for _, rec := range art.Records {
			if rec.Degraded {
				job.degraded++
			}
		}
		job.mu.Unlock()
		obs.C("serve.job.shards_done").Inc()
		return nil
	}

	// Out of attempts: quarantine the shard with its reason so the job
	// completes with an explicit hole instead of failing or spinning.
	reason := "exhausted attempts"
	if lastErr != nil {
		reason = lastErr.Error()
	}
	q := &shardArtifact{Shard: idx, Quarantined: true, Reason: reason}
	data, err := json.Marshal(q)
	if err == nil {
		err = job.store.Write(name, data)
	}
	if err != nil {
		// Even the quarantine marker would not persist: the store is
		// broken, which is a job-level failure.
		return fmt.Errorf("shard %d: quarantine after %q: %w", idx, reason, err)
	}
	job.mu.Lock()
	job.done++
	job.quarantined = append(job.quarantined, QuarantinedShard{Shard: idx, Reason: reason})
	job.mu.Unlock()
	obs.C("serve.job.shards_quarantined").Inc()
	return nil
}

// degradedReason returns the shard's uniform degradation reason ("" when
// the learned path served it).
func (a *shardArtifact) degradedReason() string {
	if len(a.Records) == 0 || !a.Records[0].Degraded {
		return ""
	}
	return a.Records[0].DegradedReason
}

// execShardOnce runs one shard attempt: take an admission slot (the
// backpressure coupling with online traffic), run the amortized match
// pipeline under the shard's breaker and a per-attempt deadline, and
// shape the deterministic result records.
func (jm *Jobs) execShardOnce(ctx context.Context, job *Job, idx, lo, hi int) (*shardArtifact, error) {
	if err := fault.InjectIdx("serve.job.exec", idx); err != nil {
		return nil, err
	}
	ctx, spShard := obs.StartSpan(ctx, "serve.job.shard")
	spShard.Annotate("shard", strconv.Itoa(idx))
	defer spShard.End()
	release, err := jm.acquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	shardCtx, cancel := context.WithTimeout(ctx, jm.cfg.ShardTimeout)
	defer cancel()
	sub, err := jm.srv.rowsTable("job:"+job.ID, job.rows[lo:hi])
	if err != nil {
		return nil, err
	}
	var resps []*MatchResponse
	if jm.srv.cfg.Profiler != nil {
		// Label shard work so CPU captures separate batch-job cycles
		// from interactive traffic (`go tool pprof -tags`).
		contprof.Do(shardCtx, func(ctx context.Context) {
			resps, _, err = jm.srv.matchSet(ctx, sub, job.breaker(idx), false)
		}, "job", job.ID, "shard", strconv.Itoa(idx))
	} else {
		resps, _, err = jm.srv.matchSet(shardCtx, sub, job.breaker(idx), false)
	}
	if err != nil {
		return nil, err
	}
	art := &shardArtifact{Shard: idx, Records: make([]JobRecordResult, len(resps))}
	for i, r := range resps {
		art.Records[i] = JobRecordResult{
			Index:          lo + i,
			Matches:        r.Matches,
			Degraded:       r.Degraded,
			DegradedReason: r.DegradedReason,
			Candidates:     r.Candidates,
			Vetoed:         r.Vetoed,
		}
	}
	return art, nil
}

// acquireSlot takes a pipeline slot from the shared admission gate.
// When online traffic has filled the wait line, the shard backs off and
// retries instead of competing — batch work yields to interactive work,
// which is the whole point of sharing the gate. Draining and shutdown
// surface as errJobStopped.
func (jm *Jobs) acquireSlot(ctx context.Context) (func(), error) {
	for {
		release, err := jm.srv.adm.Acquire(ctx)
		switch {
		case err == nil:
			return release, nil
		case errors.Is(err, ErrShed):
			obs.C("serve.job.backpressure").Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(jm.cfg.RetryBackoff):
			}
		case errors.Is(err, ErrDraining):
			return nil, errJobStopped
		default:
			return nil, err
		}
	}
}

// commitShard writes one shard artifact through the crash-safe store
// (and the serve.job.write fault site).
func (jm *Jobs) commitShard(ctx context.Context, job *Job, idx int, name string, art *shardArtifact) error {
	if err := fault.InjectIdx("serve.job.write", idx); err != nil {
		return err
	}
	_ = ctx
	data, err := json.Marshal(art)
	if err != nil {
		return fmt.Errorf("shard %d: encode: %w", idx, err)
	}
	return job.store.Write(name, data)
}

// Results assembles the fetch document from the durable shard
// artifacts, verifying every checksum on the way. A corrupt shard is
// quarantined by the store, and the job is re-queued to recompute it —
// the caller gets a retryable error, never silently partial results.
//
// Deprecated for large jobs: the document scales server memory with
// job size, so the HTTP layer caps it at Stream.BufferedMaxRecords and
// points bigger fetches at the streaming transport (stream.go), which
// shares readShard and therefore the same verification contract.
func (jm *Jobs) Results(job *Job) (*JobResults, error) {
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if state != JobCompleted {
		return nil, fmt.Errorf("job %s is %s, not completed", job.ID, state)
	}
	out := &JobResults{
		JobID:   job.ID,
		Records: len(job.rows),
		Shards:  job.shards,
		Results: make([]JobRecordResult, 0, len(job.rows)),
	}
	for i := 0; i < job.shards; i++ {
		art, err := jm.readShard(job, i)
		if err != nil {
			return nil, err
		}
		if art.Quarantined {
			out.Quarantined = append(out.Quarantined, QuarantinedShard{Shard: i, Reason: art.Reason})
			continue
		}
		out.Results = append(out.Results, art.Records...)
	}
	return out, nil
}

// readShard reads, verifies, and decodes one durable shard artifact
// through the store's streaming reader — the shared fetch-side read
// path of the buffered document and the streaming transport, bounded
// by one shard's bytes. The decoded value is trusted only after the
// reader has been drained to EOF and delivered its checksum verdict.
// Any failure quarantines the artifact and re-queues the job, so the
// caller's error is retryable, never silently partial.
func (jm *Jobs) readShard(job *Job, idx int) (*shardArtifact, error) {
	name := shardName(idx)
	rd, err := job.store.OpenArtifact(name)
	if err != nil {
		jm.requeueShard(job, idx)
		return nil, fmt.Errorf("shard %d unreadable (%v); job re-queued for recompute", idx, err)
	}
	defer rd.Close()
	var art shardArtifact
	derr := json.NewDecoder(rd).Decode(&art)
	// Drain to EOF: the reader's verdict arrives there, and the decoder
	// stops at the value's closing brace.
	_, verr := io.Copy(io.Discard, rd)
	switch {
	case verr != nil:
		jm.requeueShard(job, idx)
		return nil, fmt.Errorf("shard %d unreadable (%v); job re-queued for recompute", idx, verr)
	case derr != nil:
		if !errors.Is(derr, ckpt.ErrCorrupt) {
			// Bytes verified but do not decode: schema drift or a bug.
			job.store.Quarantine(name, "undecodable shard artifact")
		}
		jm.requeueShard(job, idx)
		return nil, fmt.Errorf("shard %d undecodable; job re-queued for recompute", idx)
	}
	return &art, nil
}

// requeueShard accounts for a shard lost after completion (corruption
// found at fetch time) and puts the job back on the queue.
func (jm *Jobs) requeueShard(job *Job, idx int) {
	job.mu.Lock()
	if job.done > 0 {
		job.done--
	}
	job.mu.Unlock()
	_ = idx
	obs.C("serve.job.shards_recomputed").Inc()
	jm.enqueue(job)
}

// setState transitions the job's state.
func (j *Job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the poll document.
func (j *Job) Status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:              j.ID,
		State:           j.state,
		Records:         len(j.rows),
		Shards:          j.shards,
		DoneShards:      j.done,
		ResumedShards:   j.resumed,
		Retries:         j.retries,
		DegradedRecords: j.degraded,
		Error:           j.errMsg,
	}
	st.Quarantined = append(st.Quarantined, j.quarantined...)
	return st
}
