package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/leakcheck"
)

// jobPayload builds n deterministic job records alternating between the
// sure-rule shape (even) and the learned-path shape (odd), plus the
// submission body carrying them.
func jobPayload(n int) string {
	recs := make([]map[string]any, n)
	for i := range recs {
		id := fmt.Sprintf("q%d", i)
		if i%2 == 0 {
			recs[i] = l0Record(id)
		} else {
			recs[i] = l1Record(id)
		}
	}
	data, err := json.Marshal(map[string]any{"records": recs})
	if err != nil {
		panic(err)
	}
	return string(data)
}

// jobConfig is the baseline job-tier test config: small shards, one
// worker (deterministic shard order), fast retries.
func jobConfig(dir string) Config {
	return Config{Jobs: JobConfig{
		Dir:          dir,
		ShardSize:    2,
		Workers:      1,
		RetryBackoff: 2 * time.Millisecond,
	}}
}

// postJob submits a job body.
func postJob(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

// getBody GETs a path and returns status + body.
func getBody(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// submitJob submits and decodes the accepted status document.
func submitJob(t *testing.T, url, body string) *JobStatus {
	t.Helper()
	status, _, data := postJob(t, url, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit response not a status: %v: %s", err, data)
	}
	if st.ID == "" {
		t.Fatalf("submit response carries no job id: %s", data)
	}
	return &st
}

// waitJobState polls the job until it reaches want (or fails the test
// at timeout, reporting the last observed document).
func waitJobState(t *testing.T, url, id, want string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last []byte
	for time.Now().Before(deadline) {
		code, data := getBody(t, url, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll status = %d: %s", code, data)
		}
		last = data
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return &st
		}
		if st.State == JobFailed && want != JobFailed {
			t.Fatalf("job failed while waiting for %s: %s", want, data)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %s; last status: %s", want, last)
	return nil
}

// fetchResults GETs the results document raw (byte-identity assertions
// compare these exact bytes).
func fetchResults(t *testing.T, url, id string) (int, []byte) {
	t.Helper()
	return getBody(t, url, "/v1/jobs/"+id+"/results")
}

func TestJobLifecycle(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	dir := t.TempDir()
	s, ts := newTestServer(t, jobConfig(dir))

	body := jobPayload(6) // 3 shards of 2
	st := submitJob(t, ts.URL, body)
	if st.Shards != 3 || st.Records != 6 {
		t.Fatalf("accepted status = %+v, want 3 shards / 6 records", st)
	}
	done := waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	if done.DoneShards != 3 || done.ResumedShards != 0 {
		t.Fatalf("completed status = %+v", done)
	}

	// Fetching is read-only and deterministic: twice, byte-identical.
	code, first := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, first)
	}
	code, second := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("double fetch not byte-identical (%d)", code)
	}
	var res JobResults
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 6 || len(res.Quarantined) != 0 {
		t.Fatalf("results = %d records, %d quarantined: %s", len(res.Results), len(res.Quarantined), first)
	}
	for i, r := range res.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d — results must align with submission order", i, r.Index)
		}
	}
	if len(res.Results[0].Matches) == 0 || res.Results[0].Matches[0].Source != "rule:M1" {
		t.Fatalf("record 0 missing sure-rule match: %+v", res.Results[0])
	}
	if len(res.Results[1].Matches) == 0 || res.Results[1].Matches[0].Source != "matcher" {
		t.Fatalf("record 1 missing learned match: %+v", res.Results[1])
	}

	// Idempotent resubmission: same records, same job, zero recompute.
	fault.Enable("serve.job.exec", fault.Plan{OnCall: 1 << 30}) // tripwire: counts executions, never fires
	again := submitJob(t, ts.URL, body)
	if again.ID != st.ID || again.State != JobCompleted {
		t.Fatalf("resubmit = %+v, want completed job %s", again, st.ID)
	}
	time.Sleep(20 * time.Millisecond)
	if n := fault.Count("serve.job.exec"); n != 0 {
		t.Fatalf("resubmitting a completed job re-executed %d shard(s)", n)
	}

	// The job shows up in the listing.
	code, data := getBody(t, ts.URL, "/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(data), st.ID) {
		t.Fatalf("listing (%d) does not mention %s: %s", code, st.ID, data)
	}
	// Close drains the tier; the completed job's artifacts stay on disk.
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, st.ID, "shard_00000.json")); err != nil {
		t.Fatalf("durable shard artifact missing after close: %v", err)
	}
}

// TestJobResumeAfterStopByteIdentical is the package-level resume
// contract: stop a server mid-job (drain commits the in-flight shard,
// skips the rest), start a fresh server over the same directory, and
// the job must complete with (a) no reprocessing of durable shards and
// (b) results byte-identical to an uninterrupted run. A garbage file at
// the next shard's path — a torn write's worst case — must not survive
// into the output either.
func TestJobResumeAfterStopByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	const records = 8 // 4 shards of 2
	body := jobPayload(records)

	// Reference: one clean, uninterrupted run.
	refDir := t.TempDir()
	_, refTS := newTestServer(t, jobConfig(refDir))
	refSt := submitJob(t, refTS.URL, body)
	waitJobState(t, refTS.URL, refSt.ID, JobCompleted, 5*time.Second)
	code, want := fetchResults(t, refTS.URL, refSt.ID)
	if code != http.StatusOK {
		t.Fatalf("reference fetch = %d: %s", code, want)
	}

	// Interrupted run: slow shards down so the stop lands mid-job.
	dir := t.TempDir()
	fault.Enable("serve.job.exec", fault.Plan{Mode: fault.ModeSleep, Sleep: 40 * time.Millisecond})
	s1, ts1 := newTestServer(t, jobConfig(dir))
	st := submitJob(t, ts1.URL, body)
	if st.ID != refSt.ID {
		t.Fatalf("job id differs across servers (%s vs %s) — submission is not content-addressed", st.ID, refSt.ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, data := getBody(t, ts1.URL, "/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("poll = %d: %s", code, data)
		}
		var cur JobStatus
		if err := json.Unmarshal(data, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.DoneShards >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard completed before the stop: %s", data)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Close() // graceful stop: in-flight shard commits, the rest are skipped

	job1 := s1.JobTier().Get(st.ID)
	if job1 == nil {
		t.Fatal("job vanished from the stopped server")
	}
	interruptedAt := job1.Status()
	if interruptedAt.State != JobInterrupted {
		t.Fatalf("stopped mid-job but state = %s (done %d/%d)", interruptedAt.State, interruptedAt.DoneShards, interruptedAt.Shards)
	}
	durable := interruptedAt.DoneShards
	if durable < 1 || durable >= interruptedAt.Shards {
		t.Fatalf("stop committed %d/%d shards — test needs a genuine mid-job stop", durable, interruptedAt.Shards)
	}

	// Simulate a torn write at the next shard boundary: a full-size
	// garbage file at the exact path the resumed run will commit to. It
	// is not in the manifest, so resume must recompute and overwrite it.
	torn := filepath.Join(dir, st.ID, shardName(durable))
	if err := os.WriteFile(torn, []byte("torn{{{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory. The tripwire plan never fires but
	// counts shard executions: resumed shards must not re-execute.
	fault.Reset()
	fault.Enable("serve.job.exec", fault.Plan{OnCall: 1 << 30})
	s2, ts2 := newTestServer(t, jobConfig(dir))
	if got := s2.JobTier().Recovered(); got != 1 {
		t.Fatalf("recovered %d unfinished jobs, want 1", got)
	}
	done := waitJobState(t, ts2.URL, st.ID, JobCompleted, 10*time.Second)
	if done.ResumedShards != durable {
		t.Fatalf("resumed %d shards, want the %d durable ones", done.ResumedShards, durable)
	}
	if executed := fault.Count("serve.job.exec"); executed != interruptedAt.Shards-durable {
		t.Fatalf("restart executed %d shards, want %d (completed shards must not be reprocessed)",
			executed, interruptedAt.Shards-durable)
	}
	code, got := fetchResults(t, ts2.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch after resume = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results are not byte-identical to the clean run:\nresumed: %s\nclean:   %s", got, want)
	}
}

// TestJobShardBreakerOpensOnPoisonedMatcher: a matcher failing every
// call trips each shard's breaker on the first attempt; the breaker
// then short-circuits the retries, the shard commits its rule-only
// answer, and the job completes degraded instead of failing or
// retry-storming the matcher.
func TestJobShardBreakerOpensOnPoisonedMatcher(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.ShardAttempts = 3
	cfg.Jobs.Breaker = BreakerConfig{Failures: 1, Cooldown: time.Hour}
	s, ts := newTestServer(t, cfg)
	fault.Enable("ml.predict", fault.Plan{})

	// All learned-path records: every shard needs the matcher.
	recs := []map[string]any{l1Record("q0"), l1Record("q1"), l1Record("q2"), l1Record("q3")}
	body, _ := json.Marshal(map[string]any{"records": recs})
	st := submitJob(t, ts.URL, string(body))
	done := waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	if done.DegradedRecords != len(recs) {
		t.Fatalf("degraded %d/%d records: %+v", done.DegradedRecords, len(recs), done)
	}
	if n := fault.Count("ml.predict"); n != st.Shards {
		t.Fatalf("matcher called %d times for %d shards — open breakers must short-circuit retries", n, st.Shards)
	}
	job := s.JobTier().Get(st.ID)
	for i := 0; i < st.Shards; i++ {
		if got := job.breaker(i).State(); got != BreakerOpen {
			t.Fatalf("shard %d breaker = %v, want open", i, got)
		}
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, data)
	}
	var res JobResults
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if !r.Degraded || r.DegradedReason != ReasonMatcherError {
			t.Fatalf("record %d should be degraded matcher_error: %+v", r.Index, r)
		}
	}
}

// TestJobShardBreakerHalfOpenRecovery: a transiently-failing matcher
// trips the shard breaker, the retry backoff outlives the cooldown, and
// the half-open probe on the second attempt recovers the learned
// answer — the committed shard is NOT degraded.
func TestJobShardBreakerHalfOpenRecovery(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.ShardSize = 4
	cfg.Jobs.ShardAttempts = 3
	cfg.Jobs.RetryBackoff = 5 * time.Millisecond
	cfg.Jobs.Breaker = BreakerConfig{Failures: 1, Cooldown: time.Nanosecond}
	s, ts := newTestServer(t, cfg)
	fault.Enable("ml.predict", fault.Plan{FailFirst: 1})

	recs := []map[string]any{l1Record("q0"), l1Record("q1")} // one shard
	body, _ := json.Marshal(map[string]any{"records": recs})
	st := submitJob(t, ts.URL, string(body))
	done := waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	if done.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (fail, re-probe, succeed)", done.Retries)
	}
	if done.DegradedRecords != 0 {
		t.Fatalf("recovered shard still degraded: %+v", done)
	}
	job := s.JobTier().Get(st.ID)
	br := job.breaker(0)
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", got)
	}
	// closed -> open -> half_open -> closed is three transitions.
	if gen := br.Generation(); gen != 3 {
		t.Fatalf("breaker generation = %d, want 3 (open, half-open, re-close)", gen)
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, data)
	}
	var res JobResults
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.Degraded {
			t.Fatalf("record %d degraded after breaker recovery: %+v", r.Index, r)
		}
	}
}

// TestJobQuarantineAfterExhaustedAttempts: a shard poisoned at the
// execution site burns its attempts and is quarantined with the
// injected reason; the rest of the job completes and the fetch reports
// the hole explicitly.
func TestJobQuarantineAfterExhaustedAttempts(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.ShardAttempts = 2
	_, ts := newTestServer(t, cfg)
	fault.Enable("serve.job.exec", fault.Plan{Indices: []int{1}}) // only shard 1 is poisoned

	st := submitJob(t, ts.URL, jobPayload(6)) // shards 0,1,2
	done := waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	if len(done.Quarantined) != 1 || done.Quarantined[0].Shard != 1 {
		t.Fatalf("quarantine report = %+v, want exactly shard 1", done.Quarantined)
	}
	if done.Quarantined[0].Reason == "" {
		t.Fatal("quarantined shard carries no reason")
	}
	if done.Retries == 0 {
		t.Fatal("quarantine must come after retry, not instead of it")
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, data)
	}
	var res JobResults
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Shard != 1 {
		t.Fatalf("results quarantine = %+v", res.Quarantined)
	}
	if len(res.Results) != 4 {
		t.Fatalf("healthy shards answered %d records, want 4", len(res.Results))
	}
	for _, r := range res.Results {
		if r.Index == 2 || r.Index == 3 {
			t.Fatalf("quarantined shard's record %d leaked into results", r.Index)
		}
	}
}

// TestJobTornWriteRetried: a failed shard-commit rename (the torn-write
// shape) is retried within the shard's attempt budget and the job
// still completes with full results.
func TestJobTornWriteRetried(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.ShardAttempts = 3
	_, ts := newTestServer(t, cfg)
	// ckpt.rename call 1 is job.json; call 2 is shard 0's first commit.
	fault.Enable("ckpt.rename", fault.Plan{OnCall: 2})

	st := submitJob(t, ts.URL, jobPayload(4))
	done := waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	if done.Retries == 0 {
		t.Fatalf("torn write was not retried: %+v", done)
	}
	if len(done.Quarantined) != 0 {
		t.Fatalf("transient write failure must not quarantine: %+v", done.Quarantined)
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, data)
	}
	var res JobResults
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("results = %d records, want 4", len(res.Results))
	}
}

// TestJobCorruptShardRecomputedOnFetch: bytes rotted after completion
// are caught by the manifest checksum at fetch time; the fetch answers
// 503 (retryable), the shard is quarantined and recomputed, and the
// eventual results are byte-identical to the pre-corruption fetch.
func TestJobCorruptShardRecomputedOnFetch(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	dir := t.TempDir()
	_, ts := newTestServer(t, jobConfig(dir))

	st := submitJob(t, ts.URL, jobPayload(4))
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	code, want := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch = %d: %s", code, want)
	}

	// Rot shard 0 on disk.
	path := filepath.Join(dir, st.ID, shardName(0))
	if err := os.WriteFile(path, []byte(`{"shard":0,"records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fetch of corrupt shard = %d (%s), want 503", code, data)
	}
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	code, got := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch after recompute = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recomputed results differ from the original:\nnew: %s\nold: %s", got, want)
	}
}

// TestJobSubmitShedsWhenSaturated: MaxQueued bounds the tier; the
// excess submission is shed with 429 + Retry-After (the same contract
// as online overload), while resubmitting an admitted job is not shed.
func TestJobSubmitShedsWhenSaturated(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.MaxQueued = 1
	_, ts := newTestServer(t, cfg)
	fault.Enable("serve.job.exec", fault.Plan{Mode: fault.ModeSleep, Sleep: 100 * time.Millisecond})

	bodyA := jobPayload(4)
	stA := submitJob(t, ts.URL, bodyA)

	recsB := []map[string]any{l2Record("b0"), l2Record("b1")}
	rawB, _ := json.Marshal(map[string]any{"records": recsB})
	code, hdr, data := postJob(t, ts.URL, string(rawB))
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d (%s), want 429", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed submission carries no Retry-After hint")
	}

	// Idempotent resubmission of the admitted job is not shed.
	again := submitJob(t, ts.URL, bodyA)
	if again.ID != stA.ID {
		t.Fatalf("resubmit id = %s, want %s", again.ID, stA.ID)
	}
	waitJobState(t, ts.URL, stA.ID, JobCompleted, 5*time.Second)

	// With the queue drained, the shed job is admitted on retry.
	code, _, data = postJob(t, ts.URL, string(rawB))
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit = %d (%s), want 202", code, data)
	}
	var stB JobStatus
	if err := json.Unmarshal(data, &stB); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts.URL, stB.ID, JobCompleted, 5*time.Second)
}

// TestJobCancel: DELETE stops a running job after its in-flight shard;
// results of a cancelled job are a 409.
func TestJobCancel(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, jobConfig(t.TempDir()))
	fault.Enable("serve.job.exec", fault.Plan{Mode: fault.ModeSleep, Sleep: 50 * time.Millisecond})

	st := submitJob(t, ts.URL, jobPayload(8))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	done := waitJobState(t, ts.URL, st.ID, JobCancelled, 5*time.Second)
	if done.DoneShards == st.Shards {
		t.Fatalf("cancelled job ran to completion: %+v", done)
	}
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusConflict {
		t.Fatalf("results of cancelled job = %d (%s), want 409", code, data)
	}
}

// TestJobEndpointsDisabled: without a checkpoint directory the tier is
// off and every job endpoint answers 503 — never a panic or a silent
// in-memory-only job.
func TestJobEndpointsDisabled(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})
	if code, _, data := postJob(t, ts.URL, jobPayload(2)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit on disabled tier = %d: %s", code, data)
	}
	for _, path := range []string{"/v1/jobs", "/v1/jobs/jx", "/v1/jobs/jx/results"} {
		if code, data := getBody(t, ts.URL, path); code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s on disabled tier = %d: %s", path, code, data)
		}
	}
}

// TestJobBadRequests: submission validation is typed and job lookups
// 404 cleanly.
func TestJobBadRequests(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := jobConfig(t.TempDir())
	cfg.Jobs.MaxRecords = 4
	_, ts := newTestServer(t, cfg)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{nope`, 400},
		{"empty records", `{"records":[]}`, 400},
		{"bad column", `{"records":[{"Bogus":"x"}]}`, 400},
		{"trailing data", `{"records":[{"Title":"x"}]}extra`, 400},
		{"negative shard size", `{"records":[{"Title":"x"}],"shard_size":-1}`, 400},
		{"over record cap", jobPayload(5), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, data := postJob(t, ts.URL, tc.body)
			if code != tc.want {
				t.Fatalf("submit = %d (%s), want %d", code, data, tc.want)
			}
		})
	}
	if code, _ := getBody(t, ts.URL, "/v1/jobs/jdeadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL, "/v1/jobs/jdeadbeef/results"); code != http.StatusNotFound {
		t.Fatalf("unknown job results = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/jdeadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestJobResultsBeforeCompletion: polling is fine but fetching early is
// a 409 naming the current state.
func TestJobResultsBeforeCompletion(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, jobConfig(t.TempDir()))
	fault.Enable("serve.job.exec", fault.Plan{Mode: fault.ModeSleep, Sleep: 80 * time.Millisecond})

	st := submitJob(t, ts.URL, jobPayload(8))
	code, data := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusConflict {
		t.Fatalf("early fetch = %d (%s), want 409", code, data)
	}
	waitJobState(t, ts.URL, st.ID, JobCompleted, 10*time.Second)
}
