package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/leakcheck"
	"emgo/internal/obs"
	"emgo/internal/obs/tail"
)

// syncBuffer is a goroutine-safe log sink. The middleware emits the
// wide event after the handler returns, which can land after the client
// already read the response — readers must poll through waitEvents.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// events parses the buffered JSON lines into generic documents.
func (b *syncBuffer) events(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(b.buf.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("wide event line is not JSON: %v\n%s", err, line)
		}
		out = append(out, doc)
	}
	return out
}

// waitEvents polls until at least n wide events are buffered.
func (b *syncBuffer) waitEvents(t *testing.T, n int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		evs := b.events(t)
		if len(evs) >= n || time.Now().After(deadline) {
			return evs
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// eventFor finds the wide event carrying the given request ID.
func eventFor(evs []map[string]any, id string) map[string]any {
	for _, ev := range evs {
		if ev["request_id"] == id {
			return ev
		}
	}
	return nil
}

func TestRequestIDMintedSanitizedAndEchoed(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})

	send := func(clientID string) (string, int) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(l0Request))
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set("X-Request-Id", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id"), resp.StatusCode
	}

	// No client ID: the server mints one.
	id, st := send("")
	if st != http.StatusOK {
		t.Fatalf("status = %d", st)
	}
	if len(id) != 16 {
		t.Fatalf("minted request ID %q, want 16 hex chars", id)
	}

	// A well-formed client ID is propagated verbatim.
	if id, _ := send("client-abc_123.456"); id != "client-abc_123.456" {
		t.Fatalf("clean client ID not echoed: got %q", id)
	}

	// Hostile IDs (chars outside the safe set, oversized) are replaced,
	// never echoed back.
	if id, _ := send(`evil id"{}`); id == `evil id"{}` || id == "" {
		t.Fatalf("unsanitized ID echoed: %q", id)
	}
	long := strings.Repeat("a", obs.MaxRequestIDLen+1)
	if id, _ := send(long); id == long || len(id) > obs.MaxRequestIDLen {
		t.Fatalf("oversized ID echoed: %q", id)
	}
}

func TestRequestIDEchoedOnShedAndDraining(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
	})
	fault.Enable("serve.match", fault.Plan{Mode: fault.ModeSleep, Sleep: 150 * time.Millisecond})

	const burst = 6
	ids := make([]string, burst)
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(l0Request))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("X-Request-Id", fmt.Sprintf("burst-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			ids[i], statuses[i] = resp.Header.Get("X-Request-Id"), resp.StatusCode
		}(i)
	}
	wg.Wait()

	var shed bool
	for i, st := range statuses {
		if ids[i] != fmt.Sprintf("burst-%d", i) {
			t.Fatalf("request %d (status %d): X-Request-Id = %q, want burst-%d", i, st, ids[i], i)
		}
		if st == http.StatusTooManyRequests {
			shed = true
		}
	}
	if !shed {
		t.Fatal("burst produced no 429 — shed echo path not exercised")
	}

	// Draining answers 503 and still echoes the ID.
	s.StartDrain()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(l0Request))
	req.Header.Set("X-Request-Id", "drain-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") != "drain-probe" {
		t.Fatalf("503 lost the request ID: %q", resp.Header.Get("X-Request-Id"))
	}
}

func TestWideEventPerRequest(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	sink := &syncBuffer{}
	_, ts := newTestServer(t, Config{AccessLog: sink})

	post := func(path, id, body string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := post("/v1/match", "wide-ok", l0Request); st != http.StatusOK {
		t.Fatalf("match status = %d", st)
	}
	if st := post("/v1/match", "wide-bad", `{`); st != http.StatusBadRequest {
		t.Fatalf("bad request status = %d", st)
	}
	if st := post("/v1/match/batch", "wide-batch",
		`{"records":[`+strings.TrimPrefix(strings.TrimSuffix(l0Request, "}"), `{"record":`)+`]}`); st != http.StatusOK {
		t.Fatalf("batch status = %d", st)
	}

	evs := sink.waitEvents(t, 3)
	if len(evs) != 3 {
		t.Fatalf("got %d wide events, want exactly 3 (one per request):\n%v", len(evs), evs)
	}

	ok := eventFor(evs, "wide-ok")
	if ok == nil {
		t.Fatalf("no wide event for the ok request: %v", evs)
	}
	if ok["route"] != "/v1/match" || ok["outcome"] != obs.OutcomeOK || ok["status"] != float64(200) {
		t.Fatalf("ok event wrong: %v", ok)
	}
	if ok["admission"] != AdmissionAdmitted {
		t.Fatalf("ok event admission = %v, want %q", ok["admission"], AdmissionAdmitted)
	}
	if _, has := ok["duration_ms"]; !has {
		t.Fatalf("ok event has no duration: %v", ok)
	}
	stages, _ := ok["stages"].(map[string]any)
	if _, has := stages["serve.match"]; !has {
		t.Fatalf("ok event stages missing serve.match: %v", ok)
	}
	if ok["bytes_in"] == nil || ok["bytes_out"] == nil {
		t.Fatalf("ok event missing body sizes: %v", ok)
	}

	bad := eventFor(evs, "wide-bad")
	if bad == nil || bad["outcome"] != obs.OutcomeBadRequest || bad["status"] != float64(400) {
		t.Fatalf("bad-request event wrong: %v", bad)
	}
	batch := eventFor(evs, "wide-batch")
	if batch == nil || batch["route"] != "/v1/match/batch" || batch["records"] != float64(1) {
		t.Fatalf("batch event wrong: %v", batch)
	}
}

func TestWideEventSamplingKeepsErrors(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	sink := &syncBuffer{}
	_, ts := newTestServer(t, Config{AccessLog: sink, AccessSampleN: 10})

	for i := 0; i < 10; i++ {
		if st, _, _ := postMatch(t, ts.URL, l0Request); st != http.StatusOK {
			t.Fatalf("status = %d", st)
		}
	}
	// Every serve.match call now errors: a 500 must always log.
	fault.Enable("serve.match", fault.Plan{})
	if st, _, _ := postMatch(t, ts.URL, l0Request); st != http.StatusInternalServerError {
		t.Fatalf("faulted status = %d, want 500", st)
	}

	evs := sink.waitEvents(t, 2)
	var okCount, errCount int
	for _, ev := range evs {
		switch ev["outcome"] {
		case obs.OutcomeOK:
			okCount++
		case obs.OutcomeError:
			errCount++
			if ev["error"] == nil {
				t.Fatalf("error event carries no error message: %v", ev)
			}
		}
	}
	if okCount != 1 {
		t.Fatalf("sampled ok events = %d, want 1 of 10 at sampleN=10", okCount)
	}
	if errCount != 1 {
		t.Fatalf("error events = %d, want 1 (errors bypass sampling)", errCount)
	}
}

func TestTailCapturesSlowAndErrored(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, Config{TailN: 4})

	// A healthy request lands in the slowest set (the heap is empty, so
	// anything qualifies), then an injected failure lands in errored.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(l0Request))
	req.Header.Set("X-Request-Id", "tail-slow")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fault.Enable("serve.match", fault.Plan{})
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(l0Request))
	req.Header.Set("X-Request-Id", "tail-err")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fault.Reset()

	// The middleware records the entry after the response is written;
	// poll the snapshot rather than racing it.
	var snap tail.Snapshot
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap = s.TailSnapshot()
		if (len(snap.Slowest) > 0 && len(snap.Errored) > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	find := func(entries []*tail.Entry, id string) *tail.Entry {
		for _, e := range entries {
			if e.Event != nil && e.Event.RequestID == id {
				return e
			}
		}
		return nil
	}
	slow := find(snap.Slowest, "tail-slow")
	if slow == nil {
		t.Fatalf("healthy request missing from slowest set: %+v", snap)
	}
	if slow.Trace == nil || len(slow.Trace.Children) == 0 {
		t.Fatalf("tail entry carries no span tree: %+v", slow)
	}
	var hasMatchSpan bool
	for _, c := range slow.Trace.Children {
		if c.Name == "serve.match" {
			hasMatchSpan = true
		}
	}
	if !hasMatchSpan {
		t.Fatalf("span tree has no serve.match child: %+v", slow.Trace)
	}
	errEnt := find(snap.Errored, "tail-err")
	if errEnt == nil {
		t.Fatalf("errored request missing from errored set: %+v", snap)
	}
	if errEnt.Event.Outcome != obs.OutcomeError {
		t.Fatalf("errored entry outcome = %q", errEnt.Event.Outcome)
	}

	// The same snapshot is served over HTTP at /debug/tail.
	hresp, err := http.Get(ts.URL + "/debug/tail")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var doc tail.Snapshot
	if err := json.NewDecoder(hresp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/tail is not JSON: %v", err)
	}
	if len(doc.Slowest) == 0 || len(doc.Errored) == 0 {
		t.Fatalf("/debug/tail snapshot empty: %+v", doc)
	}
}

func TestStatusCarriesSLOReport(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	if st, _, _ := postMatch(t, ts.URL, l0Request); st != http.StatusOK {
		t.Fatalf("status = %d", st)
	}
	for _, path := range []string{"/-/status", "/v1/status"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sd StatusData
		err = json.NewDecoder(resp.Body).Decode(&sd)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if sd.SLO == nil || len(sd.SLO.Objectives) == 0 {
			t.Fatalf("%s carries no SLO report", path)
		}
		if sd.SLO.Breached {
			t.Fatalf("%s: healthy traffic reads as breached: %+v", path, sd.SLO)
		}
		var seen int
		for _, o := range sd.SLO.Objectives {
			seen += int(o.SlowTotal)
		}
		if seen == 0 {
			t.Fatalf("%s: SLO tracker observed no requests: %+v", path, sd.SLO)
		}
	}
}

func TestJobEventsCarryRequestAndJobIdentity(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	sink := &syncBuffer{}
	_, ts := newTestServer(t, Config{
		AccessLog: sink,
		Jobs:      JobConfig{Dir: t.TempDir(), ShardSize: 1},
	})

	body := `{"records":[` + strings.TrimPrefix(strings.TrimSuffix(l0Request, "}"), `{"record":`) + `]}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "job-origin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	if resp.Header.Get("X-Request-Id") != "job-origin" {
		t.Fatalf("submit lost the request ID: %q", resp.Header.Get("X-Request-Id"))
	}

	// Poll until the job finishes, then fetch results — the fetch must
	// echo its own request ID too.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		err = json.NewDecoder(r2.Body).Decode(&cur)
		r2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == JobCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/results", nil)
	req.Header.Set("X-Request-Id", "job-fetch")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", r3.StatusCode)
	}
	if r3.Header.Get("X-Request-Id") != "job-fetch" {
		t.Fatalf("results fetch lost the request ID: %q", r3.Header.Get("X-Request-Id"))
	}

	// The submit and fetch events carry the job ID; the job's own wide
	// event (route "job") carries the submitter's request ID as origin.
	evs := sink.waitEvents(t, 3)
	submit := eventFor(evs, "job-origin")
	if submit == nil || submit["job_id"] != st.ID {
		t.Fatalf("submit event wrong: %v", submit)
	}
	fetch := eventFor(evs, "job-fetch")
	if fetch == nil || fetch["job_id"] != st.ID {
		t.Fatalf("fetch event wrong: %v", fetch)
	}
	var jobEv map[string]any
	for _, ev := range evs {
		if ev["route"] == "job" {
			jobEv = ev
		}
	}
	if jobEv == nil {
		t.Fatalf("no job-tier wide event emitted: %v", evs)
	}
	if jobEv["request_id"] != "job-origin" || jobEv["job_id"] != st.ID {
		t.Fatalf("job event does not tie back to its origin: %v", jobEv)
	}
}
