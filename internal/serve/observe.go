package serve

import (
	"context"
	"net/http"
	"strings"
	"time"

	"emgo/internal/contprof"
	"emgo/internal/obs"
)

// Request-scoped observability: every route is wrapped in observe(),
// which assigns (or propagates) the request ID, opens the request's
// root span, carries a mutable wide event through context for handlers
// to annotate, and — once the response is written — emits exactly one
// wide event to the access log, offers the request to the tail-capture
// buffer, and feeds the SLO tracker. Handlers never log; they annotate
// the event and the middleware owns emission, which is what guarantees
// the one-event-per-request invariant.

type eventKey struct{}

// withEvent stores the request's mutable wide event in ctx.
func withEvent(ctx context.Context, ev *obs.WideEvent) context.Context {
	return context.WithValue(ctx, eventKey{}, ev)
}

// eventFrom returns the request's wide event (nil outside a request).
// Handlers annotate it in place; nil checks keep non-HTTP callers of
// shared code (the job tier) safe.
func eventFrom(ctx context.Context) *obs.WideEvent {
	ev, _ := ctx.Value(eventKey{}).(*obs.WideEvent)
	return ev
}

// statusWriter captures the status code and body bytes a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush and SetWriteDeadline for the streaming transport.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeOf strips the method from a Go 1.22 mux pattern ("POST /v1/match"
// → "/v1/match") for the wide event's route field.
func routeOf(pattern string) string {
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// observe wraps one route handler with the request-observability layer.
// trackSLO marks service traffic (match/job routes) whose outcomes burn
// the error budget; ops probes (health, status) get request IDs and
// wide events but do not dilute the SLO.
func (s *Server) observe(route string, trackSLO bool, h http.HandlerFunc) http.HandlerFunc {
	// One label set per route, built once here at mux construction: the
	// request path re-arms it with two pointer writes instead of paying
	// pprof.Do's per-call label-map allocation.
	var labels contprof.Labels
	if s.cfg.Profiler != nil {
		labels = contprof.NewLabels("route", route)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if !ok {
			id = obs.NewRequestID()
		}
		// Echo the ID before the handler runs so every response — 200s,
		// sheds, timeouts — carries the client's join key.
		w.Header().Set("X-Request-Id", id)

		start := time.Now()
		ev := &obs.WideEvent{Time: start, RequestID: id, Route: route, Method: r.Method}
		if r.ContentLength > 0 {
			ev.BytesIn = r.ContentLength
		}
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = withEvent(ctx, ev)
		ctx, root := obs.NewTrace(ctx, "serve.http")
		root.Annotate("route", route)
		root.Annotate("request_id", id)

		sw := &statusWriter{ResponseWriter: w}
		// Label the handler's goroutine so continuous CPU captures slice
		// by endpoint (`go tool pprof -tags`); the set is empty — and
		// Do a plain call — when profiling is off.
		labels.Do(ctx, func(ctx context.Context) {
			h(sw, r.WithContext(ctx))
		})
		root.End()

		if sw.status == 0 {
			// The handler wrote nothing; net/http will send 200.
			sw.status = http.StatusOK
		}
		ev.Status = sw.status
		ev.BytesOut = sw.bytes
		ev.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
		if ev.Outcome == "" {
			ev.Outcome = deriveOutcome(sw.status, ev.Degraded, s.draining.Load())
		}
		// Stage timings come off the live tree; the tail materializes the
		// full span snapshot only for the entries it retains.
		ev.Stages = root.StageDurations()

		s.events.Log(ev)
		s.tailBuf.Add(ev, root)
		if trackSLO && !ev.Streamed {
			// Sheds (429) are deliberate policy, not availability failures;
			// 5xx of any kind burns the budget. Streamed fetches are
			// exempt: their duration is the client's read pace, and a
			// multi-minute healthy stream is not a latency breach.
			s.sloTrk.Observe(ev.DurationMS, sw.status >= 500)
		}
	}
}

// deriveOutcome classifies a finished request for the wide event.
func deriveOutcome(status int, degraded, draining bool) string {
	switch {
	case status == http.StatusTooManyRequests:
		return obs.OutcomeShed
	case status == http.StatusServiceUnavailable:
		if draining {
			return obs.OutcomeDraining
		}
		return obs.OutcomeError
	case status == http.StatusGatewayTimeout:
		return obs.OutcomeTimeout
	case status >= 500:
		return obs.OutcomeError
	case status >= 400:
		return obs.OutcomeBadRequest
	case degraded:
		return obs.OutcomeDegraded
	default:
		return obs.OutcomeOK
	}
}

// Admission verdicts recorded in the wide event.
const (
	AdmissionAdmitted        = "admitted"
	AdmissionShedQueueFull   = "shed_queue_full"
	AdmissionShedDraining    = "shed_draining"
	AdmissionDeadlineInQueue = "deadline_in_queue"
)

// annotateAdmission records the admission verdict and queue wait on the
// request's wide event. Safe on nil.
func annotateAdmission(ev *obs.WideEvent, verdict string, wait time.Duration) {
	if ev == nil {
		return
	}
	ev.Admission = verdict
	ev.QueueWaitMS = float64(wait) / float64(time.Millisecond)
}

// annotateError records the terminal error on the wide event. Safe on
// nil event and nil error.
func annotateError(ev *obs.WideEvent, err error) {
	if ev == nil || err == nil {
		return
	}
	ev.Err = err.Error()
}
