package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emgo/internal/contprof"
	"emgo/internal/obs/slo"
)

// benchRecords builds n wire-shape records cycling the fixture trio, so
// the mix exercises the sure-rule, learned-matcher, and vetoed paths in
// the same proportions for every benchmark.
func benchRecords(n int) []map[string]any {
	recs := make([]map[string]any, n)
	for i := range recs {
		id := fmt.Sprintf("q%d", i)
		switch i % 3 {
		case 0:
			recs[i] = l0Record(id)
		case 1:
			recs[i] = l1Record(id)
		default:
			recs[i] = l2Record(id)
		}
	}
	return recs
}

// BenchmarkMatchSingle is the per-record cost of the single-record
// endpoint: every record pays its own decode, admission slot, and
// blocking-index probe. Compare ns/record against BenchmarkMatchBatch32
// to see what the batch path amortizes.
func BenchmarkMatchSingle(b *testing.B) {
	s, _ := newTestServer(b, Config{})
	h := s.Handler()
	bodies := make([]string, 3)
	for i, rec := range benchRecords(3) {
		buf, err := json.Marshal(map[string]any{"record": rec})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match", strings.NewReader(bodies[i%3]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
}

// BenchmarkMatchBatch32 sends the same record mix 32 at a time: one
// decode, one admission slot, and one index-probe loop per request.
func BenchmarkMatchBatch32(b *testing.B) {
	s, _ := newTestServer(b, Config{})
	h := s.Handler()
	buf, err := json.Marshal(map[string]any{"records": benchRecords(32)})
	if err != nil {
		b.Fatal(err)
	}
	body := string(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match/batch", strings.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/record")
}

// observedConfig turns on the request-scoped observability layer:
// every wide event rendered (to a discarded sink, so the benchmark
// measures the logging work, not the disk), span trees built, and tail
// capture armed. The *Observed benchmarks against their plain
// counterparts are the layer's <5% overhead guard (BENCH_pr7.json).
// Metrics-registry enablement is a separate, pre-existing cost priced
// by internal/obs's own benchmarks (BenchmarkCounterEnabled et al).
func observedConfig() Config {
	return Config{AccessLog: io.Discard, AccessSampleN: 1, TailN: 16, SLOs: slo.DefaultObjectives()}
}

// BenchmarkMatchSingleObserved is BenchmarkMatchSingle with wide-event
// logging, span capture, tail retention, and SLO tracking all on.
func BenchmarkMatchSingleObserved(b *testing.B) {
	s, _ := newTestServer(b, observedConfig())
	h := s.Handler()
	bodies := make([]string, 3)
	for i, rec := range benchRecords(3) {
		buf, err := json.Marshal(map[string]any{"record": rec})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match", strings.NewReader(bodies[i%3]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
}

// profiledConfig is observedConfig with the continuous profiler armed
// at its production defaults: the 60s interval means no periodic
// capture fires during the benchmark, so what is measured is the
// steady-state cost of carrying the profiler — the per-route pprof
// label arm on every request, the tail-outlier trigger hook (hit on
// every heap displacement), and the default mutex/block sampling
// rates. Capture work itself (CPU window, profile serialization,
// gzip) is deliberately excluded the same way the interval capture
// is: pre-firing the tail-outlier trigger under an hour-long cooldown
// dedups every displacement-driven trigger in the timed region, so
// the per-op numbers price what every request pays, not the rare
// policy-bounded capture. The *ObservedProfiled benchmarks against
// their *Observed counterparts are the profiler's <5% overhead guard.
func profiledConfig(b *testing.B) Config {
	b.Helper()
	// The harness re-invokes the benchmark body while ramping b.N, but
	// cleanups only run at the end, so without this each ramp step
	// would stack another live profiler under the timed region.
	if prev := lastBenchProfiler; prev != nil {
		prev.Stop()
	}
	dir := b.TempDir()
	p, err := contprof.Open(contprof.Config{
		Dir:             dir,
		Interval:        contprof.DefaultInterval,
		CPUDuration:     10 * time.Millisecond,
		TriggerCooldown: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	lastBenchProfiler = p
	b.Cleanup(p.Stop)
	if !p.Trigger(contprof.TriggerTailOutlier, "bench pre-fire", "") {
		b.Fatal("contprof: pre-fire trigger not scheduled")
	}
	waitForCapture(b, dir)
	cfg := observedConfig()
	cfg.Profiler = p
	return cfg
}

// lastBenchProfiler is the profiler armed by the most recent
// profiledConfig call; Stop is idempotent, so stopping it both here and
// in its own cleanup is safe.
var lastBenchProfiler *contprof.Profiler

// waitForCapture blocks until the pre-fired capture's sidecar lands, so
// none of its work overlaps the timed region.
func waitForCapture(b *testing.B, dir string) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		metas, err := filepath.Glob(filepath.Join(dir, "*.meta.json"))
		if err != nil {
			b.Fatal(err)
		}
		if len(metas) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatal("contprof: pre-fired capture never completed")
}

// BenchmarkMatchSingleObservedProfiled is BenchmarkMatchSingleObserved
// with the continuous profiler carried at the default interval.
func BenchmarkMatchSingleObservedProfiled(b *testing.B) {
	s, _ := newTestServer(b, profiledConfig(b))
	h := s.Handler()
	bodies := make([]string, 3)
	for i, rec := range benchRecords(3) {
		buf, err := json.Marshal(map[string]any{"record": rec})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match", strings.NewReader(bodies[i%3]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
}

// BenchmarkMatchBatch32ObservedProfiled is BenchmarkMatchBatch32Observed
// with the continuous profiler carried at the default interval.
func BenchmarkMatchBatch32ObservedProfiled(b *testing.B) {
	s, _ := newTestServer(b, profiledConfig(b))
	h := s.Handler()
	buf, err := json.Marshal(map[string]any{"records": benchRecords(32)})
	if err != nil {
		b.Fatal(err)
	}
	body := string(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match/batch", strings.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/record")
}

// BenchmarkMatchBatch32Observed is BenchmarkMatchBatch32 under the same
// fully-armed observability stack.
func BenchmarkMatchBatch32Observed(b *testing.B) {
	s, _ := newTestServer(b, observedConfig())
	h := s.Handler()
	buf, err := json.Marshal(map[string]any{"records": benchRecords(32)})
	if err != nil {
		b.Fatal(err)
	}
	body := string(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match/batch", strings.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/record")
}

// BenchmarkStreamResults is the end-to-end throughput of the streaming
// result transport: one full NDJSON fetch of a fabricated ~1MB job over
// a real HTTP connection (httptest recorders cannot carry the per-chunk
// write deadlines) at the default chunking. SetBytes turns ns/op into
// MB/s so the committed trajectory tracks transport throughput, not
// just latency.
func BenchmarkStreamResults(b *testing.B) {
	s, ts := newTestServer(b, jobConfig(b.TempDir()))
	job := fabricateFatJob(b, s, 2000, 100, 500)

	fetch := func() int64 {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/results?stream=ndjson")
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("stream status %d", resp.StatusCode)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	b.SetBytes(fetch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch()
	}
}
