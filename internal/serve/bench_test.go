package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"emgo/internal/obs/slo"
)

// benchRecords builds n wire-shape records cycling the fixture trio, so
// the mix exercises the sure-rule, learned-matcher, and vetoed paths in
// the same proportions for every benchmark.
func benchRecords(n int) []map[string]any {
	recs := make([]map[string]any, n)
	for i := range recs {
		id := fmt.Sprintf("q%d", i)
		switch i % 3 {
		case 0:
			recs[i] = l0Record(id)
		case 1:
			recs[i] = l1Record(id)
		default:
			recs[i] = l2Record(id)
		}
	}
	return recs
}

// BenchmarkMatchSingle is the per-record cost of the single-record
// endpoint: every record pays its own decode, admission slot, and
// blocking-index probe. Compare ns/record against BenchmarkMatchBatch32
// to see what the batch path amortizes.
func BenchmarkMatchSingle(b *testing.B) {
	s, _ := newTestServer(b, Config{})
	h := s.Handler()
	bodies := make([]string, 3)
	for i, rec := range benchRecords(3) {
		buf, err := json.Marshal(map[string]any{"record": rec})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match", strings.NewReader(bodies[i%3]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
}

// BenchmarkMatchBatch32 sends the same record mix 32 at a time: one
// decode, one admission slot, and one index-probe loop per request.
func BenchmarkMatchBatch32(b *testing.B) {
	s, _ := newTestServer(b, Config{})
	h := s.Handler()
	buf, err := json.Marshal(map[string]any{"records": benchRecords(32)})
	if err != nil {
		b.Fatal(err)
	}
	body := string(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match/batch", strings.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/record")
}

// observedConfig turns on the request-scoped observability layer:
// every wide event rendered (to a discarded sink, so the benchmark
// measures the logging work, not the disk), span trees built, and tail
// capture armed. The *Observed benchmarks against their plain
// counterparts are the layer's <5% overhead guard (BENCH_pr7.json).
// Metrics-registry enablement is a separate, pre-existing cost priced
// by internal/obs's own benchmarks (BenchmarkCounterEnabled et al).
func observedConfig() Config {
	return Config{AccessLog: io.Discard, AccessSampleN: 1, TailN: 16, SLOs: slo.DefaultObjectives()}
}

// BenchmarkMatchSingleObserved is BenchmarkMatchSingle with wide-event
// logging, span capture, tail retention, and SLO tracking all on.
func BenchmarkMatchSingleObserved(b *testing.B) {
	s, _ := newTestServer(b, observedConfig())
	h := s.Handler()
	bodies := make([]string, 3)
	for i, rec := range benchRecords(3) {
		buf, err := json.Marshal(map[string]any{"record": rec})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match", strings.NewReader(bodies[i%3]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
}

// BenchmarkMatchBatch32Observed is BenchmarkMatchBatch32 under the same
// fully-armed observability stack.
func BenchmarkMatchBatch32Observed(b *testing.B) {
	s, _ := newTestServer(b, observedConfig())
	h := s.Handler()
	buf, err := json.Marshal(map[string]any{"records": benchRecords(32)})
	if err != nil {
		b.Fatal(err)
	}
	body := string(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/match/batch", strings.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/record")
}
