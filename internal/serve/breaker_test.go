package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b.now = clk.now
	return b, clk
}

var errBoom = errors.New("boom")

func TestBreakerStartsClosed(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{})
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Failures: 3, Cooldown: time.Minute})
	// Two failures, then a success: the consecutive counter must reset.
	b.Record(errBoom, 0)
	b.Record(errBoom, 0)
	b.Record(nil, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after reset-by-success = %v, want closed", b.State())
	}
	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		b.Record(errBoom, 0)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must not allow")
	}
}

func TestBreakerHalfOpenSingleProbeThenClose(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{Failures: 1, Cooldown: time.Minute})
	b.Record(errBoom, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Before the cooldown: still refusing.
	clk.advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown elapsed")
	}
	// After the cooldown: exactly one probe admitted.
	clk.advance(31 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half_open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe succeeds: breaker closes and counting restarts.
	b.Record(nil, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker must allow")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	b.Record(errBoom, 0)
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(errBoom, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The re-open restarts the cooldown from the probe failure.
	clk.advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker allowed during restarted cooldown")
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused after restarted cooldown elapsed")
	}
}

func TestBreakerLatencyCountsAsFailure(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Failures: 2, Cooldown: time.Minute, LatencyLimit: 10 * time.Millisecond})
	// Errors-free but slow calls must still trip the breaker.
	b.Record(nil, 50*time.Millisecond)
	b.Record(nil, 50*time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatalf("state after slow successes = %v, want open", b.State())
	}
}

func TestBreakerResetForceCloses(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	b.Record(errBoom, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	gen := b.Generation()
	b.Reset()
	if b.State() != BreakerClosed {
		t.Fatalf("state after Reset = %v, want closed", b.State())
	}
	if b.Generation() <= gen {
		t.Fatal("Reset must count as a transition")
	}
	if !b.Allow() {
		t.Fatal("reset breaker must allow")
	}
}

func TestBreakerLateRecordWhileOpenIgnored(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	b.Record(errBoom, 0)
	gen := b.Generation()
	// A straggler call admitted before the trip reports in: no state
	// churn, no counter corruption.
	b.Record(errBoom, 0)
	b.Record(nil, 0)
	if b.State() != BreakerOpen || b.Generation() != gen {
		t.Fatalf("late records disturbed the open breaker: state=%v gen=%d want open/%d",
			b.State(), b.Generation(), gen)
	}
}
