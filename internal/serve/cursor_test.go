package serve

import (
	"bytes"
	"encoding/base64"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/leakcheck"
)

func testKey(t testing.TB) []byte {
	t.Helper()
	key, err := loadStreamKey(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestCursorRoundTrip(t *testing.T) {
	key := testKey(t)
	want := Cursor{Job: "jdeadbeef", Shard: 7, Offset: 512, Matcher: "sha:abc"}
	raw := encodeCursor(key, want)
	if !strings.HasPrefix(raw, cursorPrefix+".") {
		t.Fatalf("cursor %q lacks the %s prefix", raw, cursorPrefix)
	}
	got, err := parseCursor(key, raw)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

// TestCursorFailsClosed pins the uniform-rejection contract: every
// malformed, truncated, forged, or foreign token gets the same 400 and
// the same message — never a panic, never a distinguishing hint.
func TestCursorFailsClosed(t *testing.T) {
	defer fault.Reset()
	key := testKey(t)
	otherKey := testKey(t)
	valid := encodeCursor(key, Cursor{Job: "j1", Shard: 1, Offset: 2, Matcher: "m"})

	// A payload that authenticates but decodes to nonsense fields.
	badFields, _ := splitPayload(t, key, Cursor{Job: "", Shard: 1, Offset: 0, Matcher: "m"})
	negShard, _ := splitPayload(t, key, Cursor{Job: "j1", Shard: -1, Offset: 0, Matcher: "m"})

	cases := map[string]string{
		"empty":            "",
		"not a cursor":     "hello",
		"wrong prefix":     "emc2" + valid[len(cursorPrefix):],
		"two parts":        valid[:strings.LastIndex(valid, ".")],
		"four parts":       valid + ".extra",
		"truncated":        valid[:len(valid)-5],
		"payload not b64":  cursorPrefix + ".!!!." + strings.Split(valid, ".")[2],
		"mac not b64":      strings.Join(strings.Split(valid, ".")[:2], ".") + ".!!!",
		"foreign key":      encodeCursor(otherKey, Cursor{Job: "j1", Shard: 1, Offset: 2, Matcher: "m"}),
		"oversized":        cursorPrefix + "." + strings.Repeat("A", 2048),
		"empty job field":  badFields,
		"negative shard":   negShard,
		"flipped mac bit":  flipLastChar(valid),
		"payload tampered": tamperPayload(valid),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := parseCursor(key, raw)
			re, ok := err.(*RequestError)
			if !ok {
				t.Fatalf("parse(%q) err = %v, want *RequestError", raw, err)
			}
			if re.Status != http.StatusBadRequest || re.Msg != "invalid cursor" {
				t.Fatalf("parse(%q) = %d %q, want uniform 400 \"invalid cursor\"", raw, re.Status, re.Msg)
			}
		})
	}

	// The serve.stream.cursor fault site also fails closed.
	fault.Enable("serve.stream.cursor", fault.Plan{})
	if _, err := parseCursor(key, valid); err == nil {
		t.Fatal("injected cursor fault did not reject the token")
	}
	fault.Reset()
	if _, err := parseCursor(key, valid); err != nil {
		t.Fatalf("valid cursor rejected after fault reset: %v", err)
	}
}

// splitPayload signs a cursor whose decoded fields should be rejected.
func splitPayload(t *testing.T, key []byte, c Cursor) (string, error) {
	t.Helper()
	return encodeCursor(key, c), nil
}

// flipLastChar swaps the token's final base64 character.
func flipLastChar(s string) string {
	b := []byte(s)
	if b[len(b)-1] == 'A' {
		b[len(b)-1] = 'B'
	} else {
		b[len(b)-1] = 'A'
	}
	return string(b)
}

// tamperPayload flips one bit inside the signed payload, keeping the
// MAC: the signature must catch it.
func tamperPayload(s string) string {
	parts := strings.Split(s, ".")
	raw, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil {
		return s
	}
	raw[len(raw)/2] ^= 0x01
	parts[1] = base64.RawURLEncoding.EncodeToString(raw)
	return strings.Join(parts, ".")
}

// TestStreamKeyPersistence: the signing key survives restarts (same dir
// → same key, so cursors outlive the process), and a corrupt key file
// is replaced rather than trusted.
func TestStreamKeyPersistence(t *testing.T) {
	dir := t.TempDir()
	k1, err := loadStreamKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := loadStreamKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Fatal("stream key changed across loads — cursors would not survive a restart")
	}
	if err := os.WriteFile(filepath.Join(dir, streamKeyFile), []byte("short"), 0o600); err != nil {
		t.Fatal(err)
	}
	k3, err := loadStreamKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k3) || len(k3) != 32 {
		t.Fatal("corrupt key file was not replaced with a fresh key")
	}
}

// TestCursorAuthorization exercises parseCursorFor's binding end to
// end: a signed cursor is a capability on exactly one job at a valid
// position under the live matcher — anything else is 400 (or 409 for a
// stale matcher, which is retryable-by-restart rather than hostile).
func TestCursorAuthorization(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, jobConfig(t.TempDir()))
	jm := s.JobTier()

	st := submitJob(t, ts.URL, jobPayload(4)) // 2 shards of 2
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	job := jm.Get(st.ID)

	good, err := jm.parseCursorFor(job, jm.cursorFor(job, 1, 1))
	if err != nil || good.Shard != 1 || good.Offset != 1 {
		t.Fatalf("valid cursor rejected: %+v, %v", good, err)
	}
	// Terminal cursor (shard == shards, offset 0) is valid: it resumes
	// to the summary line.
	if _, err := jm.parseCursorFor(job, jm.cursorFor(job, job.shards, 0)); err != nil {
		t.Fatalf("terminal cursor rejected: %v", err)
	}

	reject := map[string]string{
		"cross-job":        encodeCursor(jm.streamKey, Cursor{Job: "jother", Shard: 0, Offset: 0, Matcher: jm.matcherChecksum()}),
		"shard past end":   jm.cursorFor(job, job.shards+1, 0),
		"offset past end":  jm.cursorFor(job, 0, job.shardLen(0)),
		"terminal +offset": jm.cursorFor(job, job.shards, 1),
	}
	for name, raw := range reject {
		t.Run(name, func(t *testing.T) {
			_, err := jm.parseCursorFor(job, raw)
			re, ok := err.(*RequestError)
			if !ok || re.Status != http.StatusBadRequest || re.Msg != "invalid cursor" {
				t.Fatalf("parseCursorFor = %v, want uniform 400", err)
			}
		})
	}

	// Matcher drift: same job, same position, different artifact — the
	// stream's earlier and later bytes would disagree, so the client
	// must restart, not resume.
	stale := encodeCursor(jm.streamKey, Cursor{Job: job.ID, Shard: 0, Offset: 0, Matcher: "sha:stale"})
	_, err = jm.parseCursorFor(job, stale)
	re, ok := err.(*RequestError)
	if !ok || re.Status != http.StatusConflict {
		t.Fatalf("stale-matcher cursor = %v, want 409", err)
	}
}

// FuzzParseCursor: hostile tokens never panic, never partially decode,
// and only the genuine signature authenticates. The fuzzer gets a
// valid token in the corpus so mutations explore near-misses.
func FuzzParseCursor(f *testing.F) {
	key, err := loadStreamKey(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	valid := encodeCursor(key, Cursor{Job: "j0123456789abcdef", Shard: 3, Offset: 17, Matcher: "sha:fuzz"})
	f.Add(valid)
	f.Add("")
	f.Add(cursorPrefix + "..")
	f.Add(cursorPrefix + ".e30.AAAA")
	f.Add(strings.Repeat(".", 100))
	f.Fuzz(func(t *testing.T, raw string) {
		c, err := parseCursor(key, raw)
		if err != nil {
			re, ok := err.(*RequestError)
			if !ok || re.Status != http.StatusBadRequest || re.Msg != "invalid cursor" {
				t.Fatalf("parse(%q) failed open: %v", raw, err)
			}
			if c != (Cursor{}) {
				t.Fatalf("rejected token leaked a partial decode: %+v", c)
			}
			return
		}
		// Anything that authenticates must re-encode to the exact same
		// token: base64url raw + canonical JSON leaves no malleability,
		// so a fuzzer cannot mint a second spelling of a valid cursor.
		if got := encodeCursor(key, c); got != raw {
			t.Fatalf("accepted token %q is not canonical (re-encodes to %q)", raw, got)
		}
		if c.Job == "" || c.Shard < 0 || c.Offset < 0 {
			t.Fatalf("accepted cursor with invalid fields: %+v", c)
		}
	})
}
