package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeMatchRequest proves the request decoder's contract on
// arbitrary bytes: it never panics, and every rejection is a typed
// *RequestError carrying a 4xx status (malformed input is the client's
// problem, never a 500 and never a process crash). Accepted requests
// must satisfy the invariants the handler relies on, and must survive
// RecordRow without panicking either.
func FuzzDecodeMatchRequest(f *testing.F) {
	f.Add([]byte(`{"record":{"ID":"l0","Num":"2008-1"}}`))
	f.Add([]byte(`{"record":{"Year":2008},"timeout_ms":100,"trace":true}`))
	f.Add([]byte(`{"record":{"ID":null}}`))
	f.Add([]byte(`{"record":{"ID":["nested"]}}`))
	f.Add([]byte(`{"record":{}}`))
	f.Add([]byte(`{"record":{"ID":"x"}}trailing`))
	f.Add([]byte(`{"timeout_ms":-5,"record":{"ID":"x"}}`))
	f.Add([]byte(``))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(`[{"record":{}}]`))
	f.Add([]byte(`{"record":{"ID":"` + strings.Repeat("a", 5000) + `"}}`))
	f.Add([]byte("{\"record\":{\"\x00\xff\":\"�\"}}"))

	schema := reqSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBody = 4096
		req, err := DecodeMatchRequest(bytes.NewReader(data), maxBody)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %T %v", err, err)
			}
			if re.Status < 400 || re.Status > 499 {
				t.Fatalf("rejection status %d is not 4xx (%s)", re.Status, re.Msg)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		if len(req.Record) == 0 {
			t.Fatal("accepted request with empty record")
		}
		if req.TimeoutMS < 0 {
			t.Fatal("accepted request with negative timeout")
		}
		if int64(len(data)) > maxBody {
			t.Fatalf("accepted %d-byte body over the %d-byte cap", len(data), maxBody)
		}
		// The accepted record must also convert without panicking; the
		// only permitted failure is the typed unknown-column rejection.
		if _, rerr := RecordRow(schema, req.Record); rerr != nil {
			var re *RequestError
			if !errors.As(rerr, &re) || re.Status != 400 {
				t.Fatalf("RecordRow rejection is not a 400 RequestError: %v", rerr)
			}
		}
	})
}

// FuzzDecodeBatchRequest proves the same contract for the batch
// decoder, whose caps matter more (one body carries many records): no
// panic on arbitrary bytes, every rejection a typed 4xx, nothing
// accepted past the byte or record caps, and every accepted record
// survives RecordRow.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add([]byte(`{"records":[{"ID":"l0","Num":"2008-1"}]}`))
	f.Add([]byte(`{"records":[{"A":1},{"B":2.5},{"C":null}],"timeout_ms":100,"trace":true}`))
	f.Add([]byte(`{"records":[]}`))
	f.Add([]byte(`{"records":[{}]}`))
	f.Add([]byte(`{"records":[{"ID":"x"}],"timeout_ms":-5}`))
	f.Add([]byte(`{"records":[{"ID":"x"}]}trailing`))
	f.Add([]byte(`{"records":{"not":"an array"}}`))
	f.Add([]byte(`{"record":{"ID":"x"}}`)) // single-record shape: unknown field
	f.Add([]byte(``))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(`{"records":[{"ID":"` + strings.Repeat("a", 5000) + `"}]}`))
	f.Add([]byte(`{"records":[{"A":"x"},{"A":"y"},{"A":"z"},{"A":"w"}]}`))
	f.Add([]byte("{\"records\":[{\"\x00\xff\":\"�\"}]}"))

	schema := reqSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			maxBody    = 4096
			maxRecords = 3
		)
		req, err := DecodeBatchRequest(bytes.NewReader(data), maxBody, maxRecords)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %T %v", err, err)
			}
			if re.Status < 400 || re.Status > 499 {
				t.Fatalf("rejection status %d is not 4xx (%s)", re.Status, re.Msg)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		if len(req.Records) == 0 || len(req.Records) > maxRecords {
			t.Fatalf("accepted %d records outside (0, %d]", len(req.Records), maxRecords)
		}
		if req.TimeoutMS < 0 {
			t.Fatal("accepted request with negative timeout")
		}
		if int64(len(data)) > maxBody {
			t.Fatalf("accepted %d-byte body over the %d-byte cap", len(data), maxBody)
		}
		for i, rec := range req.Records {
			if len(rec) == 0 {
				t.Fatalf("accepted empty record %d", i)
			}
			if _, rerr := RecordRow(schema, rec); rerr != nil {
				var re *RequestError
				if !errors.As(rerr, &re) || re.Status != 400 {
					t.Fatalf("RecordRow rejection is not a 400 RequestError: %v", rerr)
				}
			}
		}
	})
}
