package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/fault"
	"emgo/internal/leakcheck"
	"emgo/internal/obs"
)

// streamConfig is the baseline streaming test config: tiny chunks so a
// small job produces many flush boundaries.
func streamConfig(dir string) Config {
	cfg := jobConfig(dir)
	cfg.Stream.FlushEvery = 1
	return cfg
}

// getStream GETs the streaming results endpoint, optionally resuming
// from a cursor and tagging the connection with a request ID.
func getStream(t *testing.T, url, id, cursor, reqID string) *http.Response {
	t.Helper()
	u := url + "/v1/jobs/" + id + "/results?stream=ndjson"
	if cursor != "" {
		u += "&cursor=" + cursor
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes an NDJSON stream body with the commit-on-cursor
// discipline the real client uses: data lines buffer until their
// chunk's control line lands. It returns the committed data bytes, the
// last committed cursor, and whether the summary line committed.
func readStream(t *testing.T, r io.Reader) (data []byte, cursor string, done bool) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var pending bytes.Buffer
	pendingDone := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Cursor string `json:"cursor"`
			Done   bool   `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line is not JSON: %q", line)
		}
		if probe.Cursor != "" {
			data = append(data, pending.Bytes()...)
			pending.Reset()
			cursor = probe.Cursor
			if pendingDone {
				done = true
			}
			continue
		}
		pending.Write(line)
		pending.WriteByte('\n')
		if probe.Done {
			pendingDone = true
		}
	}
	return data, cursor, done
}

// TestStreamMatchesBufferedResults: the streamed data lines carry
// exactly the records the buffered document carries, in order, plus a
// terminal summary; the trailer holds the terminal cursor, and
// resuming from it yields only the summary line again.
func TestStreamMatchesBufferedResults(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, jobConfig(t.TempDir()))

	st := submitJob(t, ts.URL, jobPayload(6)) // 3 shards of 2
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	code, buffered := fetchResults(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("buffered fetch = %d: %s", code, buffered)
	}
	var doc JobResults
	if err := json.Unmarshal(buffered, &doc); err != nil {
		t.Fatal(err)
	}

	resp := getStream(t, ts.URL, st.ID, "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	data, _, done := readStream(t, resp.Body)
	if !done {
		t.Fatal("stream ended without the summary line")
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != len(doc.Results)+1 {
		t.Fatalf("stream carried %d data lines, want %d records + summary", len(lines), len(doc.Results))
	}
	for i, rec := range doc.Results {
		want, _ := json.Marshal(rec)
		if !bytes.Equal(lines[i], want) {
			t.Fatalf("stream line %d differs from buffered record:\nstream:   %s\nbuffered: %s", i, lines[i], want)
		}
	}
	var summary streamSummaryLine
	if err := json.Unmarshal(lines[len(lines)-1], &summary); err != nil || !summary.Done {
		t.Fatalf("last data line is not the summary: %s", lines[len(lines)-1])
	}
	if summary.JobID != st.ID || summary.Records != 6 || summary.Shards != 3 {
		t.Fatalf("summary = %+v", summary)
	}

	// The trailer names the terminal position; resuming from it yields
	// exactly the summary line (so a client that lost the summary can
	// confirm completion) and nothing else.
	trailer := resp.Trailer.Get(streamCursorTrailer)
	if trailer == "" {
		t.Fatal("stream carried no trailer cursor")
	}
	resumed := getStream(t, ts.URL, st.ID, trailer, "")
	defer resumed.Body.Close()
	if resumed.StatusCode != http.StatusOK {
		t.Fatalf("resume from terminal cursor = %d", resumed.StatusCode)
	}
	rdata, _, rdone := readStream(t, resumed.Body)
	if !rdone {
		t.Fatal("terminal resume did not re-deliver the summary")
	}
	if !bytes.Equal(bytes.TrimSuffix(rdata, []byte("\n")), lines[len(lines)-1]) {
		t.Fatalf("terminal resume carried more than the summary: %s", rdata)
	}
}

// TestStreamCutAndResumeByteIdentical is the tentpole contract: cut a
// stream mid-flight (here, deterministically, at the write fault
// site), resume from the last committed cursor on a new connection,
// and the concatenated data bytes are identical to an uninterrupted
// fetch. The access log alone reconstructs the multi-connection fetch:
// the resume event's stream_from equals the cut event's stream_end.
func TestStreamCutAndResumeByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	obs.Enable()
	defer obs.Disable()
	sink := &syncBuffer{}
	cfg := streamConfig(t.TempDir())
	cfg.AccessLog = sink
	_, ts := newTestServer(t, cfg)

	st := submitJob(t, ts.URL, jobPayload(6))
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)

	// Reference: one clean, uninterrupted stream.
	clean := getStream(t, ts.URL, st.ID, "", "clean-conn")
	want, _, done := readStream(t, clean.Body)
	clean.Body.Close()
	if !done {
		t.Fatal("clean stream incomplete")
	}

	// Cut: the third chunk's write fails server-side, so the client has
	// committed exactly two chunks and the server's durable position
	// agrees with the client's.
	cutBefore := obs.C("serve.stream.cut").Value()
	fault.Enable("serve.stream.write", fault.Plan{OnCall: 3})
	cut := getStream(t, ts.URL, st.ID, "", "cut-conn")
	gotA, cursorA, doneA := readStream(t, cut.Body)
	cut.Body.Close()
	fault.Reset()
	if doneA {
		t.Fatal("cut stream claims completion")
	}
	if cursorA == "" {
		t.Fatal("cut stream delivered no committed cursor to resume from")
	}
	if got := obs.C("serve.stream.cut").Value(); got != cutBefore+1 {
		t.Fatalf("serve.stream.cut = %d, want %d", got, cutBefore+1)
	}

	// Resume: a fresh connection picks up at the committed cursor.
	resumedBefore := obs.C("serve.stream.resumed").Value()
	resume := getStream(t, ts.URL, st.ID, cursorA, "resume-conn")
	gotB, _, doneB := readStream(t, resume.Body)
	resume.Body.Close()
	if !doneB {
		t.Fatal("resumed stream incomplete")
	}
	if got := obs.C("serve.stream.resumed").Value(); got != resumedBefore+1 {
		t.Fatalf("serve.stream.resumed = %d, want %d", got, resumedBefore+1)
	}
	if !bytes.Equal(append(append([]byte(nil), gotA...), gotB...), want) {
		t.Fatalf("cut+resume is not byte-identical to the clean stream:\ncut:    %q\nresume: %q\nclean:  %q", gotA, gotB, want)
	}

	// The wide events chain the connections: cut-conn ends where
	// resume-conn begins, so the access log alone reconstructs the
	// fetch across connections.
	byID := map[string]map[string]any{}
	for _, ev := range sink.waitEvents(t, 4) {
		if id, _ := ev["request_id"].(string); id != "" {
			byID[id] = ev
		}
	}
	cutEv, resumeEv := byID["cut-conn"], byID["resume-conn"]
	if cutEv == nil || resumeEv == nil {
		t.Fatalf("access log missing stream events: %v", byID)
	}
	if cutEv["streamed"] != true || cutEv["outcome"] != obs.OutcomeStreamCut {
		t.Fatalf("cut event = %v", cutEv)
	}
	if cutEv["stream_from"] != "0/0" {
		t.Fatalf("cut event stream_from = %v, want 0/0", cutEv["stream_from"])
	}
	if cutEv["stream_end"] != resumeEv["stream_from"] {
		t.Fatalf("stream_end %v of the cut does not chain to stream_from %v of the resume",
			cutEv["stream_end"], resumeEv["stream_from"])
	}
	if resumeEv["stream_complete"] != true {
		t.Fatalf("resume event = %v", resumeEv)
	}
	cleanEv := byID["clean-conn"]
	if cleanEv == nil || cleanEv["stream_complete"] != true || cleanEv["outcome"] != obs.OutcomeOK {
		t.Fatalf("clean event = %v", cleanEv)
	}
}

// TestStreamBadCursorHTTP: the HTTP layer maps cursor failures to the
// uniform 400 (and 409 for matcher drift) without starting a stream.
func TestStreamBadCursorHTTP(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	obs.Enable()
	defer obs.Disable()
	s, ts := newTestServer(t, jobConfig(t.TempDir()))
	jm := s.JobTier()

	st := submitJob(t, ts.URL, jobPayload(4))
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	job := jm.Get(st.ID)

	badBefore := obs.C("serve.stream.bad_cursor").Value()
	for name, cursor := range map[string]string{
		"garbage":   "emc1.zzzz.zzzz",
		"cross-job": encodeCursor(jm.streamKey, Cursor{Job: "jother", Matcher: jm.matcherChecksum()}),
	} {
		resp := getStream(t, ts.URL, st.ID, cursor, "")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "invalid cursor") {
			t.Fatalf("%s cursor = %d (%s), want uniform 400", name, resp.StatusCode, body)
		}
	}
	stale := encodeCursor(jm.streamKey, Cursor{Job: job.ID, Matcher: "sha:stale"})
	resp := getStream(t, ts.URL, st.ID, stale, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-matcher cursor = %d (%s), want 409", resp.StatusCode, body)
	}
	if got := obs.C("serve.stream.bad_cursor").Value(); got != badBefore+3 {
		t.Fatalf("serve.stream.bad_cursor = %d, want %d", got, badBefore+3)
	}
}

// TestStreamBackpressure: at most MaxStreams streams run at once; the
// next one sheds with 429 + Retry-After and succeeds once a slot
// frees.
func TestStreamBackpressure(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := streamConfig(t.TempDir())
	cfg.Stream.MaxStreams = 1
	_, ts := newTestServer(t, cfg)

	st := submitJob(t, ts.URL, jobPayload(6))
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)

	// Slow every chunk down so the first stream holds its slot long
	// enough for the second request to land mid-stream.
	fault.Enable("serve.stream.write", fault.Plan{Mode: fault.ModeSleep, Sleep: 40 * time.Millisecond})
	firstDone := make(chan error, 1)
	go func() {
		resp := getStream(t, ts.URL, st.ID, "", "")
		defer resp.Body.Close()
		_, _, done := readStream(t, resp.Body)
		if !done {
			firstDone <- fmt.Errorf("gated stream did not complete")
			return
		}
		firstDone <- nil
	}()
	time.Sleep(80 * time.Millisecond) // stream 1 is mid-chunk, slot held

	shed := getStream(t, ts.URL, st.ID, "", "")
	io.Copy(io.Discard, shed.Body) //nolint:errcheck
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit stream = %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("shed stream carries no Retry-After hint")
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	fault.Reset()

	retry := getStream(t, ts.URL, st.ID, "", "")
	_, _, done := readStream(t, retry.Body)
	retry.Body.Close()
	if retry.StatusCode != http.StatusOK || !done {
		t.Fatalf("post-drain retry = %d (done=%v), want a complete 200", retry.StatusCode, done)
	}
}

// TestStreamDrainEndsAtBoundary: a drain ends an active stream at its
// next flush boundary with a cursor-only chunk — a valid resume point,
// never a torn record — and new streams are refused 503 while
// draining.
func TestStreamDrainEndsAtBoundary(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg := streamConfig(t.TempDir())
	s, ts := newTestServer(t, cfg)
	jm := s.JobTier()

	st := submitJob(t, ts.URL, jobPayload(8)) // 4 shards of 2
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)
	job := jm.Get(st.ID)

	fault.Enable("serve.stream.write", fault.Plan{Mode: fault.ModeSleep, Sleep: 50 * time.Millisecond})
	type streamEnd struct {
		data   []byte
		cursor string
		done   bool
	}
	got := make(chan streamEnd, 1)
	go func() {
		resp := getStream(t, ts.URL, st.ID, "", "")
		defer resp.Body.Close()
		data, cursor, done := readStream(t, resp.Body)
		got <- streamEnd{data, cursor, done}
	}()
	time.Sleep(120 * time.Millisecond) // a couple of chunks in
	s.StartDrain()

	end := <-got
	if end.done {
		t.Fatal("drained stream claims completion")
	}
	if end.cursor == "" {
		t.Fatal("drained stream ended without a resume cursor")
	}
	cur, err := jm.parseCursorFor(job, end.cursor)
	if err != nil {
		t.Fatalf("drain cursor does not authorize a resume: %v", err)
	}
	if cur.Shard >= job.shards {
		t.Fatalf("drain cursor %+v claims a finished stream", cur)
	}

	// While draining, new streams are refused with a retryable 503; the
	// cursor stays valid for the next server instance.
	resp := getStream(t, ts.URL, st.ID, end.cursor, "")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream during drain = %d, want 503", resp.StatusCode)
	}
}

// TestStreamSurvivesServerWriteTimeout pins the timeout-scoping fix: a
// healthy stream that outlives the http.Server's global WriteTimeout
// must complete, because the per-chunk deadline overrides the global
// one for stream requests (while non-stream routes keep it).
func TestStreamSurvivesServerWriteTimeout(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, streamConfig(t.TempDir()))

	st := submitJob(t, ts.URL, jobPayload(6))
	waitJobState(t, ts.URL, st.ID, JobCompleted, 5*time.Second)

	// A second listener over the same server, with the Slowloris-guard
	// timeouts emserve ships: a 200ms write budget for whole responses.
	guarded := httptest.NewUnstartedServer(s.Handler())
	guarded.Config.WriteTimeout = 200 * time.Millisecond
	guarded.Start()
	defer guarded.Close()

	// ~7 chunks × 60ms ≈ 420ms of healthy streaming, over double the
	// global write budget.
	fault.Enable("serve.stream.write", fault.Plan{Mode: fault.ModeSleep, Sleep: 60 * time.Millisecond})
	resp := getStream(t, guarded.URL, st.ID, "", "")
	defer resp.Body.Close()
	data, _, done := readStream(t, resp.Body)
	if !done {
		t.Fatalf("stream died under the global WriteTimeout after %d bytes — per-chunk deadlines are not overriding it", len(data))
	}
}

// fabricateFatJob plants a completed job on disk without executing any
// matching: correct fingerprint, durable spec, and one padded shard
// artifact per shard, then recovers it into the manager. This is how
// the tests get a job far larger than matching the fixture could
// produce.
func fabricateFatJob(t testing.TB, s *Server, records, shardSize, pad int) *Job {
	t.Helper()
	jm := s.JobTier()
	recs := make([]map[string]any, records)
	for i := range recs {
		recs[i] = map[string]any{"RecordId": fmt.Sprintf("fat-%d", i), "Title": "swamp dodder ecology management carrot"}
	}
	canonical, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	fp := jm.jobFingerprint(canonical, shardSize)
	id := "j" + fp[:16]
	store, err := ckpt.Open(filepath.Join(jm.cfg.Dir, id), fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteJSON(jobArtifact, jobSpec{ID: id, ShardSize: shardSize, Records: recs}); err != nil {
		t.Fatal(err)
	}
	padding := strings.Repeat("x", pad)
	shards := (records + shardSize - 1) / shardSize
	for sh := 0; sh < shards; sh++ {
		lo, hi := sh*shardSize, min((sh+1)*shardSize, records)
		art := shardArtifact{Shard: sh, Records: make([]JobRecordResult, hi-lo)}
		for i := lo; i < hi; i++ {
			art.Records[i-lo] = JobRecordResult{Index: i, Degraded: true, DegradedReason: padding}
		}
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Write(shardName(sh), data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jm.Recover(); err != nil {
		t.Fatal(err)
	}
	job := jm.Get(id)
	if job == nil || job.State() != JobCompleted {
		t.Fatalf("fabricated job not recovered as completed: %v", job)
	}
	return job
}

// tinyBufListener shrinks each accepted connection's kernel write
// buffer so a stalled reader applies real backpressure within a few
// kilobytes instead of disappearing into socket buffers.
type tinyBufListener struct{ net.Listener }

func (l tinyBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); ok && err == nil {
		tc.SetWriteBuffer(4 << 10) //nolint:errcheck
	}
	return c, err
}

// TestStreamSlowReaderCut: a reader that absorbs one chunk and then
// stalls is cut within the per-chunk write budget — not held forever —
// while a concurrent healthy stream completes, and the stalled client's
// committed cursor resumes to a byte-identical whole.
func TestStreamSlowReaderCut(t *testing.T) {
	if testing.Short() {
		t.Skip("fabricates a multi-megabyte job")
	}
	leakcheck.Check(t)
	defer fault.Reset()
	obs.Enable()
	defer obs.Disable()
	cfg := jobConfig(t.TempDir())
	cfg.Stream.ChunkTimeout = 750 * time.Millisecond
	// Chunks must be far smaller than what the shrunken buffers can move
	// per budget window: tiny windows + delayed ACKs trickle at a few
	// tens of KB/s, and the budget must not cut a slow-but-alive reader
	// mid-chunk — only one that absorbs nothing at all.
	cfg.Stream.FlushEvery = 8
	s, ts := newTestServer(t, cfg)
	// ~1.7 MB over 30 shards: far more than the shrunken socket buffers
	// can absorb, so a stalled reader blocks the server's writes.
	job := fabricateFatJob(t, s, 3000, 100, 500)

	small := httptest.NewUnstartedServer(s.Handler())
	small.Listener = tinyBufListener{small.Listener}
	small.Start()
	defer small.Close()

	// The stalling client also shrinks its receive buffer.
	tr := &http.Transport{DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
		if tc, ok := c.(*net.TCPConn); ok && err == nil {
			tc.SetReadBuffer(4 << 10) //nolint:errcheck
		}
		return c, err
	}}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Get(
		small.URL + "/v1/jobs/" + job.ID + "/results?stream=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Commit exactly one chunk, then stop reading entirely.
	br := bufio.NewReader(resp.Body)
	var committed bytes.Buffer
	cursorA := ""
	for cursorA == "" {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading the first chunk: %v", err)
		}
		var probe struct {
			Cursor string `json:"cursor"`
		}
		if json.Unmarshal(bytes.TrimSpace(line), &probe) == nil && probe.Cursor != "" {
			cursorA = probe.Cursor
			break
		}
		committed.Write(line)
	}
	cutBefore := obs.C("serve.stream.cut").Value()

	// While the stall holds its slot, a healthy stream on the normal
	// listener runs to completion — the stall pins one slot, not the
	// tier. Its bytes double as the byte-identity reference.
	healthy := getStream(t, ts.URL, job.ID, "", "")
	want, _, done := readStream(t, healthy.Body)
	healthy.Body.Close()
	if !done {
		t.Fatal("healthy stream did not complete while another reader stalled")
	}

	// The server cuts the stalled stream once its chunk write deadline
	// lapses; generous wall-clock bound, tight mechanism.
	deadline := time.Now().Add(10 * time.Second)
	for obs.C("serve.stream.cut").Value() == cutBefore {
		if time.Now().After(deadline) {
			t.Fatal("server never cut the stalled stream")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The committed cursor survives the cut: resuming from it yields
	// exactly the rest of the document.
	resumed := getStream(t, ts.URL, job.ID, cursorA, "")
	rest, _, rdone := readStream(t, resumed.Body)
	resumed.Body.Close()
	if !rdone {
		t.Fatal("post-cut resume did not complete")
	}
	if !bytes.Equal(append(committed.Bytes(), rest...), want) {
		t.Fatalf("stall-cut + resume is not byte-identical: committed %d + resumed %d vs clean %d bytes",
			committed.Len(), len(rest), len(want))
	}
}

// TestStreamMemoryBounded pins the reason the transport exists: the
// buffered path refuses a job over its record cap (413, pointing at
// the stream), and streaming that same ~20 MB job holds live heap far
// below the document size — server memory is bounded by one shard, not
// the job.
func TestStreamMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("fabricates a multi-megabyte job")
	}
	if raceEnabled {
		t.Skip("race-instrumented allocations inflate HeapAlloc past any honest budget")
	}
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, jobConfig(t.TempDir()))
	// 24k records × ~860 B each ≈ 20 MB of result document, in 12
	// shards — well past the 10k-record buffered cap.
	job := fabricateFatJob(t, s, 24000, 2000, 800)

	code, body := fetchResults(t, ts.URL, job.ID)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("buffered fetch of fat job = %d, want 413", code)
	}
	if !strings.Contains(string(body), "stream=ndjson") {
		t.Fatalf("413 does not point at the streaming path: %s", body)
	}

	// Stream it, sampling live heap (after forced GC) along the way:
	// the high-water delta must stay far under the document size.
	runtime.GC()
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	resp := getStream(t, ts.URL, job.ID, "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var streamedBytes int64
	lines, sawDone := 0, false
	var peak uint64
	for sc.Scan() {
		streamedBytes += int64(len(sc.Bytes())) + 1
		if bytes.Contains(sc.Bytes(), []byte(`"done":true`)) {
			sawDone = true
		}
		lines++
		if lines%4000 == 0 {
			// Two GCs: the first turns over sync.Pool victim caches and
			// the floating garbage the concurrently-running handler
			// allocated mid-mark; the second leaves genuinely live heap.
			runtime.GC()
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDone {
		t.Fatal("fat-job stream ended without the summary line")
	}
	if streamedBytes < 18<<20 {
		t.Fatalf("fat-job stream carried only %d bytes — fabrication did not produce a fat job", streamedBytes)
	}
	const budget = 12 << 20
	if delta := int64(peak) - int64(base.HeapAlloc); delta > budget {
		t.Fatalf("live heap grew %d bytes while streaming a %d-byte document (budget %d) — streaming is scaling with job size",
			delta, streamedBytes, int64(budget))
	}
}
