package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"emgo/internal/obs"
)

// Admission errors. ErrShed maps to 429 with a Retry-After hint;
// ErrDraining maps to 503 (the readiness probe has already flipped, the
// balancer should stop sending here).
var (
	ErrShed     = errors.New("serve: admission queue full, request shed")
	ErrDraining = errors.New("serve: draining, not admitting requests")
)

// AdmissionConfig bounds concurrent work and the wait line behind it.
type AdmissionConfig struct {
	// MaxInFlight is how many requests may execute the matching pipeline
	// concurrently (<= 0 selects DefaultMaxInFlight).
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot before new
	// arrivals are shed with 429. 0 selects DefaultMaxQueue; a negative
	// value disables waiting entirely (no slot free = immediate 429).
	MaxQueue int
}

// Admission defaults.
const (
	DefaultMaxInFlight = 8
	DefaultMaxQueue    = 64
)

// Admission is the bounded two-stage admission gate: MaxInFlight
// executing plus at most MaxQueue waiting; everything beyond that is
// shed immediately. Shedding at the door instead of queueing without
// bound is what keeps latency bounded under overload — an unbounded
// queue converts overload into timeouts for every request instead of
// fast 429s for the excess.
type Admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	draining atomic.Bool

	// avgNanos is an EWMA of recent service times, feeding Retry-After.
	avgNanos atomic.Int64
}

// NewAdmission builds the gate with defaults applied.
func NewAdmission(cfg AdmissionConfig) *Admission {
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}
	queue := int64(cfg.MaxQueue)
	if cfg.MaxQueue == 0 {
		queue = DefaultMaxQueue
	}
	if cfg.MaxQueue < 0 {
		queue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, inflight),
		maxQueue: queue,
	}
}

// Acquire admits the request or sheds it. On success the returned
// release must be called exactly once when the request finishes; it
// records the service time for Retry-After estimation. Acquire returns
// ErrShed when the wait line is full, ErrDraining when the server has
// stopped admitting, and ctx.Err() when the request's deadline expires
// while waiting in line.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		obs.C("serve.shed.draining").Inc()
		return nil, ErrDraining
	}
	select {
	case a.slots <- struct{}{}:
		// Fast path: a slot was free, the request never queued.
	default:
		// No free slot: join the wait line if there is room. The
		// post-increment value each arrival observes is unique (atomic),
		// so exactly maxQueue requests can be waiting at once; the rest
		// are shed immediately with a Retry-After hint.
		if q := a.queued.Add(1); q > a.maxQueue {
			a.queued.Add(-1)
			obs.C("serve.shed.queue_full").Inc()
			return nil, ErrShed
		}
		obs.G("serve.queue_depth").Set(a.queued.Load())
		waited := func() {
			a.queued.Add(-1)
			obs.G("serve.queue_depth").Set(max64(a.queued.Load(), 0))
		}
		select {
		case a.slots <- struct{}{}:
			waited()
		case <-ctx.Done():
			waited()
			obs.C("serve.shed.deadline_in_queue").Inc()
			return nil, ctx.Err()
		}
	}
	if a.draining.Load() {
		// Drain raced our admission: give the slot back so the drain
		// waiter does not count us.
		<-a.slots
		obs.C("serve.shed.draining").Inc()
		return nil, ErrDraining
	}
	obs.C("serve.admitted").Inc()
	obs.G("serve.inflight").Set(int64(len(a.slots)))
	start := time.Now()
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		a.observe(time.Since(start))
		<-a.slots
		obs.G("serve.inflight").Set(int64(len(a.slots)))
	}, nil
}

// observe folds one service time into the EWMA (alpha = 1/8).
func (a *Admission) observe(d time.Duration) {
	for {
		old := a.avgNanos.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if a.avgNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates how long a shed client should wait before
// retrying: the current line length divided by the service rate,
// clamped to [1s, 60s]. A coarse hint beats none — it spreads the
// retry storm instead of synchronizing it.
func (a *Admission) RetryAfter() time.Duration {
	avg := time.Duration(a.avgNanos.Load())
	if avg <= 0 {
		avg = 100 * time.Millisecond
	}
	waiting := a.queued.Load() + int64(len(a.slots))
	per := int64(cap(a.slots))
	if per < 1 {
		per = 1
	}
	est := avg * time.Duration((waiting+per)/per)
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}

// StartDrain stops admitting new requests. In-flight requests keep
// their slots; Drain waits for them.
func (a *Admission) StartDrain() { a.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (a *Admission) Draining() bool { return a.draining.Load() }

// Drain blocks until every admitted request has released its slot or
// the timeout elapses; it reports whether the drain completed clean.
// Call StartDrain first or new arrivals will keep the slots busy.
func (a *Admission) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(a.slots) == 0 && a.queued.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// InFlight reports how many requests currently hold slots.
func (a *Admission) InFlight() int { return len(a.slots) }

// Queued reports how many requests are waiting for a slot.
func (a *Admission) Queued() int64 { return max64(a.queued.Load(), 0) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
