package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"emgo/internal/fault"
	"emgo/internal/leakcheck"
)

// postBatch sends one batch request and returns the raw envelope.
func postBatch(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/match/batch", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// fixture request records in map form (the batch/job wire shape).
func l0Record(id string) map[string]any {
	return map[string]any{"RecordId": id, "Num": "2008-11111-11111", "Title": "corn fungicide guidelines north central"}
}

func l1Record(id string) map[string]any {
	return map[string]any{"RecordId": id, "Title": "swamp dodder ecology management carrot"}
}

func l2Record(id string) map[string]any {
	return map[string]any{"RecordId": id, "Num": "WIS00001", "Title": "dairy cattle genetics study wisconsin"}
}

// TestBatchMatchesSingles is the amortization contract: a batch must
// answer every record exactly as the single-record endpoint would —
// same matches, same provenance, same candidate accounting — while
// holding only one admission slot.
func TestBatchMatchesSingles(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})

	records := []map[string]any{l0Record("q0"), l1Record("q1"), l2Record("q2")}
	req, _ := json.Marshal(map[string]any{"records": records})
	status, body := postBatch(t, ts.URL, string(req))
	if status != http.StatusOK {
		t.Fatalf("batch status = %d: %s", status, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != len(records) || len(br.Results) != len(records) {
		t.Fatalf("batch answered %d/%d results: %s", len(br.Results), len(records), body)
	}
	if br.Degraded != 0 {
		t.Fatalf("healthy batch degraded %d records: %s", br.Degraded, body)
	}

	for i, rec := range records {
		single, _ := json.Marshal(map[string]any{"record": rec})
		st, _, data := postMatch(t, ts.URL, string(single))
		if st != http.StatusOK {
			t.Fatalf("single %d status = %d: %s", i, st, data)
		}
		var mr MatchResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		got, want := br.Results[i], &mr
		gm, _ := json.Marshal(got.Matches)
		wm, _ := json.Marshal(want.Matches)
		if !bytes.Equal(gm, wm) ||
			got.Degraded != want.Degraded ||
			got.Candidates != want.Candidates ||
			got.Vetoed != want.Vetoed {
			t.Fatalf("record %d: batch answer diverges from single:\nbatch:  %+v\nsingle: %+v", i, got, want)
		}
	}

	// Spot-check semantics: q0 hits the sure rule, q1 the matcher, q2 is
	// vetoed by the negative rule.
	if len(br.Results[0].Matches) == 0 || br.Results[0].Matches[0].Source != "rule:M1" {
		t.Fatalf("q0 missing sure-rule match: %+v", br.Results[0])
	}
	if len(br.Results[1].Matches) == 0 || br.Results[1].Matches[0].Source != "matcher" {
		t.Fatalf("q1 missing learned match: %+v", br.Results[1])
	}
	if br.Results[2].Vetoed == 0 {
		t.Fatalf("q2 should be vetoed: %+v", br.Results[2])
	}
}

// TestBatchDegradesOnMatcherFault: one poisoned matcher degrades the
// whole batch to the rule-only path — still 200, every learned-path
// record marked with a reason, sure-rule answers intact.
func TestBatchDegradesOnMatcherFault(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})
	fault.Enable("ml.predict", fault.Plan{})

	req, _ := json.Marshal(map[string]any{"records": []map[string]any{l0Record("q0"), l1Record("q1")}})
	status, body := postBatch(t, ts.URL, string(req))
	if status != http.StatusOK {
		t.Fatalf("degraded batch must answer 200, got %d: %s", status, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Degraded == 0 {
		t.Fatalf("matcher faults armed but no record degraded: %s", body)
	}
	if br.Results[1].DegradedReason != ReasonMatcherError {
		t.Fatalf("q1 degraded reason = %q, want %s", br.Results[1].DegradedReason, ReasonMatcherError)
	}
	var sure bool
	for _, m := range br.Results[0].Matches {
		if m.Source == "rule:M1" {
			sure = true
		}
	}
	if !sure {
		t.Fatalf("matcher outage lost q0's sure-rule match: %+v", br.Results[0])
	}
}

// TestBatchRejections: the decoder's caps hold over HTTP — oversized
// bodies, over-cap record counts, and malformed records are 4xx, and a
// draining server refuses batches with 503.
func TestBatchRejections(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{MaxBatchRecords: 2, MaxBatchBodyBytes: 2048})

	over, _ := json.Marshal(map[string]any{"records": []map[string]any{
		l0Record("q0"), l1Record("q1"), l2Record("q2"),
	}})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{nope`, 400},
		{"empty records", `{"records":[]}`, 400},
		{"too many records", string(over), 413},
		{"oversized body", fmt.Sprintf(`{"records":[{"Title":%q}]}`, bytes.Repeat([]byte("a"), 4096)), 413},
		{"bad record", `{"records":[{"Bogus":"x"}]}`, 400},
		{"negative timeout", `{"records":[{"Title":"x"}],"timeout_ms":-1}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postBatch(t, ts.URL, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d (%s), want %d", status, body, tc.want)
			}
		})
	}
}
