package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"emgo/internal/fault"
	"emgo/internal/obs"
)

// Streaming result transport: GET /v1/jobs/{id}/results?stream=ndjson
// walks the job's durable shard artifacts one at a time and writes the
// result records as NDJSON, so serving a multi-million-row job holds
// one shard in memory, not the document. The transport is built to be
// abandoned at any instant and picked back up:
//
//   - every flush boundary emits a control line {"cursor":"..."} whose
//     opaque HMAC-signed token (internal/serve/cursor.go) names the
//     exact durable position the client has now fully received; the
//     same token rides the X-Stream-Cursor trailer;
//   - ?cursor= resumes exactly there — the concatenation of the data
//     lines across any number of connections is byte-identical to a
//     one-shot fetch, which is what makes "download died at 80%" a
//     resume instead of a re-download;
//   - each chunk is written under its own write deadline (the
//     slow-reader budget), overriding the http.Server's global
//     WriteTimeout for this request: a stalled reader is cut within the
//     budget — holding a resumable cursor, the 408 it cannot be sent —
//     while a merely slow one streams for as long as it keeps reading;
//   - at most Stream.MaxStreams streams hold result files open at once;
//     beyond that the request sheds with 429 + Retry-After like every
//     other overload;
//   - a drain ends active streams at the next flush boundary with a
//     valid cursor instead of truncating mid-record.
//
// Line vocabulary (data lines reassemble; control lines steer):
//
//	{"index":...}                 data: one record's result
//	{"shard":N,"quarantined":...} data: a quarantined shard's marker
//	{"done":true,...}             data: the terminal summary line
//	{"cursor":"emc1..."}          control: resume token (client strips)

// Streaming-transport defaults.
const (
	DefaultStreamChunkTimeout = 15 * time.Second
	DefaultStreamMaxStreams   = 4
	DefaultStreamFlushEvery   = 256
	DefaultBufferedMaxRecords = 10000
)

// streamCursorTrailer is the HTTP trailer carrying the final cursor.
const streamCursorTrailer = "X-Stream-Cursor"

// StreamConfig tunes the streaming results transport. The zero value
// serves with defaults.
type StreamConfig struct {
	// ChunkTimeout is the slow-reader budget: the write deadline armed
	// for each flushed chunk (default DefaultStreamChunkTimeout). A
	// reader that stalls past it is cut — with a valid resume cursor
	// already delivered at the previous boundary.
	ChunkTimeout time.Duration
	// MaxStreams bounds how many streams may hold result files open
	// concurrently; excess requests shed with 429 + Retry-After
	// (default DefaultStreamMaxStreams).
	MaxStreams int
	// FlushEvery is the records-per-flush boundary within a shard
	// (default DefaultStreamFlushEvery). Shard boundaries always flush.
	FlushEvery int
	// BufferedMaxRecords caps the legacy buffered (non-streamed) fetch:
	// a completed job larger than this answers 413 pointing at the
	// streaming path, because assembling it would scale server memory
	// with job size (default DefaultBufferedMaxRecords).
	BufferedMaxRecords int
}

// withDefaults fills zero fields.
func (c StreamConfig) withDefaults() StreamConfig {
	if c.ChunkTimeout <= 0 {
		c.ChunkTimeout = DefaultStreamChunkTimeout
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = DefaultStreamMaxStreams
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = DefaultStreamFlushEvery
	}
	if c.BufferedMaxRecords <= 0 {
		c.BufferedMaxRecords = DefaultBufferedMaxRecords
	}
	return c
}

// streamSummaryLine is the terminal data line of a complete stream. Its
// fields are all static job facts, so a resumed fetch emits the exact
// bytes a one-shot fetch does.
type streamSummaryLine struct {
	Done    bool   `json:"done"`
	JobID   string `json:"job_id"`
	Records int    `json:"records"`
	Shards  int    `json:"shards"`
}

// streamQuarantineLine is the data line standing in for a quarantined
// shard's records (the buffered document carries the same facts in its
// "quarantined" list).
type streamQuarantineLine struct {
	Shard       int    `json:"shard"`
	Quarantined bool   `json:"quarantined"`
	Reason      string `json:"reason,omitempty"`
}

// streamJobResults serves one streaming fetch of a completed job,
// starting at cur (the zero position for a fresh fetch). The caller
// has already validated job state and parsed/authorized the cursor.
func (s *Server) streamJobResults(w http.ResponseWriter, r *http.Request, jm *Jobs, job *Job, cur Cursor) {
	ev := eventFrom(r.Context())
	// The gate: K streams hold shard files open; the K+1th sheds.
	select {
	case s.streamSem <- struct{}{}:
	default:
		obs.C("serve.stream.shed").Inc()
		annotateAdmission(ev, AdmissionShedQueueFull, 0)
		writeError(w, http.StatusTooManyRequests, "stream limit reached", s.adm.RetryAfter())
		return
	}
	defer func() { <-s.streamSem }()
	obs.G("serve.stream.active").Add(1)
	defer obs.G("serve.stream.active").Add(-1)
	obs.C("serve.stream.started").Inc()
	if ev != nil {
		ev.Streamed = true
		ev.StreamFrom = fmt.Sprintf("%d/%d", cur.Shard, cur.Offset)
	}

	// Trailers must be declared before the first byte of the body; the
	// final cursor lands there for clients that read to the end, and in
	// the last control line for clients that do not.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", streamCursorTrailer)
	w.WriteHeader(http.StatusOK)

	st := &streamState{
		s:      s,
		jm:     jm,
		job:    job,
		rc:     http.NewResponseController(w),
		bw:     bufio.NewWriterSize(w, 32<<10),
		budget: s.cfg.Stream.ChunkTimeout,
		last:   cur,
	}
	end, err := st.run(r)

	// However the stream ended — complete, cut, drained — the trailer
	// names the first position the client has NOT durably received.
	w.Header().Set(streamCursorTrailer, jm.cursorFor(job, end.Shard, end.Offset))
	obs.C("serve.stream.chunks").Add(int64(st.chunks))
	obs.C("serve.stream.bytes").Add(st.bytes)
	if ev != nil {
		ev.StreamChunks = st.chunks
		ev.StreamEnd = fmt.Sprintf("%d/%d", end.Shard, end.Offset)
		ev.Records = st.records
	}
	switch {
	case err != nil:
		// The write path failed: slow reader past its budget, client
		// gone, or an injected serve.stream.write fault. The status is
		// long since written, so the "408" is a cut connection whose
		// last flushed chunk ended with a valid cursor.
		obs.C("serve.stream.cut").Inc()
		if ev != nil {
			ev.Outcome = obs.OutcomeStreamCut
			annotateError(ev, err)
		}
	case end.Shard >= job.shards:
		obs.C("serve.stream.completed").Inc()
		if ev != nil {
			ev.StreamComplete = true
		}
	default:
		// Ended early at a flush boundary without a write error: drain.
		obs.C("serve.stream.drained").Inc()
		if ev != nil {
			ev.Outcome = obs.OutcomeDraining
		}
	}
}

// streamState carries one stream's write-side plumbing.
type streamState struct {
	s      *Server
	jm     *Jobs
	job    *Job
	rc     *http.ResponseController
	bw     *bufio.Writer
	budget time.Duration
	last   Cursor // first position not yet flushed to the client

	chunks  int
	records int
	bytes   int64
}

// run walks shards from st.last to the end (or a cut/drain), returning
// the first position the client has not durably received.
func (st *streamState) run(r *http.Request) (Cursor, error) {
	job, jm := st.job, st.jm
	for shard := st.last.Shard; shard < job.shards; shard++ {
		if st.s.draining.Load() {
			// Drain: end at this boundary with a pure-cursor chunk so
			// the client learns the resume position even if it was not
			// tracking trailers.
			return st.last, st.flushChunk(nil, st.last)
		}
		if err := r.Context().Err(); err != nil {
			return st.last, err
		}
		art, err := jm.readShard(job, shard)
		if err != nil {
			// The shard went corrupt under us; it is quarantined and the
			// job re-queued. The stream ends here — the client resumes
			// once the shard is recomputed and gets identical bytes.
			return st.last, err
		}
		offset := 0
		if shard == st.last.Shard {
			offset = st.last.Offset
		}
		if art.Quarantined {
			line := streamQuarantineLine{Shard: shard, Quarantined: true, Reason: art.Reason}
			if err := st.flushChunk([]any{line}, Cursor{Shard: shard + 1}); err != nil {
				return st.last, err
			}
			continue
		}
		recs := art.Records
		for lo := offset; lo < len(recs); lo += st.s.cfg.Stream.FlushEvery {
			hi := lo + st.s.cfg.Stream.FlushEvery
			next := Cursor{Shard: shard, Offset: hi}
			if hi >= len(recs) {
				hi = len(recs)
				next = Cursor{Shard: shard + 1}
			}
			lines := make([]any, hi-lo)
			for i := range lines {
				lines[i] = recs[lo+i]
			}
			if err := st.flushChunk(lines, next); err != nil {
				return st.last, err
			}
			st.records += hi - lo
		}
	}
	// Terminal chunk: the summary data line plus the end-of-job cursor
	// (resuming from it yields the summary line again and nothing else,
	// so clients stop resuming once they have seen it).
	done := Cursor{Shard: job.shards}
	summary := streamSummaryLine{Done: true, JobID: job.ID, Records: len(job.rows), Shards: job.shards}
	return done, st.flushChunk([]any{summary}, done)
}

// flushChunk writes one chunk — data lines, then the control line
// signing next as the new resume position — under a fresh write
// deadline, and flushes it to the wire. Only after a clean flush does
// st.last advance: a failed chunk leaves the stream's durable position
// at the previous boundary, which is exactly what the client will
// resume from.
func (st *streamState) flushChunk(lines []any, next Cursor) error {
	if err := fault.Inject("serve.stream.write"); err != nil {
		return err
	}
	// One deadline covers building and flushing the whole chunk,
	// including any mid-chunk auto-flushes of the buffered writer.
	if err := st.rc.SetWriteDeadline(time.Now().Add(st.budget)); err != nil {
		return err
	}
	for _, line := range lines {
		data, err := json.Marshal(line)
		if err != nil {
			return err
		}
		st.bw.Write(data)
		st.bw.WriteByte('\n')
		st.bytes += int64(len(data)) + 1
	}
	cur := st.jm.cursorFor(st.job, next.Shard, next.Offset)
	// The cursor token is base64url + dots: JSON-safe without escaping.
	ctl := `{"cursor":"` + cur + `"}` + "\n"
	st.bw.WriteString(ctl)
	st.bytes += int64(len(ctl))
	if err := st.bw.Flush(); err != nil {
		return err
	}
	if err := st.rc.Flush(); err != nil {
		return err
	}
	st.chunks++
	st.last = next
	return nil
}
