package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"emgo/internal/obs"
	"emgo/internal/table"
)

// Batch defaults. A batch carries many records, so its body cap is
// wider than the single-record cap; the record-count cap is what bounds
// how long one batch can hold an admission slot.
const (
	DefaultMaxBatchRecords   = 256
	DefaultMaxBatchBodyBytes = 8 << 20
	DefaultBatchTimeout      = 30 * time.Second
)

// batchLatencyMSBuckets are the upper bounds (milliseconds) of the
// batch latency histogram "serve.batch.latency_ms".
var batchLatencyMSBuckets = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 30000}

// BatchRequest is the wire form of one bulk matching query: a list of
// left records matched against the deployed right table in one
// amortized pipeline pass.
type BatchRequest struct {
	// Records are the left records, each in the same shape as
	// MatchRequest.Record.
	Records []map[string]any `json:"records"`
	// TimeoutMS optionally lowers the server's batch deadline for this
	// request (it can never raise it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace asks for the span tree of the batch in the response.
	Trace bool `json:"trace,omitempty"`
}

// BatchResponse is the wire form of a bulk match answer. Results align
// with the request's records by index.
type BatchResponse struct {
	Results []*MatchResponse `json:"results"`
	// Count is len(Results), echoed for cheap client-side sanity checks.
	Count int `json:"count"`
	// Degraded counts results answered without the learned matcher.
	Degraded int `json:"degraded"`
	// ElapsedMS is server-side wall time for the whole batch.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Breaker is the breaker state observed by this batch.
	Breaker string `json:"breaker"`
	// Trace is the batch's span tree, when asked for.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// DecodeBatchRequest reads and validates one batch request from r,
// enforcing the byte cap itself (like DecodeMatchRequest it is safe on
// raw readers — the fuzz target feeds it arbitrary bytes with no HTTP
// layer around it) plus a record-count cap. It never panics and never
// allocates beyond maxBytes+1 for the body; every failure is a
// *RequestError with a 4xx status.
func DecodeBatchRequest(r io.Reader, maxBytes int64, maxRecords int) (*BatchRequest, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBatchBodyBytes
	}
	if maxRecords <= 0 {
		maxRecords = DefaultMaxBatchRecords
	}
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &RequestError{Status: http.StatusRequestEntityTooLarge, Msg: "batch request body too large"}
		}
		return nil, badRequest("read batch request body: %v", err)
	}
	if int64(len(data)) > maxBytes {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("batch request body exceeds %d bytes", maxBytes),
		}
	}
	if len(data) == 0 {
		return nil, badRequest("empty batch request body")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("parse batch request JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("batch request body has trailing data after the JSON document")
	}
	if len(req.Records) == 0 {
		return nil, badRequest(`batch request needs a non-empty "records" array`)
	}
	if len(req.Records) > maxRecords {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("batch has %d records, cap is %d (submit a job for larger inputs)", len(req.Records), maxRecords),
		}
	}
	for i, rec := range req.Records {
		if len(rec) == 0 {
			return nil, badRequest("batch record %d is empty", i)
		}
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("timeout_ms must be >= 0")
	}
	return &req, nil
}

// recordRows validates and converts request records into rows under the
// left schema; a bad record is reported with its index.
func recordRows(schema *table.Schema, records []map[string]any) ([]table.Row, error) {
	rows := make([]table.Row, len(records))
	for i, rec := range records {
		row, err := RecordRow(schema, rec)
		if err != nil {
			var re *RequestError
			if errors.As(err, &re) {
				return nil, &RequestError{Status: re.Status, Msg: fmt.Sprintf("record %d: %s", i, re.Msg)}
			}
			return nil, badRequest("record %d: %v", i, err)
		}
		rows[i] = row
	}
	return rows, nil
}

// rowsTable assembles request rows into a left-schema table.
func (s *Server) rowsTable(name string, rows []table.Row) (*table.Table, error) {
	t := table.New(name, s.left.Schema())
	for _, row := range rows {
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// handleMatchBatch is the bulk matching endpoint: one admission slot,
// one blocking pass, one matcher pass for the whole batch.
func (s *Server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	obs.C("serve.batch.requests").Inc()
	ev := eventFrom(r.Context())
	if s.draining.Load() {
		obs.C("serve.shed.draining").Inc()
		annotateAdmission(ev, AdmissionShedDraining, 0)
		writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBodyBytes)
	req, err := DecodeBatchRequest(r.Body, s.cfg.MaxBatchBodyBytes, s.cfg.MaxBatchRecords)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	rows, err := recordRows(s.left.Schema(), req.Records)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	left, err := s.rowsTable("batch", rows)
	if err != nil {
		s.writeRequestError(w, badRequest("%v", err))
		return
	}

	budget := s.cfg.BatchTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	queued := time.Now()
	release, err := s.adm.Acquire(ctx)
	wait := time.Since(queued)
	switch {
	case errors.Is(err, ErrShed):
		annotateAdmission(ev, AdmissionShedQueueFull, wait)
		writeError(w, http.StatusTooManyRequests, "overloaded: admission queue full", s.adm.RetryAfter())
		return
	case errors.Is(err, ErrDraining):
		annotateAdmission(ev, AdmissionShedDraining, wait)
		writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
		return
	case err != nil: // deadline expired while queued
		annotateAdmission(ev, AdmissionDeadlineInQueue, wait)
		writeError(w, http.StatusTooManyRequests, "overloaded: deadline expired in admission queue", s.adm.RetryAfter())
		return
	}
	defer release()
	annotateAdmission(ev, AdmissionAdmitted, wait)

	start := time.Now()
	resps, trace, err := s.matchSet(ctx, left, s.breaker, req.Trace)
	elapsed := time.Since(start)
	obs.H("serve.batch.latency_ms", batchLatencyMSBuckets).Observe(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		annotateError(ev, err)
		if ctx.Err() != nil {
			obs.C("serve.timeouts").Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded", 0)
			return
		}
		obs.C("serve.errors").Inc()
		writeError(w, http.StatusInternalServerError, "internal error: "+err.Error(), 0)
		return
	}
	resp := &BatchResponse{
		Results:   resps,
		Count:     len(resps),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		Breaker:   s.breaker.State().String(),
		Trace:     trace,
	}
	for _, r := range resps {
		if r.Degraded {
			resp.Degraded++
		}
		obs.C("serve.matches").Add(int64(len(r.Matches)))
	}
	obs.C("serve.batch.records").Add(int64(resp.Count))
	if resp.Degraded > 0 {
		obs.C("serve.degraded").Add(int64(resp.Degraded))
	}
	if ev != nil {
		ev.Records = resp.Count
		ev.Breaker = resp.Breaker
		for _, r := range resps {
			ev.Candidates += r.Candidates
			ev.Matches += len(r.Matches)
		}
		if resp.Degraded > 0 {
			ev.Degraded = true
			ev.DegradedReason = resps[0].DegradedReason
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
