package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"emgo/internal/obs"
)

// JobSubmitRequest is the wire form of a job submission: the whole left
// table to match, plus optional shard geometry.
type JobSubmitRequest struct {
	// Records are the left records, each in the same shape as
	// MatchRequest.Record.
	Records []map[string]any `json:"records"`
	// ShardSize optionally overrides the server's records-per-shard.
	ShardSize int `json:"shard_size,omitempty"`
}

// DecodeJobRequest reads and validates one job submission from r under
// byte and record caps. Like the other decoders it enforces the byte
// cap itself, never panics, and returns *RequestError with a 4xx status
// for every malformed input.
func DecodeJobRequest(r io.Reader, maxBytes int64, maxRecords int) (*JobSubmitRequest, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultJobMaxBodyBytes
	}
	if maxRecords <= 0 {
		maxRecords = DefaultJobMaxRecords
	}
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &RequestError{Status: http.StatusRequestEntityTooLarge, Msg: "job request body too large"}
		}
		return nil, badRequest("read job request body: %v", err)
	}
	if int64(len(data)) > maxBytes {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("job request body exceeds %d bytes", maxBytes),
		}
	}
	if len(data) == 0 {
		return nil, badRequest("empty job request body")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var req JobSubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("parse job request JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("job request body has trailing data after the JSON document")
	}
	if len(req.Records) == 0 {
		return nil, badRequest(`job needs a non-empty "records" array`)
	}
	if len(req.Records) > maxRecords {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("job has %d records, cap is %d", len(req.Records), maxRecords),
		}
	}
	for i, rec := range req.Records {
		if len(rec) == 0 {
			return nil, badRequest("job record %d is empty", i)
		}
	}
	if req.ShardSize < 0 {
		return nil, badRequest("shard_size must be >= 0")
	}
	return &req, nil
}

// jobsOrUnavailable answers 503 when the job tier is disabled and
// returns the manager otherwise.
func (s *Server) jobsOrUnavailable(w http.ResponseWriter) *Jobs {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "job tier disabled (start emserve with -job-dir)", 0)
		return nil
	}
	return s.jobs
}

// handleJobSubmit accepts a bulk job: validate, persist durably,
// enqueue, answer 202 with the job's status document (or the existing
// job's — submission is idempotent by content). A full queue sheds with
// 429 + Retry-After through the same hint path online shedding uses.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	jm := s.jobsOrUnavailable(w)
	if jm == nil {
		return
	}
	if s.draining.Load() {
		obs.C("serve.shed.draining").Inc()
		writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
		return
	}
	cfg := jm.Config()
	r.Body = http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes)
	req, err := DecodeJobRequest(r.Body, cfg.MaxBodyBytes, cfg.MaxRecords)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	job, err := jm.Submit(req.Records, req.ShardSize, obs.RequestID(r.Context()))
	switch {
	case errors.Is(err, ErrJobShed):
		writeError(w, http.StatusTooManyRequests, "job queue full", s.adm.RetryAfter())
		return
	case err != nil:
		s.writeRequestError(w, err)
		return
	}
	annotateJob(eventFrom(r.Context()), job)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleJobList lists every known job's status.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jm := s.jobsOrUnavailable(w)
	if jm == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jm.List()})
}

// handleJobStatus is the poll endpoint.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	jm := s.jobsOrUnavailable(w)
	if jm == nil {
		return
	}
	job := jm.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	annotateJob(eventFrom(r.Context()), job)
	writeJSON(w, http.StatusOK, job.Status())
}

// annotateJob records the job identity on the request's wide event.
// Safe on nil event and nil job.
func annotateJob(ev *obs.WideEvent, job *Job) {
	if ev == nil || job == nil {
		return
	}
	ev.JobID = job.ID
}

// handleJobResults serves a completed job's results. Two transports
// share the route: `?stream=ndjson` (or any `?cursor=`) streams NDJSON
// shard by shard with resume cursors; the legacy buffered path
// assembles the whole document, and is capped at
// Stream.BufferedMaxRecords — above that it answers 413 pointing at
// the streaming path, because its memory scales with job size. An
// incomplete job answers 409 with its state; a shard found corrupt at
// read time answers 503 (the job is already re-queued to recompute it,
// so the fetch is retryable).
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	jm := s.jobsOrUnavailable(w)
	if jm == nil {
		return
	}
	job := jm.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	annotateJob(eventFrom(r.Context()), job)
	if st := job.State(); st != JobCompleted {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s, not completed", st), 0)
		return
	}

	rawCursor := r.URL.Query().Get("cursor")
	if rawCursor != "" || r.URL.Query().Get("stream") != "" {
		cur := Cursor{Job: job.ID, Matcher: jm.matcherChecksum()}
		if rawCursor != "" {
			c, err := jm.parseCursorFor(job, rawCursor)
			if err != nil {
				obs.C("serve.stream.bad_cursor").Inc()
				s.writeRequestError(w, err)
				return
			}
			cur = c
			obs.C("serve.stream.resumed").Inc()
		}
		if s.draining.Load() {
			// Don't start (or resume) a stream on a draining server; the
			// client's cursor stays valid for the next instance.
			obs.C("serve.shed.draining").Inc()
			writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
			return
		}
		s.streamJobResults(w, r, jm, job, cur)
		return
	}

	if n := len(job.rows); n > s.cfg.Stream.BufferedMaxRecords {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf(
			"job has %d records, over the buffered-fetch cap of %d; fetch with ?stream=ndjson",
			n, s.cfg.Stream.BufferedMaxRecords), 0)
		return
	}
	res, err := jm.Results(job)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error(), s.adm.RetryAfter())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleJobCancel stops a job: a queued job never starts, a running job
// stops after its in-flight shard commits.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	jm := s.jobsOrUnavailable(w)
	if jm == nil {
		return
	}
	job := jm.Cancel(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	annotateJob(eventFrom(r.Context()), job)
	writeJSON(w, http.StatusOK, job.Status())
}
