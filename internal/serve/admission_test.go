package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestAdmissionFastPath(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must not double-free the slot
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if _, err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fills the line.
	waiting := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(waiting)
		r, werr := a.Acquire(context.Background())
		if werr == nil {
			r()
		}
		done <- werr
	}()
	<-waiting
	// Poll until the waiter is actually queued (it signalled before the
	// Acquire call; give it a moment to join the line).
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// The line is full: the next arrival is shed immediately.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with full queue = %v, want ErrShed", err)
	}
	rel()
	if werr := <-done; werr != nil {
		t.Fatalf("queued request should be admitted once the slot frees: %v", werr)
	}
}

func TestAdmissionNoQueueShedsImmediately(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: -1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with waiting disabled = %v, want ErrShed", err)
	}
}

func TestAdmissionDeadlineInQueue(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire with expiring deadline = %v, want DeadlineExceeded", err)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued after deadline = %d, want 0 (waiter must leave the line)", got)
	}
}

func TestAdmissionDrain(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a.StartDrain()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v, want ErrDraining", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var clean bool
	go func() {
		defer wg.Done()
		clean = a.Drain(2 * time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	rel()
	wg.Wait()
	if !clean {
		t.Fatal("drain should complete once the in-flight request releases")
	}
}

func TestAdmissionDrainTimesOut(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	a.StartDrain()
	if a.Drain(30 * time.Millisecond) {
		t.Fatal("drain reported clean with a request still in flight")
	}
}

func TestRetryAfterClamped(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	// No observations yet: still at least a second.
	if got := a.RetryAfter(); got < time.Second || got > time.Minute {
		t.Fatalf("RetryAfter with no data = %v, want within [1s, 60s]", got)
	}
	// A huge observed service time clamps at the ceiling.
	a.observe(10 * time.Minute)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if got := a.RetryAfter(); got != time.Minute {
		t.Fatalf("RetryAfter with slow service = %v, want 60s clamp", got)
	}
}
