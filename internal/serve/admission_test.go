package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestAdmissionFastPath(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must not double-free the slot
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if _, err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fills the line.
	waiting := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(waiting)
		r, werr := a.Acquire(context.Background())
		if werr == nil {
			r()
		}
		done <- werr
	}()
	<-waiting
	// Poll until the waiter is actually queued (it signalled before the
	// Acquire call; give it a moment to join the line).
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// The line is full: the next arrival is shed immediately.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with full queue = %v, want ErrShed", err)
	}
	rel()
	if werr := <-done; werr != nil {
		t.Fatalf("queued request should be admitted once the slot frees: %v", werr)
	}
}

func TestAdmissionNoQueueShedsImmediately(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: -1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire with waiting disabled = %v, want ErrShed", err)
	}
}

func TestAdmissionDeadlineInQueue(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire with expiring deadline = %v, want DeadlineExceeded", err)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued after deadline = %d, want 0 (waiter must leave the line)", got)
	}
}

func TestAdmissionDrain(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a.StartDrain()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v, want ErrDraining", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var clean bool
	go func() {
		defer wg.Done()
		clean = a.Drain(2 * time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	rel()
	wg.Wait()
	if !clean {
		t.Fatal("drain should complete once the in-flight request releases")
	}
}

func TestAdmissionDrainTimesOut(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	a.StartDrain()
	if a.Drain(30 * time.Millisecond) {
		t.Fatal("drain reported clean with a request still in flight")
	}
}

func TestRetryAfterClamped(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	// No observations yet: still at least a second.
	if got := a.RetryAfter(); got < time.Second || got > time.Minute {
		t.Fatalf("RetryAfter with no data = %v, want within [1s, 60s]", got)
	}
	// A huge observed service time clamps at the ceiling.
	a.observe(10 * time.Minute)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if got := a.RetryAfter(); got != time.Minute {
		t.Fatalf("RetryAfter with slow service = %v, want 60s clamp", got)
	}
}

func TestRetryAfterNonZeroWhileSaturated(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 4})
	// Sustained overload: both slots held, a full wait line behind them,
	// and slow observed service times feeding the EWMA.
	a.observe(4 * time.Second)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, err := a.Acquire(ctx); err == nil {
				rel()
			}
		}()
	}
	// Wait for the line to actually form.
	for i := 0; i < 200 && a.Queued() < 4; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.Queued() != 4 {
		cancel()
		wg.Wait()
		t.Fatalf("queued %d waiters, want 4", a.Queued())
	}

	// Saturated: the hint must be meaningfully non-zero (the line is 4
	// deep over 2 slots at ~4s each -> well past the 1s floor) and still
	// bounded by the 60s ceiling.
	got := a.RetryAfter()
	if got <= time.Second {
		t.Fatalf("RetryAfter while saturated = %v, want > 1s", got)
	}
	if got > time.Minute {
		t.Fatalf("RetryAfter while saturated = %v, want <= 60s clamp", got)
	}

	cancel()
	wg.Wait()
	rel1()
	rel2()
}

func TestRetryAfterDecaysAfterLoadDrops(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	// Overload era: slow service times push the EWMA (and the hint) up.
	for i := 0; i < 8; i++ {
		a.observe(10 * time.Second)
	}
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RetryAfter(); got < 5*time.Second {
		t.Fatalf("RetryAfter during overload = %v, want a large hint", got)
	}
	rel()

	// Load drops: fast requests flow through and the EWMA (alpha 1/8)
	// must decay the hint back toward the 1s floor, not remember the
	// overload forever.
	for i := 0; i < 100; i++ {
		a.observe(time.Millisecond)
	}
	if got := a.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter after recovery = %v, want the 1s floor", got)
	}
}

func TestRetryAfterEWMABoundedByOutliers(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1})
	// Converge on a steady 100ms service time...
	for i := 0; i < 100; i++ {
		a.observe(100 * time.Millisecond)
	}
	// ...then one pathological 10s request. An alpha-1/8 EWMA moves at
	// most 1/8 of the gap per sample, so one outlier cannot swing the
	// hint to the outlier's magnitude.
	a.observe(10 * time.Second)
	avg := time.Duration(a.avgNanos.Load())
	if avg > 2*time.Second {
		t.Fatalf("one 10s outlier dragged the EWMA to %v — not bounded", avg)
	}
	if avg <= 100*time.Millisecond {
		t.Fatalf("EWMA %v ignored the outlier entirely", avg)
	}
}

func TestAdmissionBurstShedsOnlyTheExcess(t *testing.T) {
	leakcheck.Check(t)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 2})
	// Hold the only slot, then land a 20-request burst at once: exactly
	// MaxQueue may wait, the other 17 must shed immediately with ErrShed
	// (the burst path — queued.Add races resolved by the unique
	// post-increment each arrival observes).
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const burst = 20
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		shed, ok   int
		unexpected []error
	)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(ctx)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
				rel()
			case errors.Is(err, ErrShed):
				shed++
			default:
				unexpected = append(unexpected, err)
			}
		}()
	}
	// Give the burst a moment to land, then free the slot so the two
	// queued requests can run down.
	for i := 0; i < 500 && a.Queued() < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	hold()
	wg.Wait()

	if len(unexpected) > 0 {
		t.Fatalf("unexpected acquire errors: %v", unexpected)
	}
	if shed != burst-2 {
		t.Fatalf("burst of %d against queue 2: %d shed, want %d", burst, shed, burst-2)
	}
	if ok != 2 {
		t.Fatalf("%d queued requests eventually admitted, want 2", ok)
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("gate not empty after the burst: inflight %d queued %d", a.InFlight(), a.Queued())
	}
}
