package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"emgo/internal/contprof"
	"emgo/internal/fault"
	"emgo/internal/leakcheck"
)

// profConfig builds a serve Config with a live profiler over dir:
// triggered captures only (no periodic goroutine), tiny CPU window, no
// global mutex/block sampling so tests stay independent.
func profConfig(t *testing.T) (Config, *contprof.Profiler) {
	t.Helper()
	p, err := contprof.Open(contprof.Config{
		Dir:             t.TempDir(),
		Interval:        -1,
		CPUDuration:     5 * time.Millisecond,
		TriggerCooldown: time.Hour,
		MutexFraction:   -1,
		BlockRate:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return Config{Profiler: p}, p
}

func TestContprofEndpointMountsWithProfiler(t *testing.T) {
	leakcheck.Check(t)
	cfg, _ := profConfig(t)
	_, ts := newTestServer(t, cfg)

	// Requests run under pprof labels; the route must answer normally.
	status, _, body := postMatch(t, ts.URL, l0Request)
	if status != http.StatusOK {
		t.Fatalf("match status = %d, body %s", status, body)
	}

	// The ring listing is mounted and parseable.
	resp, err := http.Get(ts.URL + "/debug/contprof")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contprof list status = %d", resp.StatusCode)
	}
	var listing struct {
		Dir string `json:"dir"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("contprof listing not JSON: %v", err)
	}
	if listing.Dir == "" {
		t.Fatal("contprof listing carries no ring dir")
	}

	// A trigger over the mounted endpoint schedules a capture.
	tresp, err := http.Post(ts.URL+"/debug/contprof/trigger?reason=test", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tresp.Body) //nolint:errcheck
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusAccepted {
		t.Fatalf("trigger status = %d", tresp.StatusCode)
	}
}

func TestContprofEndpointAbsentWithoutProfiler(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/contprof")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("contprof without profiler status = %d, want 404", resp.StatusCode)
	}
}

func TestTailOutlierTriggersCapture(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	cfg, p := profConfig(t)
	cfg.TailN = 2
	_, ts := newTestServer(t, cfg)

	// Fill the tail heap (TailN=2) with fast requests, then inject one
	// 60ms sleeper: slower than everything retained, it displaces the
	// heap root and must trigger a tail_outlier capture.
	for i := 0; i < 3; i++ {
		status, _, body := postMatch(t, ts.URL, l0Request)
		if status != http.StatusOK {
			t.Fatalf("match %d status = %d, body %s", i, status, body)
		}
	}
	if _, err := fault.EnableSpec("serve.match:mode=sleep,sleep=60ms,oncall=1"); err != nil {
		t.Fatal(err)
	}
	status, _, body := postMatch(t, ts.URL, l0Request)
	if status != http.StatusOK {
		t.Fatalf("outlier match status = %d, body %s", status, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, m := range p.List() {
			if m.Trigger == contprof.TriggerTailOutlier {
				if m.RequestID == "" {
					t.Fatal("tail_outlier capture carries no request id")
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no tail_outlier capture landed; ring: %+v", p.List())
}
