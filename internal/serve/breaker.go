package serve

import (
	"sync"
	"time"

	"emgo/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed is normal operation: the ML matcher serves requests
	// and consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen is tripped: the ML matcher is bypassed entirely and
	// every request takes the rule-only degraded path until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen is the recovery probe: a single request is allowed
	// through to the matcher; success re-closes the breaker, failure
	// re-opens it for another cooldown.
	BreakerHalfOpen
)

// String returns the lowercase state name used in responses and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the circuit breaker around the ML matcher.
type BreakerConfig struct {
	// Failures is how many consecutive matcher failures trip the breaker
	// (<= 0 selects DefaultBreakerFailures).
	Failures int
	// Cooldown is how long the breaker stays open before probing
	// (<= 0 selects DefaultBreakerCooldown).
	Cooldown time.Duration
	// LatencyLimit, when > 0, counts a matcher call slower than this as
	// a failure even if it returned no error — the "slow stages must not
	// take the system down" half of graceful degradation.
	LatencyLimit time.Duration
}

// Breaker defaults.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 10 * time.Second
)

// Breaker is a circuit breaker guarding the learned-matcher stage.
// Callers bracket the guarded call with Allow / Record; when Allow says
// no, the caller takes the rule-only fallback. The zero Breaker is not
// valid; use NewBreaker.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu         sync.Mutex
	state      BreakerState
	failures   int       // consecutive, in Closed
	openedAt   time.Time // when the breaker last tripped
	probing    bool      // a half-open probe is in flight
	generation int64     // bumped on every transition (metrics/tests)
}

// NewBreaker builds a breaker with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = DefaultBreakerFailures
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	return &Breaker{cfg: cfg, now: time.Now}
}

// State reports the current state, advancing Open to HalfOpen when the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// advanceLocked moves Open -> HalfOpen once the cooldown elapses.
func (b *Breaker) advanceLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transitionLocked(BreakerHalfOpen)
	}
}

// transitionLocked switches state and updates the metrics surface.
func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	b.generation++
	obs.C("serve.breaker.transitions").Inc()
	obs.C("serve.breaker.to_" + to.String()).Inc()
	obs.G("serve.breaker.state").Set(int64(to))
}

// Allow reports whether the guarded call may proceed. In HalfOpen only
// one probe is admitted at a time; concurrent requests are refused (they
// degrade) until the probe's Record lands.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record reports the outcome of a call Allow admitted. err != nil, or a
// latency above the configured limit, counts as a failure.
func (b *Breaker) Record(err error, latency time.Duration) {
	failed := err != nil ||
		(b.cfg.LatencyLimit > 0 && latency > b.cfg.LatencyLimit)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		obs.C("serve.breaker.failures").Inc()
		if b.failures >= b.cfg.Failures {
			b.openedAt = b.now()
			b.failures = 0
			b.transitionLocked(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		if failed {
			obs.C("serve.breaker.failures").Inc()
			b.openedAt = b.now()
			b.transitionLocked(BreakerOpen)
			return
		}
		b.transitionLocked(BreakerClosed)
	case BreakerOpen:
		// A late Record from a call admitted before the trip: the trip
		// already decided; consecutive-failure bookkeeping restarts when
		// the breaker half-opens.
	}
}

// Reset force-closes the breaker — called after a successful hot reload
// replaced the matcher the breaker was protecting against.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.transitionLocked(BreakerClosed)
}

// Generation returns the transition count (test hook).
func (b *Breaker) Generation() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.generation
}
