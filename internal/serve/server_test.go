package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/feature"
	"emgo/internal/leakcheck"
	"emgo/internal/ml"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
	"emgo/internal/workflow"
)

// fixtureTables builds the deployable left (schema donor + training
// rows) and right (catalog) tables: one sure match by award number, one
// high-similarity title pair, one similar-title false positive the
// negative rule vetoes.
func fixtureTables(t testing.TB) (*table.Table, *table.Table) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "RecordId", Kind: table.String},
			table.Field{Name: "Num", Kind: table.String},
			table.Field{Name: "Title", Kind: table.String},
		)
	}
	l := table.New("L", schema())
	l.MustAppend(table.Row{table.S("l0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	l.MustAppend(table.Row{table.S("l1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	l.MustAppend(table.Row{table.S("l2"), table.S("WIS00001"), table.S("dairy cattle genetics study wisconsin")})

	r := table.New("R", schema())
	r.MustAppend(table.Row{table.S("r0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	r.MustAppend(table.Row{table.S("r1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	r.MustAppend(table.Row{table.S("r2"), table.S("WIS99999"), table.S("dairy cattle genetics study wisconsin")})
	return l, r
}

// fixtureWorkflow assembles the full deployed workflow shape around the
// fixture tables.
func fixtureWorkflow(t testing.TB) (*workflow.Workflow, *table.Table, *table.Table) {
	t.Helper()
	l, r := fixtureTables(t)
	m1, err := rules.NewEqual("M1", l, "Num", nil, r, "Num", nil, rules.Match)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := rules.NewComparableMismatch("neg", l, "Num", nil, r, "Num", nil, rules.Set{"XXX#####"})
	if err != nil {
		t.Fatal(err)
	}
	corr := map[string]string{"Title": "Title"}
	fs, err := feature.Generate(l, r, corr, []string{"Title"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}, {A: 1, B: 0}, {A: 2, B: 0}, {A: 2, B: 2}}
	y := []int{1, 1, 0, 0, 0, 1}
	x, err := fs.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	x, err = im.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	m := &ml.DecisionTree{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	w := &workflow.Workflow{
		Name:      "serve-fixture",
		SureRules: rules.NewEngine(m1),
		Blockers: []block.Blocker{
			block.Overlap{LeftCol: "Title", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
		},
		Features: fs, Imputer: im, Matcher: m,
		NegativeRules: rules.NewEngine(neg),
	}
	return w, l, r
}

// newTestServer spins up the service over the fixture workflow.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	w, l, r := fixtureWorkflow(t)
	s, err := New(context.Background(), cfg, w, l, r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close) // stops the job dispatcher (no-op without a job tier)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postMatch sends one match request and decodes the response envelope.
func postMatch(t *testing.T, url string, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/match", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// l0Request matches r0 through the sure rule (equal award number); its
// blocked candidate is subtracted as already-sure, so the learned
// matcher never runs for it.
const l0Request = `{"record":{"RecordId":"q0","Num":"2008-11111-11111","Title":"corn fungicide guidelines north central"}}`

// l1Request has no award number: it can only match r1 through the
// learned path (title blocking + matcher), which makes it the probe
// that exercises the breaker and fault machinery.
const l1Request = `{"record":{"RecordId":"q1","Title":"swamp dodder ecology management carrot"}}`

func TestMatchEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})
	status, _, body := postMatch(t, ts.URL, l0Request)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Degraded {
		t.Fatalf("healthy request degraded: %s", body)
	}
	if mr.Breaker != "closed" {
		t.Fatalf("breaker = %q, want closed", mr.Breaker)
	}
	var sureHit bool
	for _, m := range mr.Matches {
		if m.RightID == "r0" && m.Source == "rule:M1" {
			sureHit = true
		}
	}
	if !sureHit {
		t.Fatalf("sure-rule match for r0 missing: %s", body)
	}

	// The learned path: a title-only record matches r1 via the matcher.
	status, _, body = postMatch(t, ts.URL, l1Request)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Degraded {
		t.Fatalf("healthy learned-path request degraded: %s", body)
	}
	var learnedHit bool
	for _, m := range mr.Matches {
		if m.RightID == "r1" && m.Source == "matcher" {
			learnedHit = true
			if m.Score == nil {
				t.Fatalf("probabilistic matcher produced no score: %s", body)
			}
		}
	}
	if !learnedHit {
		t.Fatalf("learned match for r1 missing: %s", body)
	}
}

func TestMatchDegradesOnMatcherFault(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})
	fault.Enable("ml.predict", fault.Plan{}) // every predict call errors
	status, _, body := postMatch(t, ts.URL, l1Request)
	if status != http.StatusOK {
		t.Fatalf("degraded request must still answer 200, got %d: %s", status, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Degraded || mr.DegradedReason != ReasonMatcherError {
		t.Fatalf("want degraded matcher_error, got %s", body)
	}
	if mr.Candidates == 0 {
		t.Fatalf("learned-path request found no candidates: %s", body)
	}

	// A sure-rule record still gets its match while the matcher is down.
	status, _, body = postMatch(t, ts.URL, l0Request)
	if status != http.StatusOK {
		t.Fatalf("sure-rule request during matcher outage = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	var sureHit bool
	for _, m := range mr.Matches {
		if m.RightID == "r0" && m.Source == "rule:M1" {
			sureHit = true
		}
	}
	if !sureHit {
		t.Fatalf("matcher outage lost the sure-rule match: %s", body)
	}
}

// TestBreakerTripsAndRecoversUnderInjectedFaults is the end-to-end
// breaker lifecycle: injected matcher faults trip it open, requests
// degrade with breaker_open while it cools down, and after the faults
// are disarmed the half-open probe re-closes it.
func TestBreakerTripsAndRecoversUnderInjectedFaults(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, Config{
		Breaker: BreakerConfig{Failures: 2, Cooldown: 50 * time.Millisecond},
	})
	fault.Enable("ml.predict", fault.Plan{})

	// Two faulted requests trip the breaker.
	for i := 0; i < 2; i++ {
		status, _, body := postMatch(t, ts.URL, l1Request)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		var mr MatchResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if !mr.Degraded || mr.DegradedReason != ReasonMatcherError {
			t.Fatalf("request %d: want matcher_error, got %s", i, body)
		}
	}
	if st := s.Breaker().State(); st != BreakerOpen {
		t.Fatalf("breaker after trip threshold = %v, want open", st)
	}

	// While open, the matcher is bypassed without even being called.
	before := fault.Count("ml.predict")
	status, _, body := postMatch(t, ts.URL, l1Request)
	if status != http.StatusOK {
		t.Fatalf("open-breaker request status %d: %s", status, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Degraded || mr.DegradedReason != ReasonBreakerOpen {
		t.Fatalf("want breaker_open, got %s", body)
	}
	if fault.Count("ml.predict") != before {
		t.Fatal("open breaker still called the matcher")
	}

	// Recovery: disarm the fault, wait out the cooldown; the next
	// request is the half-open probe, succeeds, and re-closes.
	fault.Reset()
	time.Sleep(60 * time.Millisecond)
	status, _, body = postMatch(t, ts.URL, l1Request)
	if status != http.StatusOK {
		t.Fatalf("probe request status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Degraded {
		t.Fatalf("probe request should serve the learned path: %s", body)
	}
	if st := s.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
}

// TestOverloadSheds floods a 1-slot, no-queue server while the handler
// is slowed by an injected fault: the excess must come back 429 with a
// Retry-After hint, not pile up.
func TestOverloadSheds(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
	})
	fault.Enable("serve.match", fault.Plan{Mode: fault.ModeSleep, Sleep: 150 * time.Millisecond})

	const burst = 6
	statuses := make([]int, burst)
	headers := make([]http.Header, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, h, _ := postMatch(t, ts.URL, l0Request)
			statuses[i], headers[i] = st, h
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if headers[i].Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
		default:
			t.Fatalf("unexpected status %d", st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of %d: ok=%d shed=%d, want both > 0", burst, ok, shed)
	}
}

func TestDrainFlow(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	s, ts := newTestServer(t, Config{DrainTimeout: time.Second})

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz = %d", st)
	}
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz = %d", st)
	}

	resp, err := http.Post(ts.URL+"/-/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain = %d, want 202", resp.StatusCode)
	}

	// Readiness flips, liveness stays, matching is refused with 503.
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", st)
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", st)
	}
	status, _, body := postMatch(t, ts.URL, l0Request)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("match while draining = %d (%s), want 503", status, body)
	}
	select {
	case <-s.Drained():
	case <-time.After(2 * time.Second):
		t.Fatal("drain never completed")
	}
}

func TestStatusAndDriftEndpoints(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{})
	// Serve a couple of requests so the profile has samples.
	for i := 0; i < 2; i++ {
		if st, _, body := postMatch(t, ts.URL, l0Request); st != http.StatusOK {
			t.Fatalf("match = %d: %s", st, body)
		}
	}
	resp, err := http.Get(ts.URL + "/-/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusData
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Breaker != "closed" || st.RightRows != 3 {
		t.Fatalf("status = %+v", st)
	}
	if st.Matcher == nil {
		t.Fatal("status missing matcher provenance")
	}

	dresp, err := http.Get(ts.URL + "/-/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	data, _ := io.ReadAll(dresp.Body)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drift = %d: %s", dresp.StatusCode, data)
	}
	var prof map[string]any
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatalf("drift profile not JSON: %v\n%s", err, data)
	}
	// Without a baseline, the check form is a client error.
	cresp, err := http.Get(ts.URL + "/-/drift?check=1")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("drift check without baseline = %d, want 400", cresp.StatusCode)
	}
}

func TestMatchBadRequests(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", "{nope", 400},
		{"unknown column", `{"record":{"Bogus":"x"}}`, 400},
		{"oversized", fmt.Sprintf(`{"record":{"Title":%q}}`, bytes.Repeat([]byte("a"), 1024)), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postMatch(t, ts.URL, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d (%s), want %d", status, body, tc.want)
			}
		})
	}
}

// TestPerRequestDeadline proves the deadline propagates: a handler
// slowed far past the request's budget comes back 429/504, not a hang.
func TestPerRequestDeadline(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	_, ts := newTestServer(t, Config{RequestTimeout: 10 * time.Second})
	fault.Enable("serve.match", fault.Plan{Mode: fault.ModeSleep, Sleep: 300 * time.Millisecond})
	body := `{"record":{"Num":"2008-11111-11111"},"timeout_ms":50}`
	start := time.Now()
	status, _, data := postMatch(t, ts.URL, body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, data)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the request: took %v", elapsed)
	}
}
