//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in. Tests
// that measure heap occupancy skip under it: instrumented allocations
// carry shadow state that inflates HeapAlloc several-fold, so the
// memory budgets they pin are meaningless there.
const raceEnabled = true
