package serve

import (
	"errors"
	"strings"
	"testing"

	"emgo/internal/table"
)

func reqSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "ID", Kind: table.String},
		table.Field{Name: "Num", Kind: table.String},
		table.Field{Name: "Year", Kind: table.Int},
	)
}

func TestDecodeMatchRequestValid(t *testing.T) {
	body := `{"record":{"ID":"l0","Num":"2008-1","Year":2008},"timeout_ms":250,"trace":true}`
	req, err := DecodeMatchRequest(strings.NewReader(body), 0)
	if err != nil {
		t.Fatal(err)
	}
	if req.TimeoutMS != 250 || !req.Trace || len(req.Record) != 3 {
		t.Fatalf("decoded %+v", req)
	}
	row, err := RecordRow(reqSchema(), req.Record)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Str() != "l0" || row[2].IsNull() {
		t.Fatalf("row = %v", row)
	}
}

func TestDecodeMatchRequestRejections(t *testing.T) {
	cases := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"empty body", "", 400},
		{"not json", "hello", 400},
		{"wrong top-level type", `[1,2,3]`, 400},
		{"unknown field", `{"record":{"ID":"x"},"bogus":1}`, 400},
		{"missing record", `{"timeout_ms":5}`, 400},
		{"empty record", `{"record":{}}`, 400},
		{"negative timeout", `{"record":{"ID":"x"},"timeout_ms":-1}`, 400},
		{"trailing garbage", `{"record":{"ID":"x"}} extra`, 400},
		{"oversized", `{"record":{"ID":"` + strings.Repeat("a", 2048) + `"}}`, 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeMatchRequest(strings.NewReader(tc.body), 1024)
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want *RequestError", err)
			}
			if re.Status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", re.Status, tc.wantStatus, re.Msg)
			}
		})
	}
}

func TestDecodeMatchRequestAtCapExactlyOK(t *testing.T) {
	body := `{"record":{"ID":"x"}}`
	if _, err := DecodeMatchRequest(strings.NewReader(body), int64(len(body))); err != nil {
		t.Fatalf("body exactly at cap rejected: %v", err)
	}
}

func TestRecordRowUnknownColumn(t *testing.T) {
	_, err := RecordRow(reqSchema(), map[string]any{"Titel": "typo"})
	var re *RequestError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("err = %v, want 400 RequestError", err)
	}
	if !strings.Contains(re.Msg, "Titel") {
		t.Fatalf("error should name the bad column: %q", re.Msg)
	}
}

func TestRecordRowMissingAndDirtyCells(t *testing.T) {
	row, err := RecordRow(reqSchema(), map[string]any{
		"ID":   "l0",
		"Year": "not-a-number", // unparseable under Int -> null, like ReadCSV
		// Num absent -> null
	})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Str() != "l0" {
		t.Fatalf("ID = %v", row[0])
	}
	if !row[1].IsNull() {
		t.Fatalf("missing column should be null, got %v", row[1])
	}
	if !row[2].IsNull() {
		t.Fatalf("unparseable int should be null, got %v", row[2])
	}
}

func TestRecordRowNestedValuesBecomeNull(t *testing.T) {
	row, err := RecordRow(reqSchema(), map[string]any{
		"ID": []any{"arrays", "have", "no", "cell", "form"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !row[0].IsNull() {
		t.Fatalf("array value should decode to null, got %v", row[0])
	}
}
