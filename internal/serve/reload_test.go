package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/leakcheck"
	"emgo/internal/ml"
	"emgo/internal/retry"
)

// saveFixtureMatcher trains the fixture matcher and persists it as an
// artifact file, returning the path.
func saveFixtureMatcher(t *testing.T, dir, name string) string {
	t.Helper()
	w, _, _ := fixtureWorkflow(t)
	path := filepath.Join(dir, name)
	if err := ml.SaveMatcherFile(path, w.Matcher); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadArtifactChecksumAndProbe(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureMatcher(t, dir, "model.json")
	art, err := LoadArtifact(context.Background(), path, 2, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if art.Checksum == "" || art.Matcher == nil || art.Path != path {
		t.Fatalf("artifact = %+v", art)
	}
	// Same bytes load to the same checksum (the provenance contract).
	art2, err := LoadArtifact(context.Background(), path, 2, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if art2.Checksum != art.Checksum {
		t.Fatalf("checksums differ for identical bytes: %s vs %s", art.Checksum, art2.Checksum)
	}
}

func TestLoadArtifactRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json": `{"kind":"tree","payl`,
		"empty.json":     ``,
		"not-json.json":  `hello world`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadArtifact(context.Background(), path, 2, retry.Policy{}); err == nil {
			t.Fatalf("%s: corrupt artifact loaded without error", name)
		}
	}
	if _, err := LoadArtifact(context.Background(), filepath.Join(dir, "missing.json"), 2, retry.Policy{}); err == nil {
		t.Fatal("missing artifact loaded without error")
	}
}

func TestLoadArtifactRetriesTransientReads(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	path := saveFixtureMatcher(t, dir, "model.json")
	fault.Enable("serve.reload", fault.Plan{FailFirst: 2})
	art, err := LoadArtifact(context.Background(), path, 2,
		retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("transient read faults should be retried away: %v", err)
	}
	if art.Matcher == nil {
		t.Fatal("nil matcher after retried load")
	}
	if fault.Count("serve.reload") != 3 {
		t.Fatalf("reload site reached %d times, want 3 (2 failures + success)", fault.Count("serve.reload"))
	}
}

func TestReloadSwapAndRollback(t *testing.T) {
	leakcheck.Check(t)
	defer fault.Reset()
	dir := t.TempDir()
	path := saveFixtureMatcher(t, dir, "model.json")

	w, l, r := fixtureWorkflow(t)
	s, err := New(context.Background(), Config{
		MatcherPath: path,
		RetryPolicy: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}, w, l, r)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Artifact()
	if first == nil || first.Path != path {
		t.Fatalf("initial artifact = %+v", first)
	}

	// Trip the breaker so we can verify a successful reload resets it.
	s.Breaker().Record(errBoom, 0)
	s.Breaker().Record(errBoom, 0)
	s.Breaker().Record(errBoom, 0)
	s.Breaker().Record(errBoom, 0)
	s.Breaker().Record(errBoom, 0)

	// Reload the same file: succeeds, same checksum, breaker re-closed.
	art, err := s.Reload(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if art.Checksum != first.Checksum {
		t.Fatalf("checksum changed on identical bytes: %s vs %s", art.Checksum, first.Checksum)
	}
	if st := s.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker after successful reload = %v, want closed", st)
	}

	// Corrupt the artifact on disk: reload must fail and roll back.
	if err := os.WriteFile(path, []byte(`{"garbage":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(context.Background(), ""); err == nil {
		t.Fatal("corrupt reload reported success")
	}
	if got := s.Artifact(); got == nil || got.Checksum != first.Checksum {
		t.Fatalf("rollback failed: artifact = %+v, want checksum %s", got, first.Checksum)
	}

	// The service still answers with the rolled-back matcher.
	row, err := RecordRow(l.Schema(), map[string]any{
		"Num": "2008-11111-11111", "Title": "corn fungicide guidelines north central",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.matchOne(context.Background(), row, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatalf("post-rollback request degraded: %+v", resp)
	}
}

func TestReloadSpecEmbeddedRefused(t *testing.T) {
	w, l, r := fixtureWorkflow(t)
	s, err := New(context.Background(), Config{}, w, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Artifact() == nil || s.Artifact().Path != specArtifactPath {
		t.Fatalf("spec-embedded artifact = %+v", s.Artifact())
	}
	if _, err := s.Reload(context.Background(), ""); err == nil {
		t.Fatal("reload without an artifact path must be refused")
	}
}

func TestNewRejectsMissingArtifact(t *testing.T) {
	w, l, r := fixtureWorkflow(t)
	_, err := New(context.Background(), Config{MatcherPath: filepath.Join(t.TempDir(), "nope.json")}, w, l, r)
	if err == nil {
		t.Fatal("New with a missing artifact path must fail")
	}
}
