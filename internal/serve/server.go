// Package serve is the online matching service: it wraps a deployed EM
// workflow (blockers, rule layers, fitted matcher) behind an HTTP/JSON
// API and keeps it answering under hostile conditions. The paper's
// endgame is a deployed workflow matching production slices; this
// package is that deployment as a long-running service rather than a
// batch run.
//
// The machinery is overload-robustness first, routing second:
//
//   - bounded admission (MaxInFlight executing, MaxQueue waiting,
//     everything else shed with 429 + Retry-After),
//   - per-request deadlines propagated through the existing ctx plumbing
//     into blocking, vectorization, and prediction,
//   - a circuit breaker around the learned matcher that degrades to the
//     always-available rule-only path (responses marked "degraded"),
//   - atomic hot reload of the matcher artifact with checksum
//     verification and rollback on bad loads,
//   - health/readiness/drain endpoints plus the standard obs debug
//     surface (expvar, Prometheus text, pprof),
//   - per-request drift capture feeding internal/drift, so the serving
//     distribution can be scored against the training baseline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/contprof"
	"emgo/internal/drift"
	"emgo/internal/fault"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/obs/slo"
	"emgo/internal/obs/tail"
	"emgo/internal/retry"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/workflow"
)

// specArtifactPath marks a matcher that came embedded in the workflow
// spec rather than from a standalone artifact file (not hot-reloadable).
const specArtifactPath = "<spec>"

// latencyMSBuckets are the upper bounds (milliseconds) of the request
// latency histogram "serve.latency_ms".
var latencyMSBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Degraded-response reasons.
const (
	ReasonBreakerOpen  = "breaker_open"
	ReasonMatcherError = "matcher_error"
	ReasonMatcherSlow  = "matcher_timeout"
	ReasonNoMatcher    = "no_matcher"
	ReasonBlockerError = "blocker_error"
)

// Config tunes the service. The zero value serves with defaults.
type Config struct {
	// Admission bounds concurrency and the wait line.
	Admission AdmissionConfig
	// Breaker tunes the matcher circuit breaker.
	Breaker BreakerConfig
	// RequestTimeout is the per-request deadline (default 5s). A
	// request's timeout_ms may lower it, never raise it.
	RequestTimeout time.Duration
	// MLBudgetFrac is the fraction of the request's remaining deadline
	// budget granted to the learned-matcher stage, so a slow matcher
	// times out with room left to fall back to rules (default 0.7).
	MLBudgetFrac float64
	// MaxBodyBytes caps request bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxBatchRecords caps how many records one /v1/match/batch request
	// may carry (default DefaultMaxBatchRecords).
	MaxBatchRecords int
	// MaxBatchBodyBytes caps batch request bodies (default
	// DefaultMaxBatchBodyBytes).
	MaxBatchBodyBytes int64
	// BatchTimeout is the per-batch deadline (default
	// DefaultBatchTimeout). A batch's timeout_ms may lower it, never
	// raise it.
	BatchTimeout time.Duration
	// Jobs configures the async job tier; a zero Dir disables it (the
	// job endpoints answer 503).
	Jobs JobConfig
	// Stream tunes the streaming results transport (slow-reader budget,
	// concurrent-stream cap, flush geometry, buffered-fetch cap).
	Stream StreamConfig
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// (default 10s).
	DrainTimeout time.Duration
	// RetryPolicy governs artifact-read retries during hot reload.
	RetryPolicy retry.Policy
	// MatcherPath is the standalone matcher artifact to load and serve
	// (hot-reloadable). Empty uses the spec-embedded matcher, if any.
	MatcherPath string
	// RightIDCol names the right table's identifier column echoed in
	// responses (default "RecordId"; missing column falls back to row
	// indices).
	RightIDCol string
	// DriftSampleCap and DriftSeed size the per-request drift reservoirs.
	DriftSampleCap int
	DriftSeed      int64
	// DriftBaseline, when set, lets GET /-/drift?check=1 score the live
	// serving profile against the training-time baseline.
	DriftBaseline *drift.Profile
	// MountDebug mounts the obs debug mux (expvar, /metrics, pprof) on
	// the service handler.
	MountDebug bool
	// AccessLog, when set, receives one JSON wide event per request.
	// Nil disables wide-event logging (tail capture and SLO tracking
	// stay on regardless).
	AccessLog io.Writer
	// AccessSampleN logs 1 in N successful requests to the access log
	// (<= 1 logs all); errors, sheds, timeouts, and degraded responses
	// are always logged.
	AccessSampleN int
	// TailN is how many slowest requests the tail buffer retains per
	// window (default tail.DefaultSlowN); TailWindow is its rotation
	// period (default tail.DefaultWindow).
	TailN      int
	TailWindow time.Duration
	// SLOs are the service objectives evaluated into burn rates on
	// /v1/status, /metrics, and emmonitor slo; nil selects
	// slo.DefaultObjectives.
	SLOs []slo.Objective
	// Profiler, when set, is the continuous-profiling retention ring:
	// requests run under pprof route labels, tail-outlier admissions
	// trigger captures, and /debug/contprof mounts on the handler. Nil
	// disables all of it (labels included).
	Profiler *contprof.Profiler
	// ProfileOnBreach arms the profiler's breach probe against the SLO
	// tracker, so a sustained burn-rate breach captures the burning
	// process without an operator in the loop.
	ProfileOnBreach bool
}

// Server is the online matching service.
type Server struct {
	cfg         Config
	wf          *workflow.Workflow
	left        *table.Table // schema donor for request records
	right       *table.Table
	rightIDs    []string
	matcherPath string

	artifact atomic.Pointer[Artifact]
	breaker  *Breaker
	adm      *Admission
	reloadMu sync.Mutex

	collector *drift.Collector
	rightCols []drift.ColumnProfile

	events  *obs.EventLog
	tailBuf *tail.Buffer
	sloTrk  *slo.Tracker

	jobs *Jobs // nil when the job tier is disabled

	// streamSem gates how many result streams hold shard files open at
	// once; a drain acquires every slot to wait for active streams to
	// reach their flush-boundary exit.
	streamSem chan struct{}

	mu       sync.Mutex
	requests int64
	degraded int64
	perRow   []int

	started   time.Time
	draining  atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

// New builds the service around a deployed workflow. left donates the
// request schema (its rows are ignored); right is the table requests
// are matched against. When cfg.MatcherPath is set the matcher artifact
// is loaded from it (and becomes hot-reloadable); otherwise the
// spec-embedded matcher, if any, serves. With neither, the service runs
// rule-only and every response is marked degraded.
func New(ctx context.Context, cfg Config, wf *workflow.Workflow, left, right *table.Table) (*Server, error) {
	if wf == nil {
		return nil, fmt.Errorf("serve: nil workflow")
	}
	if left == nil || right == nil {
		return nil, fmt.Errorf("serve: nil table")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MLBudgetFrac <= 0 || cfg.MLBudgetFrac > 1 {
		cfg.MLBudgetFrac = 0.7
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatchRecords <= 0 {
		cfg.MaxBatchRecords = DefaultMaxBatchRecords
	}
	if cfg.MaxBatchBodyBytes <= 0 {
		cfg.MaxBatchBodyBytes = DefaultMaxBatchBodyBytes
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = DefaultBatchTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.RightIDCol == "" {
		cfg.RightIDCol = "RecordId"
	}
	cfg.Stream = cfg.Stream.withDefaults()
	tailCfg := tail.Config{SlowN: cfg.TailN, Window: cfg.TailWindow}
	if prof := cfg.Profiler; prof != nil {
		// A request slow enough to displace the retained slow set is
		// worth a profile of the process while whatever slowed it down
		// is plausibly still happening; the profiler's cooldown turns a
		// storm of outliers into one capture.
		tailCfg.OnOutlier = func(ev *obs.WideEvent) {
			// TriggerFunc: displacements are common, scheduled captures
			// rare — the detail is only formatted for the rare case.
			prof.TriggerFunc(contprof.TriggerTailOutlier, func() string {
				return fmt.Sprintf("route=%s duration_ms=%.1f", ev.Route, ev.DurationMS)
			}, ev.RequestID)
		}
	}
	s := &Server{
		cfg:         cfg,
		wf:          wf,
		left:        left,
		right:       right,
		matcherPath: cfg.MatcherPath,
		breaker:     NewBreaker(cfg.Breaker),
		adm:         NewAdmission(cfg.Admission),
		collector:   drift.NewCollector(cfg.DriftSampleCap, cfg.DriftSeed),
		events:      obs.NewEventLog(cfg.AccessLog, cfg.AccessSampleN),
		tailBuf:     tail.New(tailCfg),
		sloTrk:      slo.New(slo.Config{Objectives: cfg.SLOs}),
		started:     time.Now(),
		drained:     make(chan struct{}),
		streamSem:   make(chan struct{}, cfg.Stream.MaxStreams),
	}
	if cfg.ProfileOnBreach && cfg.Profiler != nil {
		trk := s.sloTrk
		cfg.Profiler.SetBreachProbe(func() (bool, string) {
			rep := trk.Evaluate()
			if rep == nil || !rep.Breached {
				return false, ""
			}
			for _, o := range rep.Objectives {
				if o.Breached {
					return true, fmt.Sprintf("objective=%s fast_burn=%.1f slow_burn=%.1f",
						o.Name, o.FastBurn, o.SlowBurn)
				}
			}
			return true, ""
		})
	}
	if wf.Features != nil {
		s.collector.SetFeatureNames(wf.Features.Names())
	}
	// The right table is static for the server's lifetime: profile its
	// columns once so the drift endpoint reports them without rescanning.
	s.rightCols = s.collector.ObserveTable("right", right)
	// Resolve right IDs up front; a missing ID column degrades to row
	// indices rather than failing every request.
	if j, err := right.Col(cfg.RightIDCol); err == nil {
		s.rightIDs = make([]string, right.Len())
		for i := 0; i < right.Len(); i++ {
			s.rightIDs[i] = right.Row(i)[j].Str()
		}
	}
	switch {
	case cfg.MatcherPath != "":
		art, err := LoadArtifact(ctx, cfg.MatcherPath, s.featureWidth(), cfg.RetryPolicy)
		if err != nil {
			return nil, err
		}
		s.artifact.Store(art)
	case wf.Matcher != nil:
		spec, err := ml.ExportMatcher(wf.Matcher)
		if err != nil {
			return nil, fmt.Errorf("serve: fingerprint spec-embedded matcher: %w", err)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: fingerprint spec-embedded matcher: %w", err)
		}
		s.artifact.Store(&Artifact{
			Matcher:  wf.Matcher,
			Checksum: ckpt.Fingerprint(string(data)),
			Path:     specArtifactPath,
			LoadedAt: time.Now(),
		})
	}
	if s.artifact.Load() != nil && (wf.Features == nil || wf.Imputer == nil) {
		return nil, fmt.Errorf("serve: matcher deployed without features/imputer")
	}
	if cfg.Jobs.Dir != "" {
		jm, err := newJobs(cfg.Jobs, s)
		if err != nil {
			return nil, err
		}
		s.jobs = jm
		jm.Start()
		if _, err := jm.Recover(); err != nil {
			jm.Stop(time.Second)
			return nil, err
		}
	}
	return s, nil
}

// JobTier returns the async job manager (nil when disabled).
func (s *Server) JobTier() *Jobs { return s.jobs }

// Close releases background resources (the job workers) without a
// graceful drain; tests and non-serving callers use it. Safe to call
// more than once and after StartDrain.
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.Stop(time.Second)
	}
}

// featureWidth is the deployed feature-vector width (0 = rule-only).
func (s *Server) featureWidth() int {
	if s.wf.Features == nil {
		return 0
	}
	return s.wf.Features.Len()
}

// Artifact returns the live matcher artifact (nil = rule-only service).
func (s *Server) Artifact() *Artifact { return s.artifact.Load() }

// Breaker returns the matcher circuit breaker (test/status surface).
func (s *Server) Breaker() *Breaker { return s.breaker }

// TailSnapshot returns the tail-capture buffer's current contents, the
// same document /debug/tail serves; emserve dumps it on drain.
func (s *Server) TailSnapshot() tail.Snapshot { return s.tailBuf.Snapshot() }

// SLOReport evaluates the configured objectives now.
func (s *Server) SLOReport() *slo.Report { return s.sloTrk.Evaluate() }

// Handler builds the service's HTTP routes, each wrapped in the
// request-observability middleware (request IDs, wide events, tail
// capture); match and job routes additionally feed the SLO tracker.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, trackSLO bool, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.observe(routeOf(pattern), trackSLO, h))
	}
	handle("POST /v1/match", true, s.handleMatch)
	handle("POST /v1/match/batch", true, s.handleMatchBatch)
	handle("POST /v1/jobs", true, s.handleJobSubmit)
	handle("GET /v1/jobs", true, s.handleJobList)
	handle("GET /v1/jobs/{id}", true, s.handleJobStatus)
	handle("GET /v1/jobs/{id}/results", true, s.handleJobResults)
	handle("DELETE /v1/jobs/{id}", true, s.handleJobCancel)
	handle("GET /healthz", false, s.handleHealth)
	handle("GET /readyz", false, s.handleReady)
	handle("POST /-/reload", false, s.handleReload)
	handle("POST /-/drain", false, s.handleDrain)
	handle("GET /-/status", false, s.handleStatus)
	handle("GET /v1/status", false, s.handleStatus)
	handle("GET /-/drift", false, s.handleDrift)
	// The tail buffer is always on; the exact pattern takes precedence
	// over the /debug/ prefix when the debug mux is mounted too.
	mux.Handle("GET /debug/tail", s.tailBuf.Handler())
	if s.cfg.Profiler != nil {
		mux.Handle("/debug/contprof", s.cfg.Profiler.Handler())
		mux.Handle("/debug/contprof/", s.cfg.Profiler.Handler())
	}
	if s.cfg.MountDebug {
		dbg := obs.NewDebugMux()
		mux.Handle("/debug/", dbg)
		mux.Handle("/metrics", dbg)
	}
	return mux
}

// writeJSON writes one JSON response with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone = nothing to do
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", waitHint(retryAfter)))
		writeJSON(w, status, ErrorResponse{Error: msg, Status: status, RetryAfterS: waitHint(retryAfter)})
		return
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Status: status})
}

// handleMatch is the matching endpoint under the full admission /
// deadline / degradation machinery.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	obs.C("serve.requests").Inc()
	ev := eventFrom(r.Context())
	if s.draining.Load() {
		obs.C("serve.shed.draining").Inc()
		annotateAdmission(ev, AdmissionShedDraining, 0)
		writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
		return
	}
	// Decode before admission: a malformed request must never occupy a
	// pipeline slot, and the decoder is panic-proof on arbitrary bytes.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := DecodeMatchRequest(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	row, err := RecordRow(s.left.Schema(), req.Record)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}

	// Per-request deadline: the server's budget, lowered (never raised)
	// by the request's own timeout_ms.
	budget := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	queued := time.Now()
	release, err := s.adm.Acquire(ctx)
	wait := time.Since(queued)
	switch {
	case errors.Is(err, ErrShed):
		annotateAdmission(ev, AdmissionShedQueueFull, wait)
		writeError(w, http.StatusTooManyRequests, "overloaded: admission queue full", s.adm.RetryAfter())
		return
	case errors.Is(err, ErrDraining):
		annotateAdmission(ev, AdmissionShedDraining, wait)
		writeError(w, http.StatusServiceUnavailable, "draining", s.adm.RetryAfter())
		return
	case err != nil: // deadline expired while queued
		annotateAdmission(ev, AdmissionDeadlineInQueue, wait)
		writeError(w, http.StatusTooManyRequests, "overloaded: deadline expired in admission queue", s.adm.RetryAfter())
		return
	}
	defer release()
	annotateAdmission(ev, AdmissionAdmitted, wait)

	start := time.Now()
	resp, err := s.matchOne(ctx, row, req.Trace)
	elapsed := time.Since(start)
	obs.H("serve.latency_ms", latencyMSBuckets).Observe(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		annotateError(ev, err)
		if ctx.Err() != nil {
			obs.C("serve.timeouts").Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded", 0)
			return
		}
		obs.C("serve.errors").Inc()
		writeError(w, http.StatusInternalServerError, "internal error: "+err.Error(), 0)
		return
	}
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if resp.Degraded {
		obs.C("serve.degraded").Inc()
	}
	obs.C("serve.matches").Add(int64(len(resp.Matches)))
	if ev != nil {
		ev.Records = 1
		ev.Candidates = resp.Candidates
		ev.Matches = len(resp.Matches)
		ev.Degraded = resp.Degraded
		ev.DegradedReason = resp.DegradedReason
		ev.Breaker = resp.Breaker
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeRequestError maps a decode/validation failure to its status.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	obs.C("serve.bad_requests").Inc()
	var re *RequestError
	if errors.As(err, &re) {
		writeError(w, re.Status, re.Msg, 0)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error(), 0)
}

// matchOne runs the deployed workflow for one request record — the
// single-record endpoint is the batch engine at n=1.
func (s *Server) matchOne(ctx context.Context, row table.Row, wantTrace bool) (*MatchResponse, error) {
	leftOne := table.New("request", s.left.Schema())
	if err := leftOne.Append(row); err != nil {
		return nil, err
	}
	resps, trace, err := s.matchSet(ctx, leftOne, s.breaker, wantTrace)
	if err != nil {
		return nil, err
	}
	resps[0].Trace = trace
	return resps[0], nil
}

// matchSet runs the deployed workflow for every row of a request-shaped
// left table in one pass: sure rules per row, a single union-blocking
// pass, a single vectorize+impute+predict call over every surviving
// candidate, then the veto layer — the amortization that makes the bulk
// endpoint and the async job shards cheaper than len(left) one-record
// requests. br guards the learned-matcher stage: the server's breaker
// for online traffic, a per-shard breaker inside jobs. A recovered
// panic is returned as an error: one poison record must never take the
// service (or a job worker) down.
func (s *Server) matchSet(ctx context.Context, left *table.Table, br *Breaker, wantTrace bool) (resps []*MatchResponse, trace json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: match panicked: %v", r)
		}
	}()
	// Under the HTTP middleware (or a job trace) the match pipeline is a
	// child span of the request's tree, so tail capture sees the whole
	// request; standalone callers still get their own root.
	var root *obs.Span
	if obs.SpanFromContext(ctx) != nil {
		ctx, root = obs.StartSpan(ctx, "serve.match")
	} else {
		ctx, root = obs.NewTrace(ctx, "serve.match")
	}
	defer root.End()
	root.SetItems(left.Len())
	if err := fault.Inject("serve.match"); err != nil {
		return nil, nil, err
	}
	// Per-request drift capture: the armed collector makes vectorize and
	// predict feed the serving-distribution reservoirs.
	ctx = drift.WithCollector(ctx, s.collector)

	n := left.Len()
	resps = make([]*MatchResponse, n)
	for i := range resps {
		resps[i] = &MatchResponse{}
	}

	// Stage 1: positive rules straight against the right table — the
	// always-available path that keeps the service useful when the
	// learned matcher is down.
	sure := block.NewCandidateSet(left, s.right)
	sureRule := map[block.Pair]string{}
	_, spSure := obs.StartSpan(ctx, "serve.sure_rules")
	if s.wf.SureRules != nil && s.wf.SureRules.Len() > 0 {
		scanned := 0
		for i := 0; i < n; i++ {
			row := left.Row(i)
			for j := 0; j < s.right.Len(); j++ {
				if scanned%256 == 0 {
					if cerr := ctx.Err(); cerr != nil {
						spSure.End()
						return nil, nil, cerr
					}
				}
				scanned++
				if v, name := s.wf.SureRules.JudgeWithRule(row, s.right.Row(j)); v == rules.Match {
					p := block.Pair{A: i, B: j}
					sure.Add(p)
					sureRule[p] = name
				}
			}
		}
	}
	spSure.SetItems(sure.Len())
	spSure.End()

	// Stage 2: blocking, once for the whole set. A blocker failure (not
	// a deadline) degrades every row to its sure-rule answer instead of
	// failing the request.
	degraded, reason := false, ""
	var candidates *block.CandidateSet
	bctx, spBlock := obs.StartSpan(ctx, "serve.block")
	blocked, berr := block.UnionBlockCtx(bctx, left, s.right, s.wf.Blockers...)
	spBlock.End()
	switch {
	case berr != nil && ctx.Err() != nil:
		return nil, nil, berr
	case berr != nil:
		degraded = true
		reason = ReasonBlockerError
		candidates = block.NewCandidateSet(left, s.right)
	default:
		candidates, berr = blocked.Minus(sure)
		if berr != nil {
			return nil, nil, berr
		}
	}
	perRow := candidates.PerLeftCounts()
	spBlock.SetItems(candidates.Len())

	// Stage 3: the learned matcher behind the circuit breaker, over all
	// candidates of all rows at once.
	learned := block.NewCandidateSet(left, s.right)
	scores := map[block.Pair]float64{}
	if !degraded && candidates.Len() > 0 {
		pctx, spPredict := obs.StartSpan(ctx, "serve.predict")
		learned, scores, reason = s.predict(pctx, left, candidates, br)
		spPredict.SetItems(candidates.Len())
		if reason != "" {
			spPredict.SetOutcome("degraded")
		}
		spPredict.End()
		degraded = reason != ""
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
	} else if art := s.artifact.Load(); art == nil && !degraded {
		degraded = true
		reason = ReasonNoMatcher
	}

	// Stage 4: negative rules veto learned matches (sure matches bypass
	// them, as in the batch workflow).
	kept := learned
	if s.wf.NegativeRules != nil && s.wf.NegativeRules.Len() > 0 && learned.Len() > 0 {
		_, spVeto := obs.StartSpan(ctx, "serve.veto")
		kept, _ = s.wf.NegativeRules.FilterMatches(learned)
		spVeto.SetItems(learned.Len() - kept.Len())
		spVeto.End()
	}
	learnedPer := learned.PerLeftCounts()
	keptPer := kept.PerLeftCounts()

	// Assemble per row: sure matches first, then surviving learned
	// matches, both in deterministic (A, B) order.
	brState := br.State().String()
	for i := 0; i < n; i++ {
		resps[i].Candidates = perRow[i]
		resps[i].Degraded = degraded
		resps[i].DegradedReason = reason
		resps[i].Vetoed = learnedPer[i] - keptPer[i]
		resps[i].Breaker = brState
	}
	for _, p := range sure.Sorted() {
		resps[p.A].Matches = append(resps[p.A].Matches, Match{
			RightID:    s.rightID(p.B),
			RightIndex: p.B,
			Source:     "rule:" + sureRule[p],
		})
	}
	for _, p := range kept.Sorted() {
		m := Match{RightID: s.rightID(p.B), RightIndex: p.B, Source: "matcher"}
		if sc, ok := scores[p]; ok {
			score := sc
			m.Score = &score
		}
		resps[p.A].Matches = append(resps[p.A].Matches, m)
	}

	// Coverage accounting for the drift profile — per record, so batch
	// and job traffic feed the same serving profile single requests do.
	s.mu.Lock()
	s.requests += int64(n)
	for i := 0; i < n; i++ {
		if resps[i].Degraded {
			s.degraded++
		}
		if len(s.perRow) < 65536 {
			s.perRow = append(s.perRow, resps[i].Candidates)
		}
	}
	s.mu.Unlock()

	if wantTrace {
		root.End()
		if data, merr := json.Marshal(root.Snapshot()); merr == nil {
			trace = data
		}
	}
	return resps, trace, nil
}

// predict runs vectorize + impute + predict under br and an ML
// sub-budget of the request deadline. It returns the learned match set,
// per-pair scores, and a degradation reason ("" = the learned path
// served normally).
func (s *Server) predict(ctx context.Context, left *table.Table, candidates *block.CandidateSet, br *Breaker) (*block.CandidateSet, map[block.Pair]float64, string) {
	learned := block.NewCandidateSet(left, s.right)
	scores := map[block.Pair]float64{}
	art := s.artifact.Load()
	if art == nil {
		return learned, scores, ReasonNoMatcher
	}
	if !br.Allow() {
		obs.C("serve.breaker.rejections").Inc()
		return learned, scores, ReasonBreakerOpen
	}

	// Grant the matcher a fraction of the remaining budget so its
	// timeout leaves room to respond with the rule-only answer.
	mlCtx := ctx
	var cancel context.CancelFunc = func() {}
	if deadline, ok := ctx.Deadline(); ok {
		sub := time.Duration(float64(time.Until(deadline)) * s.cfg.MLBudgetFrac)
		mlCtx, cancel = context.WithTimeout(ctx, sub)
	}
	defer cancel()

	start := time.Now()
	preds, scored, err := s.predictVectors(mlCtx, left, candidates.Pairs(), art.Matcher)
	latency := time.Since(start)
	gen := br.Generation()
	if err != nil {
		if ctx.Err() != nil {
			// The whole request deadline died: the caller turns this
			// into 504; the slow call still counts against the breaker.
			br.Record(err, latency)
			s.noteBreakerTransition(ctx, br, gen)
			return learned, scores, ReasonMatcherError
		}
		br.Record(err, latency)
		s.noteBreakerTransition(ctx, br, gen)
		obs.C("serve.ml_failures").Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			return learned, scores, ReasonMatcherSlow
		}
		return learned, scores, ReasonMatcherError
	}
	br.Record(nil, latency)
	s.noteBreakerTransition(ctx, br, gen)
	for i, p := range candidates.Pairs() {
		if preds[i] == 1 {
			learned.Add(p)
			if sc, ok := scored[i]; ok {
				scores[p] = sc
			}
		}
	}
	return learned, scores, ""
}

// noteBreakerTransition records a breaker state change caused by this
// request: a span event on the request's trace (joined to the request
// ID by the tail capture) plus a transition counter. genBefore is the
// breaker generation read before Record.
func (s *Server) noteBreakerTransition(ctx context.Context, br *Breaker, genBefore int64) {
	if br.Generation() == genBefore {
		return
	}
	obs.C("serve.breaker.transitions").Inc()
	detail := "state=" + br.State().String()
	if id := obs.RequestID(ctx); id != "" {
		detail += " request_id=" + id
	}
	obs.AddEvent(ctx, "breaker_transition", detail)
}

// predictVectors vectorizes, imputes, and predicts one candidate list,
// also collecting per-row probabilities when the matcher reports them.
func (s *Server) predictVectors(ctx context.Context, left *table.Table, pairs []block.Pair, m ml.Matcher) ([]int, map[int]float64, error) {
	x, err := s.wf.Features.VectorizeCtx(ctx, left, s.right, pairs)
	if err != nil {
		return nil, nil, err
	}
	x, err = s.wf.Imputer.Transform(x)
	if err != nil {
		return nil, nil, err
	}
	preds, err := ml.PredictAllCtx(ctx, m, x)
	if err != nil {
		return nil, nil, err
	}
	scored := map[int]float64{}
	if pm, ok := m.(ml.ProbabilisticMatcher); ok {
		for i, p := range preds {
			if p == 1 {
				scored[i] = pm.Proba(x[i])
			}
		}
	}
	return preds, scored, nil
}

// rightID maps a right row index to its identifier.
func (s *Server) rightID(j int) string {
	if s.rightIDs != nil && j < len(s.rightIDs) {
		return s.rightIDs[j]
	}
	return fmt.Sprintf("#%d", j)
}

// handleHealth is liveness: 200 whenever the process can answer at all,
// draining included (the balancer uses readyz to steer traffic).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: 503 once draining so load balancers stop
// routing here before the listener actually closes.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// reloadRequest is the optional /-/reload body.
type reloadRequest struct {
	Path string `json:"path"`
}

// handleReload hot-swaps the matcher artifact; failures roll back.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if r.Body != nil {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "reload request body too large", 0)
			return
		}
		if len(data) > 0 {
			if jerr := json.Unmarshal(data, &req); jerr != nil {
				writeError(w, http.StatusBadRequest, "parse reload request: "+jerr.Error(), 0)
				return
			}
		}
	}
	art, err := s.Reload(r.Context(), req.Path)
	if err != nil {
		prev := s.artifact.Load()
		msg := "reload failed (previous matcher still serving): " + err.Error()
		status := http.StatusUnprocessableEntity
		resp := map[string]any{"error": msg, "status": status}
		if prev != nil {
			resp["active_checksum"] = prev.Checksum
			resp["active_path"] = prev.Path
		}
		writeJSON(w, status, resp)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "reloaded",
		"path":      art.Path,
		"checksum":  art.Checksum,
		"loaded_at": art.LoadedAt,
	})
}

// handleDrain starts the drain (idempotent) and reports progress.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	s.StartDrain()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status":   "draining",
		"inflight": s.adm.InFlight(),
		"queued":   s.adm.Queued(),
	})
}

// StatusData is the /-/status document.
type StatusData struct {
	UptimeS   float64 `json:"uptime_s"`
	Requests  int64   `json:"requests"`
	Degraded  int64   `json:"degraded"`
	InFlight  int     `json:"inflight"`
	Queued    int64   `json:"queued"`
	Breaker   string  `json:"breaker"`
	Draining  bool    `json:"draining"`
	RightRows int     `json:"right_rows"`
	Matcher   any     `json:"matcher,omitempty"`
	// SLO is the burn-rate evaluation of the configured objectives;
	// emmonitor slo reads this section.
	SLO *slo.Report `json:"slo,omitempty"`
}

// handleStatus reports the operational state in one JSON document.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reqs, degr := s.requests, s.degraded
	s.mu.Unlock()
	st := StatusData{
		UptimeS:   time.Since(s.started).Seconds(),
		Requests:  reqs,
		Degraded:  degr,
		InFlight:  s.adm.InFlight(),
		Queued:    s.adm.Queued(),
		Breaker:   s.breaker.State().String(),
		Draining:  s.draining.Load(),
		RightRows: s.right.Len(),
		SLO:       s.sloTrk.Evaluate(),
	}
	if art := s.artifact.Load(); art != nil {
		st.Matcher = map[string]any{
			"name":      art.Matcher.Name(),
			"path":      art.Path,
			"checksum":  art.Checksum,
			"loaded_at": art.LoadedAt,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// Profile snapshots the live serving-distribution profile.
func (s *Server) Profile() *drift.Profile {
	s.mu.Lock()
	reqs := s.requests
	perRow := append([]int(nil), s.perRow...)
	s.mu.Unlock()
	return s.collector.Profile("serve", int(reqs), s.right.Len(), perRow, s.rightCols)
}

// handleDrift serves the live profile; with ?check=1 and a configured
// baseline it scores the serving distribution against training.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	live := s.Profile()
	if r.URL.Query().Get("check") == "" {
		writeJSON(w, http.StatusOK, live)
		return
	}
	if s.cfg.DriftBaseline == nil {
		writeError(w, http.StatusBadRequest, "no drift baseline configured (start with -drift-baseline)", 0)
		return
	}
	assessment, err := drift.Evaluate(s.cfg.DriftBaseline, live, drift.DefaultThresholds())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "drift evaluation: "+err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, assessment)
}

// StartDrain flips readiness, stops admitting match requests, and
// (once) begins waiting out in-flight work in the background; Drained
// closes when the pipeline is empty or DrainTimeout passes.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.adm.StartDrain()
		if s.jobs != nil {
			// Job workers stop pulling new shards; the shard each is
			// executing completes and commits durably, so a restart
			// resumes from it instead of recomputing it.
			s.jobs.StartDrain()
		}
		obs.C("serve.drains").Inc()
		go func() {
			s.adm.Drain(s.cfg.DrainTimeout)
			// Active result streams see the drain flag at their next
			// flush boundary and end with a resumable cursor. Owning
			// every stream slot is the proof they have: the semaphore is
			// the live-stream count, and unlike a WaitGroup it tolerates
			// acquires racing the wait (late arrivals just shed).
			streamsDone := make(chan struct{})
			go func() {
				for i := 0; i < cap(s.streamSem); i++ {
					s.streamSem <- struct{}{}
				}
				close(streamsDone)
			}()
			select {
			case <-streamsDone:
			case <-time.After(s.cfg.DrainTimeout):
			}
			if s.jobs != nil {
				s.jobs.Stop(s.cfg.DrainTimeout)
			}
			close(s.drained)
		}()
	})
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drained returns a channel closed once in-flight work has finished
// (or the drain timeout passed) after StartDrain.
func (s *Server) Drained() <-chan struct{} { return s.drained }
