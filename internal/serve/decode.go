package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"emgo/internal/table"
)

// DefaultMaxBodyBytes caps a match request body. Match requests carry
// one record; a megabyte of JSON is already three orders of magnitude
// past any legitimate use.
const DefaultMaxBodyBytes = 1 << 20

// MatchRequest is the wire form of one matching query: a single left
// record to match against the deployed right table.
type MatchRequest struct {
	// Record maps left-table column names to values. Values may be JSON
	// strings, numbers, booleans, or null; they are parsed under the
	// left schema's column kinds (unparseable cells become nulls, the
	// same dirty-data posture the batch pipeline takes).
	Record map[string]any `json:"record"`
	// TimeoutMS optionally lowers the server's per-request deadline for
	// this request (it can never raise it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace asks for the span tree of this request in the response.
	Trace bool `json:"trace,omitempty"`
}

// RequestError is a client-side problem with a request: decode failures,
// unknown columns, oversized bodies. Handlers map it to a 4xx status.
type RequestError struct {
	Status int    // HTTP status to return
	Msg    string // safe to echo to the client
}

// Error implements error.
func (e *RequestError) Error() string { return e.Msg }

// badRequest builds a 400-level RequestError.
func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: 400, Msg: fmt.Sprintf(format, args...)}
}

// DecodeMatchRequest reads and validates one match request from r,
// which should already be wrapped by http.MaxBytesReader (the decoder
// additionally enforces maxBytes itself so it is safe on raw readers —
// the fuzz target feeds it arbitrary bytes with no HTTP layer around
// it). It never panics on malformed input; every failure is a
// *RequestError with a 4xx status.
func DecodeMatchRequest(r io.Reader, maxBytes int64) (*MatchRequest, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	// Read one byte past the cap so "exactly at the cap" and "over the
	// cap" are distinguishable.
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		// An http.MaxBytesReader underneath errors before our own limit
		// does; both shapes mean the same thing to the client.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &RequestError{Status: http.StatusRequestEntityTooLarge, Msg: "request body too large"}
		}
		return nil, badRequest("read request body: %v", err)
	}
	if int64(len(data)) > maxBytes {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("request body exceeds %d bytes", maxBytes),
		}
	}
	if len(data) == 0 {
		return nil, badRequest("empty request body")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var req MatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("parse request JSON: %v", err)
	}
	// Trailing garbage after the JSON document is a malformed request,
	// not an ignorable suffix.
	if dec.More() {
		return nil, badRequest("request body has trailing data after the JSON document")
	}
	if len(req.Record) == 0 {
		return nil, badRequest(`request needs a non-empty "record" object`)
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("timeout_ms must be >= 0")
	}
	return &req, nil
}

// RecordRow converts a decoded record into a row under the given
// schema. Unknown column names are a client error (a typoed column
// silently matching nothing is the worst failure mode); missing columns
// become nulls.
func RecordRow(schema *table.Schema, record map[string]any) (table.Row, error) {
	for name := range record {
		if !schema.Has(name) {
			return nil, badRequest("unknown column %q (left schema: %s)", name, schema)
		}
	}
	row := make(table.Row, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		f := schema.Field(i)
		raw, present := record[f.Name]
		if !present || raw == nil {
			row[i] = table.Null(f.Kind)
			continue
		}
		row[i] = parseCell(raw, f.Kind)
	}
	return row, nil
}

// parseCell renders one JSON value as text and parses it under the
// column kind; unparseable cells become nulls, matching ReadCSV.
func parseCell(raw any, kind table.Kind) table.Value {
	var text string
	switch v := raw.(type) {
	case string:
		text = v
	case json.Number:
		text = v.String()
	case bool:
		text = strconv.FormatBool(v)
	default:
		// Arrays and objects have no cell rendering; treat as missing.
		return table.Null(kind)
	}
	val, err := table.Parse(text, kind)
	if err != nil {
		return table.Null(kind)
	}
	return val
}

// MatchResponse is the wire form of a match answer.
type MatchResponse struct {
	// Matches are the final matched right records, sure-rule matches
	// first, then surviving learned matches, each carrying provenance.
	Matches []Match `json:"matches"`
	// Degraded is true when the learned matcher did not run (breaker
	// open, matcher failure, or no matcher deployed) and the response
	// came from the rule-only path.
	Degraded bool `json:"degraded"`
	// DegradedReason says why, when Degraded ("breaker_open",
	// "matcher_error", "no_matcher").
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Candidates is how many blocked candidate pairs were considered.
	Candidates int `json:"candidates"`
	// Vetoed is how many learned matches the negative rules flipped.
	Vetoed int `json:"vetoed"`
	// ElapsedMS is server-side wall time for the request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Breaker is the breaker state observed by this request.
	Breaker string `json:"breaker"`
	// Trace is the request's span tree, when asked for.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Match is one matched right record.
type Match struct {
	// RightID is the right record's identifier under the configured ID
	// column.
	RightID string `json:"right_id"`
	// RightIndex is the right row index (stable for this loaded table).
	RightIndex int `json:"right_index"`
	// Source is "rule:<name>" for sure-rule matches, "matcher" for
	// learned matches.
	Source string `json:"source"`
	// Score is the matcher's P(match) when the matcher is probabilistic
	// and produced this match (null otherwise).
	Score *float64 `json:"score,omitempty"`
}

// ErrorResponse is the JSON error envelope every non-2xx answer uses.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterS echoes the Retry-After header for JSON-only clients.
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// Degraded distinguishes "shed" (retryable) from "broken".
	Status int `json:"status"`
}

// waitHint converts a Retry-After duration to whole seconds (min 1).
func waitHint(d time.Duration) int {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
