package serve

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"emgo/internal/ckpt"
	"emgo/internal/fault"
)

// Resume cursors: the streaming results transport hands the client an
// opaque token at every flush boundary naming the exact durable
// position the stream has reached — job, shard index, record offset
// within the shard — plus the matcher checksum the results were
// computed with. The token is HMAC-SHA256-signed with a key persisted
// next to the job checkpoints, so cursors survive a server SIGKILL and
// restart, but a client cannot mint, replay across jobs, or bit-twiddle
// one into another job's shards: any irregularity fails closed as a
// uniform 400 that reveals nothing about why.

// cursorPrefix versions the wire format ("emc1.<payload>.<mac>").
const cursorPrefix = "emc1"

// streamKeyFile is the HMAC key's file name under the job root. It is a
// plain file (not a ckpt artifact): it must survive manifest
// fingerprint changes, and it carries no integrity requirement beyond
// "same bytes after restart" — a torn write just invalidates old
// cursors, which fail closed.
const streamKeyFile = "stream.key"

// Cursor is the signed payload of a resume token. The short JSON keys
// are wire format, not style: cursors ride in query strings.
type Cursor struct {
	Job     string `json:"j"`
	Shard   int    `json:"s"`
	Offset  int    `json:"o"`
	Matcher string `json:"m"`
}

// loadStreamKey loads (or mints and persists) the cursor-signing key
// under dir. Unreadable or short key files are replaced: old cursors
// then fail closed with 400 and clients restart their fetch, which is
// the safe failure for a signing key of unknown provenance.
func loadStreamKey(dir string) ([]byte, error) {
	path := filepath.Join(dir, streamKeyFile)
	if key, err := os.ReadFile(path); err == nil && len(key) == 32 {
		return key, nil
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := ckpt.AtomicWriteFile(path, key, 0o600); err != nil {
		return nil, err
	}
	return key, nil
}

// encodeCursor signs and serializes one cursor position.
func encodeCursor(key []byte, c Cursor) string {
	payload, err := json.Marshal(c)
	if err != nil {
		// Cursor fields are a string and two ints; Marshal cannot fail.
		panic("serve: encode cursor: " + err.Error())
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	enc := base64.RawURLEncoding
	return cursorPrefix + "." + enc.EncodeToString(payload) + "." + enc.EncodeToString(mac.Sum(nil))
}

// errBadCursor is the uniform fail-closed answer for every invalid
// cursor: same status, same message, whether the token was truncated,
// bit-flipped, forged, or aimed at another job — an attacker learns
// nothing from the distinction, and a fuzzer can pin the contract.
func errBadCursor() *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Msg: "invalid cursor"}
}

// parseCursor authenticates and decodes a resume token. Every failure
// — wrong shape, bad base64, MAC mismatch, undecodable payload, or an
// injected serve.stream.cursor fault — returns the same 400, never a
// panic and never a partial decode.
func parseCursor(key []byte, raw string) (Cursor, error) {
	if err := fault.Inject("serve.stream.cursor"); err != nil {
		return Cursor{}, errBadCursor()
	}
	if len(raw) > 1024 {
		return Cursor{}, errBadCursor()
	}
	parts := strings.Split(raw, ".")
	if len(parts) != 3 || parts[0] != cursorPrefix {
		return Cursor{}, errBadCursor()
	}
	enc := base64.RawURLEncoding
	payload, err := enc.DecodeString(parts[1])
	if err != nil {
		return Cursor{}, errBadCursor()
	}
	gotMAC, err := enc.DecodeString(parts[2])
	if err != nil {
		return Cursor{}, errBadCursor()
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	if !hmac.Equal(gotMAC, mac.Sum(nil)) {
		return Cursor{}, errBadCursor()
	}
	var c Cursor
	if err := json.Unmarshal(payload, &c); err != nil {
		return Cursor{}, errBadCursor()
	}
	if c.Job == "" || c.Shard < 0 || c.Offset < 0 {
		return Cursor{}, errBadCursor()
	}
	return c, nil
}

// cursorFor signs the cursor naming (shard, offset) of job as the next
// position to stream from.
func (jm *Jobs) cursorFor(job *Job, shard, offset int) string {
	return encodeCursor(jm.streamKey, Cursor{
		Job:     job.ID,
		Shard:   shard,
		Offset:  offset,
		Matcher: jm.matcherChecksum(),
	})
}

// parseCursorFor authenticates raw and binds it to job: a token signed
// for any other job answers the same uniform 400 (a valid signature is
// not a capability on someone else's shards), an out-of-range position
// is 400, and a matcher checksum mismatch — the artifact was hot-
// reloaded mid-fetch, so earlier bytes and later bytes would disagree —
// is 409, telling the client to restart the fetch rather than resume.
func (jm *Jobs) parseCursorFor(job *Job, raw string) (Cursor, error) {
	c, err := parseCursor(jm.streamKey, raw)
	if err != nil {
		return Cursor{}, err
	}
	if c.Job != job.ID {
		return Cursor{}, errBadCursor()
	}
	if c.Shard > job.shards || (c.Shard == job.shards && c.Offset != 0) {
		return Cursor{}, errBadCursor()
	}
	if c.Shard < job.shards && c.Offset >= job.shardLen(c.Shard) {
		return Cursor{}, errBadCursor()
	}
	if c.Matcher != jm.matcherChecksum() {
		return Cursor{}, &RequestError{
			Status: http.StatusConflict,
			Msg:    "matcher changed since this cursor was issued; restart the fetch without a cursor",
		}
	}
	return c, nil
}
