package table

import "fmt"

// NamedPredicate routes rows to a named partition.
type NamedPredicate struct {
	Name string
	// Match reports whether a row belongs to this partition; the first
	// matching predicate wins.
	Match func(Row) bool
}

// Partition splits a table into named parts — the Section 13 "different
// solutions for different parts of the data" primitive: records with
// reliable identifiers go to a rule workflow, the rest to a learned one,
// and dirty slices get set aside entirely. Rows matching no predicate
// land in the "" partition. Every returned table shares the input's
// schema; row order is preserved within each part.
func Partition(t *Table, parts []NamedPredicate) (map[string]*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("table %s: partition needs at least one predicate", t.name)
	}
	seen := make(map[string]bool, len(parts)+1)
	out := make(map[string]*Table, len(parts)+1)
	for _, p := range parts {
		if p.Name == "" {
			return nil, fmt.Errorf("table %s: partition name must be non-empty (\"\" is the rest-bucket)", t.name)
		}
		if p.Match == nil {
			return nil, fmt.Errorf("table %s: partition %q needs a predicate", t.name, p.Name)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("table %s: duplicate partition %q", t.name, p.Name)
		}
		seen[p.Name] = true
		out[p.Name] = New(t.name+"_"+p.Name, t.schema)
	}
	out[""] = New(t.name+"_rest", t.schema)

	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		dest := out[""]
		for _, p := range parts {
			if p.Match(row) {
				dest = out[p.Name]
				break
			}
		}
		dest.MustAppend(row.Clone())
	}
	return out, nil
}
