// Package table provides the relational substrate for emgo: typed tables
// with schemas, CSV input/output, and the relational operations the EM
// pipeline needs (projection, renaming, selection, joins, key validation,
// sampling). It plays the role that pandas and SQLite play for PyMatcher.
package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the logical type of a column.
type Kind int

const (
	// String is free text.
	String Kind = iota
	// Int is a 64-bit integer.
	Int
	// Float is a 64-bit float.
	Float
	// Date is a calendar date (no time-of-day component is retained).
	Date
	// Bool is a boolean.
	Bool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Date:
		return "date"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single cell. The zero Value is null. Values are immutable
// once stored in a table; the setters return new values.
type Value struct {
	kind  Kind
	valid bool
	s     string
	i     int64
	f     float64
	t     time.Time
	b     bool
}

// Null returns a null value of kind k.
func Null(k Kind) Value { return Value{kind: k} }

// S returns a string value. An empty string is a valid (non-null) value;
// use Null to represent missing data.
func S(s string) Value { return Value{kind: String, valid: true, s: s} }

// I returns an integer value.
func I(i int64) Value { return Value{kind: Int, valid: true, i: i} }

// F returns a float value. NaN is treated as null.
func F(f float64) Value {
	if math.IsNaN(f) {
		return Null(Float)
	}
	return Value{kind: Float, valid: true, f: f}
}

// D returns a date value.
func D(t time.Time) Value { return Value{kind: Date, valid: true, t: t} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: Bool, valid: true, b: b} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is missing.
func (v Value) IsNull() bool { return !v.valid }

// Str returns the string content. For non-string kinds it returns the
// canonical textual rendering; for null it returns "".
func (v Value) Str() string {
	if !v.valid {
		return ""
	}
	switch v.kind {
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Date:
		return v.t.Format("2006-01-02")
	case Bool:
		return strconv.FormatBool(v.b)
	}
	return ""
}

// Int returns the integer content. Floats are truncated. Returns 0 for
// null or non-numeric values.
func (v Value) Int() int64 {
	if !v.valid {
		return 0
	}
	switch v.kind {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	}
	return 0
}

// Float returns the numeric content as float64, or NaN when the value is
// null or not numeric.
func (v Value) Float() float64 {
	if !v.valid {
		return math.NaN()
	}
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	}
	return math.NaN()
}

// Date returns the time content, or the zero time for null/non-date values.
func (v Value) Date() time.Time {
	if !v.valid || v.kind != Date {
		return time.Time{}
	}
	return v.t
}

// Bool returns the boolean content; null and non-bool values yield false.
func (v Value) Bool() bool { return v.valid && v.kind == Bool && v.b }

// Equal reports whether two values are equal. Nulls are never equal to
// anything, including other nulls (SQL semantics).
func (v Value) Equal(o Value) bool {
	if !v.valid || !o.valid {
		return false
	}
	if v.kind != o.kind {
		// Numeric cross-kind comparison.
		if (v.kind == Int || v.kind == Float) && (o.kind == Int || o.kind == Float) {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case String:
		return v.s == o.s
	case Int:
		return v.i == o.i
	case Float:
		return v.f == o.f
	case Date:
		return v.t.Equal(o.t)
	case Bool:
		return v.b == o.b
	}
	return false
}

// String implements fmt.Stringer; null renders as "NULL".
func (v Value) String() string {
	if !v.valid {
		return "NULL"
	}
	return v.Str()
}

// dateFormats are the layouts accepted when parsing dates from text, in
// the order they are tried.
var dateFormats = []string{
	"2006-01-02",
	"1/2/06",
	"01/02/2006",
	"1/2/2006",
	"2006-01-02 15:04:05",
	"2006/01/02",
}

// ParseDate parses s using the accepted date layouts.
func ParseDate(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	for _, layout := range dateFormats {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("table: cannot parse %q as date", s)
}

// Parse converts raw text into a Value of kind k. Empty or whitespace-only
// text (and common NA markers) becomes null.
func Parse(s string, k Kind) (Value, error) {
	trimmed := strings.TrimSpace(s)
	if isNA(trimmed) {
		return Null(k), nil
	}
	switch k {
	case String:
		return S(s), nil
	case Int:
		i, err := strconv.ParseInt(trimmed, 10, 64)
		if err != nil {
			return Null(k), fmt.Errorf("table: cannot parse %q as int: %w", s, err)
		}
		return I(i), nil
	case Float:
		f, err := strconv.ParseFloat(trimmed, 64)
		if err != nil {
			return Null(k), fmt.Errorf("table: cannot parse %q as float: %w", s, err)
		}
		return F(f), nil
	case Date:
		t, err := ParseDate(trimmed)
		if err != nil {
			return Null(k), err
		}
		return D(t), nil
	case Bool:
		b, err := strconv.ParseBool(strings.ToLower(trimmed))
		if err != nil {
			return Null(k), fmt.Errorf("table: cannot parse %q as bool: %w", s, err)
		}
		return B(b), nil
	}
	return Value{}, fmt.Errorf("table: unknown kind %v", k)
}

// isNA reports whether raw text denotes a missing value.
func isNA(s string) bool {
	switch strings.ToLower(s) {
	case "", "na", "n/a", "nan", "null", "none", "-":
		return true
	}
	return false
}
