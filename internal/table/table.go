package table

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one record: a slice of values aligned with the table schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation: a schema plus rows. Tables are mutable
// through the methods below; the relational operators (Project, Select,
// Join, ...) return new tables and leave the receiver untouched.
type Table struct {
	name   string
	schema *Schema
	rows   []Row
}

// New creates an empty table with the given name and schema.
func New(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema.Clone()}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName renames the table.
func (t *Table) SetName(name string) { t.name = name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row. Callers must not mutate it.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Append adds a row. The row length must match the schema.
func (t *Table) Append(r Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("table %s: row has %d values, schema has %d columns",
			t.name, len(r), t.schema.Len())
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustAppend is Append but panics on error; for construction code where a
// mismatch is a programming bug.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Value returns the cell at row i, named column. It returns an error for
// an unknown column.
func (t *Table) Value(i int, col string) (Value, error) {
	j, ok := t.schema.Lookup(col)
	if !ok {
		return Value{}, fmt.Errorf("table %s: unknown column %q", t.name, col)
	}
	return t.rows[i][j], nil
}

// Get is Value but panics on unknown columns; for hot paths over a schema
// that has already been validated.
func (t *Table) Get(i int, col string) Value {
	v, err := t.Value(i, col)
	if err != nil {
		panic(err)
	}
	return v
}

// Col returns the index of the named column, or an error.
func (t *Table) Col(name string) (int, error) {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("table %s: unknown column %q", t.name, name)
	}
	return j, nil
}

// Clone returns a deep copy of the table (rows are copied; values are
// immutable so they are shared).
func (t *Table) Clone() *Table {
	out := New(t.name, t.schema)
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Project returns a new table with only the named columns, in the given
// order.
func (t *Table) Project(name string, cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	fields := make([]Field, len(cols))
	for i, c := range cols {
		j, ok := t.schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("table %s: project: unknown column %q", t.name, c)
		}
		idx[i] = j
		fields[i] = t.schema.Field(j)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := New(name, schema)
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := make(Row, len(idx))
		for k, j := range idx {
			nr[k] = r[j]
		}
		out.rows[i] = nr
	}
	return out, nil
}

// Rename returns a new table with columns renamed according to mapping
// (old name → new name). Columns not in the mapping keep their names.
func (t *Table) Rename(mapping map[string]string) (*Table, error) {
	fields := t.schema.Fields()
	for i := range fields {
		if nn, ok := mapping[fields[i].Name]; ok {
			fields[i].Name = nn
		}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("table %s: rename: %w", t.name, err)
	}
	out := New(t.name, schema)
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out, nil
}

// Select returns a new table containing the rows for which keep returns
// true.
func (t *Table) Select(name string, keep func(Row) bool) *Table {
	out := New(name, t.schema)
	for _, r := range t.rows {
		if keep(r) {
			out.rows = append(out.rows, r.Clone())
		}
	}
	return out
}

// AddColumn returns a new table with an extra column computed per row.
func (t *Table) AddColumn(field Field, compute func(Row) Value) (*Table, error) {
	fields := append(t.schema.Fields(), field)
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("table %s: add column: %w", t.name, err)
	}
	out := New(t.name, schema)
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := make(Row, len(r)+1)
		copy(nr, r)
		nr[len(r)] = compute(r)
		out.rows[i] = nr
	}
	return out, nil
}

// DropColumn returns a new table without the named column.
func (t *Table) DropColumn(col string) (*Table, error) {
	if !t.schema.Has(col) {
		return nil, fmt.Errorf("table %s: drop: unknown column %q", t.name, col)
	}
	keep := make([]string, 0, t.schema.Len()-1)
	for _, f := range t.schema.Fields() {
		if f.Name != col {
			keep = append(keep, f.Name)
		}
	}
	return t.Project(t.name, keep...)
}

// Union returns a new table with the rows of t followed by the rows of o.
// The schemas must be equal.
func (t *Table) Union(name string, o *Table) (*Table, error) {
	if !t.schema.Equal(o.schema) {
		return nil, fmt.Errorf("table: union: schema mismatch between %s and %s", t.name, o.name)
	}
	out := New(name, t.schema)
	out.rows = make([]Row, 0, len(t.rows)+len(o.rows))
	for _, r := range t.rows {
		out.rows = append(out.rows, r.Clone())
	}
	for _, r := range o.rows {
		out.rows = append(out.rows, r.Clone())
	}
	return out, nil
}

// rowKey renders a row's values in the given columns as a composite hash
// key. Null participates as a distinguishable token.
func (t *Table) rowKey(r Row, idx []int) string {
	var b strings.Builder
	for k, j := range idx {
		if k > 0 {
			b.WriteByte('\x1f')
		}
		v := r[j]
		if v.IsNull() {
			b.WriteString("\x00NULL")
		} else {
			b.WriteString(v.Str())
		}
	}
	return b.String()
}

// colIdx resolves column names to indices.
func (t *Table) colIdx(cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("table %s: unknown column %q", t.name, c)
		}
		idx[i] = j
	}
	return idx, nil
}

// IsKey reports whether the named columns form a key: no nulls and no
// duplicate combination of values.
func (t *Table) IsKey(cols ...string) (bool, error) {
	idx, err := t.colIdx(cols)
	if err != nil {
		return false, err
	}
	seen := make(map[string]struct{}, len(t.rows))
	for _, r := range t.rows {
		for _, j := range idx {
			if r[j].IsNull() {
				return false, nil
			}
		}
		k := t.rowKey(r, idx)
		if _, dup := seen[k]; dup {
			return false, nil
		}
		seen[k] = struct{}{}
	}
	return true, nil
}

// ForeignKeyViolations returns the number of non-null values in t's column
// col that do not appear in refCol of ref. It is the key/FK validation used
// in Section 6 step 2 of the case study.
func (t *Table) ForeignKeyViolations(col string, ref *Table, refCol string) (int, error) {
	j, err := t.Col(col)
	if err != nil {
		return 0, err
	}
	rj, err := ref.Col(refCol)
	if err != nil {
		return 0, err
	}
	valid := make(map[string]struct{}, ref.Len())
	for _, r := range ref.rows {
		if !r[rj].IsNull() {
			valid[r[rj].Str()] = struct{}{}
		}
	}
	violations := 0
	for _, r := range t.rows {
		if r[j].IsNull() {
			continue
		}
		if _, ok := valid[r[j].Str()]; !ok {
			violations++
		}
	}
	return violations, nil
}

// JoinKind selects the join flavour.
type JoinKind int

const (
	// InnerJoin keeps only matching row pairs.
	InnerJoin JoinKind = iota
	// LeftJoin keeps every left row, null-padding right columns when there
	// is no match.
	LeftJoin
)

// Join equi-joins t (left) with o (right) on leftCol = rightCol. Right
// columns are prefixed with o's name + "." when they would collide with a
// left column name.
func (t *Table) Join(name string, o *Table, leftCol, rightCol string, kind JoinKind) (*Table, error) {
	lj, err := t.Col(leftCol)
	if err != nil {
		return nil, err
	}
	rj, err := o.Col(rightCol)
	if err != nil {
		return nil, err
	}

	fields := t.schema.Fields()
	rightFields := o.schema.Fields()
	taken := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		taken[f.Name] = struct{}{}
	}
	for i := range rightFields {
		if _, clash := taken[rightFields[i].Name]; clash {
			rightFields[i].Name = o.name + "." + rightFields[i].Name
		}
		taken[rightFields[i].Name] = struct{}{}
		fields = append(fields, rightFields[i])
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("table: join: %w", err)
	}

	// Hash the right side.
	index := make(map[string][]int)
	for i, r := range o.rows {
		if r[rj].IsNull() {
			continue
		}
		k := r[rj].Str()
		index[k] = append(index[k], i)
	}

	out := New(name, schema)
	nullsRight := make(Row, o.schema.Len())
	for i := range nullsRight {
		nullsRight[i] = Null(o.schema.Field(i).Kind)
	}
	for _, lr := range t.rows {
		var matches []int
		if !lr[lj].IsNull() {
			matches = index[lr[lj].Str()]
		}
		if len(matches) == 0 {
			if kind == LeftJoin {
				nr := make(Row, 0, schema.Len())
				nr = append(nr, lr...)
				nr = append(nr, nullsRight...)
				out.rows = append(out.rows, nr)
			}
			continue
		}
		for _, ri := range matches {
			nr := make(Row, 0, schema.Len())
			nr = append(nr, lr...)
			nr = append(nr, o.rows[ri]...)
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

// GroupConcat groups rows by keyCol and concatenates the non-null values of
// valCol (in first-seen group order) with sep, deduplicating exact repeats.
// It returns a two-column table (keyCol, valCol). This implements the
// employee-name aggregation of Section 6 step 4.b.
func (t *Table) GroupConcat(name, keyCol, valCol, sep string) (*Table, error) {
	kj, err := t.Col(keyCol)
	if err != nil {
		return nil, err
	}
	vj, err := t.Col(valCol)
	if err != nil {
		return nil, err
	}
	order := make([]string, 0)
	parts := make(map[string][]string)
	seen := make(map[string]map[string]struct{})
	for _, r := range t.rows {
		if r[kj].IsNull() {
			continue
		}
		k := r[kj].Str()
		if _, ok := parts[k]; !ok {
			order = append(order, k)
			parts[k] = nil
			seen[k] = make(map[string]struct{})
		}
		if r[vj].IsNull() {
			continue
		}
		v := r[vj].Str()
		if _, dup := seen[k][v]; dup {
			continue
		}
		seen[k][v] = struct{}{}
		parts[k] = append(parts[k], v)
	}
	schema := MustSchema(
		Field{Name: keyCol, Kind: t.schema.Field(kj).Kind},
		Field{Name: valCol, Kind: String},
	)
	out := New(name, schema)
	for _, k := range order {
		var v Value
		if len(parts[k]) == 0 {
			v = Null(String)
		} else {
			v = S(strings.Join(parts[k], sep))
		}
		out.MustAppend(Row{S(k), v})
	}
	return out, nil
}

// Distinct returns a new table with duplicate rows (over the named columns,
// or all columns when none are given) removed, keeping first occurrences.
func (t *Table) Distinct(name string, cols ...string) (*Table, error) {
	if len(cols) == 0 {
		cols = t.schema.Names()
	}
	idx, err := t.colIdx(cols)
	if err != nil {
		return nil, err
	}
	out := New(name, t.schema)
	seen := make(map[string]struct{}, len(t.rows))
	for _, r := range t.rows {
		k := t.rowKey(r, idx)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.rows = append(out.rows, r.Clone())
	}
	return out, nil
}

// SortBy returns a new table sorted ascending by the named column (string
// comparison for strings/dates rendered canonically, numeric for numbers).
// Nulls sort first. The sort is stable.
func (t *Table) SortBy(col string) (*Table, error) {
	j, err := t.Col(col)
	if err != nil {
		return nil, err
	}
	out := t.Clone()
	kind := t.schema.Field(j).Kind
	sort.SliceStable(out.rows, func(a, b int) bool {
		va, vb := out.rows[a][j], out.rows[b][j]
		if va.IsNull() != vb.IsNull() {
			return va.IsNull()
		}
		if va.IsNull() {
			return false
		}
		switch kind {
		case Int, Float:
			return va.Float() < vb.Float()
		case Date:
			return va.Date().Before(vb.Date())
		default:
			return va.Str() < vb.Str()
		}
	})
	return out, nil
}

// Head returns the first n rows as a new table (fewer if the table is
// shorter).
func (t *Table) Head(n int) *Table {
	if n > len(t.rows) {
		n = len(t.rows)
	}
	out := New(t.name, t.schema)
	out.rows = make([]Row, n)
	for i := 0; i < n; i++ {
		out.rows[i] = t.rows[i].Clone()
	}
	return out
}

// String renders a small preview of the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%d rows x %d cols]\n", t.name, t.Len(), t.schema.Len())
	b.WriteString(strings.Join(t.schema.Names(), " | "))
	b.WriteByte('\n')
	n := t.Len()
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		cells := make([]string, t.schema.Len())
		for j := range cells {
			cells[j] = t.rows[i][j].String()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	if t.Len() > n {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.Len()-n)
	}
	return b.String()
}
