package table

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	src := "Name,Age,Start\nAlice,30,2008-10-01\nBob,,10/1/08\n"
	kinds := map[string]Kind{"Age": Int, "Start": Date}
	tab, err := ReadCSV("people", strings.NewReader(src), kinds)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("rows = %d", tab.Len())
	}
	if tab.Get(0, "Age").Int() != 30 {
		t.Fatal("int parse wrong")
	}
	if !tab.Get(1, "Age").IsNull() {
		t.Fatal("empty int should be null")
	}
	if tab.Get(1, "Start").Str() != "2008-10-01" {
		t.Fatalf("date parse = %q", tab.Get(1, "Start").Str())
	}
}

func TestReadCSVDirtyCellsBecomeNull(t *testing.T) {
	src := "N\nnot-a-number\n7\n"
	tab, err := ReadCSV("x", strings.NewReader(src), map[string]Kind{"N": Int})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Get(0, "N").IsNull() {
		t.Fatal("unparseable cell should become null")
	}
	if tab.Get(1, "N").Int() != 7 {
		t.Fatal("valid cell lost")
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	src := "A,B\n1\n2,3\n"
	tab, err := ReadCSV("x", strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Get(0, "B").IsNull() {
		t.Fatal("missing trailing cell should be null")
	}
}

func TestReadCSVDuplicateHeader(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("A,A\n1,2\n"), nil); err == nil {
		t.Fatal("duplicate header should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := MustSchema(
		Field{Name: "ID", Kind: Int},
		Field{Name: "Title", Kind: String},
		Field{Name: "Amount", Kind: Float},
	)
	tab := New("grants", schema)
	tab.MustAppend(Row{I(1), S("Corn, \"IPM\" guidelines"), F(1234.5)})
	tab.MustAppend(Row{I(2), Null(String), Null(Float)})

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("grants", &buf, map[string]Kind{"ID": Int, "Amount": Float})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip rows = %d", got.Len())
	}
	if got.Get(0, "Title").Str() != `Corn, "IPM" guidelines` {
		t.Fatalf("quoting broken: %q", got.Get(0, "Title").Str())
	}
	if !got.Get(1, "Title").IsNull() || !got.Get(1, "Amount").IsNull() {
		t.Fatal("nulls lost in round trip")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "t.csv")
	tab := New("t", MustSchema(Field{Name: "X", Kind: String}))
	tab.MustAppend(Row{S("hello")})
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "t" {
		t.Fatalf("table name from file = %q", got.Name())
	}
	if got.Get(0, "X").Str() != "hello" {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv"), nil); err == nil {
		t.Fatal("missing file should error")
	}
	if !os.IsNotExist(err) && err != nil {
		// fine: just asserting error exists above
		_ = err
	}
}

func TestSample(t *testing.T) {
	tab := New("t", MustSchema(Field{Name: "N", Kind: Int}))
	for i := 0; i < 100; i++ {
		tab.MustAppend(Row{I(int64(i))})
	}
	rng := rand.New(rand.NewSource(1))
	s, err := tab.Sample("s", 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("sample len = %d", s.Len())
	}
	seen := map[int64]bool{}
	for i := 0; i < s.Len(); i++ {
		n := s.Get(i, "N").Int()
		if seen[n] {
			t.Fatal("sample with replacement detected")
		}
		seen[n] = true
	}
	if _, err := tab.Sample("s", 101, rng); err == nil {
		t.Fatal("oversample should error")
	}
}

func TestSampleDeterminism(t *testing.T) {
	tab := New("t", MustSchema(Field{Name: "N", Kind: Int}))
	for i := 0; i < 50; i++ {
		tab.MustAppend(Row{I(int64(i))})
	}
	a, _ := tab.Sample("a", 5, rand.New(rand.NewSource(7)))
	b, _ := tab.Sample("b", 5, rand.New(rand.NewSource(7)))
	for i := 0; i < 5; i++ {
		if a.Get(i, "N").Int() != b.Get(i, "N").Int() {
			t.Fatal("same seed must give same sample")
		}
	}
}

func TestSampleIndices(t *testing.T) {
	idx, err := SampleIndices(10, 3, rand.New(rand.NewSource(2)))
	if err != nil || len(idx) != 3 {
		t.Fatalf("SampleIndices: %v %v", idx, err)
	}
	if _, err := SampleIndices(3, 10, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("oversample indices should error")
	}
}
