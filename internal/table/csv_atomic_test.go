package table

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVEmptyFileErrors(t *testing.T) {
	if _, err := ReadCSV("empty", strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input should be a descriptive error, not a zero-row table")
	} else if !strings.Contains(err.Error(), "empty") {
		t.Fatalf("error should say the file is empty, got: %v", err)
	}
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSVFile(path, nil); err == nil {
		t.Fatal("empty file should error through ReadCSVFile too")
	} else if !strings.Contains(err.Error(), path) {
		t.Fatalf("file-level error should name the path, got: %v", err)
	}
}

func TestReadCSVHeaderOnlyMismatchedKinds(t *testing.T) {
	// Header-only file whose header lacks the kinds map's columns: the
	// wrong table's header, caught instead of returned as an empty table.
	src := "Alpha,Beta\n"
	kinds := map[string]Kind{"Start": Date, "Amount": Float}
	_, err := ReadCSV("wrong", strings.NewReader(src), kinds)
	if err == nil {
		t.Fatal("header-only CSV with mismatched kinds map should error")
	}
	for _, col := range []string{"Amount", "Start"} {
		if !strings.Contains(err.Error(), col) {
			t.Fatalf("error should name missing column %s, got: %v", col, err)
		}
	}

	// Header-only with a MATCHING kinds map stays legal: an empty data
	// slice is a real (if unusual) input.
	tab, err := ReadCSV("ok", strings.NewReader("Start,Amount\n"), map[string]Kind{"Start": Date, "Amount": Float})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatal("want zero rows")
	}

	// With data rows present, unknown kinds entries remain tolerated
	// (projections routinely reuse a superset kinds map).
	if _, err := ReadCSV("ok", strings.NewReader("A\n1\n"), map[string]Kind{"B": Int}); err != nil {
		t.Fatalf("kinds superset over non-empty table should stay legal: %v", err)
	}
}

func TestWriteCSVFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")

	old := New("t", MustSchema(Field{Name: "X", Kind: String}))
	old.MustAppend(Row{S("old")})
	if err := old.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}

	// Overwrite with new content; on success the file is the new table…
	niu := New("t", MustSchema(Field{Name: "X", Kind: String}))
	niu.MustAppend(Row{S("new")})
	if err := niu.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(0, "X").Str() != "new" {
		t.Fatal("overwrite lost data")
	}

	// …and no temp files linger in the target directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteCSVFileFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	old := New("t", MustSchema(Field{Name: "X", Kind: String}))
	old.MustAppend(Row{S("precious")})
	if err := old.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}

	// Make the target directory unwritable: the temp-file create fails
	// before a single byte of the existing file is touched.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root; chmod cannot make the dir unwritable")
	}
	err := old.WriteCSVFile(path)
	if err == nil {
		t.Fatal("write into unwritable dir should fail")
	}
	if !errors.Is(err, os.ErrPermission) {
		t.Logf("note: failure kind %v", err)
	}
	os.Chmod(dir, 0o755)
	got, readErr := ReadCSVFile(path, nil)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got.Get(0, "X").Str() != "precious" {
		t.Fatal("failed write damaged the existing file")
	}
}

func TestFingerprint(t *testing.T) {
	mk := func(vals ...string) *Table {
		tab := New("t", MustSchema(Field{Name: "X", Kind: String}))
		for _, v := range vals {
			if v == "null" {
				tab.MustAppend(Row{Null(String)})
				continue
			}
			tab.MustAppend(Row{S(v)})
		}
		return tab
	}
	if mk("a", "b").Fingerprint() != mk("a", "b").Fingerprint() {
		t.Fatal("fingerprint must be deterministic")
	}
	if mk("a", "b").Fingerprint() == mk("a", "c").Fingerprint() {
		t.Fatal("cell change must change the fingerprint")
	}
	if mk("").Fingerprint() == mk("null").Fingerprint() {
		t.Fatal("null and empty string must fingerprint differently")
	}
	renamed := mk("a")
	renamed.SetName("other")
	if renamed.Fingerprint() == mk("a").Fingerprint() {
		t.Fatal("table name is part of the identity")
	}
}
