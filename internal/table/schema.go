package table

import (
	"fmt"
	"strings"
)

// Field describes one column: its name and logical kind.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of fields with unique names.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. It returns an error when a field
// name is empty or duplicated.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: make([]Field, 0, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	for _, f := range fields {
		if err := s.add(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for static schema literals.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) add(f Field) error {
	if f.Name == "" {
		return fmt.Errorf("table: empty field name")
	}
	if _, dup := s.index[f.Name]; dup {
		return fmt.Errorf("table: duplicate field %q", f.Name)
	}
	s.index[f.Name] = len(s.fields)
	s.fields = append(s.fields, f)
	return nil
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Names returns the ordered column names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Lookup returns the index of the named column and whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// KindOf returns the kind of the named column; it returns an error for an
// unknown column.
func (s *Schema) KindOf(name string) (Kind, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("table: unknown column %q", name)
	}
	return s.fields[i].Kind, nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out, _ := NewSchema(s.fields...)
	return out
}

// Equal reports whether two schemas have identical field lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "Name(kind), ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = fmt.Sprintf("%s(%s)", f.Name, f.Kind)
	}
	return strings.Join(parts, ", ")
}
