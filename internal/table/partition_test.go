package table

import "testing"

func partitionFixture() *Table {
	t := New("grants", MustSchema(
		Field{Name: "Num", Kind: String},
		Field{Name: "Title", Kind: String},
	))
	t.MustAppend(Row{S("2008-1"), S("corn")})
	t.MustAppend(Row{Null(String), S("dodder")})
	t.MustAppend(Row{S("WIS01"), S("dairy")})
	t.MustAppend(Row{Null(String), S("")})
	return t
}

func TestPartition(t *testing.T) {
	tab := partitionFixture()
	parts, err := Partition(tab, []NamedPredicate{
		{Name: "numbered", Match: func(r Row) bool { return !r[0].IsNull() }},
		{Name: "titled", Match: func(r Row) bool { return r[1].Str() != "" }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if parts["numbered"].Len() != 2 {
		t.Fatalf("numbered: %d", parts["numbered"].Len())
	}
	// First matching predicate wins: rows with numbers never reach
	// "titled".
	if parts["titled"].Len() != 1 || parts["titled"].Get(0, "Title").Str() != "dodder" {
		t.Fatalf("titled: %v", parts["titled"])
	}
	if parts[""].Len() != 1 {
		t.Fatalf("rest: %d", parts[""].Len())
	}
	// Row totals are preserved.
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != tab.Len() {
		t.Fatalf("rows lost: %d of %d", total, tab.Len())
	}
	// Parts are independent copies.
	parts["numbered"].MustAppend(Row{S("x"), S("y")})
	if tab.Len() != 4 {
		t.Fatal("partition mutated source")
	}
}

func TestPartitionValidation(t *testing.T) {
	tab := partitionFixture()
	if _, err := Partition(tab, nil); err == nil {
		t.Fatal("no predicates should error")
	}
	if _, err := Partition(tab, []NamedPredicate{{Name: "", Match: func(Row) bool { return true }}}); err == nil {
		t.Fatal("empty name should error")
	}
	if _, err := Partition(tab, []NamedPredicate{{Name: "x"}}); err == nil {
		t.Fatal("nil predicate should error")
	}
	if _, err := Partition(tab, []NamedPredicate{
		{Name: "x", Match: func(Row) bool { return true }},
		{Name: "x", Match: func(Row) bool { return true }},
	}); err == nil {
		t.Fatal("duplicate names should error")
	}
}
