package table

import (
	"strings"
	"testing"
)

// personTable builds the Figure 1 style table for tests.
func personTable(t *testing.T, name string, rows [][]string) *Table {
	t.Helper()
	schema := MustSchema(
		Field{Name: "Name", Kind: String},
		Field{Name: "City", Kind: String},
		Field{Name: "State", Kind: String},
	)
	tab := New(name, schema)
	for _, r := range rows {
		tab.MustAppend(Row{S(r[0]), S(r[1]), S(r[2])})
	}
	return tab
}

func TestAppendAndAccess(t *testing.T) {
	a := personTable(t, "A", [][]string{
		{"Dave Smith", "Madison", "WI"},
		{"Joe Wilson", "San Jose", "CA"},
	})
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	v, err := a.Value(0, "City")
	if err != nil || v.Str() != "Madison" {
		t.Fatalf("Value(0,City) = %v, %v", v, err)
	}
	if _, err := a.Value(0, "Nope"); err == nil {
		t.Fatal("unknown column should error")
	}
	if err := a.Append(Row{S("x")}); err == nil {
		t.Fatal("short row should error")
	}
}

func TestProject(t *testing.T) {
	a := personTable(t, "A", [][]string{{"Dave", "Madison", "WI"}})
	p, err := a.Project("P", "State", "Name")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.Schema().Names(), ","); got != "State,Name" {
		t.Fatalf("projected schema = %s", got)
	}
	if p.Get(0, "State").Str() != "WI" || p.Get(0, "Name").Str() != "Dave" {
		t.Fatal("projected values wrong")
	}
	if _, err := a.Project("P", "Missing"); err == nil {
		t.Fatal("projecting unknown column should error")
	}
	// Source unchanged.
	if a.Schema().Len() != 3 {
		t.Fatal("project mutated source")
	}
}

func TestRename(t *testing.T) {
	a := personTable(t, "A", [][]string{{"Dave", "Madison", "WI"}})
	r, err := a.Rename(map[string]string{"Name": "FullName"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Has("FullName") || r.Schema().Has("Name") {
		t.Fatal("rename did not apply")
	}
	if r.Get(0, "FullName").Str() != "Dave" {
		t.Fatal("rename lost data")
	}
	// Renaming onto an existing name must fail.
	if _, err := a.Rename(map[string]string{"Name": "City"}); err == nil {
		t.Fatal("rename collision should error")
	}
}

func TestSelect(t *testing.T) {
	a := personTable(t, "A", [][]string{
		{"Dave", "Madison", "WI"},
		{"Joe", "San Jose", "CA"},
		{"Dan", "Middleton", "WI"},
	})
	j, _ := a.Col("State")
	wi := a.Select("WI", func(r Row) bool { return r[j].Str() == "WI" })
	if wi.Len() != 2 {
		t.Fatalf("selected %d rows", wi.Len())
	}
}

func TestAddDropColumn(t *testing.T) {
	a := personTable(t, "A", [][]string{{"Dave Smith", "Madison", "WI"}})
	b, err := a.AddColumn(Field{Name: "Initial", Kind: String}, func(r Row) Value {
		return S(r[0].Str()[:1])
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Get(0, "Initial").Str() != "D" {
		t.Fatal("AddColumn compute wrong")
	}
	if _, err := b.AddColumn(Field{Name: "Initial", Kind: String}, nil); err == nil {
		t.Fatal("duplicate AddColumn should error")
	}
	c, err := b.DropColumn("Initial")
	if err != nil {
		t.Fatal(err)
	}
	if c.Schema().Has("Initial") {
		t.Fatal("DropColumn did not drop")
	}
	if _, err := c.DropColumn("Initial"); err == nil {
		t.Fatal("dropping missing column should error")
	}
}

func TestUnion(t *testing.T) {
	a := personTable(t, "A", [][]string{{"Dave", "Madison", "WI"}})
	b := personTable(t, "B", [][]string{{"Joe", "San Jose", "CA"}})
	u, err := a.Union("U", b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Fatalf("union len = %d", u.Len())
	}
	other := New("O", MustSchema(Field{Name: "X", Kind: Int}))
	if _, err := a.Union("U", other); err == nil {
		t.Fatal("union with mismatched schema should error")
	}
}

func TestIsKey(t *testing.T) {
	a := personTable(t, "A", [][]string{
		{"Dave", "Madison", "WI"},
		{"Joe", "San Jose", "CA"},
	})
	ok, err := a.IsKey("Name")
	if err != nil || !ok {
		t.Fatalf("Name should be a key: %v %v", ok, err)
	}
	ok, _ = a.IsKey("State")
	if !ok {
		t.Fatal("State unique here, should be key")
	}
	a.MustAppend(Row{S("Dan"), S("Middleton"), S("WI")})
	ok, _ = a.IsKey("State")
	if ok {
		t.Fatal("duplicate State should not be key")
	}
	// Composite key.
	ok, _ = a.IsKey("City", "State")
	if !ok {
		t.Fatal("City+State should be composite key")
	}
	// Null breaks keys.
	a.MustAppend(Row{Null(String), S("x"), S("y")})
	ok, _ = a.IsKey("Name")
	if ok {
		t.Fatal("null in key column should fail IsKey")
	}
	if _, err := a.IsKey("Zip"); err == nil {
		t.Fatal("unknown key column should error")
	}
}

func TestForeignKeyViolations(t *testing.T) {
	awards := New("awards", MustSchema(Field{Name: "ID", Kind: String}))
	awards.MustAppend(Row{S("A1")})
	awards.MustAppend(Row{S("A2")})
	emp := New("emp", MustSchema(Field{Name: "AwardID", Kind: String}))
	emp.MustAppend(Row{S("A1")})
	emp.MustAppend(Row{S("A3")}) // violation
	emp.MustAppend(Row{Null(String)})
	n, err := emp.ForeignKeyViolations("AwardID", awards, "ID")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("violations = %d want 1", n)
	}
}

func TestJoinInner(t *testing.T) {
	l := New("L", MustSchema(Field{Name: "K", Kind: String}, Field{Name: "A", Kind: String}))
	l.MustAppend(Row{S("k1"), S("a1")})
	l.MustAppend(Row{S("k2"), S("a2")})
	l.MustAppend(Row{Null(String), S("a3")})
	r := New("R", MustSchema(Field{Name: "K", Kind: String}, Field{Name: "B", Kind: String}))
	r.MustAppend(Row{S("k1"), S("b1")})
	r.MustAppend(Row{S("k1"), S("b2")})

	j, err := l.Join("J", r, "K", "K", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("inner join len = %d want 2", j.Len())
	}
	// Right K collided, so it is prefixed.
	if !j.Schema().Has("R.K") {
		t.Fatalf("expected prefixed right column, schema: %s", j.Schema())
	}
}

func TestJoinLeft(t *testing.T) {
	l := New("L", MustSchema(Field{Name: "K", Kind: String}))
	l.MustAppend(Row{S("k1")})
	l.MustAppend(Row{S("k9")})
	r := New("R", MustSchema(Field{Name: "RK", Kind: String}, Field{Name: "B", Kind: String}))
	r.MustAppend(Row{S("k1"), S("b1")})
	j, err := l.Join("J", r, "K", "RK", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("left join len = %d want 2", j.Len())
	}
	if !j.Get(1, "B").IsNull() {
		t.Fatal("unmatched left row should null-pad right columns")
	}
}

func TestGroupConcat(t *testing.T) {
	e := New("E", MustSchema(Field{Name: "Award", Kind: String}, Field{Name: "Emp", Kind: String}))
	e.MustAppend(Row{S("A1"), S("Kermicle, J.L")})
	e.MustAppend(Row{S("A1"), S("Hammer, R")})
	e.MustAppend(Row{S("A1"), S("Kermicle, J.L")}) // dedup
	e.MustAppend(Row{S("A2"), Null(String)})
	g, err := e.GroupConcat("G", "Award", "Emp", "|")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	if got := g.Get(0, "Emp").Str(); got != "Kermicle, J.L|Hammer, R" {
		t.Fatalf("concat = %q", got)
	}
	if !g.Get(1, "Emp").IsNull() {
		t.Fatal("group of only nulls should concat to null")
	}
}

func TestDistinct(t *testing.T) {
	a := personTable(t, "A", [][]string{
		{"Dave", "Madison", "WI"},
		{"Dave", "Madison", "WI"},
		{"Dave", "Verona", "WI"},
	})
	d, err := a.Distinct("D")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("distinct all-cols len = %d", d.Len())
	}
	d2, err := a.Distinct("D2", "Name")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("distinct Name len = %d", d2.Len())
	}
}

func TestSortByAndHead(t *testing.T) {
	a := New("A", MustSchema(Field{Name: "N", Kind: Int}))
	for _, n := range []int64{3, 1, 2} {
		a.MustAppend(Row{I(n)})
	}
	a.MustAppend(Row{Null(Int)})
	s, err := a.SortBy("N")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Get(0, "N").IsNull() {
		t.Fatal("nulls should sort first")
	}
	if s.Get(1, "N").Int() != 1 || s.Get(3, "N").Int() != 3 {
		t.Fatal("numeric sort wrong")
	}
	h := s.Head(2)
	if h.Len() != 2 {
		t.Fatal("head wrong")
	}
	if s.Head(100).Len() != 4 {
		t.Fatal("head beyond len should clamp")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := personTable(t, "A", [][]string{{"Dave", "Madison", "WI"}})
	b := a.Clone()
	b.MustAppend(Row{S("Joe"), S("x"), S("y")})
	if a.Len() != 1 {
		t.Fatal("clone shares row storage")
	}
}

func TestStringPreview(t *testing.T) {
	a := personTable(t, "A", [][]string{
		{"a", "b", "c"}, {"d", "e", "f"}, {"g", "h", "i"},
		{"j", "k", "l"}, {"m", "n", "o"}, {"p", "q", "r"},
	})
	s := a.String()
	if !strings.Contains(s, "6 rows") || !strings.Contains(s, "more rows") {
		t.Fatalf("preview = %s", s)
	}
}
