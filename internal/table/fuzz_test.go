package table

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics and that every accepted value
// renders back to text that re-parses to an equal value.
func FuzzParse(f *testing.F) {
	seeds := []string{"", "42", "3.14", "2008-10-01", "10/1/08", "true", "NaN", "hello", "-", "1e309"}
	for _, s := range seeds {
		for k := String; k <= Bool; k++ {
			f.Add(s, int(k))
		}
	}
	f.Fuzz(func(t *testing.T, s string, kind int) {
		k := Kind(kind % 5)
		v, err := Parse(s, k)
		if err != nil {
			return
		}
		if v.IsNull() {
			return
		}
		// Round trip: render and re-parse.
		back, err := Parse(v.Str(), k)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q, kind %v) failed: %v", v.Str(), s, k, err)
		}
		if back.IsNull() {
			// Rendered form can look like an NA marker only if the
			// original value rendered empty; anything else is a bug.
			if v.Str() != "" {
				t.Fatalf("value %q re-parsed to null", v.Str())
			}
			return
		}
		if !v.Equal(back) && k != Float {
			// Floats may lose NaN-adjacent formatting; all other kinds
			// must round-trip exactly.
			t.Fatalf("round trip changed value: %v -> %v", v, back)
		}
	})
}

// FuzzReadCSV checks the CSV reader never panics on arbitrary input.
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\n1,2\n")
	f.Add("A\n\"quoted, cell\"\n")
	f.Add("")
	f.Add("A,B\nx")
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV("fuzz", strings.NewReader(data), nil)
		if err != nil {
			return
		}
		// A successfully parsed table must be internally consistent.
		for i := 0; i < tab.Len(); i++ {
			if len(tab.Row(i)) != tab.Schema().Len() {
				t.Fatal("row width mismatch")
			}
		}
	})
}
