package table

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a hex SHA-256 digest of the table's identity:
// name, schema (column names and kinds), and every cell's rendered
// value with nulls distinguished from empty strings. Two tables with
// the same fingerprint hold the same data, which is what binds a
// checkpoint directory to its inputs — resuming a run against edited
// tables must read as a different run, not as completed stages.
func (t *Table) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeStr(t.name)
	binary.LittleEndian.PutUint64(buf[:], uint64(t.schema.Len()))
	h.Write(buf[:])
	for _, f := range t.schema.Fields() {
		writeStr(f.Name)
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Kind))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(t.rows)))
	h.Write(buf[:])
	for _, r := range t.rows {
		for _, v := range r {
			if v.IsNull() {
				h.Write([]byte{0})
				continue
			}
			h.Write([]byte{1})
			writeStr(v.Str())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
