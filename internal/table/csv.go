package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSV parses CSV from r into a table. The first record is the header.
// Column kinds are taken from kinds when provided (by column name);
// unspecified columns default to String. Cells that fail to parse under a
// non-string kind become null (real-world CSVs are dirty; the EM pipeline
// treats unparseable cells as missing rather than aborting).
func ReadCSV(name string, r io.Reader, kinds map[string]Kind) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	fields := make([]Field, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		k := String
		if kinds != nil {
			if kk, ok := kinds[h]; ok {
				k = kk
			}
		}
		fields[i] = Field{Name: h, Kind: k}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("table: csv header: %w", err)
	}
	t := New(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", line, err)
		}
		row := make(Row, len(fields))
		for i := range fields {
			var cell string
			if i < len(rec) {
				cell = rec[i]
			}
			v, perr := Parse(cell, fields[i].Kind)
			if perr != nil {
				v = Null(fields[i].Kind)
			}
			row[i] = v
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}

// ReadCSVFile reads a CSV file from disk; the table name is the file's base
// name without extension.
func ReadCSVFile(path string, kinds map[string]Kind) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	t, err := ReadCSV(name, f, kinds)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteCSV writes the table as CSV (header plus rows). Nulls render as the
// empty string.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("table %s: write csv header: %w", t.name, err)
	}
	rec := make([]string, t.schema.Len())
	for _, r := range t.rows {
		for j, v := range r {
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.Str()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table %s: write csv row: %w", t.name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating parent
// directories as needed.
func (t *Table) WriteCSVFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
