package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"emgo/internal/ckpt"
)

// ReadCSV parses CSV from r into a table. The first record is the header.
// Column kinds are taken from kinds when provided (by column name);
// unspecified columns default to String. Cells that fail to parse under a
// non-string kind become null (real-world CSVs are dirty; the EM pipeline
// treats unparseable cells as missing rather than aborting).
func ReadCSV(name string, r io.Reader, kinds map[string]Kind) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err == io.EOF {
		// A zero-byte file is almost always a truncated write or a wrong
		// path; returning a zero-row table here turns that operational
		// problem into a silent "0 matches" downstream.
		return nil, fmt.Errorf("table: csv %s is empty (no header row)", name)
	}
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	fields := make([]Field, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		k := String
		if kinds != nil {
			if kk, ok := kinds[h]; ok {
				k = kk
			}
		}
		fields[i] = Field{Name: h, Kind: k}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("table: csv header: %w", err)
	}
	t := New(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", line, err)
		}
		row := make(Row, len(fields))
		for i := range fields {
			var cell string
			if i < len(rec) {
				cell = rec[i]
			}
			v, perr := Parse(cell, fields[i].Kind)
			if perr != nil {
				v = Null(fields[i].Kind)
			}
			row[i] = v
		}
		t.rows = append(t.rows, row)
	}
	if t.Len() == 0 && kinds != nil {
		// Header-only file: with no data rows to parse, a kinds map
		// naming columns the header lacks is the one schema error we can
		// still catch — usually a header from the wrong table, which
		// would otherwise flow through the pipeline as an empty table.
		var missing []string
		for col := range kinds {
			if !schema.Has(col) {
				missing = append(missing, col)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			return nil, fmt.Errorf("table: csv %s has a header but no rows, and the kinds map names columns absent from the header: %s",
				name, strings.Join(missing, ", "))
		}
	}
	return t, nil
}

// ReadCSVFile reads a CSV file from disk; the table name is the file's base
// name without extension.
func ReadCSVFile(path string, kinds map[string]Kind) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	t, err := ReadCSV(name, f, kinds)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteCSV writes the table as CSV (header plus rows). Nulls render as the
// empty string.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("table %s: write csv header: %w", t.name, err)
	}
	rec := make([]string, t.schema.Len())
	for _, r := range t.rows {
		for j, v := range r {
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.Str()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table %s: write csv row: %w", t.name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating parent
// directories as needed. The write is crash-safe: rows stream to a
// temp file in the target directory, which is fsynced and atomically
// renamed over path — a crash mid-write leaves the previous file (or
// no file), never a truncated CSV.
func (t *Table) WriteCSVFile(path string) error {
	return ckpt.AtomicWriteTo(path, 0o644, func(w io.Writer) error {
		return t.WriteCSV(w)
	})
}
