package table

import (
	"fmt"
	"math/rand"
)

// Sample returns a new table with n rows drawn uniformly without
// replacement using rng. It errors when n exceeds the table size.
func (t *Table) Sample(name string, n int, rng *rand.Rand) (*Table, error) {
	if n < 0 || n > t.Len() {
		return nil, fmt.Errorf("table %s: sample %d of %d rows", t.name, n, t.Len())
	}
	perm := rng.Perm(t.Len())
	out := New(name, t.schema)
	out.rows = make([]Row, n)
	for i := 0; i < n; i++ {
		out.rows[i] = t.rows[perm[i]].Clone()
	}
	return out, nil
}

// SampleIndices returns n distinct row indices drawn uniformly without
// replacement.
func SampleIndices(total, n int, rng *rand.Rand) ([]int, error) {
	if n < 0 || n > total {
		return nil, fmt.Errorf("table: sample %d of %d indices", n, total)
	}
	perm := rng.Perm(total)
	out := make([]int, n)
	copy(out, perm[:n])
	return out, nil
}
