package table

import (
	"math"
	"testing"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := S("hello"); v.Str() != "hello" || v.IsNull() || v.Kind() != String {
		t.Errorf("S: got %v", v)
	}
	if v := I(42); v.Int() != 42 || v.Float() != 42 {
		t.Errorf("I: got %v", v)
	}
	if v := F(3.5); v.Float() != 3.5 || v.Int() != 3 {
		t.Errorf("F: got %v", v)
	}
	d := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	if v := D(d); !v.Date().Equal(d) || v.Str() != "2008-10-01" {
		t.Errorf("D: got %v", v)
	}
	if v := B(true); !v.Bool() || v.Int() != 1 {
		t.Errorf("B: got %v", v)
	}
}

func TestNaNFloatIsNull(t *testing.T) {
	v := F(math.NaN())
	if !v.IsNull() {
		t.Fatal("F(NaN) should be null")
	}
	if !math.IsNaN(v.Float()) {
		t.Fatal("null Float() should be NaN")
	}
}

func TestNullSemantics(t *testing.T) {
	n := Null(String)
	if !n.IsNull() {
		t.Fatal("Null should be null")
	}
	if n.Equal(n) {
		t.Fatal("null must not equal null (SQL semantics)")
	}
	if n.Equal(S("")) || S("").Equal(n) {
		t.Fatal("null must not equal empty string")
	}
	if n.String() != "NULL" {
		t.Errorf("null String() = %q", n.String())
	}
	// Empty string is a valid value distinct from null.
	if S("").IsNull() {
		t.Fatal("S(\"\") must not be null")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !I(5).Equal(F(5.0)) {
		t.Error("int 5 should equal float 5.0")
	}
	if I(5).Equal(S("5")) {
		t.Error("int 5 must not equal string \"5\"")
	}
	if !S("x").Equal(S("x")) || S("x").Equal(S("y")) {
		t.Error("string equality broken")
	}
	d := time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)
	if !D(d).Equal(D(d)) {
		t.Error("date equality broken")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
		null bool
		want string
	}{
		{"hello", String, false, "hello"},
		{"", String, true, ""},
		{"NA", String, true, ""},
		{"n/a", Int, true, ""},
		{"NaN", Float, true, ""},
		{"null", Date, true, ""},
		{"-", Float, true, ""},
		{"42", Int, false, "42"},
		{" 42 ", Int, false, "42"},
		{"3.25", Float, false, "3.25"},
		{"2008-10-01", Date, false, "2008-10-01"},
		{"10/1/08", Date, false, "2008-10-01"},
		{"1997-07-01", Date, false, "1997-07-01"},
		{"true", Bool, false, "true"},
		{"TRUE", Bool, false, "true"},
	}
	for _, c := range cases {
		v, err := Parse(c.in, c.kind)
		if err != nil {
			t.Errorf("Parse(%q,%v): %v", c.in, c.kind, err)
			continue
		}
		if v.IsNull() != c.null {
			t.Errorf("Parse(%q,%v): null=%v want %v", c.in, c.kind, v.IsNull(), c.null)
			continue
		}
		if !c.null && v.Str() != c.want {
			t.Errorf("Parse(%q,%v) = %q want %q", c.in, c.kind, v.Str(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("abc", Int); err == nil {
		t.Error("Parse(abc, Int) should error")
	}
	if _, err := Parse("abc", Float); err == nil {
		t.Error("Parse(abc, Float) should error")
	}
	if _, err := Parse("not-a-date", Date); err == nil {
		t.Error("Parse(not-a-date, Date) should error")
	}
	if _, err := Parse("maybe", Bool); err == nil {
		t.Error("Parse(maybe, Bool) should error")
	}
}

func TestParseDateFormats(t *testing.T) {
	for _, s := range []string{"2008-10-01", "10/1/08", "10/01/2008", "2008/10/01"} {
		d, err := ParseDate(s)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", s, err)
			continue
		}
		if d.Year() != 2008 || d.Month() != 10 || d.Day() != 1 {
			t.Errorf("ParseDate(%q) = %v", s, d)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{String: "string", Int: "int", Float: "float", Date: "date", Bool: "bool"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q want %q", int(k), k.String(), w)
		}
	}
}
