package table

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: any table of string cells survives a CSV
// write/read round trip exactly (including empty-vs-null distinctions
// collapsing the way the reader documents: empty cells become null).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(cells [][3]string) bool {
		schema := MustSchema(
			Field{Name: "A", Kind: String},
			Field{Name: "B", Kind: String},
			Field{Name: "C", Kind: String},
		)
		tab := New("t", schema)
		for _, row := range cells {
			// encoding/csv canonicalizes \r\n inside quoted fields; that
			// is its documented behaviour, not ours, so keep carriage
			// returns out of the property.
			for i := range row {
				row[i] = strings.ReplaceAll(row[i], "\r", "_")
			}
			tab.MustAppend(Row{S(row[0]), S(row[1]), S(row[2])})
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV("t", &buf, nil)
		if err != nil {
			return false
		}
		if got.Len() != tab.Len() {
			return false
		}
		for i := 0; i < tab.Len(); i++ {
			for j := 0; j < 3; j++ {
				want := tab.Row(i)[j].Str()
				g := got.Row(i)[j]
				if isNA(strings.TrimSpace(want)) {
					// NA-looking text reads back as null.
					if !g.IsNull() {
						return false
					}
					continue
				}
				if g.IsNull() || g.Str() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestJoinMatchesNestedLoopProperty: the hash join agrees with a naive
// nested-loop equi-join on random small tables.
func TestJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name string, n int) *Table {
			tab := New(name, MustSchema(Field{Name: "K", Kind: String}, Field{Name: "V", Kind: Int}))
			for i := 0; i < n; i++ {
				var k Value
				if rng.Intn(5) == 0 {
					k = Null(String)
				} else {
					k = S(string(rune('a' + rng.Intn(4))))
				}
				tab.MustAppend(Row{k, I(int64(i))})
			}
			return tab
		}
		l := mk("L", 1+rng.Intn(8))
		r := mk("R", 1+rng.Intn(8))
		joined, err := l.Join("J", r, "K", "K", InnerJoin)
		if err != nil {
			return false
		}
		want := 0
		for i := 0; i < l.Len(); i++ {
			for j := 0; j < r.Len(); j++ {
				if l.Row(i)[0].Equal(r.Row(j)[0]) {
					want++
				}
			}
		}
		return joined.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctIdempotentProperty: Distinct is idempotent and never grows
// the table.
func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		tab := New("t", MustSchema(Field{Name: "X", Kind: Int}))
		for _, v := range vals {
			tab.MustAppend(Row{I(int64(v % 8))})
		}
		d1, err := tab.Distinct("d1")
		if err != nil {
			return false
		}
		d2, err := d1.Distinct("d2")
		if err != nil {
			return false
		}
		return d1.Len() <= tab.Len() && d2.Len() == d1.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadCSV(b *testing.B) {
	schema := MustSchema(
		Field{Name: "ID", Kind: Int},
		Field{Name: "Title", Kind: String},
		Field{Name: "Start", Kind: Date},
	)
	tab := New("bench", schema)
	d, _ := ParseDate("2008-10-01")
	for i := 0; i < 2000; i++ {
		tab.MustAppend(Row{I(int64(i)), S("development of ipm based corn fungicide guidelines"), D(d)})
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	kinds := map[string]Kind{"ID": Int, "Start": Date}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV("bench", bytes.NewReader(data), kinds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	mk := func(name string, n int) *Table {
		tab := New(name, MustSchema(Field{Name: "K", Kind: String}, Field{Name: "V", Kind: Int}))
		for i := 0; i < n; i++ {
			tab.MustAppend(Row{S("key" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))), I(int64(i))})
		}
		return tab
	}
	l := mk("L", 2000)
	r := mk("R", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Join("J", r, "K", "K", InnerJoin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupConcat(b *testing.B) {
	tab := New("E", MustSchema(Field{Name: "Award", Kind: String}, Field{Name: "Emp", Kind: String}))
	for i := 0; i < 5000; i++ {
		tab.MustAppend(Row{
			S("award" + string(rune('a'+i%500))),
			S("employee" + string(rune('a'+i%7))),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.GroupConcat("g", "Award", "Emp", "|"); err != nil {
			b.Fatal(err)
		}
	}
}
