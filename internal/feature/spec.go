package feature

import "fmt"

// Descriptor is the serializable form of one registry-backed feature.
type Descriptor struct {
	Name     string `json:"name"`
	LeftCol  string `json:"left_col"`
	RightCol string `json:"right_col"`
	Func     string `json:"func"`
}

// Descriptors returns the serializable form of the feature set. Custom
// closure features (empty Func) cannot be serialized and yield an error —
// deploy those by code, not by spec.
func (s *Set) Descriptors() ([]Descriptor, error) {
	out := make([]Descriptor, 0, len(s.Features))
	for _, f := range s.Features {
		if f.Func == "" {
			return nil, fmt.Errorf("feature: %q is a custom feature and cannot be serialized", f.Name)
		}
		if _, ok := computeRegistry[f.Func]; !ok {
			return nil, fmt.Errorf("feature: %q references unknown similarity %q", f.Name, f.Func)
		}
		out = append(out, Descriptor{
			Name: f.Name, LeftCol: f.LeftCol, RightCol: f.RightCol, Func: f.Func,
		})
	}
	return out, nil
}

// FromDescriptors rebuilds a feature set from its serialized form.
func FromDescriptors(descs []Descriptor) (*Set, error) {
	set := &Set{}
	for _, d := range descs {
		fn, ok := computeRegistry[d.Func]
		if !ok {
			return nil, fmt.Errorf("feature: descriptor %q references unknown similarity %q", d.Name, d.Func)
		}
		name := d.Name
		if name == "" {
			name = d.LeftCol + "_" + d.Func
		}
		if err := set.Add(Feature{
			Name: name, LeftCol: d.LeftCol, RightCol: d.RightCol,
			Func: d.Func, Compute: fn,
		}); err != nil {
			return nil, err
		}
	}
	return set, nil
}
