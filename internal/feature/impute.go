package feature

import (
	"fmt"
	"math"
)

// Imputer replaces missing (NaN) feature values with per-column means
// learned from training data — the Section 9 workaround for learners that
// "cannot work with missing values in the feature vectors".
type Imputer struct {
	means []float64
}

// FitImputer learns column means over the non-NaN entries of x. A column
// that is entirely missing imputes to 0.
func FitImputer(x [][]float64) (*Imputer, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("feature: imputer needs at least one row")
	}
	nf := len(x[0])
	means := make([]float64, nf)
	counts := make([]int, nf)
	for _, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("feature: ragged feature matrix")
		}
		for j, v := range row {
			if !math.IsNaN(v) {
				means[j] += v
				counts[j]++
			}
		}
	}
	for j := range means {
		if counts[j] > 0 {
			means[j] /= float64(counts[j])
		}
	}
	return &Imputer{means: means}, nil
}

// Transform returns a copy of x with NaNs replaced by the learned means.
func (im *Imputer) Transform(x [][]float64) ([][]float64, error) {
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != len(im.means) {
			return nil, fmt.Errorf("feature: row %d has %d features, imputer has %d", i, len(row), len(im.means))
		}
		nr := make([]float64, len(row))
		for j, v := range row {
			if math.IsNaN(v) {
				nr[j] = im.means[j]
			} else {
				nr[j] = v
			}
		}
		out[i] = nr
	}
	return out, nil
}

// Means returns the learned column means (a copy).
func (im *Imputer) Means() []float64 {
	out := make([]float64, len(im.means))
	copy(out, im.means)
	return out
}

// ImputerFromMeans rebuilds an imputer from persisted column means (the
// deployment path: the means are learned in development and shipped with
// the workflow spec).
func ImputerFromMeans(means []float64) *Imputer {
	m := make([]float64, len(means))
	copy(m, means)
	return &Imputer{means: m}
}
