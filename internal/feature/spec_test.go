package feature

import (
	"math"
	"testing"

	"emgo/internal/block"
	"emgo/internal/table"
)

func TestComputeRegistry(t *testing.T) {
	fn, ok := Compute("jaccard_word")
	if !ok || fn == nil {
		t.Fatal("jaccard_word should be registered")
	}
	if _, ok := Compute("no_such_sim"); ok {
		t.Fatal("unknown key should not resolve")
	}
	// Sanity: the registered function behaves like a similarity.
	if got := fn(table.S("a b c"), table.S("a b c")); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	if got := fn(table.Null(table.String), table.S("x")); !math.IsNaN(got) {
		t.Fatal("null should yield NaN")
	}
}

func TestNewFeature(t *testing.T) {
	f, err := New("Title", "ProjectTitle", "exact_fold")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "Title_exact_fold" || f.Func != "exact_fold" || f.RightCol != "ProjectTitle" {
		t.Fatalf("feature: %+v", f)
	}
	if _, err := New("a", "b", "bogus"); err == nil {
		t.Fatal("unknown func should error")
	}
}

func TestDescriptorsRoundTrip(t *testing.T) {
	l, r := twoTables(t)
	fs, err := Generate(l, r, corr, []string{"AwardNumber", "AwardTitle", "Amount"})
	if err != nil {
		t.Fatal(err)
	}
	if err := AddCaseInsensitive(fs, l, corr, []string{"AwardTitle"}); err != nil {
		t.Fatal(err)
	}
	descs, err := fs.Descriptors()
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != fs.Len() {
		t.Fatalf("descriptors = %d features = %d", len(descs), fs.Len())
	}
	back, err := FromDescriptors(descs)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fs.Len() {
		t.Fatal("round trip lost features")
	}
	// Vectors must be identical.
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}}
	x1, err := fs.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := back.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		for j := range x1[i] {
			a, b := x1[i][j], x2[i][j]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("vector mismatch at %d,%d: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestDescriptorsRejectCustomFeatures(t *testing.T) {
	s := &Set{}
	if err := s.Add(Feature{Name: "custom", LeftCol: "a", RightCol: "b",
		Compute: func(a, b table.Value) float64 { return 1 }}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Descriptors(); err == nil {
		t.Fatal("custom features must not serialize")
	}
	s2 := &Set{}
	s2.Add(Feature{Name: "x", LeftCol: "a", RightCol: "b", Func: "ghost"})
	if _, err := s2.Descriptors(); err == nil {
		t.Fatal("unknown func key must not serialize")
	}
}

func TestFromDescriptorsErrors(t *testing.T) {
	if _, err := FromDescriptors([]Descriptor{{Name: "x", Func: "ghost"}}); err == nil {
		t.Fatal("unknown func should error")
	}
	// Default naming when Name omitted.
	fs, err := FromDescriptors([]Descriptor{{LeftCol: "T", RightCol: "T", Func: "exact"}})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Features[0].Name != "T_exact" {
		t.Fatalf("default name = %q", fs.Features[0].Name)
	}
	// Duplicate names rejected.
	if _, err := FromDescriptors([]Descriptor{
		{Name: "same", LeftCol: "T", RightCol: "T", Func: "exact"},
		{Name: "same", LeftCol: "T", RightCol: "T", Func: "jaro"},
	}); err == nil {
		t.Fatal("duplicate names should error")
	}
}

func TestImputerFromMeans(t *testing.T) {
	im := ImputerFromMeans([]float64{1, 2})
	out, err := im.Transform([][]float64{{math.NaN(), 5}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 1 || out[0][1] != 5 {
		t.Fatalf("rebuilt imputer wrong: %v", out)
	}
}
