// Package feature implements PyMatcher's automatic feature generation
// (Section 9, footnote 7): given two tables and a correspondence between
// their columns, it infers each attribute's type and instantiates a set of
// similarity features appropriate for that type (Jaccard over 3-grams,
// edit distance, word-level set similarities, numeric differences, ...).
// It also provides the case-insensitive feature extension added while
// debugging the matcher (Section 9) and mean imputation of missing values
// (the scikit-learn NaN workaround of Section 9).
package feature

import (
	"context"
	"fmt"
	"math"

	"emgo/internal/block"
	"emgo/internal/drift"
	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/parallel"
	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// AttrType classifies an attribute for feature selection.
type AttrType int

const (
	// ShortString is a string attribute averaging at most 3 word tokens
	// (codes, names, identifiers).
	ShortString AttrType = iota
	// MediumString averages at most 10 word tokens (titles).
	MediumString
	// LongString is free text beyond 10 tokens.
	LongString
	// Numeric covers int and float attributes.
	Numeric
	// DateAttr covers date attributes.
	DateAttr
	// BoolAttr covers booleans.
	BoolAttr
)

// String returns a readable name for the attribute type.
func (a AttrType) String() string {
	switch a {
	case ShortString:
		return "short_string"
	case MediumString:
		return "medium_string"
	case LongString:
		return "long_string"
	case Numeric:
		return "numeric"
	case DateAttr:
		return "date"
	case BoolAttr:
		return "bool"
	default:
		return fmt.Sprintf("AttrType(%d)", int(a))
	}
}

// InferType classifies the named column of t. String columns are
// classified by their average word-token count over non-null values.
func InferType(t *table.Table, col string) (AttrType, error) {
	j, err := t.Col(col)
	if err != nil {
		return 0, err
	}
	switch t.Schema().Field(j).Kind {
	case table.Int, table.Float:
		return Numeric, nil
	case table.Date:
		return DateAttr, nil
	case table.Bool:
		return BoolAttr, nil
	}
	tok := tokenize.Word{}
	total, n := 0, 0
	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[j]
		if v.IsNull() {
			continue
		}
		total += len(tok.Tokens(v.Str()))
		n++
	}
	if n == 0 {
		return ShortString, nil
	}
	avg := float64(total) / float64(n)
	switch {
	case avg <= 3:
		return ShortString, nil
	case avg <= 10:
		return MediumString, nil
	default:
		return LongString, nil
	}
}

// Feature computes one similarity value for a record pair. A NaN result
// means the feature is missing for that pair (one side null).
type Feature struct {
	// Name is unique within a feature set, e.g. "AwardTitle_jaccard_word".
	Name string
	// LeftCol and RightCol are the compared columns.
	LeftCol, RightCol string
	// Func is the registry key of the similarity ("jaccard_word",
	// "lev_sim", ...); empty for custom closures, which cannot be
	// serialized.
	Func string
	// Compute maps the two cell values to a similarity; it must return
	// NaN when either value is null.
	Compute func(a, b table.Value) float64
}

// Set is an ordered collection of features bound to a left/right table
// pair's schemas.
type Set struct {
	Features []Feature
}

// Names returns the feature names in order.
func (s *Set) Names() []string {
	out := make([]string, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Name
	}
	return out
}

// Len returns the feature count.
func (s *Set) Len() int { return len(s.Features) }

// Add appends a feature, rejecting duplicate names.
func (s *Set) Add(f Feature) error {
	for _, g := range s.Features {
		if g.Name == f.Name {
			return fmt.Errorf("feature: duplicate feature %q", f.Name)
		}
	}
	s.Features = append(s.Features, f)
	return nil
}

// strSim wraps a string similarity into a Feature compute func.
func strSim(fn func(a, b string) float64) func(a, b table.Value) float64 {
	return func(a, b table.Value) float64 {
		if a.IsNull() || b.IsNull() {
			return math.NaN()
		}
		return fn(a.Str(), b.Str())
	}
}

// tokSim wraps a token-set similarity with the given tokenizer.
func tokSim(tok tokenize.Tokenizer, fn func(a, b []string) float64) func(a, b table.Value) float64 {
	return func(a, b table.Value) float64 {
		if a.IsNull() || b.IsNull() {
			return math.NaN()
		}
		return fn(tok.Tokens(a.Str()), tok.Tokens(b.Str()))
	}
}

// lowerTokSim is tokSim over lowercased text — the case-insensitive
// variants added in Section 9.
func lowerTokSim(tok tokenize.Tokenizer, fn func(a, b []string) float64) func(a, b table.Value) float64 {
	return func(a, b table.Value) float64 {
		if a.IsNull() || b.IsNull() {
			return math.NaN()
		}
		return fn(tok.Tokens(tokenize.Lower(a.Str())), tok.Tokens(tokenize.Lower(b.Str())))
	}
}

// numSim wraps a numeric comparator.
func numSim(fn func(a, b float64) float64) func(a, b table.Value) float64 {
	return func(a, b table.Value) float64 {
		if a.IsNull() || b.IsNull() {
			return math.NaN()
		}
		return fn(a.Float(), b.Float())
	}
}

// yearSim compares dates by year.
func yearSim(fn func(a, b float64) float64) func(a, b table.Value) float64 {
	return func(a, b table.Value) float64 {
		if a.IsNull() || b.IsNull() {
			return math.NaN()
		}
		return fn(float64(a.Date().Year()), float64(b.Date().Year()))
	}
}

// Registry of named similarity computations. Every auto-generated
// feature references one of these by key, which is what makes feature
// sets serializable for deployment (internal/workflow's Spec).
var computeRegistry = func() map[string]func(a, b table.Value) float64 {
	word := tokenize.Word{}
	qg3 := tokenize.QGram{Q: 3}
	return map[string]func(a, b table.Value) float64{
		"lev_sim":                  strSim(simfunc.LevenshteinSim),
		"jaro":                     strSim(simfunc.Jaro),
		"jaro_winkler":             strSim(simfunc.JaroWinkler),
		"exact":                    strSim(simfunc.ExactString),
		"exact_fold":               strSim(simfunc.ExactStringFold),
		"jaccard_qgram3":           tokSim(qg3, simfunc.Jaccard),
		"jaccard_word":             tokSim(word, simfunc.Jaccard),
		"cosine_word":              tokSim(word, simfunc.Cosine),
		"dice_word":                tokSim(word, simfunc.Dice),
		"overlap_coeff_word":       tokSim(word, simfunc.OverlapCoefficient),
		"monge_elkan":              tokSim(word, simfunc.MongeElkan),
		"jaccard_word_lower":       lowerTokSim(word, simfunc.Jaccard),
		"jaccard_qgram3_lower":     lowerTokSim(qg3, simfunc.Jaccard),
		"exact_num":                numSim(simfunc.ExactNumeric),
		"abs_diff":                 numSim(simfunc.AbsDiff),
		"rel_diff":                 numSim(simfunc.RelDiff),
		"year_diff":                yearSim(simfunc.YearDiff),
		"year_exact":               yearSim(simfunc.ExactNumeric),
		"generalized_jaccard_word": tokSim(word, simfunc.GeneralizedJaccard),
		"prefix_sim":               strSim(simfunc.PrefixSim),
		"affine_gap":               strSim(simfunc.AffineGap),
	}
}()

// Compute returns the registered similarity computation for key, and
// whether it exists.
func Compute(key string) (func(a, b table.Value) float64, bool) {
	fn, ok := computeRegistry[key]
	return fn, ok
}

// New builds a registry-backed feature; the feature name is
// "<leftCol>_<funcKey>".
func New(leftCol, rightCol, funcKey string) (Feature, error) {
	fn, ok := computeRegistry[funcKey]
	if !ok {
		return Feature{}, fmt.Errorf("feature: unknown similarity %q", funcKey)
	}
	return Feature{
		Name:    leftCol + "_" + funcKey,
		LeftCol: leftCol, RightCol: rightCol,
		Func:    funcKey,
		Compute: fn,
	}, nil
}

// featuresForType maps an attribute type to the similarity keys
// instantiated for it, mirroring PyMatcher's get_features_for_matching.
func featuresForType(at AttrType) []string {
	switch at {
	case ShortString:
		return []string{"lev_sim", "jaro", "jaro_winkler", "exact", "jaccard_qgram3"}
	case MediumString:
		return []string{"jaccard_word", "cosine_word", "overlap_coeff_word", "jaccard_qgram3", "exact"}
	case LongString:
		return []string{"jaccard_word", "cosine_word", "overlap_coeff_word", "monge_elkan"}
	case Numeric:
		return []string{"exact_num", "abs_diff", "rel_diff"}
	case DateAttr:
		return []string{"year_diff", "year_exact"}
	case BoolAttr:
		return []string{"exact_num"}
	}
	return nil
}

// Generate builds the automatic feature set for the given column
// correspondences (left column → right column). The features instantiated
// per column pair depend on the inferred attribute type of the left
// column.
func Generate(left, right *table.Table, corr map[string]string, order []string) (*Set, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("feature: empty column order")
	}
	set := &Set{}
	for _, lcol := range order {
		rcol, ok := corr[lcol]
		if !ok {
			return nil, fmt.Errorf("feature: column %q missing from correspondence", lcol)
		}
		if _, err := right.Col(rcol); err != nil {
			return nil, err
		}
		at, err := InferType(left, lcol)
		if err != nil {
			return nil, err
		}
		for _, key := range featuresForType(at) {
			f, err := New(lcol, rcol, key)
			if err != nil {
				return nil, err
			}
			if err := set.Add(f); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}

// caseInsensitiveKeys are the Section 9 debugging-fix features.
var caseInsensitiveKeys = []string{"jaccard_word_lower", "jaccard_qgram3_lower", "exact_fold"}

// AddCaseInsensitive appends the case-insensitive feature variants for the
// given string column pairs — the Section 9 debugging fix for "award
// titles having different letter cases".
func AddCaseInsensitive(set *Set, left *table.Table, corr map[string]string, cols []string) error {
	for _, lcol := range cols {
		rcol, ok := corr[lcol]
		if !ok {
			return fmt.Errorf("feature: column %q missing from correspondence", lcol)
		}
		if _, err := left.Col(lcol); err != nil {
			return err
		}
		for _, key := range caseInsensitiveKeys {
			f, err := New(lcol, rcol, key)
			if err != nil {
				return err
			}
			if err := set.Add(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Vectorize converts each candidate pair into a feature vector (NaN marks
// missing values). Rows align with pairs.
func (s *Set) Vectorize(left, right *table.Table, pairs []block.Pair) ([][]float64, error) {
	return s.VectorizeCtx(context.Background(), left, right, pairs)
}

// VectorizeCtx is Vectorize under the hardened runtime: the fan-out stops
// on cancellation, and a panicking or failing feature computation surfaces
// as an error carrying the offending pair index (parallel.FailingIndex)
// instead of crashing the process — which is what lets a workflow
// quarantine a poison pair and keep going. Each pair also passes the
// "feature.vectorize" fault-injection site.
func (s *Set) VectorizeCtx(ctx context.Context, left, right *table.Table, pairs []block.Pair) ([][]float64, error) {
	type cols struct{ lj, rj int }
	resolved := make([]cols, len(s.Features))
	for k, f := range s.Features {
		lj, err := left.Col(f.LeftCol)
		if err != nil {
			return nil, err
		}
		rj, err := right.Col(f.RightCol)
		if err != nil {
			return nil, err
		}
		resolved[k] = cols{lj, rj}
	}
	vctx, sp := obs.StartSpan(ctx, "feature.vectorize")
	defer sp.End()
	sp.SetItems(len(pairs))
	vectors := obs.C("feature.vectors_built")
	// prof is the quality-profile collector, fetched once per stage like
	// the metric handles; nil (a single nil check per row) unless a
	// monitored run armed one.
	prof := drift.FromContext(ctx)
	out := make([][]float64, len(pairs))
	err := parallel.ForCtx(vctx, len(pairs), func(i int) error {
		if err := fault.InjectIdx("feature.vectorize", i); err != nil {
			return err
		}
		p := pairs[i]
		row := make([]float64, len(s.Features))
		for k, f := range s.Features {
			row[k] = f.Compute(left.Row(p.A)[resolved[k].lj], right.Row(p.B)[resolved[k].rj])
		}
		out[i] = row
		prof.ObserveVector(row)
		vectors.Inc()
		return nil
	})
	if err != nil {
		sp.SetOutcome("aborted")
		return nil, fmt.Errorf("feature: vectorize: %w", err)
	}
	sp.SetOutcome("ok")
	return out, nil
}
