package feature

import (
	"math"
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/table"
)

func twoTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	left := table.New("L", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "AwardTitle", Kind: table.String},
		table.Field{Name: "Amount", Kind: table.Float},
	))
	left.MustAppend(table.Row{
		table.S("2008-34103-19449"),
		table.S("DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES"),
		table.F(1000),
	})
	left.MustAppend(table.Row{
		table.S("WIS01040"),
		table.S("SWAMP DODDER APPLIED ECOLOGY AND MANAGEMENT"),
		table.Null(table.Float),
	})
	right := table.New("R", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "AwardTitle", Kind: table.String},
		table.Field{Name: "Amount", Kind: table.Float},
	))
	right.MustAppend(table.Row{
		table.S("2008-34103-19449"),
		table.S("Development of IPM-Based Corn Fungicide Guidelines"),
		table.F(1000),
	})
	right.MustAppend(table.Row{
		table.Null(table.String),
		table.S("Swamp Dodder Applied Ecology and Management"),
		table.F(500),
	})
	return left, right
}

var corr = map[string]string{
	"AwardNumber": "AwardNumber",
	"AwardTitle":  "AwardTitle",
	"Amount":      "Amount",
}

func TestInferType(t *testing.T) {
	l, _ := twoTables(t)
	at, err := InferType(l, "AwardNumber")
	if err != nil || at != ShortString {
		t.Fatalf("AwardNumber type = %v (%v)", at, err)
	}
	at, _ = InferType(l, "AwardTitle")
	if at != MediumString {
		t.Fatalf("AwardTitle type = %v", at)
	}
	at, _ = InferType(l, "Amount")
	if at != Numeric {
		t.Fatalf("Amount type = %v", at)
	}
	if _, err := InferType(l, "Nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestInferTypeDateBoolLongEmpty(t *testing.T) {
	tab := table.New("T", table.MustSchema(
		table.Field{Name: "D", Kind: table.Date},
		table.Field{Name: "B", Kind: table.Bool},
		table.Field{Name: "Long", Kind: table.String},
		table.Field{Name: "Empty", Kind: table.String},
	))
	long := strings.Repeat("tok ", 20)
	d, _ := table.ParseDate("2008-01-01")
	tab.MustAppend(table.Row{table.D(d), table.B(true), table.S(long), table.Null(table.String)})
	if at, _ := InferType(tab, "D"); at != DateAttr {
		t.Fatalf("date type = %v", at)
	}
	if at, _ := InferType(tab, "B"); at != BoolAttr {
		t.Fatalf("bool type = %v", at)
	}
	if at, _ := InferType(tab, "Long"); at != LongString {
		t.Fatalf("long type = %v", at)
	}
	if at, _ := InferType(tab, "Empty"); at != ShortString {
		t.Fatalf("empty string col type = %v", at)
	}
}

func TestAttrTypeString(t *testing.T) {
	names := map[AttrType]string{
		ShortString: "short_string", MediumString: "medium_string",
		LongString: "long_string", Numeric: "numeric", DateAttr: "date", BoolAttr: "bool",
	}
	for at, want := range names {
		if at.String() != want {
			t.Errorf("%d.String() = %q", int(at), at.String())
		}
	}
}

func TestGenerate(t *testing.T) {
	l, r := twoTables(t)
	set, err := Generate(l, r, corr, []string{"AwardNumber", "AwardTitle", "Amount"})
	if err != nil {
		t.Fatal(err)
	}
	// 5 short-string + 5 medium-string + 3 numeric = 13 features.
	if set.Len() != 13 {
		t.Fatalf("feature count = %d, names: %v", set.Len(), set.Names())
	}
	names := strings.Join(set.Names(), ",")
	for _, want := range []string{"AwardNumber_lev_sim", "AwardTitle_jaccard_word", "Amount_abs_diff"} {
		if !strings.Contains(names, want) {
			t.Errorf("missing feature %s", want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	l, r := twoTables(t)
	if _, err := Generate(l, r, corr, nil); err == nil {
		t.Fatal("empty order should error")
	}
	if _, err := Generate(l, r, corr, []string{"Nope"}); err == nil {
		t.Fatal("unmapped column should error")
	}
	if _, err := Generate(l, r, map[string]string{"AwardTitle": "Nope"}, []string{"AwardTitle"}); err == nil {
		t.Fatal("unknown right column should error")
	}
}

func TestVectorize(t *testing.T) {
	l, r := twoTables(t)
	set, err := Generate(l, r, corr, []string{"AwardNumber", "AwardTitle", "Amount"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}}
	x, err := set.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 || len(x[0]) != set.Len() {
		t.Fatalf("matrix dims %dx%d", len(x), len(x[0]))
	}
	// Pair (0,0): identical award number → exact = 1.
	nameIdx := map[string]int{}
	for i, n := range set.Names() {
		nameIdx[n] = i
	}
	if x[0][nameIdx["AwardNumber_exact"]] != 1 {
		t.Error("identical award numbers should have exact=1")
	}
	// Titles differ only in case → exact = 0 but jaccard_qgram3 < 1.
	if x[0][nameIdx["AwardTitle_exact"]] != 0 {
		t.Error("case-differing titles should have exact=0")
	}
	// Pair (1,1): right award number null → NaN feature.
	if !math.IsNaN(x[1][nameIdx["AwardNumber_exact"]]) {
		t.Error("null attribute should yield NaN feature")
	}
	// Left amount null → NaN.
	if !math.IsNaN(x[1][nameIdx["Amount_abs_diff"]]) {
		t.Error("null numeric should yield NaN feature")
	}
}

func TestAddCaseInsensitive(t *testing.T) {
	l, r := twoTables(t)
	set, err := Generate(l, r, corr, []string{"AwardTitle"})
	if err != nil {
		t.Fatal(err)
	}
	before := set.Len()
	if err := AddCaseInsensitive(set, l, corr, []string{"AwardTitle"}); err != nil {
		t.Fatal(err)
	}
	if set.Len() != before+3 {
		t.Fatalf("case features added = %d", set.Len()-before)
	}
	x, err := set.Vectorize(l, r, []block.Pair{{A: 0, B: 0}})
	if err != nil {
		t.Fatal(err)
	}
	nameIdx := map[string]int{}
	for i, n := range set.Names() {
		nameIdx[n] = i
	}
	// Case-folded exact should now fire where raw exact did not.
	if x[0][nameIdx["AwardTitle_exact"]] != 0 {
		t.Error("raw exact should be 0")
	}
	if x[0][nameIdx["AwardTitle_exact_fold"]] != 1 {
		t.Error("folded exact should be 1")
	}
	if x[0][nameIdx["AwardTitle_jaccard_word_lower"]] != 1 {
		t.Error("lowercased jaccard should be 1")
	}
	// Duplicate add must fail.
	if err := AddCaseInsensitive(set, l, corr, []string{"AwardTitle"}); err == nil {
		t.Fatal("duplicate case features should error")
	}
	if err := AddCaseInsensitive(set, l, corr, []string{"Nope"}); err == nil {
		t.Fatal("unmapped column should error")
	}
}

func TestSetAddDuplicate(t *testing.T) {
	s := &Set{}
	f := Feature{Name: "x", LeftCol: "a", RightCol: "b"}
	if err := s.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(f); err == nil {
		t.Fatal("duplicate feature name should error")
	}
}

func TestImputer(t *testing.T) {
	x := [][]float64{
		{1, math.NaN(), 3},
		{3, 4, math.NaN()},
		{math.NaN(), 8, math.NaN()},
	}
	im, err := FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	means := im.Means()
	if means[0] != 2 || means[1] != 6 || means[2] != 3 {
		t.Fatalf("means = %v", means)
	}
	out, err := im.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range out {
		for j, v := range row {
			if math.IsNaN(v) {
				t.Fatalf("NaN survives at %d,%d", i, j)
			}
		}
	}
	if out[0][1] != 6 || out[2][0] != 2 {
		t.Fatalf("imputed values wrong: %v", out)
	}
	// Original untouched.
	if !math.IsNaN(x[0][1]) {
		t.Fatal("transform mutated input")
	}
}

func TestImputerAllMissingColumn(t *testing.T) {
	x := [][]float64{{math.NaN()}, {math.NaN()}}
	im, err := FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 {
		t.Fatalf("all-missing column should impute 0, got %v", out[0][0])
	}
}

func TestImputerErrors(t *testing.T) {
	if _, err := FitImputer(nil); err == nil {
		t.Fatal("empty fit should error")
	}
	if _, err := FitImputer([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix should error")
	}
	im, _ := FitImputer([][]float64{{1, 2}})
	if _, err := im.Transform([][]float64{{1}}); err == nil {
		t.Fatal("width mismatch should error")
	}
}
