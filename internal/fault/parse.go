package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses the textual fault-plan syntax binaries expose to
// operators and smoke tests (emserve -inject, chaos scripts):
//
//	site
//	site:key=value,key=value,...
//
// A bare site name arms the zero plan (ModeError on every call). Keys:
//
//	mode     error | panic | sleep (default error)
//	err      message returned by ModeError
//	sleep    ModeSleep duration (e.g. 250ms)
//	first    FailFirst — fire on the first N calls
//	oncall   OnCall — fire on exactly the Nth call
//	indices  Indices — "3;7;12" (semicolon-separated work-item indices)
//	prob     Prob — seeded pseudo-random firing fraction in (0,1]
//	seed     Seed for prob
//
// The syntax deliberately mirrors the Plan struct one to one so a plan
// that works in a Go test can be handed to a binary unchanged.
func ParsePlan(spec string) (site string, p Plan, err error) {
	site, params, hasParams := strings.Cut(spec, ":")
	site = strings.TrimSpace(site)
	if site == "" {
		return "", Plan{}, fmt.Errorf("fault: empty site in plan %q", spec)
	}
	if !hasParams {
		return site, Plan{}, nil
	}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return "", Plan{}, fmt.Errorf("fault: plan %q: %q is not key=value", spec, kv)
		}
		switch key {
		case "mode":
			switch val {
			case "error":
				p.Mode = ModeError
			case "panic":
				p.Mode = ModePanic
			case "sleep":
				p.Mode = ModeSleep
			default:
				return "", Plan{}, fmt.Errorf("fault: plan %q: unknown mode %q", spec, val)
			}
		case "err":
			p.Err = fmt.Errorf("%s", val)
		case "sleep":
			d, derr := time.ParseDuration(val)
			if derr != nil {
				return "", Plan{}, fmt.Errorf("fault: plan %q: sleep: %w", spec, derr)
			}
			p.Sleep = d
		case "first":
			n, nerr := strconv.Atoi(val)
			if nerr != nil || n < 1 {
				return "", Plan{}, fmt.Errorf("fault: plan %q: first must be a positive integer, got %q", spec, val)
			}
			p.FailFirst = n
		case "oncall":
			n, nerr := strconv.Atoi(val)
			if nerr != nil || n < 1 {
				return "", Plan{}, fmt.Errorf("fault: plan %q: oncall must be a positive integer, got %q", spec, val)
			}
			p.OnCall = n
		case "indices":
			for _, tok := range strings.Split(val, ";") {
				n, nerr := strconv.Atoi(strings.TrimSpace(tok))
				if nerr != nil {
					return "", Plan{}, fmt.Errorf("fault: plan %q: bad index %q", spec, tok)
				}
				p.Indices = append(p.Indices, n)
			}
		case "prob":
			f, ferr := strconv.ParseFloat(val, 64)
			if ferr != nil || f <= 0 || f > 1 {
				return "", Plan{}, fmt.Errorf("fault: plan %q: prob must be in (0,1], got %q", spec, val)
			}
			p.Prob = f
		case "seed":
			n, nerr := strconv.ParseInt(val, 10, 64)
			if nerr != nil {
				return "", Plan{}, fmt.Errorf("fault: plan %q: seed: %w", spec, nerr)
			}
			p.Seed = n
		default:
			return "", Plan{}, fmt.Errorf("fault: plan %q: unknown key %q", spec, key)
		}
	}
	if p.Mode == ModeSleep && p.Sleep <= 0 {
		return "", Plan{}, fmt.Errorf("fault: plan %q: mode=sleep needs sleep=<duration>", spec)
	}
	return site, p, nil
}

// EnableSpec parses a plan spec and arms the site — the one-call form
// binaries use for operator-supplied injection flags.
func EnableSpec(spec string) (site string, err error) {
	site, p, err := ParsePlan(spec)
	if err != nil {
		return "", err
	}
	Enable(site, p)
	return site, nil
}
