// Package fault provides deterministic, named fault-injection points for
// exercising the pipeline's recovery paths under test. Production code
// marks interesting sites with fault.Inject("block.join") (or InjectIdx
// when the site processes an indexed work item); the call is a single
// atomic load unless a test has armed the site with Enable, so shipping
// the hooks costs nothing.
//
// Injection is deterministic: a plan fires on exact call numbers
// (FailFirst, OnCall), exact work-item indices (Indices), or a seeded
// pseudo-random fraction of calls (Prob + Seed), never on wall-clock or
// global randomness. That is what lets a test assert "the first labeler
// call fails, the retry succeeds" and have it hold under -race and in CI.
//
// Known sites wired through the repository:
//
//	block.join               each blocker run inside block.UnionBlockCtx
//	feature.vectorize        each pair vectorized by Set.VectorizeCtx
//	ml.forest.fit            each tree trained by RandomForest.FitCtx
//	ml.predict               each row scored by PredictAllCtx
//	label.submit             each label submitted through Tool.Submit
//	label.judge              each judge call in Tool.LabelAllCtx
//	workflow.spec.transform  each transform lookup in Spec.BuildCtx
//	workflow.monitor         each Monitor.CheckErr invocation
//	ckpt.write               each checkpoint artifact write (ckpt.Store.Write)
//	ckpt.rename              the atomic rename committing an artifact
//	ckpt.read                each checkpoint artifact read (treated as corruption)
//	serve.match              each admitted request in the online matching service
//	serve.reload             each matcher-artifact read during serve hot reload
//	serve.job.exec           each async-job shard execution attempt (idx = shard)
//	serve.job.write          each async-job shard-result commit (idx = shard)
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"emgo/internal/obs"
)

// Mode selects what an armed site does when its plan fires.
type Mode int

const (
	// ModeError makes Inject return Plan.Err (or a generic error naming
	// the site).
	ModeError Mode = iota
	// ModePanic makes Inject panic, exercising panic-recovery paths.
	ModePanic
	// ModeSleep makes Inject sleep for Plan.Sleep, exercising deadlines.
	ModeSleep
)

// Plan describes when and how an armed site fires. The zero plan fires
// with ModeError on every call. Firing conditions compose as OR: the plan
// fires when any configured condition holds; if none of FailFirst, OnCall,
// Indices, or Prob is set, every call fires.
type Plan struct {
	// Mode is what happens on a firing call.
	Mode Mode
	// Err is returned by ModeError (nil = generic error naming the site).
	Err error
	// Sleep is the ModeSleep duration.
	Sleep time.Duration
	// FailFirst fires on the first N calls to the site — the transient
	// fault shape retry tests need.
	FailFirst int
	// OnCall fires on exactly the Nth call (1-based).
	OnCall int
	// Indices fires when InjectIdx is invoked with one of these work-item
	// indices, independent of call order — deterministic under parallel
	// schedulers.
	Indices []int
	// Prob fires on a seeded pseudo-random fraction of calls in (0,1];
	// deterministic for a fixed Seed and call sequence.
	Prob float64
	// Seed seeds the Prob stream.
	Seed int64
}

type site struct {
	plan  Plan
	calls int
	fired int
	idx   map[int]bool
	rng   *rand.Rand
}

var (
	armed atomic.Bool // fast path: true only while any site is enabled
	mu    sync.Mutex
	sites map[string]*site
)

// Enable arms a site with a plan, replacing any previous plan and
// resetting the site's counters. Intended for tests only.
func Enable(name string, p Plan) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	s := &site{plan: p}
	if len(p.Indices) > 0 {
		s.idx = make(map[int]bool, len(p.Indices))
		for _, i := range p.Indices {
			s.idx[i] = true
		}
	}
	if p.Prob > 0 {
		s.rng = rand.New(rand.NewSource(p.Seed))
	}
	sites[name] = s
	armed.Store(true)
}

// Disable disarms one site.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, name)
	if len(sites) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every site. Tests should defer this after Enable.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	armed.Store(false)
}

// Count returns how many times the named site has been reached since it
// was armed (firing or not).
func Count(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.calls
	}
	return 0
}

// Fired returns how many of those calls actually fired.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.fired
	}
	return 0
}

// Inject is the injection point for sites without a natural work-item
// index. It returns nil unless the site is armed and its plan fires.
func Inject(name string) error {
	return InjectIdx(name, -1)
}

// InjectIdx is the injection point for sites processing item idx (a pair
// index, a tree index, ...). Plans using Indices only ever fire through
// this form.
func InjectIdx(name string, idx int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	s, ok := sites[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	s.calls++
	fire := s.shouldFire(idx)
	if fire {
		s.fired++
	}
	p := s.plan
	mu.Unlock()
	if !fire {
		return nil
	}
	// A fired trip is an operational event a degraded run must expose:
	// count it globally and per site (the site vocabulary is small and
	// fixed, so the label cardinality is bounded). Only firing calls pay
	// the registry lookup; the unarmed hot path returned above.
	obs.C("fault.trips").Inc()
	obs.C("fault.trips." + name).Inc()
	switch p.Mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at site %q (idx %d)", name, idx))
	case ModeSleep:
		time.Sleep(p.Sleep)
		return nil
	default:
		if p.Err != nil {
			return fmt.Errorf("fault: site %q: %w", name, p.Err)
		}
		return fmt.Errorf("fault: injected error at site %q (idx %d)", name, idx)
	}
}

// shouldFire evaluates the plan's firing conditions; callers hold mu.
func (s *site) shouldFire(idx int) bool {
	p := s.plan
	conditioned := false
	if p.FailFirst > 0 {
		conditioned = true
		if s.calls <= p.FailFirst {
			return true
		}
	}
	if p.OnCall > 0 {
		conditioned = true
		if s.calls == p.OnCall {
			return true
		}
	}
	if s.idx != nil {
		conditioned = true
		if s.idx[idx] {
			return true
		}
	}
	if p.Prob > 0 {
		conditioned = true
		if s.rng.Float64() < p.Prob {
			return true
		}
	}
	return !conditioned
}
