package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
	if Count("nowhere") != 0 {
		t.Fatal("disarmed site must not count")
	}
}

func TestEveryCallFiresByDefault(t *testing.T) {
	defer Reset()
	Enable("s", Plan{})
	for i := 0; i < 3; i++ {
		if err := Inject("s"); err == nil {
			t.Fatalf("call %d should fire", i)
		}
	}
	if Count("s") != 3 || Fired("s") != 3 {
		t.Fatalf("count=%d fired=%d", Count("s"), Fired("s"))
	}
	// Other sites stay silent.
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestFailFirstIsTransient(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Enable("s", Plan{FailFirst: 2, Err: sentinel})
	if err := Inject("s"); !errors.Is(err, sentinel) {
		t.Fatalf("call 1: %v", err)
	}
	if err := Inject("s"); !errors.Is(err, sentinel) {
		t.Fatalf("call 2: %v", err)
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("call 3 should recover: %v", err)
	}
}

func TestOnCall(t *testing.T) {
	defer Reset()
	Enable("s", Plan{OnCall: 2})
	if err := Inject("s"); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if err := Inject("s"); err == nil {
		t.Fatal("call 2 should fire")
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("call 3: %v", err)
	}
}

func TestIndicesFireRegardlessOfOrder(t *testing.T) {
	defer Reset()
	Enable("s", Plan{Indices: []int{5, 1}})
	for _, idx := range []int{3, 5, 0, 1, 2} {
		err := InjectIdx("s", idx)
		want := idx == 5 || idx == 1
		if (err != nil) != want {
			t.Fatalf("idx %d: err=%v want fire=%v", idx, err, want)
		}
	}
	// Plain Inject never matches an index plan.
	if err := Inject("s"); err != nil {
		t.Fatalf("index plan fired on indexless inject: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Enable("s", Plan{Mode: ModePanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), `site "s"`) {
			t.Fatalf("panic message: %v", r)
		}
	}()
	Inject("s")
}

func TestSleepMode(t *testing.T) {
	defer Reset()
	Enable("s", Plan{Mode: ModeSleep, Sleep: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject("s"); err != nil {
		t.Fatalf("sleep mode returned error: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("sleep mode did not sleep")
	}
}

func TestSeededProbIsDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Enable("s", Plan{Prob: 0.5, Seed: 7})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Inject("s") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestDisable(t *testing.T) {
	defer Reset()
	Enable("a", Plan{})
	Enable("b", Plan{})
	Disable("a")
	if err := Inject("a"); err != nil {
		t.Fatalf("disabled site fired: %v", err)
	}
	if err := Inject("b"); err == nil {
		t.Fatal("remaining site should still fire")
	}
}
