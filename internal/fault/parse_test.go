package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParsePlanBareSite(t *testing.T) {
	site, p, err := ParsePlan("ml.predict")
	if err != nil {
		t.Fatal(err)
	}
	if site != "ml.predict" {
		t.Fatalf("site = %q", site)
	}
	if p.Mode != ModeError || p.FailFirst != 0 || p.Prob != 0 {
		t.Fatalf("bare site should parse to the zero plan, got %+v", p)
	}
}

func TestParsePlanFull(t *testing.T) {
	site, p, err := ParsePlan("serve.match:mode=sleep,sleep=150ms,first=3,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if site != "serve.match" {
		t.Fatalf("site = %q", site)
	}
	if p.Mode != ModeSleep || p.Sleep != 150*time.Millisecond || p.FailFirst != 3 || p.Seed != 9 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestParsePlanIndices(t *testing.T) {
	_, p, err := ParsePlan("feature.vectorize:indices=3;7;12")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Indices) != 3 || p.Indices[2] != 12 {
		t.Fatalf("indices = %v", p.Indices)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",                  // empty site
		":mode=error",       // empty site with params
		"s:mode=nope",       // unknown mode
		"s:frequency=often", // unknown key
		"s:first=zero",      // non-integer
		"s:first=0",         // non-positive
		"s:prob=1.5",        // out of range
		"s:prob=0",          // out of range
		"s:mode=sleep",      // sleep mode without duration
		"s:sleep=fast",      // bad duration
		"s:indices=1;x",     // bad index
		"s:modeerror",       // not key=value
	} {
		if _, _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
}

func TestParsePlanRoundTripFires(t *testing.T) {
	defer Reset()
	site, err := EnableSpec("roundtrip.site:mode=error,err=boom,oncall=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(site); err != nil {
		t.Fatalf("call 1 fired: %v", err)
	}
	err = Inject(site)
	if err == nil {
		t.Fatal("call 2 did not fire")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the parsed message", err)
	}
	if Inject(site) != nil {
		t.Fatal("call 3 fired")
	}
}
