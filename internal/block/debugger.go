package block

import (
	"fmt"
	"sort"

	"emgo/internal/parallel"
	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// DebugPair is one pair the blocking debugger flags as a potential match
// that blocking discarded.
type DebugPair struct {
	Pair  Pair
	Score float64
}

// Debugger is a MatchCatcher-style blocking debugger (Section 7 step 5,
// [Li et al., EDBT 2018]): it ranks the record pairs that are in the
// Cartesian product but NOT in the candidate set by a similarity score and
// returns the top K, so a user can eyeball whether blocking killed off true
// matches. Similarity is the maximum Jaccard (word tokens, normalized) over
// the configured column pairs — using the max lets a pair surface when any
// one attribute is suspiciously similar.
type Debugger struct {
	// Cols maps a left column to the right column it is compared with.
	Cols map[string]string
	// K is how many top pairs to return (default 100, the number the case
	// study manually examined).
	K int
}

// Run returns the top-K likely matches outside cand, most similar first.
//
// The search is pruned with a token inverted index: a pair with zero shared
// tokens on every compared column has score 0 and cannot enter a non-empty
// top-K, so only colliding pairs are scored.
func (d Debugger) Run(cand *CandidateSet) ([]DebugPair, error) {
	if len(d.Cols) == 0 {
		return nil, fmt.Errorf("block: debugger needs at least one column pair")
	}
	k := d.K
	if k <= 0 {
		k = 100
	}
	left, right := cand.Left, cand.Right

	type colPair struct{ lj, rj int }
	var cols []colPair
	// Deterministic column order.
	names := make([]string, 0, len(d.Cols))
	for l := range d.Cols {
		names = append(names, l)
	}
	sort.Strings(names)
	for _, l := range names {
		lj, err := left.Col(l)
		if err != nil {
			return nil, err
		}
		rj, err := right.Col(d.Cols[l])
		if err != nil {
			return nil, err
		}
		cols = append(cols, colPair{lj, rj})
	}

	tok := tokenize.Word{}
	tokensOf := func(v table.Value) []string {
		if v.IsNull() {
			return nil
		}
		return tok.Tokens(tokenize.Normalize(v.Str()))
	}

	// Candidate generation: any pair sharing a token on any compared
	// column.
	collide := make(map[Pair]struct{})
	for _, cp := range cols {
		index := make(map[string][]int)
		for j := 0; j < right.Len(); j++ {
			for _, t := range tokenize.SortedSet(tokensOf(right.Row(j)[cp.rj])) {
				index[t] = append(index[t], j)
			}
		}
		for i := 0; i < left.Len(); i++ {
			for _, t := range tokenize.SortedSet(tokensOf(left.Row(i)[cp.lj])) {
				for _, j := range index[t] {
					p := Pair{A: i, B: j}
					if !cand.Contains(p) {
						collide[p] = struct{}{}
					}
				}
			}
		}
	}

	// Score the colliding pairs in parallel (deterministic: results land
	// by index, then one sort below).
	pairs := make([]Pair, 0, len(collide))
	for p := range collide {
		pairs = append(pairs, p)
	}
	scores := make([]float64, len(pairs))
	parallel.For(len(pairs), func(i int) {
		p := pairs[i]
		best := 0.0
		for _, cp := range cols {
			a := tokensOf(left.Row(p.A)[cp.lj])
			b := tokensOf(right.Row(p.B)[cp.rj])
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			if s := simfunc.Jaccard(a, b); s > best {
				best = s
			}
		}
		scores[i] = best
	})
	scored := make([]DebugPair, 0, len(pairs))
	for i, p := range pairs {
		if scores[i] > 0 {
			scored = append(scored, DebugPair{Pair: p, Score: scores[i]})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		if scored[i].Pair.A != scored[j].Pair.A {
			return scored[i].Pair.A < scored[j].Pair.A
		}
		return scored[i].Pair.B < scored[j].Pair.B
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored, nil
}
