// Package block implements blocking for entity matching: the attribute
// equivalence, overlap, and overlap-coefficient blockers used in Section 7
// of the case study, candidate-set algebra (union, minus, intersection),
// and a MatchCatcher-style blocking debugger that surfaces likely matches
// the blocking pipeline may have killed off.
package block

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"emgo/internal/obs"
	"emgo/internal/table"
)

// Pair identifies a candidate record pair by row index into the left and
// right tables.
type Pair struct {
	A int // row index in the left table
	B int // row index in the right table
}

// CandidateSet is a deduplicated set of record pairs over a fixed pair of
// tables. The zero value is not usable; create with NewCandidateSet.
type CandidateSet struct {
	Left  *table.Table
	Right *table.Table
	pairs []Pair
	seen  map[Pair]struct{}
}

// NewCandidateSet returns an empty candidate set over left and right.
func NewCandidateSet(left, right *table.Table) *CandidateSet {
	return &CandidateSet{
		Left:  left,
		Right: right,
		seen:  make(map[Pair]struct{}),
	}
}

// Add inserts a pair; duplicates are ignored. It reports whether the pair
// was new.
func (c *CandidateSet) Add(p Pair) bool {
	if _, dup := c.seen[p]; dup {
		return false
	}
	c.seen[p] = struct{}{}
	c.pairs = append(c.pairs, p)
	return true
}

// Contains reports whether the pair is present.
func (c *CandidateSet) Contains(p Pair) bool {
	_, ok := c.seen[p]
	return ok
}

// Len returns the number of pairs.
func (c *CandidateSet) Len() int { return len(c.pairs) }

// Pairs returns the pairs in insertion order. Callers must not mutate the
// returned slice.
func (c *CandidateSet) Pairs() []Pair { return c.pairs }

// Pair returns the i-th pair.
func (c *CandidateSet) Pair(i int) Pair { return c.pairs[i] }

// sameTables guards the set algebra: operands must be over the same
// two tables for row indices to be comparable.
func (c *CandidateSet) sameTables(o *CandidateSet) error {
	if c.Left != o.Left || c.Right != o.Right {
		return fmt.Errorf("block: candidate sets are over different tables")
	}
	return nil
}

// Union returns a new set with all pairs of c and o.
func (c *CandidateSet) Union(o *CandidateSet) (*CandidateSet, error) {
	if err := c.sameTables(o); err != nil {
		return nil, err
	}
	obs.C("block.candset.ops").Inc()
	out := NewCandidateSet(c.Left, c.Right)
	for _, p := range c.pairs {
		out.Add(p)
	}
	for _, p := range o.pairs {
		out.Add(p)
	}
	return out, nil
}

// Minus returns a new set with the pairs of c not in o.
func (c *CandidateSet) Minus(o *CandidateSet) (*CandidateSet, error) {
	if err := c.sameTables(o); err != nil {
		return nil, err
	}
	obs.C("block.candset.ops").Inc()
	out := NewCandidateSet(c.Left, c.Right)
	for _, p := range c.pairs {
		if !o.Contains(p) {
			out.Add(p)
		}
	}
	return out, nil
}

// Intersect returns a new set with the pairs present in both c and o.
func (c *CandidateSet) Intersect(o *CandidateSet) (*CandidateSet, error) {
	if err := c.sameTables(o); err != nil {
		return nil, err
	}
	obs.C("block.candset.ops").Inc()
	out := NewCandidateSet(c.Left, c.Right)
	for _, p := range c.pairs {
		if o.Contains(p) {
			out.Add(p)
		}
	}
	return out, nil
}

// Sample returns n pairs drawn uniformly without replacement.
func (c *CandidateSet) Sample(n int, rng *rand.Rand) ([]Pair, error) {
	if n < 0 || n > len(c.pairs) {
		return nil, fmt.Errorf("block: sample %d of %d pairs", n, len(c.pairs))
	}
	perm := rng.Perm(len(c.pairs))
	out := make([]Pair, n)
	for i := 0; i < n; i++ {
		out[i] = c.pairs[perm[i]]
	}
	return out, nil
}

// Filter returns a new set with the pairs for which keep returns true.
func (c *CandidateSet) Filter(keep func(Pair) bool) *CandidateSet {
	out := NewCandidateSet(c.Left, c.Right)
	for _, p := range c.pairs {
		if keep(p) {
			out.Add(p)
		}
	}
	return out
}

// PerLeftCounts returns, for every left-table row, how many candidate
// pairs reference it — the per-input-row candidate-set size that quality
// monitoring profiles (a row with zero candidates was not covered by
// blocking).
func (c *CandidateSet) PerLeftCounts() []int {
	out := make([]int, c.Left.Len())
	for _, p := range c.pairs {
		out[p.A]++
	}
	return out
}

// Sorted returns the pairs ordered by (A, B); used for deterministic
// output in reports.
func (c *CandidateSet) Sorted() []Pair {
	out := make([]Pair, len(c.pairs))
	copy(out, c.pairs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Blocker produces a candidate set from two tables.
type Blocker interface {
	// Block computes the candidate pairs of left × right that survive
	// the blocker.
	Block(left, right *table.Table) (*CandidateSet, error)
	// Name identifies the blocker for provenance logs.
	Name() string
}

// ContextBlocker is a Blocker whose join can be cancelled or deadlined
// mid-run. All blockers in this package implement it; third-party
// blockers that don't are run to completion by BlockWithContext.
type ContextBlocker interface {
	Blocker
	// BlockCtx is Block honouring ctx: it returns ctx.Err() promptly
	// (without finishing the join) once ctx is done.
	BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error)
}

// BlockWithContext runs b with cancellation when it supports it, falling
// back to the plain Block after an upfront ctx check otherwise.
func BlockWithContext(ctx context.Context, b Blocker, left, right *table.Table) (*CandidateSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cb, ok := b.(ContextBlocker); ok {
		return cb.BlockCtx(ctx, left, right)
	}
	return b.Block(left, right)
}
