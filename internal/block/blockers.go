package block

import (
	"context"
	"fmt"
	"sort"

	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// cancelStride is how many outer-loop rows a blocker processes between
// cancellation checks: frequent enough that a deadline aborts a join in
// well under a millisecond of extra work, rare enough that ctx.Err()'s
// lock never shows up in profiles.
const cancelStride = 64

// strideErr checks ctx once every cancelStride iterations.
func strideErr(ctx context.Context, i int) error {
	if i%cancelStride == 0 {
		return ctx.Err()
	}
	return nil
}

// AttrEquiv is the attribute-equivalence blocker: a pair survives only when
// the (non-null) blocking attributes of both records are exactly equal. A
// Transform, when set, is applied to the raw attribute text of each side
// before comparison — this is how the case study extracts the suffix of
// "UniqueAwardNumber" before the equality check (Section 7 step 1).
type AttrEquiv struct {
	LeftCol, RightCol string
	// LeftTransform/RightTransform map the attribute text to the blocking
	// key; a nil transform is the identity. Returning "" drops the record
	// from the index (treated as null).
	LeftTransform  func(string) string
	RightTransform func(string) string
}

// Name implements Blocker.
func (b AttrEquiv) Name() string {
	return fmt.Sprintf("attr_equiv(%s=%s)", b.LeftCol, b.RightCol)
}

// Block implements Blocker with a hash join on the blocking key.
func (b AttrEquiv) Block(left, right *table.Table) (*CandidateSet, error) {
	return b.BlockCtx(context.Background(), left, right)
}

// BlockCtx implements ContextBlocker.
func (b AttrEquiv) BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error) {
	lj, err := left.Col(b.LeftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(b.RightCol)
	if err != nil {
		return nil, err
	}
	key := func(v table.Value, transform func(string) string) string {
		if v.IsNull() {
			return ""
		}
		s := v.Str()
		if transform != nil {
			s = transform(s)
		}
		return s
	}
	index := make(map[string][]int)
	for i := 0; i < right.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		k := key(right.Row(i)[rj], b.RightTransform)
		if k == "" {
			continue
		}
		index[k] = append(index[k], i)
	}
	out := NewCandidateSet(left, right)
	for i := 0; i < left.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		k := key(left.Row(i)[lj], b.LeftTransform)
		if k == "" {
			continue
		}
		for _, ri := range index[k] {
			out.Add(Pair{A: i, B: ri})
		}
	}
	return out, nil
}

// Overlap is the overlap blocker of Section 7 step 2: a pair survives when
// the blocking attributes share at least Threshold distinct tokens. When
// Normalize is true the attribute text is lowercased and special characters
// stripped first (the paper's pre-blocking normalization). The blocker is
// implemented with an inverted index over the right table so runtime is
// proportional to the number of token collisions, not |left|×|right|.
type Overlap struct {
	LeftCol, RightCol string
	Tokenizer         tokenize.Tokenizer
	Threshold         int
	Normalize         bool
}

// Name implements Blocker.
func (b Overlap) Name() string {
	return fmt.Sprintf("overlap(%s~%s,K=%d)", b.LeftCol, b.RightCol, b.Threshold)
}

// tokensOf extracts the (distinct) blocking tokens of a value.
func (b Overlap) tokensOf(v table.Value) []string {
	if v.IsNull() {
		return nil
	}
	s := v.Str()
	if b.Normalize {
		s = tokenize.Normalize(s)
	}
	return tokenize.SortedSet(b.Tokenizer.Tokens(s))
}

// Block implements Blocker.
func (b Overlap) Block(left, right *table.Table) (*CandidateSet, error) {
	return b.BlockCtx(context.Background(), left, right)
}

// BlockCtx implements ContextBlocker.
func (b Overlap) BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error) {
	if b.Tokenizer == nil {
		return nil, fmt.Errorf("block: overlap blocker needs a tokenizer")
	}
	if b.Threshold < 1 {
		return nil, fmt.Errorf("block: overlap threshold must be >= 1, got %d", b.Threshold)
	}
	lj, err := left.Col(b.LeftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(b.RightCol)
	if err != nil {
		return nil, err
	}

	// Inverted index: token -> right row ids containing it.
	index := make(map[string][]int)
	for i := 0; i < right.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		for _, t := range b.tokensOf(right.Row(i)[rj]) {
			index[t] = append(index[t], i)
		}
	}

	out := NewCandidateSet(left, right)
	counts := make(map[int]int)
	for i := 0; i < left.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		toks := b.tokensOf(left.Row(i)[lj])
		if len(toks) < b.Threshold {
			// Size filter: fewer tokens than the threshold can never
			// reach the required overlap.
			continue
		}
		clear(counts)
		for _, t := range toks {
			for _, ri := range index[t] {
				counts[ri]++
			}
		}
		for _, ri := range sortedKeys(counts) {
			if counts[ri] >= b.Threshold {
				out.Add(Pair{A: i, B: ri})
			}
		}
	}
	return out, nil
}

// sortedKeys returns the keys of a row-count map in ascending order so
// blockers emit pairs deterministically (map iteration order would leak
// into candidate-set order and, through sampling, into every downstream
// artifact).
func sortedKeys(counts map[int]int) []int {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// OverlapCoefficient is the overlap-coefficient blocker of Section 7 step
// 3: a pair survives when |A∩B| / min(|A|,|B|) >= Threshold over the
// distinct tokens of the blocking attributes. It handles short strings
// that the raw overlap blocker's absolute threshold cannot.
type OverlapCoefficient struct {
	LeftCol, RightCol string
	Tokenizer         tokenize.Tokenizer
	Threshold         float64
	Normalize         bool
}

// Name implements Blocker.
func (b OverlapCoefficient) Name() string {
	return fmt.Sprintf("overlap_coeff(%s~%s,t=%.2f)", b.LeftCol, b.RightCol, b.Threshold)
}

func (b OverlapCoefficient) tokensOf(v table.Value) []string {
	if v.IsNull() {
		return nil
	}
	s := v.Str()
	if b.Normalize {
		s = tokenize.Normalize(s)
	}
	return tokenize.SortedSet(b.Tokenizer.Tokens(s))
}

// Block implements Blocker.
func (b OverlapCoefficient) Block(left, right *table.Table) (*CandidateSet, error) {
	return b.BlockCtx(context.Background(), left, right)
}

// BlockCtx implements ContextBlocker.
func (b OverlapCoefficient) BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error) {
	if b.Tokenizer == nil {
		return nil, fmt.Errorf("block: overlap-coefficient blocker needs a tokenizer")
	}
	if b.Threshold <= 0 || b.Threshold > 1 {
		return nil, fmt.Errorf("block: overlap-coefficient threshold must be in (0,1], got %v", b.Threshold)
	}
	lj, err := left.Col(b.LeftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(b.RightCol)
	if err != nil {
		return nil, err
	}

	rightTokens := make([][]string, right.Len())
	index := make(map[string][]int)
	for i := 0; i < right.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		toks := b.tokensOf(right.Row(i)[rj])
		rightTokens[i] = toks
		for _, t := range toks {
			index[t] = append(index[t], i)
		}
	}

	out := NewCandidateSet(left, right)
	counts := make(map[int]int)
	for i := 0; i < left.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		toks := b.tokensOf(left.Row(i)[lj])
		if len(toks) == 0 {
			continue
		}
		clear(counts)
		for _, t := range toks {
			for _, ri := range index[t] {
				counts[ri]++
			}
		}
		for _, ri := range sortedKeys(counts) {
			inter := counts[ri]
			m := len(toks)
			if len(rightTokens[ri]) < m {
				m = len(rightTokens[ri])
			}
			if m == 0 {
				continue
			}
			if float64(inter)/float64(m) >= b.Threshold {
				out.Add(Pair{A: i, B: ri})
			}
		}
	}
	return out, nil
}

// Func is a black-box blocker evaluating a predicate over the full
// Cartesian product. It is the escape hatch PyMatcher's scripting
// environment provides; only suitable for small inputs.
type Func struct {
	Label string
	Keep  func(left, right table.Row) bool
}

// Name implements Blocker.
func (b Func) Name() string {
	if b.Label != "" {
		return "func(" + b.Label + ")"
	}
	return "func"
}

// Block implements Blocker.
func (b Func) Block(left, right *table.Table) (*CandidateSet, error) {
	if b.Keep == nil {
		return nil, fmt.Errorf("block: func blocker needs a predicate")
	}
	out := NewCandidateSet(left, right)
	for i := 0; i < left.Len(); i++ {
		for j := 0; j < right.Len(); j++ {
			if b.Keep(left.Row(i), right.Row(j)) {
				out.Add(Pair{A: i, B: j})
			}
		}
	}
	return out, nil
}

// UnionBlock runs each blocker and unions the results — the Section 7 step
// 4 consolidation of C1 ∪ C2 ∪ C3.
func UnionBlock(left, right *table.Table, blockers ...Blocker) (*CandidateSet, error) {
	return UnionBlockCtx(context.Background(), left, right, blockers...)
}

// UnionBlockCtx is UnionBlock under the hardened runtime: each blocker
// run honours ctx (cancellation aborts mid-join for the blockers in this
// package), and each run passes through the "block.join" fault-injection
// site so tests can drive blocking failures deterministically.
func UnionBlockCtx(ctx context.Context, left, right *table.Table, blockers ...Blocker) (*CandidateSet, error) {
	out := NewCandidateSet(left, right)
	pairsBlocked := obs.C("block.pairs_blocked")
	for _, b := range blockers {
		jctx, sp := obs.StartSpan(ctx, "block.join")
		sp.Annotate("blocker", b.Name())
		if err := fault.Inject("block.join"); err != nil {
			sp.SetOutcome("aborted")
			sp.End()
			return nil, fmt.Errorf("block: %s: %w", b.Name(), err)
		}
		c, err := BlockWithContext(jctx, b, left, right)
		if err != nil {
			sp.SetOutcome("aborted")
			sp.End()
			return nil, fmt.Errorf("block: %s: %w", b.Name(), err)
		}
		sp.SetItems(c.Len())
		sp.SetOutcome("ok")
		sp.End()
		pairsBlocked.Add(int64(c.Len()))
		out, err = out.Union(c)
		if err != nil {
			return nil, err
		}
	}
	obs.G("block.candidates").Set(int64(out.Len()))
	return out, nil
}
