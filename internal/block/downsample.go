package block

import (
	"fmt"
	"math/rand"
	"sort"

	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// DownSample implements Magellan's down_sample operation for EM
// development on large tables: sample sizeB rows of the right table, then
// keep the left rows most likely to match them — the rows sharing the
// most (rare-ish) tokens with the sampled right rows — so that the
// down-sampled pair of tables still contains matches to work with.
// Plain independent random samples of two large tables would share almost
// no matching pairs; this keeps the development loop meaningful.
//
// cols names the textual columns to compare (they must exist in both
// tables). Returns the down-sampled left and right tables.
func DownSample(left, right *table.Table, cols []string, sizeLeft, sizeB int, rng *rand.Rand) (*table.Table, *table.Table, error) {
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("block: down-sample needs at least one column")
	}
	if sizeB <= 0 || sizeB > right.Len() {
		return nil, nil, fmt.Errorf("block: down-sample sizeB %d out of range (right has %d rows)", sizeB, right.Len())
	}
	if sizeLeft <= 0 || sizeLeft > left.Len() {
		return nil, nil, fmt.Errorf("block: down-sample sizeLeft %d out of range (left has %d rows)", sizeLeft, left.Len())
	}
	var lcols, rcols []int
	for _, c := range cols {
		lj, err := left.Col(c)
		if err != nil {
			return nil, nil, err
		}
		rj, err := right.Col(c)
		if err != nil {
			return nil, nil, err
		}
		lcols = append(lcols, lj)
		rcols = append(rcols, rj)
	}

	sampledB, err := right.Sample(right.Name()+"_sample", sizeB, rng)
	if err != nil {
		return nil, nil, err
	}

	// Token inventory of the sampled right rows.
	word := tokenize.Word{}
	tokensOf := func(r table.Row, cols []int) []string {
		var out []string
		for _, j := range cols {
			if r[j].IsNull() {
				continue
			}
			out = append(out, word.Tokens(tokenize.Normalize(r[j].Str()))...)
		}
		return out
	}
	inB := make(map[string]struct{})
	for i := 0; i < sampledB.Len(); i++ {
		for _, t := range tokensOf(sampledB.Row(i), rcols) {
			inB[t] = struct{}{}
		}
	}

	// Score left rows by shared distinct tokens; keep the top sizeLeft
	// (ties broken by row order; zero-score rows fill up from a shuffled
	// remainder so the sample is not all near-matches).
	type scored struct {
		row   int
		score int
	}
	var hits []scored
	var misses []int
	for i := 0; i < left.Len(); i++ {
		score := 0
		for _, t := range tokenize.SortedSet(tokensOf(left.Row(i), lcols)) {
			if _, ok := inB[t]; ok {
				score++
			}
		}
		if score > 0 {
			hits = append(hits, scored{row: i, score: score})
		} else {
			misses = append(misses, i)
		}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].score > hits[b].score })

	keep := make([]int, 0, sizeLeft)
	for _, h := range hits {
		if len(keep) == sizeLeft {
			break
		}
		keep = append(keep, h.row)
	}
	rng.Shuffle(len(misses), func(a, b int) { misses[a], misses[b] = misses[b], misses[a] })
	for _, m := range misses {
		if len(keep) == sizeLeft {
			break
		}
		keep = append(keep, m)
	}
	sort.Ints(keep)

	outLeft := table.New(left.Name()+"_sample", left.Schema())
	for _, i := range keep {
		outLeft.MustAppend(left.Row(i).Clone())
	}
	return outLeft, sampledB, nil
}
