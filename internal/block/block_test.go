package block

import (
	"math/rand"
	"strings"
	"testing"

	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func grantsTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	left := table.New("U", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "AwardTitle", Kind: table.String},
	))
	left.MustAppend(table.Row{table.S("10.200 2008-34103-19449"), table.S("DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES FOR THE NORTH CENTRAL STATES")})
	left.MustAppend(table.Row{table.S("10.203 WIS01040"), table.S("SWAMP DODDER APPLIED ECOLOGY")})
	left.MustAppend(table.Row{table.Null(table.String), table.S("Lab Supplies")})

	right := table.New("S", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "AwardTitle", Kind: table.String},
	))
	right.MustAppend(table.Row{table.S("2008-34103-19449"), table.S("Development of IPM-Based Corn Fungicide Guidelines for the North Central States")})
	right.MustAppend(table.Row{table.Null(table.String), table.S("Swamp Dodder Applied Ecology and Management")})
	right.MustAppend(table.Row{table.S("2001-34101-10526"), table.S("Wildland-Urban Interface During the 1990's")})
	return left, right
}

// suffix extracts the text after the first space (the second part of a
// UMETRICS UniqueAwardNumber).
func suffix(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[i+1:]
	}
	return ""
}

func TestCandidateSetBasics(t *testing.T) {
	l, r := grantsTables(t)
	c := NewCandidateSet(l, r)
	if !c.Add(Pair{0, 0}) {
		t.Fatal("first add should be new")
	}
	if c.Add(Pair{0, 0}) {
		t.Fatal("duplicate add should be ignored")
	}
	c.Add(Pair{1, 1})
	if c.Len() != 2 || !c.Contains(Pair{1, 1}) || c.Contains(Pair{2, 2}) {
		t.Fatal("membership wrong")
	}
	if c.Pair(0) != (Pair{0, 0}) {
		t.Fatal("pair order wrong")
	}
}

func TestCandidateSetAlgebra(t *testing.T) {
	l, r := grantsTables(t)
	c1 := NewCandidateSet(l, r)
	c1.Add(Pair{0, 0})
	c1.Add(Pair{1, 1})
	c2 := NewCandidateSet(l, r)
	c2.Add(Pair{1, 1})
	c2.Add(Pair{2, 2})

	u, err := c1.Union(c2)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union: %v len=%d", err, u.Len())
	}
	m, err := c1.Minus(c2)
	if err != nil || m.Len() != 1 || !m.Contains(Pair{0, 0}) {
		t.Fatalf("minus: %v %v", err, m.Pairs())
	}
	i, err := c1.Intersect(c2)
	if err != nil || i.Len() != 1 || !i.Contains(Pair{1, 1}) {
		t.Fatalf("intersect: %v %v", err, i.Pairs())
	}

	other := NewCandidateSet(r, l)
	if _, err := c1.Union(other); err == nil {
		t.Fatal("union across different tables should error")
	}
	if _, err := c1.Minus(other); err == nil {
		t.Fatal("minus across different tables should error")
	}
	if _, err := c1.Intersect(other); err == nil {
		t.Fatal("intersect across different tables should error")
	}
}

func TestCandidateSetSampleAndFilter(t *testing.T) {
	l, r := grantsTables(t)
	c := NewCandidateSet(l, r)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c.Add(Pair{i, j})
		}
	}
	s, err := c.Sample(4, rand.New(rand.NewSource(1)))
	if err != nil || len(s) != 4 {
		t.Fatalf("sample: %v %v", err, s)
	}
	if _, err := c.Sample(10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("oversample should error")
	}
	f := c.Filter(func(p Pair) bool { return p.A == p.B })
	if f.Len() != 3 {
		t.Fatalf("filter len = %d", f.Len())
	}
	sorted := c.Sorted()
	if sorted[0] != (Pair{0, 0}) || sorted[8] != (Pair{2, 2}) {
		t.Fatal("sorted order wrong")
	}
}

func TestAttrEquivWithTransform(t *testing.T) {
	l, r := grantsTables(t)
	b := AttrEquiv{
		LeftCol: "AwardNumber", RightCol: "AwardNumber",
		LeftTransform: suffix,
	}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || !c.Contains(Pair{0, 0}) {
		t.Fatalf("M1 blocking: %v", c.Pairs())
	}
	if !strings.Contains(b.Name(), "attr_equiv") {
		t.Fatal("name")
	}
}

func TestAttrEquivNullsDropped(t *testing.T) {
	l, r := grantsTables(t)
	// Without transforms, no left award number equals a right one, and
	// nulls must not join with anything.
	c, err := AttrEquiv{LeftCol: "AwardNumber", RightCol: "AwardNumber"}.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("expected empty, got %v", c.Pairs())
	}
}

func TestAttrEquivUnknownColumn(t *testing.T) {
	l, r := grantsTables(t)
	if _, err := (AttrEquiv{LeftCol: "Nope", RightCol: "AwardNumber"}).Block(l, r); err == nil {
		t.Fatal("unknown left column should error")
	}
	if _, err := (AttrEquiv{LeftCol: "AwardNumber", RightCol: "Nope"}).Block(l, r); err == nil {
		t.Fatal("unknown right column should error")
	}
}

func TestOverlapBlocker(t *testing.T) {
	l, r := grantsTables(t)
	b := Overlap{
		LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
	}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// Corn titles share many tokens; swamp dodder shares 4 ("swamp",
	// "dodder", "applied", "ecology"); lab supplies shares none.
	if !c.Contains(Pair{0, 0}) || !c.Contains(Pair{1, 1}) {
		t.Fatalf("overlap missed true pairs: %v", c.Pairs())
	}
	for _, p := range c.Pairs() {
		if p.A == 2 {
			t.Fatal("lab supplies should not survive K=3")
		}
	}
}

func TestOverlapThresholdMonotone(t *testing.T) {
	l, r := grantsTables(t)
	prev := -1
	for _, k := range []int{1, 2, 3, 5, 8} {
		c, err := Overlap{
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: k, Normalize: true,
		}.Block(l, r)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && c.Len() > prev {
			t.Fatalf("candidate count must not grow with K: K=%d len=%d prev=%d", k, c.Len(), prev)
		}
		prev = c.Len()
	}
}

func TestOverlapValidation(t *testing.T) {
	l, r := grantsTables(t)
	if _, err := (Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle", Threshold: 3}).Block(l, r); err == nil {
		t.Fatal("missing tokenizer should error")
	}
	if _, err := (Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle", Tokenizer: tokenize.Word{}, Threshold: 0}).Block(l, r); err == nil {
		t.Fatal("threshold 0 should error")
	}
}

func TestOverlapCoefficientBlocker(t *testing.T) {
	// Short titles: overlap K=3 cannot fire, coefficient can.
	l := table.New("L", table.MustSchema(table.Field{Name: "T", Kind: table.String}))
	l.MustAppend(table.Row{table.S("Swamp Dodder")})
	r := table.New("R", table.MustSchema(table.Field{Name: "T", Kind: table.String}))
	r.MustAppend(table.Row{table.S("swamp dodder ecology")})

	ov, err := Overlap{LeftCol: "T", RightCol: "T", Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true}.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Len() != 0 {
		t.Fatal("overlap K=3 should drop the short title")
	}
	oc, err := OverlapCoefficient{LeftCol: "T", RightCol: "T", Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true}.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Len() != 1 {
		t.Fatalf("coefficient blocker should keep the short title: %v", oc.Pairs())
	}
}

func TestOverlapCoefficientValidation(t *testing.T) {
	l, r := grantsTables(t)
	if _, err := (OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle", Threshold: 0.7}).Block(l, r); err == nil {
		t.Fatal("missing tokenizer should error")
	}
	if _, err := (OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle", Tokenizer: tokenize.Word{}, Threshold: 0}).Block(l, r); err == nil {
		t.Fatal("threshold 0 should error")
	}
	if _, err := (OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle", Tokenizer: tokenize.Word{}, Threshold: 1.5}).Block(l, r); err == nil {
		t.Fatal("threshold >1 should error")
	}
}

func TestFuncBlocker(t *testing.T) {
	l, r := grantsTables(t)
	b := Func{Label: "same-first-char", Keep: func(lr, rr table.Row) bool {
		a, bb := lr[1].Str(), rr[1].Str()
		return len(a) > 0 && len(bb) > 0 && strings.EqualFold(a[:1], bb[:1])
	}}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(Pair{0, 0}) || !c.Contains(Pair{1, 1}) {
		t.Fatalf("func blocker: %v", c.Pairs())
	}
	if _, err := (Func{}).Block(l, r); err == nil {
		t.Fatal("missing predicate should error")
	}
	if (Func{}).Name() != "func" || b.Name() != "func(same-first-char)" {
		t.Fatal("names")
	}
}

func TestUnionBlock(t *testing.T) {
	l, r := grantsTables(t)
	c, err := UnionBlock(l, r,
		AttrEquiv{LeftCol: "AwardNumber", RightCol: "AwardNumber", LeftTransform: suffix},
		Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle", Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(Pair{0, 0}) || !c.Contains(Pair{1, 1}) {
		t.Fatalf("union block: %v", c.Pairs())
	}
	// An erroring blocker propagates.
	if _, err := UnionBlock(l, r, Overlap{LeftCol: "Nope", RightCol: "AwardTitle", Tokenizer: tokenize.Word{}, Threshold: 1}); err == nil {
		t.Fatal("union should propagate blocker errors")
	}
}

func TestDebuggerFindsDroppedSimilarPair(t *testing.T) {
	l, r := grantsTables(t)
	// Candidate set that deliberately misses the similar pair {1,1}.
	c := NewCandidateSet(l, r)
	c.Add(Pair{0, 0})

	d := Debugger{Cols: map[string]string{"AwardTitle": "AwardTitle"}, K: 10}
	top, err := d.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("debugger found nothing")
	}
	found := false
	for _, dp := range top {
		if dp.Pair == (Pair{1, 1}) {
			found = true
		}
		if cInSet := c.Contains(dp.Pair); cInSet {
			t.Fatal("debugger must not return pairs already in C")
		}
		if dp.Score <= 0 || dp.Score > 1 {
			t.Fatalf("score out of range: %v", dp.Score)
		}
	}
	if !found {
		t.Fatalf("debugger missed the dropped similar pair: %+v", top)
	}
	// Scores must be sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("debug pairs not sorted by score")
		}
	}
}

func TestDebuggerValidation(t *testing.T) {
	l, r := grantsTables(t)
	c := NewCandidateSet(l, r)
	if _, err := (Debugger{}).Run(c); err == nil {
		t.Fatal("debugger without columns should error")
	}
	if _, err := (Debugger{Cols: map[string]string{"Nope": "AwardTitle"}}).Run(c); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestDebuggerKLimit(t *testing.T) {
	l, r := grantsTables(t)
	c := NewCandidateSet(l, r)
	d := Debugger{Cols: map[string]string{"AwardTitle": "AwardTitle"}, K: 1}
	top, err := d.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 1 {
		t.Fatalf("K=1 returned %d", len(top))
	}
}
