package block

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// bigPair builds two n-row single-column tables of distinct numeric-ish
// strings for cancellation tests.
func bigPair(t *testing.T, n int) (*table.Table, *table.Table) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(table.Field{Name: "Key", Kind: table.String})
	}
	l := table.New("L", schema())
	r := table.New("R", schema())
	for i := 0; i < n; i++ {
		l.MustAppend(table.Row{table.S(fmt.Sprintf("key %d alpha beta", i))})
		r.MustAppend(table.Row{table.S(fmt.Sprintf("key %d alpha beta", i))})
	}
	return l, r
}

func TestAttrEquivCancelledMidJoin(t *testing.T) {
	l, r := bigPair(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	b := AttrEquiv{
		LeftCol: "Key", RightCol: "Key",
		// The transform runs once per probed left row; cancelling from
		// inside it makes the abort point deterministic.
		LeftTransform: func(s string) string {
			calls++
			if calls == 10 {
				cancel()
			}
			return s
		},
	}
	_, err := b.BlockCtx(ctx, l, r)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	if calls >= l.Len() {
		t.Fatalf("join ran to completion: %d probe calls", calls)
	}
}

// countingTokenizer wraps Word and cancels a context after `after` calls.
type countingTokenizer struct {
	calls  *int
	after  int
	cancel context.CancelFunc
}

func (ct countingTokenizer) Tokens(s string) []string {
	*ct.calls++
	if *ct.calls == ct.after {
		ct.cancel()
	}
	return tokenize.Word{}.Tokens(s)
}

func (ct countingTokenizer) Name() string { return "counting" }

func TestJaccardJoinCancelledBeforeCompletion(t *testing.T) {
	l, r := bigPair(t, 1000)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	b := JaccardJoin{
		LeftCol: "Key", RightCol: "Key",
		Tokenizer: countingTokenizer{calls: &calls, after: 10, cancel: cancel},
		Threshold: 0.8,
	}
	_, err := b.BlockCtx(ctx, l, r)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	// A full join tokenizes all 2000 rows; cancellation after 10 calls
	// must abort within one stride.
	if calls >= 2000 {
		t.Fatalf("join ran to completion: %d tokenizations", calls)
	}
	// The join is synchronous: nothing may linger.
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base+2 {
		t.Fatalf("goroutines leaked: %d -> %d", base, n)
	}
}

func TestOverlapBlockersCancelled(t *testing.T) {
	l, r := bigPair(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range []ContextBlocker{
		Overlap{LeftCol: "Key", RightCol: "Key", Tokenizer: tokenize.Word{}, Threshold: 2},
		OverlapCoefficient{LeftCol: "Key", RightCol: "Key", Tokenizer: tokenize.Word{}, Threshold: 0.5},
		SortedNeighborhood{LeftCol: "Key", RightCol: "Key", Window: 3},
	} {
		if _, err := b.BlockCtx(ctx, l, r); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v", b.Name(), err)
		}
	}
}

func TestUnionBlockCtxFaultInjection(t *testing.T) {
	defer fault.Reset()
	l, r := bigPair(t, 10)
	b := AttrEquiv{LeftCol: "Key", RightCol: "Key"}

	fault.Enable("block.join", fault.Plan{FailFirst: 1})
	_, err := UnionBlockCtx(context.Background(), l, r, b)
	if err == nil || !strings.Contains(err.Error(), "attr_equiv") {
		t.Fatalf("injected join fault: %v", err)
	}
	// The transient fault is gone on the next run.
	cand, err := UnionBlockCtx(context.Background(), l, r, b)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Len() != 10 {
		t.Fatalf("candidates = %d", cand.Len())
	}
}

func TestBlockWithContextFallback(t *testing.T) {
	l, r := bigPair(t, 5)
	// Func does not implement ContextBlocker; the helper still honours a
	// pre-cancelled ctx and otherwise runs the plain join.
	b := Func{Label: "all", Keep: func(left, right table.Row) bool { return true }}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BlockWithContext(ctx, b, l, r); !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	cand, err := BlockWithContext(context.Background(), b, l, r)
	if err != nil || cand.Len() != 25 {
		t.Fatalf("fallback run: %v, %d pairs", err, cand.Len())
	}
}
