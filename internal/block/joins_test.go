package block

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func titleTables(t *testing.T, leftTitles, rightTitles []string) (*table.Table, *table.Table) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(table.Field{Name: "Title", Kind: table.String})
	}
	l := table.New("L", schema())
	for _, s := range leftTitles {
		l.MustAppend(table.Row{table.S(s)})
	}
	r := table.New("R", schema())
	for _, s := range rightTitles {
		r.MustAppend(table.Row{table.S(s)})
	}
	return l, r
}

func TestJaccardJoin(t *testing.T) {
	l, r := titleTables(t,
		[]string{"corn fungicide guidelines north central", "swamp dodder ecology", "dairy cattle genetics"},
		[]string{"corn fungicide guidelines north central states", "swamp dodder", "potato blight forecasting"},
	)
	b := JaccardJoin{LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 0.6, Normalize: true}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0): 5/6 = 0.83 ✓; (1,1): 2/3 = 0.67 ✓; others below threshold.
	if !c.Contains(Pair{A: 0, B: 0}) || !c.Contains(Pair{A: 1, B: 1}) {
		t.Fatalf("join missed similar pairs: %v", c.Pairs())
	}
	if c.Len() != 2 {
		t.Fatalf("join kept extra pairs: %v", c.Pairs())
	}
	if !strings.Contains(b.Name(), "jaccard_join") {
		t.Error("name")
	}
}

func TestJaccardJoinValidation(t *testing.T) {
	l, r := titleTables(t, []string{"a"}, []string{"a"})
	if _, err := (JaccardJoin{LeftCol: "Title", RightCol: "Title", Threshold: 0.5}).Block(l, r); err == nil {
		t.Fatal("missing tokenizer should error")
	}
	if _, err := (JaccardJoin{LeftCol: "Title", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 0}).Block(l, r); err == nil {
		t.Fatal("zero threshold should error")
	}
	if _, err := (JaccardJoin{LeftCol: "Nope", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 0.5}).Block(l, r); err == nil {
		t.Fatal("unknown column should error")
	}
}

// Property: the prefix-filtered join returns EXACTLY the pairs a naive
// quadratic scan finds — filtering must never change the answer.
func TestJaccardJoinEquivalentToNaive(t *testing.T) {
	words := []string{"corn", "soy", "dairy", "rust", "blight", "soil", "weed", "farm"}
	gen := func(rng *rand.Rand) string {
		n := 1 + rng.Intn(4)
		out := make([]string, n)
		for i := range out {
			out[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(out, " ")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ls, rs []string
		for i := 0; i < 12; i++ {
			ls = append(ls, gen(rng))
			rs = append(rs, gen(rng))
		}
		l, _ := titleTables(t, ls, rs)
		_, r := titleTables(t, ls, rs)
		threshold := 0.3 + rng.Float64()*0.6
		join := JaccardJoin{LeftCol: "Title", RightCol: "Title",
			Tokenizer: tokenize.Word{}, Threshold: threshold, Normalize: true}
		got, err := join.Block(l, r)
		if err != nil {
			return false
		}
		tok := tokenize.Word{}
		for i := 0; i < l.Len(); i++ {
			for j := 0; j < r.Len(); j++ {
				a := tok.Tokens(tokenize.Normalize(l.Get(i, "Title").Str()))
				b := tok.Tokens(tokenize.Normalize(r.Get(j, "Title").Str()))
				want := simfunc.Jaccard(a, b) >= threshold
				if got.Contains(Pair{A: i, B: j}) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedNeighborhood(t *testing.T) {
	l, r := titleTables(t,
		[]string{"anderson", "meyer", "zimmerman"},
		[]string{"andersen", "meier", "zimmermann"},
	)
	b := SortedNeighborhood{LeftCol: "Title", RightCol: "Title", Window: 2}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent in sort order: andersen/anderson, meier/meyer,
	// zimmerman/zimmermann.
	for _, p := range []Pair{{0, 0}, {1, 1}, {2, 2}} {
		if !c.Contains(p) {
			t.Errorf("window missed neighbor pair %v: %v", p, c.Pairs())
		}
	}
	if !strings.Contains(b.Name(), "sorted_neighborhood") {
		t.Error("name")
	}
}

func TestSortedNeighborhoodWithKey(t *testing.T) {
	l, r := titleTables(t, []string{"Meyer"}, []string{"MEIER"})
	b := SortedNeighborhood{LeftCol: "Title", RightCol: "Title", Window: 2,
		Key: simfunc.Soundex}
	c, err := b.Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(Pair{A: 0, B: 0}) {
		t.Fatalf("soundex key should neighbor Meyer/MEIER: %v", c.Pairs())
	}
}

func TestSortedNeighborhoodValidation(t *testing.T) {
	l, r := titleTables(t, []string{"a"}, []string{"a"})
	if _, err := (SortedNeighborhood{LeftCol: "Title", RightCol: "Title", Window: 1}).Block(l, r); err == nil {
		t.Fatal("window < 2 should error")
	}
	if _, err := (SortedNeighborhood{LeftCol: "Nope", RightCol: "Title"}).Block(l, r); err == nil {
		t.Fatal("unknown column should error")
	}
	// Default window pairs identical keys.
	c, err := (SortedNeighborhood{LeftCol: "Title", RightCol: "Title"}).Block(l, r)
	if err != nil || !c.Contains(Pair{A: 0, B: 0}) {
		t.Fatalf("default window: %v %v", c, err)
	}
}

func TestFilterCandidates(t *testing.T) {
	l, r := titleTables(t, []string{"corn alpha", "corn beta"}, []string{"corn alpha", "corn gamma"})
	cheap, err := (Overlap{LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 1, Normalize: true}).Block(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Len() != 4 {
		t.Fatalf("cheap blocker: %v", cheap.Pairs())
	}
	refined, err := FilterCandidates(cheap, "exact-title", func(a, b table.Row) bool {
		return strings.EqualFold(a[0].Str(), b[0].Str())
	})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Len() != 1 || !refined.Contains(Pair{A: 0, B: 0}) {
		t.Fatalf("refined: %v", refined.Pairs())
	}
	if _, err := FilterCandidates(cheap, "nil", nil); err == nil {
		t.Fatal("nil predicate should error")
	}
}

func TestDownSample(t *testing.T) {
	// 60 matching title pairs plus 140 unrelated left rows.
	var ls, rs []string
	for i := 0; i < 60; i++ {
		title := "grant " + string(rune('a'+i%26)) + " corn fungicide " + string(rune('a'+i/26))
		ls = append(ls, title)
		rs = append(rs, title)
	}
	for i := 0; i < 140; i++ {
		ls = append(ls, "unrelated filler row number "+string(rune('a'+i%26)))
	}
	for i := 0; i < 40; i++ {
		rs = append(rs, "other right side content "+string(rune('a'+i%26)))
	}
	l, r := titleTables(t, ls, rs)

	rng := rand.New(rand.NewSource(5))
	dl, dr, err := DownSample(l, r, []string{"Title"}, 50, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Len() != 50 || dr.Len() != 30 {
		t.Fatalf("down-sampled sizes: %d, %d", dl.Len(), dr.Len())
	}
	// The kept left rows must be enriched in rows sharing tokens with
	// the sampled right rows (vs the 30% base rate of matching rows).
	shared := 0
	for i := 0; i < dl.Len(); i++ {
		if strings.Contains(dl.Get(i, "Title").Str(), "corn") {
			shared++
		}
	}
	if shared < 30 {
		t.Fatalf("down-sample kept only %d/50 match-bearing rows", shared)
	}
}

func TestDownSampleValidation(t *testing.T) {
	l, r := titleTables(t, []string{"a"}, []string{"a"})
	rng := rand.New(rand.NewSource(1))
	if _, _, err := DownSample(l, r, nil, 1, 1, rng); err == nil {
		t.Fatal("no columns should error")
	}
	if _, _, err := DownSample(l, r, []string{"Title"}, 1, 5, rng); err == nil {
		t.Fatal("oversized sizeB should error")
	}
	if _, _, err := DownSample(l, r, []string{"Title"}, 5, 1, rng); err == nil {
		t.Fatal("oversized sizeLeft should error")
	}
	if _, _, err := DownSample(l, r, []string{"Nope"}, 1, 1, rng); err == nil {
		t.Fatal("unknown column should error")
	}
}
