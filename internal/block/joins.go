package block

import (
	"context"
	"fmt"
	"sort"

	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// This file adds the scalable blocking machinery beyond the three
// blockers the case study uses: a prefix-filtered Jaccard similarity join
// (the "string filtering techniques" PyMatcher's blockers use under the
// hood — footnote 4), a sorted-neighborhood blocker, and sequential
// blocking over an existing candidate set.

// JaccardJoin is a similarity-join blocker: a pair survives when the
// Jaccard similarity of the tokenized blocking attributes reaches
// Threshold. It uses length and prefix filtering, so only pairs that can
// possibly reach the threshold are verified.
type JaccardJoin struct {
	LeftCol, RightCol string
	Tokenizer         tokenize.Tokenizer
	Threshold         float64
	Normalize         bool
}

// Name implements Blocker.
func (b JaccardJoin) Name() string {
	return fmt.Sprintf("jaccard_join(%s~%s,t=%.2f)", b.LeftCol, b.RightCol, b.Threshold)
}

// tokensOf returns the record's distinct tokens in a fixed global order
// (lexicographic), which prefix filtering requires.
func (b JaccardJoin) tokensOf(v table.Value) []string {
	if v.IsNull() {
		return nil
	}
	s := v.Str()
	if b.Normalize {
		s = tokenize.Normalize(s)
	}
	return tokenize.SortedSet(b.Tokenizer.Tokens(s))
}

// Block implements Blocker.
//
// Filtering: for Jaccard >= t, |A ∩ B| >= t/(1+t) · (|A|+|B|), so
// |B| must lie in [t·|A|, |A|/t] (length filter), and a record's prefix
// of length |X| - ceil(t·|X|) + 1 must share a token with any partner
// (prefix filter). Only prefix collisions are verified exactly.
func (b JaccardJoin) Block(left, right *table.Table) (*CandidateSet, error) {
	return b.BlockCtx(context.Background(), left, right)
}

// BlockCtx implements ContextBlocker.
func (b JaccardJoin) BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error) {
	if b.Tokenizer == nil {
		return nil, fmt.Errorf("block: jaccard join needs a tokenizer")
	}
	if b.Threshold <= 0 || b.Threshold > 1 {
		return nil, fmt.Errorf("block: jaccard threshold must be in (0,1], got %v", b.Threshold)
	}
	lj, err := left.Col(b.LeftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(b.RightCol)
	if err != nil {
		return nil, err
	}
	t := b.Threshold

	prefixLen := func(n int) int {
		keep := int(float64(n)*t + 0.9999999) // ceil(t*n)
		p := n - keep + 1
		if p < 0 {
			p = 0
		}
		return p
	}

	rightTokens := make([][]string, right.Len())
	index := make(map[string][]int) // prefix token -> right rows
	for i := 0; i < right.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		toks := b.tokensOf(right.Row(i)[rj])
		rightTokens[i] = toks
		for _, tok := range toks[:prefixLen(len(toks))] {
			index[tok] = append(index[tok], i)
		}
	}

	out := NewCandidateSet(left, right)
	seen := make(map[int]bool)
	for i := 0; i < left.Len(); i++ {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		toks := b.tokensOf(left.Row(i)[lj])
		if len(toks) == 0 {
			continue
		}
		clear(seen)
		var candidates []int
		for _, tok := range toks[:prefixLen(len(toks))] {
			for _, ri := range index[tok] {
				if seen[ri] {
					continue
				}
				seen[ri] = true
				candidates = append(candidates, ri)
			}
		}
		sort.Ints(candidates)
		for _, ri := range candidates {
			// Length filter.
			la, lb := len(toks), len(rightTokens[ri])
			if float64(lb) < t*float64(la) || float64(lb)*t > float64(la) {
				continue
			}
			if simfunc.Jaccard(toks, rightTokens[ri]) >= t {
				out.Add(Pair{A: i, B: ri})
			}
		}
	}
	return out, nil
}

// SortedNeighborhood is the classic sorted-neighborhood blocker: both
// tables are merged, sorted by a blocking key, and every left/right pair
// within a sliding window of size Window becomes a candidate.
type SortedNeighborhood struct {
	LeftCol, RightCol string
	// Key maps the raw attribute text to the sort key (nil = identity);
	// e.g. a soundex or prefix key.
	Key func(string) string
	// Window is the sliding-window size over the merged sorted list
	// (default 3; must be >= 2 to ever pair records).
	Window int
}

// Name implements Blocker.
func (b SortedNeighborhood) Name() string {
	return fmt.Sprintf("sorted_neighborhood(%s~%s,w=%d)", b.LeftCol, b.RightCol, b.Window)
}

// Block implements Blocker.
func (b SortedNeighborhood) Block(left, right *table.Table) (*CandidateSet, error) {
	return b.BlockCtx(context.Background(), left, right)
}

// BlockCtx implements ContextBlocker.
func (b SortedNeighborhood) BlockCtx(ctx context.Context, left, right *table.Table) (*CandidateSet, error) {
	window := b.Window
	if window == 0 {
		window = 3
	}
	if window < 2 {
		return nil, fmt.Errorf("block: sorted neighborhood window %d < 2", window)
	}
	lj, err := left.Col(b.LeftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(b.RightCol)
	if err != nil {
		return nil, err
	}
	type entry struct {
		key    string
		row    int
		isLeft bool
	}
	var entries []entry
	add := func(t *table.Table, col int, isLeft bool) {
		for i := 0; i < t.Len(); i++ {
			v := t.Row(i)[col]
			if v.IsNull() {
				continue
			}
			k := v.Str()
			if b.Key != nil {
				k = b.Key(k)
			}
			if k == "" {
				continue
			}
			entries = append(entries, entry{key: k, row: i, isLeft: isLeft})
		}
	}
	add(left, lj, true)
	add(right, rj, false)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		// Left records before right ones, then by row, for determinism.
		if entries[i].isLeft != entries[j].isLeft {
			return entries[i].isLeft
		}
		return entries[i].row < entries[j].row
	})

	out := NewCandidateSet(left, right)
	for i := range entries {
		if err := strideErr(ctx, i); err != nil {
			return nil, err
		}
		hi := i + window
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, c := entries[i], entries[j]
			switch {
			case a.isLeft && !c.isLeft:
				out.Add(Pair{A: a.row, B: c.row})
			case !a.isLeft && c.isLeft:
				out.Add(Pair{A: c.row, B: a.row})
			}
		}
	}
	return out, nil
}

// FilterCandidates applies a blocker-style predicate to an existing
// candidate set — PyMatcher's block_candset: sequential blocking where a
// cheap blocker's output is refined by a more expensive check without
// rescanning the Cartesian product. keep receives the two rows of each
// pair.
func FilterCandidates(cand *CandidateSet, label string, keep func(left, right table.Row) bool) (*CandidateSet, error) {
	if keep == nil {
		return nil, fmt.Errorf("block: filter %q needs a predicate", label)
	}
	out := cand.Filter(func(p Pair) bool {
		return keep(cand.Left.Row(p.A), cand.Right.Row(p.B))
	})
	return out, nil
}
