package block

import "emgo/internal/table"

// Dedup supports the single-table EM scenario the paper lists among the
// common cases ("matching tuples within a single table", Section 2): the
// table is blocked against itself and self/symmetric pairs are removed,
// leaving each unordered candidate pair once with A < B.
func Dedup(t *table.Table, blockers ...Blocker) (*CandidateSet, error) {
	cand, err := UnionBlock(t, t, blockers...)
	if err != nil {
		return nil, err
	}
	out := NewCandidateSet(t, t)
	for _, p := range cand.Pairs() {
		switch {
		case p.A == p.B:
			// Trivial self pair.
		case p.A < p.B:
			out.Add(p)
		default:
			out.Add(Pair{A: p.B, B: p.A})
		}
	}
	return out, nil
}
