package block

import (
	"testing"

	"emgo/internal/table"
	"emgo/internal/tokenize"
)

func TestDedup(t *testing.T) {
	tab := table.New("people", table.MustSchema(table.Field{Name: "Name", Kind: table.String}))
	for _, n := range []string{
		"David Smith",
		"David M Smith", // duplicate of 0
		"Joe Wilson",
		"Dan Brown",
	} {
		tab.MustAppend(table.Row{table.S(n)})
	}
	cand, err := Dedup(tab, Overlap{
		LeftCol: "Name", RightCol: "Name",
		Tokenizer: tokenize.Word{}, Threshold: 2, Normalize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the Smith pair shares two tokens; no self pairs; A < B.
	if cand.Len() != 1 || !cand.Contains(Pair{A: 0, B: 1}) {
		t.Fatalf("dedup candidates: %v", cand.Pairs())
	}
	for _, p := range cand.Pairs() {
		if p.A >= p.B {
			t.Fatalf("pair not canonicalized: %v", p)
		}
	}
}

func TestDedupErrorPropagates(t *testing.T) {
	tab := table.New("x", table.MustSchema(table.Field{Name: "Name", Kind: table.String}))
	tab.MustAppend(table.Row{table.S("a")})
	if _, err := Dedup(tab, Overlap{LeftCol: "Nope", RightCol: "Nope", Tokenizer: tokenize.Word{}, Threshold: 1}); err == nil {
		t.Fatal("blocker error should propagate")
	}
}

func TestDedupSelfPairsExcluded(t *testing.T) {
	tab := table.New("x", table.MustSchema(table.Field{Name: "Name", Kind: table.String}))
	tab.MustAppend(table.Row{table.S("same words here")})
	tab.MustAppend(table.Row{table.S("same words here")})
	cand, err := Dedup(tab, AttrEquiv{LeftCol: "Name", RightCol: "Name"})
	if err != nil {
		t.Fatal(err)
	}
	// The AE blocker on t×t produces (0,0),(0,1),(1,0),(1,1); dedup keeps
	// only (0,1).
	if cand.Len() != 1 || !cand.Contains(Pair{A: 0, B: 1}) {
		t.Fatalf("dedup self-join: %v", cand.Pairs())
	}
}
