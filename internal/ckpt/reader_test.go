package ckpt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"emgo/internal/fault"
)

func TestOpenArtifactStreamsAndVerifies(t *testing.T) {
	s := openT(t, t.TempDir(), "fp")
	payload := []byte(`{"x":1,"pad":"abcdefghijklmnop"}`)
	if err := s.Write("a.json", payload); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenArtifact("a.json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(payload)) {
		t.Fatalf("Size() = %d, want %d", r.Size(), len(payload))
	}
	// Tiny reads force the hash to fold incrementally across calls.
	got, err := io.ReadAll(io.NopCloser(&slowReader{r: r, max: 5}))
	if err != nil {
		t.Fatalf("streaming read: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("streamed bytes differ: %s", got)
	}
	// The verdict is sticky: further reads keep answering io.EOF.
	if _, err := r.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("post-EOF read = %v, want io.EOF", err)
	}
}

// slowReader caps each Read at max bytes.
type slowReader struct {
	r   io.Reader
	max int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.max {
		p = p[:s.max]
	}
	return s.r.Read(p)
}

func TestOpenArtifactMissing(t *testing.T) {
	s := openT(t, t.TempDir(), "fp")
	if _, err := s.OpenArtifact("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	var nilStore *Store
	if _, err := nilStore.OpenArtifact("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("nil store: want ErrNotFound, got %v", err)
	}
}

// TestOpenArtifactCorruptionQuarantines: flipped bytes stream out
// (they parse!) but the EOF verdict is ErrCorrupt, sticky, and the
// artifact lands in quarantine — a decoder that trusted the bytes
// before draining would have believed a lie.
func TestOpenArtifactCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.json"), []byte(`{"x":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenArtifact("a.json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = io.ReadAll(r)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt at EOF, got %v", err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt verdict not sticky: %v", err)
	}
	if s.Has("a.json") {
		t.Fatal("corrupt artifact still in manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "a.json.0")); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
}

func TestOpenArtifactTruncationQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte(`{"x":12345}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "a.json"), 3); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenArtifact("a.json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for truncation, got %v", err)
	}
}

// TestOpenArtifactOversize: a file longer than its manifest entry fails
// as soon as the excess byte is read, not only at EOF.
func TestOpenArtifactOversize(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.json"), []byte(`{"x":1}trailing-garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenArtifact("a.json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for oversize, got %v", err)
	}
}

func TestOpenArtifactFaultInjection(t *testing.T) {
	defer fault.Reset()
	s := openT(t, t.TempDir(), "fp")
	if err := s.Write("a.json", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	fault.Enable("ckpt.read", fault.Plan{})
	if _, err := s.OpenArtifact("a.json"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("injected read fault: want ErrCorrupt, got %v", err)
	}
	if s.Has("a.json") {
		t.Fatal("faulted artifact still in manifest")
	}
}
