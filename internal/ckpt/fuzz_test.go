package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzManifestDecode checks that arbitrary manifest bytes can never
// panic the resume path: decodeManifest either returns a usable,
// fully-validated manifest or an error — and every accepted manifest
// is safe to re-encode.
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"fingerprint":"fp","artifacts":{}}`))
	f.Add([]byte(`{"version":1,"artifacts":{"a":{"file":"a","sha256":"` + Fingerprint("x") + `","size":1}}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"artifacts":{"../evil":{"file":"../../etc/passwd"}}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1,"artifacts":{"a":{"file":"a","sha256":"short","size":-5}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.Artifacts == nil {
			t.Fatal("accepted manifest has nil artifact map")
		}
		for name, a := range m.Artifacts {
			if !ValidName(name) || !ValidName(a.File) {
				t.Fatalf("accepted manifest kept unsafe name %q/%q", name, a.File)
			}
			if a.Size < 0 {
				t.Fatal("accepted manifest kept negative size")
			}
		}
		if _, err := m.encode(); err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
	})
}

// FuzzCheckpointRead plants arbitrary bytes as both the manifest and an
// artifact file in a checkpoint directory and checks that Open + Read
// never panic and never return unverified bytes as valid: whatever the
// directory holds, the outcome is a clean resume, ErrNotFound, or a
// quarantined ErrCorrupt — the recompute path, not a crash.
func FuzzCheckpointRead(f *testing.F) {
	f.Add([]byte(`{"version":1,"fingerprint":"fp","artifacts":{"a.json":{"file":"a.json","sha256":"0000000000000000000000000000000000000000000000000000000000000000","size":3}}}`), []byte("abc"))
	f.Add([]byte(`{"version":1,"fingerprint":"fp","artifacts":{}}`), []byte(""))
	f.Add([]byte("garbage"), []byte("garbage"))
	f.Add([]byte{0xff, 0x00, 0x01}, []byte{0x00})
	f.Fuzz(func(t *testing.T, manifest, artifact []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestFile), manifest, 0o644); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, "a.json"), artifact, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, "fp")
		if err != nil {
			t.Fatalf("Open must tolerate any prior state, got %v", err)
		}
		data, err := s.Read("a.json")
		if err != nil {
			return // not found or quarantined — both are fine
		}
		// A successful read must have returned exactly the planted
		// bytes after checksum verification.
		if string(data) != string(artifact) {
			t.Fatal("read returned bytes that differ from the artifact file")
		}
		// And the store must stay writable afterwards.
		if err := s.Write("b.json", []byte("ok")); err != nil {
			t.Fatalf("store unusable after fuzzed resume: %v", err)
		}
	})
}
