//go:build unix

package ckpt

import (
	"os"
	"syscall"
)

// kill terminates the process the way an external `kill -9` would: no
// deferred functions, no flushes — the abrupt death the chaos harness
// is testing recovery from.
func kill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery can lag the syscall return by a scheduler tick;
	// make death certain either way.
	os.Exit(137)
}
