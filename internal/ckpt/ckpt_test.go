package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emgo/internal/fault"
)

func openT(t *testing.T, dir, fp string) *Store {
	t.Helper()
	s, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("blocked.json", []byte(`{"pairs":[[1,2]]}`)); err != nil {
		t.Fatal(err)
	}
	if !s.Has("blocked.json") {
		t.Fatal("artifact not recorded")
	}

	// A fresh Open with the same fingerprint resumes.
	s2 := openT(t, dir, "fp")
	if s2.Discarded() != "" {
		t.Fatalf("unexpected discard: %s", s2.Discarded())
	}
	data, err := s2.Read("blocked.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"pairs":[[1,2]]}` {
		t.Fatalf("wrong bytes back: %s", data)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type payload struct {
		N     int
		Pairs [][2]int
	}
	s := openT(t, t.TempDir(), "fp")
	in := payload{N: 2, Pairs: [][2]int{{0, 1}, {3, 4}}}
	if err := s.WriteJSON("stage.json", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.ReadJSON("stage.json", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || len(out.Pairs) != 2 || out.Pairs[1] != [2]int{3, 4} {
		t.Fatalf("round trip changed payload: %+v", out)
	}
}

func TestMissingArtifact(t *testing.T) {
	s := openT(t, t.TempDir(), "fp")
	if _, err := s.Read("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestFingerprintMismatchDiscards(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp-a")
	if err := s.Write("a.json", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, "fp-b")
	if s2.Discarded() == "" {
		t.Fatal("expected the old run to be discarded")
	}
	if s2.Has("a.json") {
		t.Fatal("foreign artifact must not be resumable")
	}
	// The evidence survives in quarantine.
	q, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
	if len(q) == 0 {
		t.Fatal("old manifest was not quarantined")
	}
}

func TestCorruptArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// Flip bytes on disk — a torn or bit-rotted artifact.
	if err := os.WriteFile(filepath.Join(dir, "a.json"), []byte(`{"x":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, "fp")
	if _, err := s2.Read("a.json"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	// Quarantined: gone from the manifest, moved to quarantine/.
	if s2.Has("a.json") {
		t.Fatal("corrupt artifact still in manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "a.json.0")); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	// A third open must not see it either (manifest was recommitted).
	if openT(t, dir, "fp").Has("a.json") {
		t.Fatal("quarantine did not survive reopen")
	}
}

func TestTruncatedArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte(`{"x":12345}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "a.json"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := openT(t, dir, "fp").Read("a.json"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for truncation, got %v", err)
	}
}

func TestCorruptManifestStartsFresh(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	if err := s.Write("a.json", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, "fp")
	if s2.Discarded() == "" {
		t.Fatal("torn manifest should be reported as discarded")
	}
	if s2.Has("a.json") {
		t.Fatal("artifacts behind a torn manifest must not be trusted")
	}
	// The store is usable again immediately.
	if err := s2.Write("b.json", []byte("2")); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadNames(t *testing.T) {
	s := openT(t, t.TempDir(), "fp")
	for _, name := range []string{"", ".", "..", "a/b", "../escape", "manifest.json"} {
		if err := s.Write(name, []byte("x")); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if err := s.Write("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.Has("a") {
		t.Fatal("nil store has artifacts?")
	}
	if _, err := s.Read("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("nil store read should be ErrNotFound")
	}
	s.Quarantine("a", "reason")
	if s.Dir() != "" || s.Discarded() != "" || s.Names() != nil {
		t.Fatal("nil store accessors should be zero")
	}
}

func TestTempFilesCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir, "fp")
	stray := filepath.Join(dir, "a.json.tmp12345")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	openT(t, dir, "fp")
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp file survived Open")
	}
}

func TestFaultSites(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s := openT(t, dir, "fp")

	fault.Enable("ckpt.write", fault.Plan{FailFirst: 1})
	if err := s.Write("a.json", []byte("x")); err == nil {
		t.Fatal("ckpt.write fault not surfaced")
	}
	if s.Has("a.json") {
		t.Fatal("failed write must not be recorded")
	}
	fault.Reset()

	// A rename fault aborts before the artifact becomes visible.
	fault.Enable("ckpt.rename", fault.Plan{FailFirst: 1})
	if err := s.Write("a.json", []byte("x")); err == nil {
		t.Fatal("ckpt.rename fault not surfaced")
	}
	if s.Has("a.json") {
		t.Fatal("half-renamed write must not be recorded")
	}
	fault.Reset()

	if err := s.Write("a.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// An injected read fault behaves like corruption: quarantine + recompute.
	fault.Enable("ckpt.read", fault.Plan{FailFirst: 1})
	if _, err := s.Read("a.json"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt from ckpt.read fault, got %v", err)
	}
	if s.Has("a.json") {
		t.Fatal("fault-corrupted artifact still trusted")
	}
}

func TestFingerprintHelper(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint must length-prefix parts")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint must be deterministic")
	}
	if len(Fingerprint()) != 64 {
		t.Fatal("fingerprint should be a sha256 hex digest")
	}
}

func TestQuarantineKeepsEvidenceUnique(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "fp")
	for i := 0; i < 3; i++ {
		if err := s.Write("a.json", []byte(strings.Repeat("x", i+1))); err != nil {
			t.Fatal(err)
		}
		s.Quarantine("a.json", "test")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 {
		t.Fatalf("want 3 quarantined generations, got %d", len(q))
	}
}
