package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// This file holds the durability primitives the rest of the repository
// shares: write-to-temp + fsync + atomic rename. A crash at any moment
// leaves either the old file intact or the new file complete — never a
// truncated document. table.WriteCSVFile and ml model saves use the
// same helpers, so every artifact the pipeline persists has the same
// guarantee the checkpoint store does.

// AtomicWriteFile writes data to path atomically: the bytes go to a
// temp file in the same directory (renames across filesystems are not
// atomic), are fsynced, and the temp file is renamed over path. The
// containing directory is fsynced afterwards so the rename itself is
// durable.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return AtomicWriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// AtomicWriteTo is AtomicWriteFile for streaming writers (CSV encoders,
// JSON encoders): write is handed the temp file and the same
// temp + fsync + rename + dir-fsync protocol applies. Parent
// directories are created as needed.
func AtomicWriteTo(path string, perm os.FileMode, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Chmod(perm); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse to sync directories (some CI overlays) are
// tolerated: the rename is still atomic, only its durability window
// widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncErr(err) {
		return fmt.Errorf("ckpt: sync dir %s: %w", dir, err)
	}
	return nil
}

// ignorableSyncErr reports whether a directory fsync failure is a
// filesystem limitation rather than a durability problem worth failing
// the write over.
func ignorableSyncErr(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EBADF)
}
