//go:build !unix

package ckpt

import "os"

// kill terminates the process abruptly on platforms without SIGKILL
// semantics. os.Exit skips all deferred cleanup, which is the point.
func kill() {
	os.Exit(137)
}
