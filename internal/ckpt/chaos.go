package ckpt

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Chaos kill-points let the chaos harness (scripts/chaos_run.sh) kill
// the process at exact checkpoint boundaries instead of racing a
// sleep-and-SIGKILL against the pipeline. The EMCKPT_KILL environment
// variable names one kill-point as "<mode>:<artifact>":
//
//	before:<artifact>  die before any byte of the artifact is written
//	mid:<artifact>     die after persisting a torn half-written temp file
//	after:<artifact>   die after the artifact and manifest are committed
//
// The process dies by SIGKILL (os.Exit(137) where signals are
// unavailable), so no deferred cleanup runs — exactly the crash the
// store must survive. Unset (the normal case), the checks are one
// sync.Once and a string compare.

var (
	chaosOnce sync.Once
	chaosMode string
	chaosName string
)

// chaosSpec parses EMCKPT_KILL once.
func chaosSpec() (mode, name string) {
	chaosOnce.Do(func() {
		spec := os.Getenv("EMCKPT_KILL")
		if spec == "" {
			return
		}
		m, n, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "ckpt: ignoring malformed EMCKPT_KILL=%q (want mode:artifact)\n", spec)
			return
		}
		switch m {
		case "before", "mid", "after":
			chaosMode, chaosName = m, n
		default:
			fmt.Fprintf(os.Stderr, "ckpt: ignoring EMCKPT_KILL with unknown mode %q\n", m)
		}
	})
	return chaosMode, chaosName
}

// chaosArmed reports whether the kill-point (mode, artifact) is armed.
func chaosArmed(mode, name string) bool {
	m, n := chaosSpec()
	return m == mode && n == name
}

// chaosKill dies at the kill-point when armed; otherwise returns.
func chaosKill(mode, name string) {
	if !chaosArmed(mode, name) {
		return
	}
	fmt.Fprintf(os.Stderr, "ckpt: chaos kill at %s:%s\n", mode, name)
	kill()
}
