package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"

	"emgo/internal/fault"
	"emgo/internal/obs"
)

// Streaming artifact access: Read materializes a whole artifact to
// verify it, which is exactly wrong for a transport that exists so the
// server never holds a whole result set in memory. OpenArtifact returns
// an io.ReadCloser that hashes bytes as they flow and delivers the
// manifest verdict at EOF — same trust contract as Read (nothing is
// believed until size and SHA-256 match; corruption quarantines), paid
// in one artifact-sized pass instead of one artifact-sized allocation.
//
// The verdict arrives only at EOF, so a caller that decodes
// incrementally MUST drain the reader and check its error before acting
// on the decoded value: bytes that parse can still be bytes that lie.

// ArtifactReader streams one artifact's bytes, verifying size and
// checksum against the manifest as a side effect of reading. Not safe
// for concurrent use (one reader, one goroutine — the store itself
// stays concurrency-safe).
type ArtifactReader struct {
	store *Store
	name  string
	f     *os.File
	size  int64
	sha   string
	h     hash.Hash
	read  int64
	err   error // sticky: io.EOF after a clean verify, ErrCorrupt otherwise
}

// OpenArtifact opens a manifest-listed artifact for streaming reads.
// A missing entry returns ErrNotFound; an entry whose file cannot be
// opened (or an injected ckpt.read fault) is quarantined and returns
// ErrCorrupt, the same posture as Read. The caller owns Close.
func (s *Store) OpenArtifact(name string) (*ArtifactReader, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	a, ok := s.manifest.Artifacts[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err := fault.Inject("ckpt.read"); err != nil {
		s.Quarantine(name, err.Error())
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	f, err := os.Open(filepath.Join(s.dir, a.File))
	if err != nil {
		s.Quarantine(name, err.Error())
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return &ArtifactReader{
		store: s,
		name:  name,
		f:     f,
		size:  a.Size,
		sha:   a.SHA256,
		h:     sha256.New(),
	}, nil
}

// Size returns the manifest-recorded artifact size.
func (r *ArtifactReader) Size() int64 { return r.size }

// Read streams the next bytes, folding them into the running hash. At
// the underlying EOF the byte count and digest are checked against the
// manifest: a clean match returns io.EOF, anything else quarantines the
// artifact and returns an ErrCorrupt-wrapped error (sticky, so a
// decoder that saw partial bytes keeps failing rather than resuming).
func (r *ArtifactReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.f.Read(p)
	if n > 0 {
		r.h.Write(p[:n])
		r.read += int64(n)
		if r.read > r.size {
			return 0, r.fail(fmt.Sprintf("size %d exceeds manifest %d", r.read, r.size))
		}
	}
	switch {
	case err == io.EOF:
		if r.read != r.size {
			return n, r.fail(fmt.Sprintf("size %d, manifest says %d", r.read, r.size))
		}
		if hex.EncodeToString(r.h.Sum(nil)) != r.sha {
			return n, r.fail("checksum mismatch")
		}
		r.err = io.EOF
		obs.C("ckpt.hits").Inc()
		return n, io.EOF
	case err != nil:
		return n, r.fail(err.Error())
	}
	return n, nil
}

// fail quarantines the artifact and latches the corrupt verdict.
func (r *ArtifactReader) fail(reason string) error {
	r.store.Quarantine(r.name, reason)
	r.err = fmt.Errorf("%w: %s: %s", ErrCorrupt, r.name, reason)
	return r.err
}

// Close releases the file handle. It does not imply verification: only
// a Read that returned io.EOF does.
func (r *ArtifactReader) Close() error { return r.f.Close() }
