// Package ckpt is the durable, crash-safe run store behind resumable
// pipeline runs. A Store owns one per-run directory holding a
// versioned manifest (manifest.json) plus one file per completed stage
// artifact. Every write follows temp-file + fsync + atomic-rename, so
// process death at any instant leaves the directory in a state Open
// can always make sense of: artifacts are trusted only when the
// manifest lists them with a matching SHA-256 checksum, and anything
// torn, truncated, or tampered with is quarantined (moved aside, never
// deleted) so the stage recomputes instead of crashing or silently
// reusing bad bytes.
//
// The store is deliberately value-agnostic: artifacts are []byte (or
// JSON via WriteJSON/ReadJSON); the pipeline layers (workflow, umetrics)
// own their artifact schemas and their semantic validation. Fault
// sites ckpt.write, ckpt.read, and ckpt.rename let tests inject torn
// writes and checksum mismatches; the EMCKPT_KILL environment variable
// lets the chaos harness kill the process at exact write boundaries.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"emgo/internal/fault"
	"emgo/internal/obs"
)

// manifestFile is the manifest's file name inside the run directory.
const manifestFile = "manifest.json"

// quarantineDir is the subdirectory corrupt artifacts are moved into.
const quarantineDir = "quarantine"

// ErrCorrupt tags read failures caused by bad bytes (checksum
// mismatch, truncation, undecodable payload) as opposed to a missing
// artifact. Callers fall back to recomputing the stage; errors.Is
// works through the wrapping.
var ErrCorrupt = errors.New("ckpt: artifact corrupt")

// ErrNotFound is returned when an artifact is not in the manifest.
var ErrNotFound = errors.New("ckpt: artifact not found")

// Store is a crash-safe artifact store over one run directory. All
// methods are safe for concurrent use. The nil *Store is valid and
// behaves as an always-empty, write-discarding store, so pipeline code
// can thread an optional store without nil checks.
type Store struct {
	mu        sync.Mutex
	dir       string
	manifest  *Manifest
	discarded string // why a pre-existing directory was not resumed, "" otherwise
}

// Open opens (or creates) the run directory and loads its manifest.
// fingerprint binds the directory to one pipeline input; when the
// existing manifest is unreadable, has the wrong version, or carries a
// different fingerprint, the old manifest is quarantined and the store
// starts empty — Open never fails because of bad prior state, only on
// I/O errors creating the directory. Stray temp files from a crashed
// writer are removed.
func Open(dir, fingerprint string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	removeTempFiles(dir)

	path := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory.
	case err != nil:
		s.discarded = fmt.Sprintf("manifest unreadable: %v", err)
	default:
		m, derr := decodeManifest(data)
		switch {
		case derr != nil:
			s.discarded = derr.Error()
		case m.Fingerprint != fingerprint:
			s.discarded = fmt.Sprintf("fingerprint mismatch (have %.12s…, want %.12s…)", m.Fingerprint, fingerprint)
		default:
			s.manifest = m
		}
	}
	if s.manifest == nil {
		if s.discarded != "" {
			obs.C("ckpt.manifest_discarded").Inc()
			s.quarantineLocked(manifestFile, path)
		}
		s.manifest = &Manifest{Version: ManifestVersion, Fingerprint: fingerprint, Artifacts: make(map[string]Artifact)}
	}
	return s, nil
}

// Dir returns the run directory ("" for the nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Discarded reports why Open did not resume a pre-existing directory
// ("" when the directory was fresh or resumed cleanly).
func (s *Store) Discarded() string {
	if s == nil {
		return ""
	}
	return s.discarded
}

// Has reports whether a completed artifact with this name is recorded
// in the manifest. It does not validate the bytes; Read does.
func (s *Store) Has(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.manifest.Artifacts[name]
	return ok
}

// Names returns the completed artifact names in manifest order
// (sorted, since the manifest is a map rendered deterministically).
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.manifest.Artifacts))
	for name := range s.manifest.Artifacts {
		out = append(out, name)
	}
	return out
}

// Write durably stores an artifact: bytes to a temp file, fsync,
// atomic rename to <name>, then a manifest commit recording the
// checksum (itself temp + fsync + rename). A crash between the two
// renames leaves an unreferenced artifact file the next Open ignores.
// On the nil store Write is a no-op.
func (s *Store) Write(name string, data []byte) error {
	if s == nil {
		return nil
	}
	if !ValidName(name) || name == manifestFile {
		return fmt.Errorf("ckpt: invalid artifact name %q", name)
	}
	if err := fault.Inject("ckpt.write"); err != nil {
		return err
	}
	chaosKill("before", name)
	path := filepath.Join(s.dir, name)
	if err := s.writeArtifactFile(path, name, data); err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest.Artifacts[name] = Artifact{
		File:   name,
		SHA256: hex.EncodeToString(sum[:]),
		Size:   int64(len(data)),
	}
	if err := s.commitManifestLocked(); err != nil {
		delete(s.manifest.Artifacts, name)
		return err
	}
	obs.C("ckpt.writes").Inc()
	chaosKill("after", name)
	return nil
}

// writeArtifactFile performs the temp + fsync + rename dance for one
// artifact, honouring the ckpt.rename fault site and the mid-write
// chaos kill (which leaves a genuinely torn temp file behind).
func (s *Store) writeArtifactFile(path, name string, data []byte) error {
	return AtomicWriteTo(path, 0o644, func(w io.Writer) error {
		if mid := chaosArmed("mid", name); mid {
			// Persist a torn prefix, then die exactly mid-write.
			half := len(data) / 2
			if _, err := w.Write(data[:half]); err != nil {
				return err
			}
			if f, ok := w.(*os.File); ok {
				f.Sync()
			}
			chaosKill("mid", name)
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		return fault.Inject("ckpt.rename")
	})
}

// commitManifestLocked atomically rewrites manifest.json; callers hold
// s.mu.
func (s *Store) commitManifestLocked() error {
	data, err := s.manifest.encode()
	if err != nil {
		return err
	}
	return AtomicWriteFile(filepath.Join(s.dir, manifestFile), data, 0o644)
}

// Read returns an artifact's bytes after verifying its size and
// checksum against the manifest. A missing entry returns ErrNotFound;
// bad bytes (or an injected ckpt.read fault) quarantine the artifact,
// drop it from the manifest, and return an ErrCorrupt-wrapped error so
// the caller recomputes the stage.
func (s *Store) Read(name string) ([]byte, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	a, ok := s.manifest.Artifacts[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err := fault.Inject("ckpt.read"); err != nil {
		s.Quarantine(name, err.Error())
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, a.File))
	if err != nil {
		s.Quarantine(name, err.Error())
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	if int64(len(data)) != a.Size {
		s.Quarantine(name, "size mismatch")
		return nil, fmt.Errorf("%w: %s: size %d, manifest says %d", ErrCorrupt, name, len(data), a.Size)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != a.SHA256 {
		s.Quarantine(name, "checksum mismatch")
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, name)
	}
	obs.C("ckpt.hits").Inc()
	return data, nil
}

// WriteJSON stores v as a JSON artifact.
func (s *Store) WriteJSON(name string, v any) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ckpt: encode %s: %w", name, err)
	}
	return s.Write(name, data)
}

// ReadJSON reads and decodes a JSON artifact into v. Undecodable bytes
// that passed the checksum (a schema change, a bug) quarantine the
// artifact like any other corruption.
func (s *Store) ReadJSON(name string, v any) error {
	data, err := s.Read(name)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.Quarantine(name, "undecodable JSON")
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	return nil
}

// Quarantine moves an artifact into the quarantine/ subdirectory and
// removes it from the manifest — the evidence survives for a
// post-mortem, but the resume path will recompute the stage. Callers
// use it directly when an artifact decodes but fails semantic
// validation (out-of-range row indices, wrong table shape).
func (s *Store) Quarantine(name, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.manifest.Artifacts[name]
	if ok {
		delete(s.manifest.Artifacts, name)
		// Best-effort: a failed manifest commit still leaves the entry
		// removed in memory, so this process will not reuse it.
		_ = s.commitManifestLocked()
	}
	file := name
	if ok {
		file = a.File
	}
	s.quarantineLocked(name, filepath.Join(s.dir, file))
	obs.C("ckpt.corrupt").Inc()
	obs.C("ckpt.quarantined").Inc()
	_ = reason // recorded by callers in spans/logs; kept for call-site readability
}

// quarantineLocked moves src into quarantine/ under a unique name;
// best-effort (the file may already be gone).
func (s *Store) quarantineLocked(name, src string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	for i := 0; ; i++ {
		dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
		if _, err := os.Lstat(dst); err == nil {
			continue
		}
		_ = os.Rename(src, dst)
		return
	}
}

// removeTempFiles deletes stray *.tmp* files a crashed writer left in
// the run directory (never inside quarantine/).
func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.Contains(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Fingerprint condenses any number of identity parts (config JSON,
// spec bytes, table content hashes) into the hex digest stores are
// opened with.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
