package ckpt

import (
	"encoding/json"
	"fmt"
	"regexp"
)

// ManifestVersion is bumped whenever the on-disk layout changes in a
// way old readers cannot handle; a version mismatch discards the run
// directory rather than guessing.
const ManifestVersion = 1

// Manifest is the versioned index of a checkpoint directory. Artifacts
// are only trusted when the manifest lists them with a matching
// checksum; files on disk that the manifest does not reference are
// leftovers from a crash and are ignored.
type Manifest struct {
	// Version is the layout version (ManifestVersion).
	Version int `json:"version"`
	// Fingerprint binds the run directory to one pipeline input
	// (config, spec, table contents). A store opened with a different
	// fingerprint discards the directory: resuming someone else's run
	// silently would be worse than recomputing.
	Fingerprint string `json:"fingerprint"`
	// Artifacts indexes the completed stage outputs by artifact name.
	Artifacts map[string]Artifact `json:"artifacts"`
}

// Artifact is one completed checkpoint file.
type Artifact struct {
	// File is the artifact's file name inside the run directory (never
	// a path; decodeManifest rejects separators).
	File string `json:"file"`
	// SHA256 is the hex checksum of the file's contents.
	SHA256 string `json:"sha256"`
	// Size is the expected byte length — a quick torn-write tell.
	Size int64 `json:"size"`
}

// artifactNameRE restricts artifact and file names to a single safe
// path component, so a corrupted or hostile manifest can never make
// the store read or quarantine files outside its directory.
var artifactNameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]+$`)

// ValidName reports whether name is usable as an artifact name.
func ValidName(name string) bool {
	return name != "" && name != "." && name != ".." && artifactNameRE.MatchString(name)
}

// decodeManifest parses and validates manifest bytes. Every error path
// is a reason to quarantine the manifest and start fresh; none may
// panic, whatever the bytes are (FuzzManifestDecode holds it to that).
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ckpt: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("ckpt: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	for name, a := range m.Artifacts {
		if !ValidName(name) {
			return nil, fmt.Errorf("ckpt: manifest: invalid artifact name %q", name)
		}
		if !ValidName(a.File) {
			return nil, fmt.Errorf("ckpt: manifest: artifact %q: invalid file name %q", name, a.File)
		}
		if len(a.SHA256) != 64 {
			return nil, fmt.Errorf("ckpt: manifest: artifact %q: malformed checksum", name)
		}
		if a.Size < 0 {
			return nil, fmt.Errorf("ckpt: manifest: artifact %q: negative size", name)
		}
	}
	if m.Artifacts == nil {
		m.Artifacts = make(map[string]Artifact)
	}
	return &m, nil
}

// encode renders the manifest deterministically (json.Marshal sorts
// map keys).
func (m *Manifest) encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
