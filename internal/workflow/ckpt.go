package workflow

import (
	"errors"
	"fmt"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/obs"
	"emgo/internal/table"
)

// This file is RunCtx's durability layer: the expensive stage outputs
// (the blocked candidate set, the learned predictions with their
// quarantine list) are written to an optional ckpt.Store after each
// stage completes, and restored — after checksum and semantic
// validation — on the next run over the same inputs. Everything here
// is fail-open in both directions: a checkpoint that cannot be written
// degrades to "no checkpoint" (the run continues), and a checkpoint
// that cannot be trusted is quarantined and the stage recomputed. The
// only way a checkpoint influences a run is by being byte-verified and
// semantically valid.

// Checkpoint artifact names inside the run store.
const (
	ckptBlocked = "stage.blocked.json"
	ckptLearned = "stage.learned.json"
)

// pairsArtifact is the serialized form of one candidate set, carrying
// the table shapes it was computed over so a stale or foreign artifact
// is rejected even if its checksum is intact.
type pairsArtifact struct {
	LeftName  string   `json:"left"`
	RightName string   `json:"right"`
	LeftRows  int      `json:"left_rows"`
	RightRows int      `json:"right_rows"`
	Pairs     [][2]int `json:"pairs"`
}

// learnedArtifact persists the matching stage: predicted matches plus
// the pairs quarantined under the error budget (resuming must not
// silently reintroduce poison pairs).
type learnedArtifact struct {
	pairsArtifact
	Quarantined [][2]int `json:"quarantined,omitempty"`
}

// newPairsArtifact snapshots a candidate set in insertion order —
// order is part of the contract, since downstream sampling indexes
// into it.
func newPairsArtifact(cs *block.CandidateSet) pairsArtifact {
	a := pairsArtifact{
		LeftName:  cs.Left.Name(),
		RightName: cs.Right.Name(),
		LeftRows:  cs.Left.Len(),
		RightRows: cs.Right.Len(),
		Pairs:     make([][2]int, 0, cs.Len()),
	}
	for _, p := range cs.Pairs() {
		a.Pairs = append(a.Pairs, [2]int{p.A, p.B})
	}
	return a
}

// validate checks the artifact against the live tables; any mismatch
// means the checkpoint belongs to different inputs (or was tampered
// with) and must be recomputed.
func (a *pairsArtifact) validate(left, right *table.Table) error {
	if a.LeftName != left.Name() || a.RightName != right.Name() {
		return fmt.Errorf("tables %q/%q, checkpoint has %q/%q", left.Name(), right.Name(), a.LeftName, a.RightName)
	}
	if a.LeftRows != left.Len() || a.RightRows != right.Len() {
		return fmt.Errorf("table shapes %dx%d, checkpoint has %dx%d", left.Len(), right.Len(), a.LeftRows, a.RightRows)
	}
	return validPairs(a.Pairs, left.Len(), right.Len())
}

// validPairs bounds-checks serialized pairs so arbitrary bytes in a
// checkpoint can never turn into an out-of-range row access later.
func validPairs(pairs [][2]int, leftRows, rightRows int) error {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= leftRows || p[1] < 0 || p[1] >= rightRows {
			return fmt.Errorf("pair (%d,%d) out of range for %dx%d tables", p[0], p[1], leftRows, rightRows)
		}
	}
	return nil
}

// toSet rebuilds a candidate set in the artifact's order.
func (a *pairsArtifact) toSet(left, right *table.Table) *block.CandidateSet {
	cs := block.NewCandidateSet(left, right)
	for _, p := range a.Pairs {
		cs.Add(block.Pair{A: p[0], B: p[1]})
	}
	return cs
}

// toPairs converts a serialized pair list.
func toPairs(raw [][2]int) []block.Pair {
	if len(raw) == 0 {
		return nil
	}
	out := make([]block.Pair, len(raw))
	for i, p := range raw {
		out[i] = block.Pair{A: p[0], B: p[1]}
	}
	return out
}

// loadStageCkpt reads and validates one stage artifact into dst (which
// must embed or be a pairsArtifact; validate runs the semantic check).
// It returns false — after quarantining when appropriate — whenever
// the stage must be recomputed, recording why on the span.
func loadStageCkpt(store *ckpt.Store, name string, span *obs.Span, dst any, validate func() error) bool {
	if store == nil || !store.Has(name) {
		return false
	}
	if err := store.ReadJSON(name, dst); err != nil {
		if errors.Is(err, ckpt.ErrCorrupt) {
			span.Event("ckpt", fmt.Sprintf("checkpoint %s corrupt, quarantined; recomputing: %v", name, err))
		}
		return false
	}
	if err := validate(); err != nil {
		store.Quarantine(name, err.Error())
		span.Event("ckpt", fmt.Sprintf("checkpoint %s failed validation, quarantined; recomputing: %v", name, err))
		return false
	}
	span.Event("ckpt", "restored "+name)
	obs.C("workflow.ckpt.resumed").Inc()
	return true
}

// saveStageCkpt persists one stage artifact; failures are events, not
// errors — a run that cannot checkpoint still completes.
func saveStageCkpt(store *ckpt.Store, name string, span *obs.Span, v any) {
	if store == nil {
		return
	}
	if err := store.WriteJSON(name, v); err != nil {
		span.Event("ckpt", fmt.Sprintf("checkpoint %s not written: %v", name, err))
		obs.C("workflow.ckpt.write_failed").Inc()
		return
	}
	span.Event("ckpt", "wrote "+name)
}
