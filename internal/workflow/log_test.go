package workflow

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/label"
	"emgo/internal/obs"
	"emgo/internal/retry"
)

func TestLogConcurrentAppends(t *testing.T) {
	l := &Log{}
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i%2 == 0 {
					l.Add("step", "detail", i)
				} else {
					l.AddOutcome("step", "detail", i, OutcomeRetried)
				}
				// Readers race with the appends: Entries and String must
				// stay safe while stage workers are still logging.
				if i%25 == 0 {
					_ = l.Entries()
					_ = l.String()
				}
			}
		}(w)
	}
	wg.Wait()
	got := l.Entries()
	if len(got) != workers*each {
		t.Fatalf("entries = %d, want %d", len(got), workers*each)
	}
	// Every entry must be intact — no torn writes, no zero-value holes.
	for i, e := range got {
		if e.Step != "step" || e.Detail != "detail" {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
		if e.Outcome != "" && e.Outcome != OutcomeRetried {
			t.Fatalf("entry %d unexpected outcome: %+v", i, e)
		}
	}
}

func TestLogEntriesCopySemantics(t *testing.T) {
	l := &Log{}
	l.Add("first", "a", 1)
	l.AddOutcome("second", "b", 2, OutcomeDegraded)

	snap := l.Entries()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}

	// Later appends must not grow an earlier snapshot.
	l.Add("third", "c", 3)
	if len(snap) != 2 {
		t.Fatalf("snapshot grew after append: %d entries", len(snap))
	}

	// Mutating the snapshot must not touch the log.
	snap[0].Step = "hacked"
	snap[1].Outcome = OutcomeAborted
	fresh := l.Entries()
	if fresh[0].Step != "first" || fresh[1].Outcome != OutcomeDegraded {
		t.Fatalf("snapshot mutation leaked into log: %+v", fresh[:2])
	}
}

// outcomeSequence renders a log as "step:outcome" tokens (empty outcome
// normalized to ok) so tests can assert the exact stage trajectory.
func outcomeSequence(l *Log) []string {
	var seq []string
	for _, e := range l.Entries() {
		o := e.Outcome
		if o == "" {
			o = OutcomeOK
		}
		seq = append(seq, e.Step+":"+o)
	}
	return seq
}

func TestRunCtxRetriedRunOutcomeSequence(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	mon := &Monitor{SampleSize: 2, MinPrecision: 0.5, Rng: rand.New(rand.NewSource(7))}
	fault.Enable("label.judge", fault.Plan{FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Check: &CheckStage{
			Monitor: mon,
			Batch:   "seq-batch",
			Label: func(p block.Pair) (label.Label, error) {
				if ferr := fault.Inject("label.judge"); ferr != nil {
					return 0, ferr
				}
				return label.Yes, nil
			},
		},
	})
	if err != nil {
		t.Fatalf("retried run should succeed: %v", err)
	}
	want := []string{
		"sure_matches:ok", "blocked:ok", "candidates:ok",
		"learned:ok", "vetoed:ok", "final:ok", "monitor:retried",
	}
	got := outcomeSequence(res.Log)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("outcome sequence:\n got %v\nwant %v", got, want)
	}
}

func TestRunCtxAbortedRunOutcomeSequence(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	fault.Enable("block.join", fault.Plan{FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err == nil {
		t.Fatal("blocking fault must abort the run")
	}
	if res == nil || res.Log == nil {
		t.Fatal("aborted run must still return its provenance log")
	}
	want := []string{"sure_matches:ok", "blocked:aborted"}
	got := outcomeSequence(res.Log)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("outcome sequence:\n got %v\nwant %v", got, want)
	}
}

func TestRunCtxCancelledRunReturnsLog(t *testing.T) {
	w, tp := hardenedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := w.RunCtx(ctx, tp.l, tp.r, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	if res == nil || res.Log == nil {
		t.Fatal("cancelled run must still return its provenance log")
	}
	got := outcomeSequence(res.Log)
	if len(got) != 1 || got[0] != "sure_matches:aborted" {
		t.Fatalf("outcome sequence: %v", got)
	}
}

// TestRunCtxReportRoundTrips is the acceptance test for the run report:
// the Result always carries one, it survives a JSON round trip, and the
// parsed document still holds per-stage spans with durations and
// outcomes plus the provenance log.
func TestRunCtxReportRoundTrips(t *testing.T) {
	w, tp := hardenedFixture(t)
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("RunCtx must attach a report to every result")
	}
	data, err := res.Report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rep.Name != "workflow.hardened" || rep.Outcome != OutcomeOK {
		t.Fatalf("report header: name=%q outcome=%q", rep.Name, rep.Outcome)
	}
	if rep.Trace == nil {
		t.Fatal("report lost its span tree")
	}
	stages := map[string]bool{}
	for _, child := range rep.Trace.Children {
		stages[child.Name] = true
		if child.Outcome != OutcomeOK {
			t.Fatalf("stage %s outcome = %q", child.Name, child.Outcome)
		}
		if child.DurationMS < 0 {
			t.Fatalf("stage %s has negative duration", child.Name)
		}
	}
	for _, want := range []string{
		"stage.sure_matches", "stage.blocked", "stage.candidates",
		"stage.learned", "stage.vetoed", "stage.final",
	} {
		if !stages[want] {
			t.Fatalf("report missing span %s (have %v)", want, stages)
		}
	}
	if len(rep.Provenance) != len(res.Log.Entries()) {
		t.Fatalf("provenance = %d entries, log = %d",
			len(rep.Provenance), len(res.Log.Entries()))
	}
}

// TestRunCtxAbortedReportCarriesError: a failed run's report must record
// the aborted outcome and the error string — that is the document an
// operator reads first.
func TestRunCtxAbortedReportCarriesError(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	fault.Enable("block.join", fault.Plan{FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err == nil {
		t.Fatal("expected abort")
	}
	if res.Report == nil {
		t.Fatal("aborted run must still build a report")
	}
	if res.Report.Outcome != OutcomeAborted {
		t.Fatalf("report outcome = %q", res.Report.Outcome)
	}
	if !strings.Contains(res.Report.Error, "blocked") {
		t.Fatalf("report error = %q", res.Report.Error)
	}
}
