package workflow

import (
	"context"
	"path/filepath"
	"testing"

	"emgo/internal/drift"
)

// TestRunCtxDriftCaptureAndCleanCheck is the monitor-smoke property at
// unit scope: a capture run persists a baseline, and a second run over
// the same tables checked against that baseline scores zero drift.
func TestRunCtxDriftCaptureAndCleanCheck(t *testing.T) {
	w, tp := hardenedFixture(t)
	path := filepath.Join(t.TempDir(), "baseline.json")

	capRes, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Drift: &DriftStage{BaselinePath: path, EstimatedPrecision: []float64{0.9, 0.95, 1.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if capRes.DriftProfile == nil {
		t.Fatal("capture run produced no profile")
	}
	if capRes.DriftProfile.LeftRows != tp.l.Len() || capRes.DriftProfile.RightRows != tp.r.Len() {
		t.Fatalf("profile rows %d/%d, want %d/%d",
			capRes.DriftProfile.LeftRows, capRes.DriftProfile.RightRows, tp.l.Len(), tp.r.Len())
	}
	if len(capRes.DriftProfile.Features) == 0 || len(capRes.DriftProfile.Columns) == 0 {
		t.Fatalf("profile missing distributions: %d features, %d columns",
			len(capRes.DriftProfile.Features), len(capRes.DriftProfile.Columns))
	}
	if capRes.Report == nil || capRes.Report.Quality == nil ||
		capRes.Report.Quality.Verdict != drift.VerdictCaptured {
		t.Fatalf("capture report quality section: %+v", capRes.Report.Quality)
	}
	found := false
	for _, e := range capRes.Log.Entries() {
		if e.Step == "quality" {
			found = true
		}
	}
	if !found {
		t.Fatal("no quality provenance entry on the capture run")
	}

	base, err := drift.LoadProfile(path)
	if err != nil {
		t.Fatalf("baseline not persisted: %v", err)
	}
	if len(base.EstimatedPrecision) != 3 {
		t.Fatalf("baseline lost the accuracy estimate: %+v", base.EstimatedPrecision)
	}

	chkRes, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Drift: &DriftStage{Baseline: base},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chkRes.Quality == nil {
		t.Fatal("check run produced no assessment")
	}
	if chkRes.Quality.Verdict != drift.StatusOK {
		t.Fatalf("identical slice scored %q, want ok: %+v", chkRes.Quality.Verdict, chkRes.Quality.Signals)
	}
	if chkRes.Quality.EstimatedPrecision == nil || chkRes.Quality.EstimatedPrecision.Lo != 0.9 {
		t.Fatalf("drift-free check changed the accuracy estimate: %+v", chkRes.Quality.EstimatedPrecision)
	}
	if chkRes.Report.Quality == nil || chkRes.Report.Quality.Verdict != drift.StatusOK {
		t.Fatalf("check report quality section: %+v", chkRes.Report.Quality)
	}
	if _, err := drift.ProfileFromQuality(chkRes.Report.Quality); err != nil {
		t.Fatalf("report does not embed the live profile: %v", err)
	}
	for _, e := range chkRes.Log.Entries() {
		if e.Step == "quality" && e.Outcome != "" && e.Outcome != OutcomeOK {
			t.Fatalf("clean check logged outcome %q", e.Outcome)
		}
	}
}

// TestRunCtxDriftCheckDegradedQuality perturbs the baseline so the check
// breaches, and asserts the degraded_quality outcome lands in provenance
// and in the quality stage span without failing the run.
func TestRunCtxDriftCheckDegradedQuality(t *testing.T) {
	w, tp := hardenedFixture(t)

	capRes, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{Drift: &DriftStage{}})
	if err != nil {
		t.Fatal(err)
	}
	base := capRes.DriftProfile
	// Pretend the training slice had full blocking coverage, so the live
	// run (whatever its real coverage) plus a feature rename breaches.
	base.Coverage = 1.0
	base.Features[0].Name = "gone_feature"

	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Drift: &DriftStage{Baseline: base},
	})
	if err != nil {
		t.Fatalf("a quality breach must not fail the run: %v", err)
	}
	if res.Quality == nil || !res.Quality.Breached() {
		t.Fatalf("expected a breach: %+v", res.Quality)
	}

	var prov *Entry
	for _, e := range res.Log.Entries() {
		if e.Step == "quality" {
			cp := e
			prov = &cp
		}
	}
	if prov == nil || prov.Outcome != OutcomeDegradedQuality {
		t.Fatalf("quality provenance = %+v, want outcome %q", prov, OutcomeDegradedQuality)
	}

	foundSpan := false
	for _, c := range res.Report.Trace.Children {
		if c.Name == "stage.quality" {
			foundSpan = true
			if c.Outcome != OutcomeDegradedQuality {
				t.Fatalf("quality span outcome = %q, want %q", c.Outcome, OutcomeDegradedQuality)
			}
		}
	}
	if !foundSpan {
		t.Fatal("no stage.quality span in the report trace")
	}
	if res.Report.Quality.Verdict != drift.StatusFail {
		t.Fatalf("report verdict = %q, want fail", res.Report.Quality.Verdict)
	}
}

// TestRunCtxNoDriftMeansNoQualityStage guards the disabled path: without
// DriftStage the result has no profile, no assessment, and no quality
// section or stage.
func TestRunCtxNoDriftMeansNoQualityStage(t *testing.T) {
	w, tp := hardenedFixture(t)
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftProfile != nil || res.Quality != nil || res.Report.Quality != nil {
		t.Fatalf("quality artifacts on an unmonitored run: %+v %+v %+v",
			res.DriftProfile, res.Quality, res.Report.Quality)
	}
	for _, e := range res.Log.Entries() {
		if e.Step == "quality" {
			t.Fatal("quality stage ran without DriftStage")
		}
	}
}
