package workflow

import (
	"context"
	"strings"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/retry"
)

func transformSpec() *Spec {
	return &Spec{
		Name: "t",
		Blockers: []BlockerSpec{
			{Type: "attr_equiv", LeftCol: "Num", RightCol: "Num", LeftTransform: "upper"},
		},
	}
}

func TestBuildCtxRetriesTransientTransformLookup(t *testing.T) {
	defer fault.Reset()
	l, r := fixture(t)
	transforms := Transforms{"upper": strings.ToUpper}
	// The registry's first two lookups fail transiently (remote registry
	// shape); the retry policy must recover.
	fault.Enable("workflow.spec.transform", fault.Plan{FailFirst: 2})
	w, err := transformSpec().BuildCtx(context.Background(), l, r, transforms,
		retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("transient lookup fault should be retried: %v", err)
	}
	if len(w.Blockers) != 1 {
		t.Fatalf("blockers = %d", len(w.Blockers))
	}
	// Without retries the same fault is fatal.
	fault.Enable("workflow.spec.transform", fault.Plan{FailFirst: 2})
	if _, err := transformSpec().BuildCtx(context.Background(), l, r, transforms, retry.Policy{}); err == nil {
		t.Fatal("single-attempt build should surface the fault")
	}
}

func TestBuildCtxUnknownTransformIsPermanent(t *testing.T) {
	defer fault.Reset()
	l, r := fixture(t)
	// Arm the site just to count lookups; the plan never fires.
	fault.Enable("workflow.spec.transform", fault.Plan{OnCall: 1 << 30})
	_, err := transformSpec().BuildCtx(context.Background(), l, r, Transforms{},
		retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "unknown transform") {
		t.Fatalf("err: %v", err)
	}
	if got := fault.Count("workflow.spec.transform"); got != 1 {
		t.Fatalf("unknown transform was retried: %d lookups", got)
	}
}
