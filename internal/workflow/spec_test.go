package workflow

import (
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/ml"
	"emgo/internal/table"
)

// deployFixture builds tables, a trained tree over registry features, and
// the full spec for a workflow using them.
func deployFixture(t *testing.T) (left, right *table.Table, spec *Spec, transforms Transforms) {
	t.Helper()
	left, right = fixture(t)

	corr := map[string]string{"Title": "Title"}
	fs, err := feature.Generate(left, right, corr, []string{"Title"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}, {A: 1, B: 0}, {A: 2, B: 2}, {A: 2, B: 0}}
	y := []int{1, 1, 0, 0, 1, 0}
	x, err := fs.Vectorize(left, right, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	matcherSpec, err := ml.ExportMatcher(tree)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := fs.Descriptors()
	if err != nil {
		t.Fatal(err)
	}

	transforms = Transforms{"upper": strings.ToUpper}
	spec = &Spec{
		Name: "deployed",
		Blockers: []BlockerSpec{
			{Type: "overlap", LeftCol: "Title", RightCol: "Title",
				Tokenizer: "word", Threshold: 3, Normalize: true},
			{Type: "attr_equiv", LeftCol: "Num", RightCol: "Num",
				LeftTransform: "upper", RightTransform: "upper"},
		},
		SureRules: []RuleSpec{
			{Type: "equal", Name: "num", LeftCol: "Num", RightCol: "Num",
				LeftTransform: "upper", RightTransform: "upper", Verdict: "match"},
		},
		NegativeRules: []RuleSpec{
			{Type: "comparable_mismatch", Name: "neg", LeftCol: "Num", RightCol: "Num",
				Patterns: []string{"XXX#####", "YYYY-#####-#####"}},
		},
		Features:     descs,
		ImputerMeans: im.Means(),
		Matcher:      matcherSpec,
	}
	return left, right, spec, transforms
}

func TestSpecJSONRoundTrip(t *testing.T) {
	_, _, spec, _ := deployFixture(t)
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || len(back.Blockers) != len(spec.Blockers) ||
		len(back.SureRules) != len(spec.SureRules) || len(back.Features) != len(spec.Features) {
		t.Fatal("spec lost structure in JSON round trip")
	}
	if _, err := ParseSpec([]byte("nope")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestSpecBuildAndRunMatchesOriginal(t *testing.T) {
	left, right, spec, transforms := deployFixture(t)

	// Round trip through JSON, then build and run.
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	w, err := parsed.Build(left, right, transforms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(left, right)
	if err != nil {
		t.Fatal(err)
	}
	// The sure rule matches (0,0); the learner finds (1,1); the negative
	// rule vetoes (2,2) (comparable WIS numbers that differ).
	if !res.Final.Contains(block.Pair{A: 0, B: 0}) {
		t.Errorf("sure rule missing: %v", res.Final.Pairs())
	}
	if !res.Final.Contains(block.Pair{A: 1, B: 1}) {
		t.Errorf("learned match missing: %v", res.Final.Pairs())
	}
	if res.Final.Contains(block.Pair{A: 2, B: 2}) {
		t.Errorf("vetoed pair present: %v", res.Final.Pairs())
	}

	// Rebuilding twice gives identical results (deployment determinism).
	w2, err := parsed.Build(left, right, transforms)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := w2.Run(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Final.Len() != res.Final.Len() {
		t.Fatal("rebuilt workflow differs")
	}
}

func TestSpecBuildErrors(t *testing.T) {
	left, right, spec, transforms := deployFixture(t)

	bad := *spec
	bad.Blockers = []BlockerSpec{{Type: "nope"}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("unknown blocker type should error")
	}

	bad = *spec
	bad.Blockers = []BlockerSpec{{Type: "overlap", LeftCol: "Title", RightCol: "Title", Tokenizer: "nope", Threshold: 1}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("unknown tokenizer should error")
	}

	bad = *spec
	bad.SureRules = []RuleSpec{{Type: "equal", Name: "x", LeftCol: "Num", RightCol: "Num", Verdict: "maybe"}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("unknown verdict should error")
	}

	bad = *spec
	bad.SureRules = []RuleSpec{{Type: "mystery", Name: "x"}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("unknown rule type should error")
	}

	bad = *spec
	bad.SureRules = []RuleSpec{{Type: "equal", Name: "x", LeftCol: "Num", RightCol: "Num",
		LeftTransform: "missing", Verdict: "match"}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("missing transform should error")
	}

	bad = *spec
	bad.ImputerMeans = bad.ImputerMeans[:1]
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("means/features mismatch should error")
	}

	bad = *spec
	bad.Features = nil
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("matcher without features should error")
	}

	bad = *spec
	bad.NegativeRules = []RuleSpec{{Type: "comparable_mismatch", Name: "neg", LeftCol: "Num", RightCol: "Num"}}
	if _, err := bad.Build(left, right, transforms); err == nil {
		t.Fatal("comparable rule without patterns should error")
	}
}

func TestSpecRulesOnlyBuild(t *testing.T) {
	left, right, _, transforms := deployFixture(t)
	spec := &Spec{
		Name: "rules-only",
		Blockers: []BlockerSpec{
			{Type: "overlap_coeff", LeftCol: "Title", RightCol: "Title",
				Tokenizer: "word", Coefficient: 0.7, Normalize: true},
		},
		SureRules: []RuleSpec{
			{Type: "equal", Name: "num", LeftCol: "Num", RightCol: "Num", Verdict: "match"},
		},
	}
	w, err := spec.Build(left, right, transforms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Contains(block.Pair{A: 0, B: 0}) {
		t.Fatal("rules-only deployment should still find the sure match")
	}
}
